"""Figure 13: CDF of rows accumulated per MAC operation."""

from repro.experiments.figures import fig13


def test_fig13(benchmark, emit, matrix, profile):
    result = benchmark.pedantic(
        lambda: fig13(profile=profile, matrix=matrix), rounds=1, iterations=1
    )
    emit(result)
    cdf = result.series_by_name("Cumulative fraction").values
    assert cdf[-1] == 1.0
    if profile != "tiny":
        # Paper: ~75 % of MAC ops accumulate a single row; >6 rows ~3 %.
        assert cdf[0] > 0.5  # one-row fraction dominates
        assert 1.0 - cdf[5] < 0.25  # >6-row tail is small
