"""Ablation: shard-fetch bandwidth vs GaaS-X load time."""

from repro.experiments.ablations import disk_bandwidth_ablation


def test_disk_bandwidth_ablation(benchmark, emit, profile):
    result = benchmark.pedantic(
        lambda: disk_bandwidth_ablation(dataset="SD", profile=profile),
        rounds=1, iterations=1,
    )
    emit(result)
    loads = result.series_by_name("Load time (s)").values
    # More bandwidth never increases load time.
    assert all(b <= a * 1.001 for a, b in zip(loads, loads[1:]))
    ratios = result.series_by_name("Total time vs no-I/O model").values
    # The slowest disk must visibly hurt; a fast disk must not.
    assert ratios[0] > ratios[-1]
    assert ratios[-1] >= 1.0
