"""Figure 12: energy savings over GraphR."""

from repro.experiments.figures import fig12
from repro.experiments.reporting import geometric_mean


def test_fig12(benchmark, emit, matrix, profile):
    result = benchmark.pedantic(
        lambda: fig12(profile=profile, matrix=matrix), rounds=1, iterations=1
    )
    emit(result)
    everything = [v for s in result.series for v in s.values]
    # Paper: 22x geomean energy savings.
    assert all(v > 1 for v in everything)
    if profile != "tiny":
        assert 8 < geometric_mean(everything) < 70
