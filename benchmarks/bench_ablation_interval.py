"""Ablation: shard interval size vs cost and hit-group shape."""

from repro.experiments.ablations import interval_size_ablation


def test_interval_size_ablation(benchmark, emit, profile):
    result = benchmark.pedantic(
        lambda: interval_size_ablation(dataset="WV", profile=profile),
        rounds=1, iterations=1,
    )
    emit(result)
    fracs = result.series_by_name("Fraction 1-row MACs").values
    assert all(0 <= f <= 1 for f in fracs)
    if profile != "tiny":
        # Smaller intervals scatter hub in-edges -> more 1-row MACs.
        assert fracs[0] >= fracs[-1]
