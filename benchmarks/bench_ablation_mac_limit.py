"""Ablation: MAC accumulation-limit sweep (DESIGN.md abl-maclimit)."""

from repro.experiments.ablations import mac_limit_sweep


def test_mac_limit_sweep(benchmark, emit, profile):
    result = benchmark.pedantic(
        lambda: mac_limit_sweep(dataset="WV", profile=profile),
        rounds=1, iterations=1,
    )
    emit(result)
    bits = result.series_by_name("Required ADC bits").values
    assert bits == sorted(bits)  # bigger limits need wider ADCs
    # The design point (16) must need exactly 6 bits, as the paper says.
    labels = result.series_by_name("Required ADC bits").labels
    assert bits[labels.index("16")] == 6.0
