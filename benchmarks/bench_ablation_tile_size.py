"""Ablation: GraphR dense-tile size sweep (DESIGN.md abl-tile)."""

from repro.experiments.ablations import tile_size_sweep


def test_tile_size_sweep(benchmark, emit, profile):
    result = benchmark.pedantic(
        lambda: tile_size_sweep(profile=profile, datasets=("WV", "SD")),
        rounds=1, iterations=1,
    )
    emit(result)
    small = result.series_by_name("Write ratio (tile 8)").values
    big = result.series_by_name("Write ratio (tile 32)").values
    # Larger tiles waste more cells per real edge on sparse graphs.
    assert all(b > s for s, b in zip(small, big))
