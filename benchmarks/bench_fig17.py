"""Figure 17: collaborative filtering vs GraphChi, cuMF and GraphR."""

from repro.experiments.figures import fig17


def test_fig17(benchmark, emit, profile):
    result = benchmark.pedantic(
        lambda: fig17(profile=profile), rounds=1, iterations=1
    )
    emit(result)
    speedups = dict(
        zip(
            result.series_by_name("Execution time").labels,
            result.series_by_name("Execution time").values,
        )
    )
    energies = dict(
        zip(
            result.series_by_name("Energy").labels,
            result.series_by_name("Energy").values,
        )
    )
    assert all(v > 0 for v in speedups.values())
    if profile != "tiny":
        # Paper speedups: GraphChi 196x >> GraphR 4x ~ cuMF 2x.
        assert speedups["GraphChi"] > 10 * speedups["GraphR"]
        assert speedups["GraphR"] > 1
        assert speedups["cuMF"] > 1
        # Paper energy: GraphChi 2962x > cuMF 86x > GraphR 24x.
        assert energies["GraphChi"] > energies["cuMF"] > 1
        assert energies["GraphR"] > 1
