"""Extension: accelerator advantage vs graph scale."""

from repro.experiments.extensions import scaling_study


def test_ext_scaling(benchmark, emit):
    result = benchmark.pedantic(scaling_study, rounds=1, iterations=1)
    emit(result)
    speedups = result.series_by_name("Speedup vs GraphR").values
    assert all(s > 1 for s in speedups)
    # The advantage must not collapse at scale.
    assert speedups[-1] >= speedups[0]
