"""Figure 5: redundant writes/computations of dense vs sparse mapping.

Also covers the introduction's headline claim of ~30x fewer writes and
~20x fewer computations under sparse mapping.
"""

import numpy as np

from repro.experiments.figures import fig5
from repro.graphs.datasets import load_dataset
from repro.graphs.stats import tile_profile


def test_fig5(benchmark, emit, matrix, profile):
    result = benchmark.pedantic(
        lambda: fig5(profile=profile, matrix=matrix), rounds=1, iterations=1
    )
    emit(result)
    writes = result.series_by_name("Writes").values
    assert all(v > 1 for v in writes)
    if profile != "tiny":
        # Paper: dense mapping incurs ~34x more writes on average; our
        # synthetic stand-ins must land in the same tens-of-x band.
        assert 10 < np.mean(writes) < 120


def test_tile_profile_kernel(benchmark, profile):
    """Micro-bench: the vectorized tile-density analysis itself."""
    graph = load_dataset("WV", profile)
    profile_result = benchmark(tile_profile, graph, 16)
    assert profile_result.num_tiles_nonempty > 0
