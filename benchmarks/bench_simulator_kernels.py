"""Micro-benchmarks of the simulator's hot kernels themselves.

These time *the reproduction's own code* (not the modelled hardware):
how fast the vectorized engine, the tile layout and the CAM/MAC array
models run on this machine. Useful to spot performance regressions in
the simulator.
"""

import numpy as np

from repro.baselines.graphr.tiles import build_tile_layout
from repro.config import ArchConfig, GraphRConfig
from repro.core.engine import GaaSXEngine
from repro.core.loader import build_layout
from repro.graphs import partition_graph
from repro.graphs.datasets import load_dataset
from repro.xbar import EdgeCam, MacCrossbar


def test_engine_pagerank_iteration(benchmark, profile):
    graph = load_dataset("WV", profile)
    engine = GaaSXEngine(graph)
    engine.layout("col")  # exclude layout construction from the timing

    result = benchmark(lambda: engine.pagerank(iterations=1))
    assert result.iterations == 1


def test_engine_sssp(benchmark, profile):
    graph = load_dataset("WV", profile)
    engine = GaaSXEngine(graph)
    engine.layout("row")

    result = benchmark(lambda: engine.sssp(0))
    assert result.supersteps > 0


def test_layout_construction(benchmark, profile):
    graph = load_dataset("WV", profile)
    grid = partition_graph(graph, 128)

    layout = benchmark(lambda: build_layout(grid, "col", ArchConfig()))
    assert layout.num_edges == graph.num_edges


def test_tile_layout_construction(benchmark, profile):
    graph = load_dataset("WV", profile)

    layout = benchmark(lambda: build_tile_layout(graph, GraphRConfig()))
    assert layout.num_edges == graph.num_edges


def test_cam_search_array_level(benchmark):
    cam = EdgeCam(rows=128, vertex_bits=32)
    rng = np.random.default_rng(0)
    cam.load_edges(
        rng.integers(0, 1000, size=128), rng.integers(0, 1000, size=128)
    )
    benchmark(lambda: cam.search_dst(500))


def test_mac_selective_accumulate_array_level(benchmark):
    mac = MacCrossbar(rows=128, cols=16)
    rng = np.random.default_rng(1)
    mac.write_rows(np.arange(128), rng.uniform(0, 4, size=(128, 16)))
    mask = np.zeros(128, dtype=bool)
    mask[rng.choice(128, size=12, replace=False)] = True
    inputs = rng.uniform(0, 2, size=128)
    benchmark(lambda: mac.mac(inputs, row_mask=mask))
