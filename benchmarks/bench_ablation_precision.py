"""Ablation: fixed-point value precision vs accuracy."""

from repro.experiments.ablations import precision_ablation


def test_precision_ablation(benchmark, emit):
    result = benchmark.pedantic(precision_ablation, rounds=1, iterations=1)
    emit(result)
    errors = result.series_by_name("Max relative error").values
    # Error falls monotonically with precision...
    assert all(b < a for a, b in zip(errors, errors[1:]))
    # ...and the paper's 16-bit design point is accurate to a few %.
    labels = result.series_by_name("Max relative error").labels
    assert errors[labels.index("16")] < 0.05
