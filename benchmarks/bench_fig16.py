"""Figure 16: energy savings vs Gunrock (GPU) and GridGraph (CPU)."""

from repro.experiments.figures import fig16
from repro.experiments.reporting import geometric_mean


def test_fig16(benchmark, emit, matrix, profile):
    result = benchmark.pedantic(
        lambda: fig16(profile=profile, matrix=matrix), rounds=1, iterations=1
    )
    emit(result)
    gpu = [
        v for s in result.series if s.name.startswith("Gunrock")
        for v in s.values
    ]
    cpu = [
        v for s in result.series if s.name.startswith("GridGraph")
        for v in s.values
    ]
    assert geometric_mean(cpu) > 0 and geometric_mean(gpu) > 0
    if profile != "tiny":
        # Paper: 252x (GPU) and 5357x (CPU) energy savings geomeans.
        assert 50 < geometric_mean(gpu) < 1500
        assert 800 < geometric_mean(cpu) < 30000
