"""Ablation: analog conductance variation vs rows per MAC op."""

from repro.experiments.ablations import variation_ablation


def test_variation_ablation(benchmark, emit):
    result = benchmark.pedantic(
        variation_ablation, rounds=1, iterations=1
    )
    emit(result)
    for series in result.series:
        # All error levels stay well below one ADC step of full scale.
        assert all(0 <= v < 0.3 for v in series.values)
    # Larger sigma means larger error at equal row count.
    low = result.series[0].values
    high = result.series[-1].values
    assert all(h > l for l, h in zip(low, high))
