"""Figure 15: speedup vs Gunrock (GPU) and GridGraph (CPU)."""

from repro.experiments.figures import fig15
from repro.experiments.reporting import geometric_mean


def test_fig15(benchmark, emit, matrix, profile):
    result = benchmark.pedantic(
        lambda: fig15(profile=profile, matrix=matrix), rounds=1, iterations=1
    )
    emit(result)
    gpu = [
        v for s in result.series if s.name.startswith("Gunrock")
        for v in s.values
    ]
    cpu = [
        v for s in result.series if s.name.startswith("GridGraph")
        for v in s.values
    ]
    assert geometric_mean(cpu) > 0 and geometric_mean(gpu) > 0
    if profile != "tiny":
        # Paper: 12.3x over the GPU, 805x over the CPU framework.
        assert 3 < geometric_mean(gpu) < 60
        assert 100 < geometric_mean(cpu) < 4000
        # Ordering: the CPU framework is far behind the GPU everywhere.
        assert geometric_mean(cpu) > 10 * geometric_mean(gpu)
