"""Section V-B text: comparison with the GAP benchmark suite."""

from repro.experiments.figures import gapbs_comparison
from repro.experiments.reporting import geometric_mean


def test_gapbs(benchmark, emit, matrix, profile):
    result = benchmark.pedantic(
        lambda: gapbs_comparison(profile=profile, matrix=matrix),
        rounds=1, iterations=1,
    )
    emit(result)
    speedups = [
        v for s in result.series if s.name.startswith("Speedup")
        for v in s.values
    ]
    assert geometric_mean(speedups) > 0
    if profile != "tiny":
        # Paper: ~155x speedup / ~1500x energy. GAPBS must land between
        # the out-of-core CPU frameworks and the GPU.
        assert 10 < geometric_mean(speedups) < 800
