"""Ablation: resident vs streaming storage model (DESIGN.md §5)."""

from repro.experiments.ablations import residency_ablation


def test_residency_ablation(benchmark, emit, profile):
    result = benchmark.pedantic(
        lambda: residency_ablation(dataset="SD", profile=profile),
        rounds=1, iterations=1,
    )
    emit(result)
    ratios = result.series_by_name("Time ratio").values
    # Streaming must cost strictly more on every kernel.
    assert all(r > 1 for r in ratios)
