"""Figure 11: execution-time speedup over GraphR."""

from repro.experiments.figures import fig11
from repro.experiments.reporting import geometric_mean


def test_fig11(benchmark, emit, matrix, profile):
    result = benchmark.pedantic(
        lambda: fig11(profile=profile, matrix=matrix), rounds=1, iterations=1
    )
    emit(result)
    everything = [v for s in result.series for v in s.values]
    gm = geometric_mean(everything)
    # Paper: 7.7x geomean; shape bar: same decade, GaaS-X always ahead.
    assert all(v > 1 for v in everything)
    if profile != "tiny":
        assert 3 < gm < 30
        # Section V-B ordering: PageRank shows the smallest advantage.
        pr = result.series_by_name("PageRank").geomean
        assert result.series_by_name("SSSP").geomean > pr
        assert result.series_by_name("BFS").geomean > 0.8 * pr
