"""Figure 14: speedup and energy savings compared to GRAM."""

from repro.experiments.figures import fig14
from repro.experiments.reporting import geometric_mean


def test_fig14(benchmark, emit, matrix, profile):
    result = benchmark.pedantic(
        lambda: fig14(profile=profile, matrix=matrix), rounds=1, iterations=1
    )
    emit(result)
    speedups = result.series_by_name("Execution time").values
    energies = result.series_by_name("Energy").values
    assert all(v > 0 for v in speedups + energies)
    if profile != "tiny":
        # Paper: 2.5x perf / 5.2x energy geomeans over GRAM.
        assert 1 < geometric_mean(speedups) < 12
        assert 1 < geometric_mean(energies) < 20
