"""Ablation: crossbar-count scaling (DESIGN.md abl-xbar)."""

from repro.experiments.ablations import crossbar_count_sweep


def test_crossbar_count_sweep(benchmark, emit, profile):
    result = benchmark.pedantic(
        lambda: crossbar_count_sweep(dataset="SD", profile=profile),
        rounds=1, iterations=1,
    )
    emit(result)
    times = result.series_by_name("Time (s)").values
    assert all(b <= a * 1.001 for a, b in zip(times, times[1:]))
