"""Ablation: vertex-id locality vs dense-mapping overhead."""

from repro.experiments.ablations import locality_ablation


def test_locality_ablation(benchmark, emit, profile):
    result = benchmark.pedantic(
        lambda: locality_ablation(profile=profile), rounds=1, iterations=1
    )
    emit(result)
    clustered = result.series_by_name("Clustered (SNAP-like)").values
    shuffled = result.series_by_name("Shuffled ids").values
    assert all(s > c for c, s in zip(clustered, shuffled))
