"""Shared infrastructure for the benchmark suite.

Every paper artifact has one bench module. Each bench:

1. regenerates its table/figure at the ``bench`` profile (override with
   ``REPRO_BENCH_PROFILE=tiny|bench|full``),
2. prints the rendered rows/series (run pytest with ``-s`` to see them)
   and writes them to ``benchmarks/out/<id>.txt``,
3. feeds pytest-benchmark a representative timed kernel.

All benches share one process-wide :class:`ComparisonMatrix`, so the
expensive accelerator simulations run once per session — and the
session attaches the persistent layout cache, so partition grids,
crossbar layouts, and generated datasets carry over *between* bench
sessions (set ``REPRO_BENCH_NO_CACHE=1`` to measure cold). Cache
hit/miss counts land in ``benchmarks/out/cache_stats.txt``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core import cache as layout_cache
from repro.experiments.harness import comparison_matrix
from repro.experiments.reporting import ExperimentResult
from repro.obs import bench as bench_store

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def bench_profile() -> str:
    """Dataset scale profile for this benchmark session."""
    return os.environ.get("REPRO_BENCH_PROFILE", "bench")


@pytest.fixture(scope="session")
def profile() -> str:
    return bench_profile()


@pytest.fixture(scope="session", autouse=True)
def persistent_layout_cache():
    """Warm-start the session from the on-disk layout cache.

    Yields the global cache; at teardown the session's hit/miss
    counters are written next to the bench reports so the speedup
    trajectory can separate simulation time from preprocessing time.
    """
    if os.environ.get("REPRO_BENCH_NO_CACHE"):
        yield layout_cache.get_cache()
        return
    layout_cache.enable_disk_cache()
    cache = layout_cache.get_cache()
    yield cache
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, "cache_stats.txt")
    stats = cache.stats
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(stats.to_dict(), handle, indent=2)
        handle.write(f"\nhit_rate: {stats.hit_rate:.2%}\n")


@pytest.fixture(scope="session", autouse=True)
def bench_trajectory(persistent_layout_cache):
    """Append one session record to the bench trajectory store.

    Each pytest-benchmark session leaves a git/host-stamped record in
    ``benchmarks/out/BENCH_pytest.json`` carrying the session's wall
    time and layout-cache counters, so ``repro bench-compare`` can gate
    on the full-suite trajectory, not just the CLI suites.
    """
    start = time.perf_counter()
    yield
    elapsed = time.perf_counter() - start
    stats = persistent_layout_cache.stats
    metrics = {
        f"cache.{name}": float(value)
        for name, value in stats.to_dict().items()
    }
    metrics["cache.hit_rate"] = float(stats.hit_rate)
    record = bench_store.make_record(
        suite="pytest",
        profile=bench_profile(),
        repeats=1,
        workloads={
            "pytest.session": {
                "kind": "session",
                "wall_s": {
                    "median_s": elapsed,
                    "mad_s": 0.0,
                    "n": 1,
                    "runs_s": [round(elapsed, 6)],
                },
                "metrics": metrics,
            }
        },
    )
    os.makedirs(OUT_DIR, exist_ok=True)
    bench_store.append_record(
        bench_store.bench_path(OUT_DIR, "pytest"), record
    )


@pytest.fixture(scope="session")
def matrix(profile):
    """The session-shared (dataset x algorithm) evaluation grid."""
    return comparison_matrix(profile)


@pytest.fixture(scope="session")
def emit():
    """Print a result and persist it under benchmarks/out/."""

    def _emit(result: ExperimentResult) -> ExperimentResult:
        text = result.render()
        print("\n" + text)
        os.makedirs(OUT_DIR, exist_ok=True)
        path = os.path.join(OUT_DIR, f"{result.experiment_id}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        chart_path = os.path.join(
            OUT_DIR, f"{result.experiment_id}.chart.txt"
        )
        try:
            chart = result.render_chart()
        except Exception:
            chart = None  # e.g. non-positive values on a log axis
        if chart is not None:
            with open(chart_path, "w", encoding="utf-8") as handle:
                handle.write(chart + "\n")
        return result

    return _emit
