"""Table II: graph datasets and characteristics."""

from repro.experiments.tables import dataset_structure, table2


def test_table2(benchmark, emit, profile):
    result = benchmark.pedantic(
        lambda: table2(profile=profile), rounds=1, iterations=1
    )
    emit(result)
    assert len(result.series_by_name("Vertices").values) == 7


def test_dataset_structure(benchmark, emit, profile):
    result = benchmark.pedantic(
        lambda: dataset_structure(profile=profile), rounds=1, iterations=1
    )
    emit(result)
    skews = result.series_by_name("Out-degree skew (max/mean)").values
    assert all(s > 3 for s in skews)  # scale-free stand-ins
