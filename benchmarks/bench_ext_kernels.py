"""Extension kernels: WCC and GCN characterization on GaaS-X."""

from repro.experiments.extensions import (
    gnn_characterization,
    wcc_characterization,
)


def test_ext_wcc(benchmark, emit, profile):
    result = benchmark.pedantic(
        lambda: wcc_characterization(profile=profile), rounds=1, iterations=1
    )
    emit(result)
    components = result.series_by_name("Components").values
    assert all(c >= 1 for c in components)
    assert all(t > 0 for t in result.series_by_name("Time (s)").values)


def test_ext_energy(benchmark, emit, profile):
    from repro.experiments.extensions import energy_breakdown

    result = benchmark.pedantic(
        lambda: energy_breakdown(dataset="SD", profile=profile),
        rounds=1, iterations=1,
    )
    emit(result)
    for series in result.series:
        # Fractions sum to one per kernel.
        assert abs(sum(series.values) - 1.0) < 1e-9


def test_ext_gnn(benchmark, emit, profile):
    result = benchmark.pedantic(
        lambda: gnn_characterization(profile=profile), rounds=1, iterations=1
    )
    emit(result)
    times = result.series_by_name("Time (s)").values
    macs = result.series_by_name("MAC ops").values
    # Cost grows monotonically with feature width.
    assert all(b > a for a, b in zip(times, times[1:]))
    assert all(b > a for a, b in zip(macs, macs[1:]))
