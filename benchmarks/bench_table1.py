"""Table I: architecture parameters (component area and power)."""

from repro.experiments.tables import table1


def test_table1(benchmark, emit):
    result = benchmark(table1)
    emit(result)
    assert "2.69" in result.notes["total area"]
