"""Tests for the disk/shard storage substrate."""

import numpy as np
import pytest

from repro.core.engine import GaaSXEngine
from repro.errors import ConfigError, PartitionError
from repro.graphs import partition_graph
from repro.storage import DiskModel, ShardStore, estimate_stream_time


class TestDiskModel:
    def test_sequential_stream_time(self):
        disk = DiskModel(sequential_bandwidth_gbs=1.0, seek_latency_s=0.0,
                         bytes_per_edge=10.0)
        assert disk.stream_time_s(1_000_000) == pytest.approx(0.01)

    def test_seeks_add_latency(self):
        disk = DiskModel(seek_latency_s=1e-3)
        base = disk.stream_time_s(1000, num_seeks=1)
        assert disk.stream_time_s(1000, num_seeks=5) == pytest.approx(
            base + 4e-3
        )

    def test_random_far_slower_than_sequential(self):
        disk = DiskModel()
        assert disk.random_edge_time_s(10_000) > 100 * disk.stream_time_s(
            10_000, 1
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            DiskModel(sequential_bandwidth_gbs=0)
        with pytest.raises(ConfigError):
            DiskModel(seek_latency_s=-1)
        with pytest.raises(ConfigError):
            DiskModel().stream_time_s(-5)


class TestShardStore:
    @pytest.fixture()
    def store(self, medium_rmat):
        return ShardStore(partition_graph(medium_rmat, 64))

    def test_total_bytes(self, store, medium_rmat):
        expected = int(medium_rmat.num_edges * store.disk.bytes_per_edge)
        assert store.total_bytes == expected

    def test_extents_contiguous_row_major(self, store):
        offset = 0
        for shard in store.grid.iter_shards("row"):
            extent = store.extent(shard.src_interval, shard.dst_interval)
            assert extent.offset_bytes == offset
            offset += int(extent.num_edges * store.disk.bytes_per_edge)

    def test_missing_shard_raises(self, store):
        with pytest.raises(PartitionError):
            store.extent(10**6, 0)

    def test_row_major_scan_is_fastest(self, store):
        row = store.full_scan_time_s("row")
        col = store.full_scan_time_s("col")
        assert row <= col  # column order pays re-seek per discontinuity

    def test_unknown_order_rejected(self, store):
        with pytest.raises(PartitionError):
            store.full_scan_time_s("diagonal")

    def test_selective_scan_cheaper_than_full(self, store):
        selective = store.selective_scan_time_s(np.array([0]))
        assert selective < store.full_scan_time_s("row")

    def test_selective_scan_all_equals_full_edges(self, store):
        k = store.grid.partition.num_intervals
        all_time = store.selective_scan_time_s(np.arange(k))
        # Same edges; seek counts may differ by the trailing boundary.
        assert all_time == pytest.approx(
            store.full_scan_time_s("row"), rel=0.05
        )

    def test_estimate_helper(self, medium_rmat):
        grid = partition_graph(medium_rmat, 64)
        assert estimate_stream_time(grid) == pytest.approx(
            ShardStore(grid).full_scan_time_s("row")
        )


class TestEngineDiskIntegration:
    def test_slow_disk_dominates_load(self, medium_rmat):
        fast = GaaSXEngine(medium_rmat)
        slow = GaaSXEngine(
            medium_rmat, disk=DiskModel(sequential_bandwidth_gbs=0.01)
        )
        t_fast = fast.pagerank(iterations=1).stats.load_time_s
        t_slow = slow.pagerank(iterations=1).stats.load_time_s
        assert t_slow > t_fast

    def test_no_disk_by_default(self, medium_rmat):
        """The paper's evaluation excludes host I/O; the default engine
        must match the pure write-pipeline load time."""
        default = GaaSXEngine(medium_rmat).pagerank(iterations=1)
        explicit = GaaSXEngine(
            medium_rmat, disk=DiskModel(sequential_bandwidth_gbs=1e9,
                                        seek_latency_s=0.0)
        ).pagerank(iterations=1)
        assert default.stats.load_time_s == pytest.approx(
            explicit.stats.load_time_s
        )

    def test_results_unaffected_by_disk(self, medium_rmat):
        a = GaaSXEngine(medium_rmat).pagerank(iterations=3)
        b = GaaSXEngine(
            medium_rmat, disk=DiskModel(sequential_bandwidth_gbs=0.01)
        ).pagerank(iterations=3)
        assert np.allclose(a.ranks, b.ranks)
