"""Unit tests for the dataset registry (Table II stand-ins)."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graphs import BipartiteGraph, Graph
from repro.graphs.datasets import (
    DATASETS,
    FIGURE_ORDER,
    load_dataset,
)
from repro.graphs.stats import tile_profile


class TestRegistry:
    def test_all_paper_datasets_present(self):
        assert set(DATASETS) == {"WV", "SD", "AZ", "WG", "LJ", "OR", "NF"}

    def test_paper_sizes_recorded(self):
        assert DATASETS["WV"].vertices == 7_000
        assert DATASETS["WV"].edges == 103_000
        assert DATASETS["OR"].edges == 106_000_000
        assert DATASETS["NF"].items == 17_800

    def test_figure_order_covers_directed_datasets(self):
        assert set(FIGURE_ORDER) == set(DATASETS) - {"NF"}

    def test_sizes_profile_validation(self):
        with pytest.raises(DatasetError):
            DATASETS["WV"].sizes("huge")

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("XX")


class TestLoading:
    def test_tiny_profile_is_small(self):
        g = load_dataset("WV", "tiny")
        assert g.num_vertices <= 1024
        assert isinstance(g, Graph)

    def test_case_insensitive(self):
        assert load_dataset("wv", "tiny").name == load_dataset("WV", "tiny").name

    def test_deterministic_and_cached(self):
        a = load_dataset("SD", "tiny")
        b = load_dataset("SD", "tiny")
        assert a is b  # lru_cache shares the instance

    def test_netflix_is_bipartite(self):
        nf = load_dataset("NF", "tiny")
        assert isinstance(nf, BipartiteGraph)

    def test_netflix_density_preserved(self):
        nf = load_dataset("NF", "bench")
        density = nf.num_ratings / (nf.num_users * nf.num_items)
        # Real Netflix: 99M / (480k x 17.8k) ~ 1.16 %.
        assert 0.008 < density < 0.016

    def test_bench_profile_full_scale_for_small_graphs(self):
        g = load_dataset("WV", "bench")
        assert g.num_vertices == 7_000
        assert g.num_edges == 103_000

    def test_bench_profile_scales_large_graphs(self):
        g = load_dataset("LJ", "bench")
        spec = DATASETS["LJ"]
        assert g.num_vertices == spec.vertices // spec.profile_divisors["bench"]

    def test_degree_sorted_ids(self):
        g = load_dataset("WV", "tiny")
        total = g.out_degrees() + g.in_degrees()
        assert total[0] == total.max()

    def test_tile_density_matches_paper_band(self):
        """Section II-C: ~90 % of non-empty tiles at <= 10 % density."""
        g = load_dataset("WV", "bench")
        tp = tile_profile(g, 16)
        assert tp.fraction_below_density(0.10) > 0.80
        assert 15 < tp.redundant_write_ratio < 80

    def test_names_carry_profile(self):
        assert load_dataset("AZ", "tiny").name == "AZ-tiny"
