"""Unit tests for MatrixMarket I/O."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs.io import read_matrix_market, write_matrix_market
from tests.conftest import make_graph


class TestRoundTrip:
    def test_roundtrip(self, tmp_path):
        g = make_graph([(0, 1), (2, 0)], weights=[1.5, 2.0], n=3)
        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        loaded = read_matrix_market(path)
        assert loaded.edges == g.edges

    def test_roundtrip_random(self, small_rmat, tmp_path):
        path = tmp_path / "g.mtx"
        write_matrix_market(small_rmat, path)
        loaded = read_matrix_market(path)
        assert loaded.edges == small_rmat.edges


class TestReading:
    def test_pattern_field(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "3 3 2\n"
            "1 2\n"
            "3 1\n"
        )
        g = read_matrix_market(path)
        assert g.num_edges == 2
        assert np.all(g.weights == 1.0)

    def test_symmetric_mirrors_off_diagonal(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n"
            "2 1 4.0\n"
            "3 3 9.0\n"
        )
        g = read_matrix_market(path)
        dense = g.edges.to_dense()
        assert dense[1, 0] == 4.0 and dense[0, 1] == 4.0
        assert dense[2, 2] == 9.0  # diagonal not duplicated
        assert g.num_edges == 3

    def test_comments_after_header_skipped(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "% another\n"
            "2 2 1\n"
            "1 2 3.0\n"
        )
        assert read_matrix_market(path).num_edges == 1

    def test_one_based_indices_converted(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n"
            "1 2 1.0\n"
        )
        g = read_matrix_market(path)
        assert g.edges.rows[0] == 0 and g.edges.cols[0] == 1


class TestValidation:
    def test_rejects_non_mm(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("hello\n")
        with pytest.raises(GraphFormatError):
            read_matrix_market(path)

    def test_rejects_array_format(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n")
        with pytest.raises(GraphFormatError):
            read_matrix_market(path)

    def test_rejects_complex_field(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate complex general\n2 2 0\n"
        )
        with pytest.raises(GraphFormatError):
            read_matrix_market(path)

    def test_rejects_rectangular(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n2 3 0\n"
        )
        with pytest.raises(GraphFormatError):
            read_matrix_market(path)

    def test_rejects_truncated_entries(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 1.0\n"
        )
        with pytest.raises(GraphFormatError):
            read_matrix_market(path)
