"""Unit tests for the Graph and BipartiteGraph façades."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs import BipartiteGraph, COOMatrix, Graph


class TestGraph:
    def test_from_edge_list(self):
        g = Graph.from_edge_list([(0, 1), (1, 2)], num_vertices=4)
        assert g.num_vertices == 4
        assert g.num_edges == 2

    def test_infers_vertex_count(self):
        g = Graph.from_edge_list([(0, 7)])
        assert g.num_vertices == 8

    def test_empty_edge_list(self):
        g = Graph.from_edge_list([], num_vertices=3)
        assert g.num_edges == 0
        assert g.num_vertices == 3

    def test_rejects_non_square(self):
        coo = COOMatrix(np.array([0]), np.array([1]), shape=(2, 3))
        with pytest.raises(GraphFormatError):
            Graph(coo)

    def test_rejects_malformed_edge_list(self):
        with pytest.raises(GraphFormatError):
            Graph.from_edge_list([(0, 1, 2)])

    def test_deduplicates_by_default(self):
        g = Graph.from_edge_list(
            [(0, 1), (0, 1)], weights=[1.0, 5.0], num_vertices=2
        )
        assert g.num_edges == 1
        assert g.weights[0] == 5.0  # "last" wins

    def test_degrees(self):
        g = Graph.from_edge_list([(0, 1), (0, 2), (1, 2)], num_vertices=3)
        assert np.array_equal(g.out_degrees(), [2, 1, 0])
        assert np.array_equal(g.in_degrees(), [0, 1, 2])

    def test_degrees_cached_and_immutable(self):
        # The edge set is immutable, so the cached degree vector is
        # shared across calls — and must be unwritable so no caller can
        # corrupt what every later caller sees.
        g = Graph.from_edge_list([(0, 1), (0, 2), (1, 2)], num_vertices=3)
        first = g.out_degrees()
        assert g.out_degrees() is first
        assert g.in_degrees() is g.in_degrees()
        with pytest.raises(ValueError):
            first[0] = 99
        assert np.array_equal(g.out_degrees(), [2, 1, 0])
        # Mutable copies stay cheap and do not poison the cache.
        copy = g.out_degrees().astype(float)
        copy[0] = -1.0
        assert np.array_equal(g.out_degrees(), [2, 1, 0])

    def test_reversed(self):
        g = Graph.from_edge_list([(0, 1)], num_vertices=2).reversed()
        assert g.edges.rows[0] == 1 and g.edges.cols[0] == 0

    def test_with_unit_weights(self):
        g = Graph.from_edge_list([(0, 1)], weights=[7.0], num_vertices=2)
        assert g.with_unit_weights().weights[0] == 1.0
        assert g.weights[0] == 7.0  # original untouched

    def test_with_weights(self):
        g = Graph.from_edge_list([(0, 1), (1, 0)], num_vertices=2)
        g2 = g.with_weights(np.array([3.0, 4.0]))
        assert np.array_equal(g2.weights, [3.0, 4.0])

    def test_with_weights_rejects_bad_length(self):
        g = Graph.from_edge_list([(0, 1)], num_vertices=2)
        with pytest.raises(GraphFormatError):
            g.with_weights(np.array([1.0, 2.0]))

    def test_csr_cached(self, small_rmat):
        assert small_rmat.csr() is small_rmat.csr()

    def test_csc_cached(self, small_rmat):
        assert small_rmat.csc() is small_rmat.csc()

    def test_repr(self):
        g = Graph.from_edge_list([(0, 1)], num_vertices=2, name="x")
        assert "x" in repr(g) and "2" in repr(g)


class TestBipartiteGraph:
    def make(self):
        ratings = COOMatrix(
            np.array([0, 1, 2]),
            np.array([0, 1, 0]),
            np.array([5.0, 3.0, 4.0]),
            (3, 2),
        )
        return BipartiteGraph(ratings, name="r")

    def test_counts(self):
        b = self.make()
        assert b.num_users == 3
        assert b.num_items == 2
        assert b.num_ratings == 3

    def test_degrees(self):
        b = self.make()
        assert np.array_equal(b.user_degrees(), [1, 1, 1])
        assert np.array_equal(b.item_degrees(), [2, 1])

    def test_unified_graph_renumbers_items(self):
        b = self.make()
        g = b.as_unified_graph()
        assert g.num_vertices == 5
        # items live at ids num_users..num_users+num_items-1
        assert g.edges.cols.min() >= b.num_users

    def test_unified_graph_preserves_ratings(self):
        b = self.make()
        g = b.as_unified_graph()
        assert np.array_equal(np.sort(g.weights), [3.0, 4.0, 5.0])

    def test_repr(self):
        assert "users=3" in repr(self.make())
