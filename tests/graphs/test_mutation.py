"""Edge mutation: batch normalization, ``with_edges``, grid derivation.

The load-bearing equivalence: :func:`~repro.graphs.partition.mutate_grid`
must produce byte-identical sorted arrays to a from-scratch
:func:`~repro.graphs.partition.partition_graph` rebuild of the mutated
graph — the incremental path is an optimization, never a different
layout.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError, PartitionError
from repro.graphs import Graph
from repro.graphs.generators import rmat
from repro.graphs.graph import normalize_mutation
from repro.graphs.partition import mutate_grid, partition_graph


def edge_set(graph):
    return {
        (int(s), int(d), float(w))
        for s, d, w in zip(
            graph.edges.rows, graph.edges.cols, graph.weights
        )
    }


class TestNormalizeMutation:
    def test_none_is_empty(self):
        assert normalize_mutation(None, 10).shape == (0, 3)

    def test_pairs_get_unit_weight(self):
        out = normalize_mutation([[1, 2], [3, 4]], 10)
        assert np.array_equal(
            out, [[1.0, 2.0, 1.0], [3.0, 4.0, 1.0]]
        )

    def test_ragged_json_rows(self):
        out = normalize_mutation([[1, 2], [3, 4, 2.5]], 10)
        assert np.array_equal(
            out, [[1.0, 2.0, 1.0], [3.0, 4.0, 2.5]]
        )

    def test_unweighted_mode_resets_weights(self):
        out = normalize_mutation(
            [[1, 2, 9.0]], 10, weighted=False
        )
        assert out[0, 2] == 1.0

    @pytest.mark.parametrize(
        "batch",
        [
            [[1]],
            [[1, 2, 3.0, 4.0]],
            [[1.5, 2]],
            [[-1, 2]],
            [[1, 99]],
            "nonsense",
        ],
    )
    def test_malformed_batches_raise(self, batch):
        with pytest.raises(GraphFormatError):
            normalize_mutation(batch, 10)


class TestWithEdges:
    def test_insert_new_edge(self, diamond_graph):
        out = diamond_graph.with_edges(inserts=[[3, 0, 5.0]])
        assert (3, 0, 5.0) in edge_set(out)
        assert out.num_edges == diamond_graph.num_edges + 1

    def test_insert_upserts_existing_weight(self, diamond_graph):
        out = diamond_graph.with_edges(inserts=[[0, 1, 7.0]])
        assert out.num_edges == diamond_graph.num_edges
        assert (0, 1, 7.0) in edge_set(out)
        assert (0, 1, 1.0) not in edge_set(out)

    def test_duplicate_insert_rows_last_wins(self, diamond_graph):
        out = diamond_graph.with_edges(
            inserts=[[3, 0, 1.0], [3, 0, 9.0]]
        )
        assert (3, 0, 9.0) in edge_set(out)
        assert (3, 0, 1.0) not in edge_set(out)

    def test_delete_removes_edge(self, diamond_graph):
        out = diamond_graph.with_edges(deletes=[[0, 1]])
        assert out.num_edges == diamond_graph.num_edges - 1
        assert (0, 1, 1.0) not in edge_set(out)

    def test_delete_missing_edge_is_ignored(self, diamond_graph):
        out = diamond_graph.with_edges(deletes=[[3, 0]])
        assert edge_set(out) == edge_set(diamond_graph)

    def test_receiver_is_untouched(self, diamond_graph):
        before = edge_set(diamond_graph)
        diamond_graph.with_edges(
            inserts=[[3, 0]], deletes=[[0, 1]]
        )
        assert edge_set(diamond_graph) == before

    def test_out_of_range_raises(self, diamond_graph):
        with pytest.raises(GraphFormatError):
            diamond_graph.with_edges(inserts=[[0, 99]])

    def test_mutated_graph_has_new_fingerprint(self, diamond_graph):
        from repro.core.cache import graph_fingerprint

        out = diamond_graph.with_edges(inserts=[[3, 0]])
        assert graph_fingerprint(out) != graph_fingerprint(
            diamond_graph
        )


def assert_grids_equal(derived, rebuilt):
    assert np.array_equal(derived.src, rebuilt.src)
    assert np.array_equal(derived.dst, rebuilt.dst)
    assert np.array_equal(derived.weight, rebuilt.weight)
    assert np.array_equal(derived._keys, rebuilt._keys)
    assert np.array_equal(derived._starts, rebuilt._starts)


class TestMutateGrid:
    def test_mixed_batch_matches_full_rebuild(self):
        graph = rmat(128, 900, seed=3)
        grid = partition_graph(graph, 32)
        inserts = np.array(
            [[0, 1, 2.0], [100, 40, 1.0], [0, 1, 7.0]]
        )
        deletes = np.array(
            [[int(graph.edges.rows[0]), int(graph.edges.cols[0])]],
            dtype=np.float64,
        )
        new_graph = graph.with_edges(inserts=inserts, deletes=deletes)
        derived = mutate_grid(
            grid, new_graph, inserts=inserts, deletes=deletes
        )
        assert_grids_equal(derived, partition_graph(new_graph, 32))

    def test_empty_batches_match(self):
        graph = rmat(64, 300, seed=9)
        grid = partition_graph(graph, 16)
        derived = mutate_grid(grid, graph)
        assert_grids_equal(derived, partition_graph(graph, 16))

    def test_vertex_count_must_match(self):
        grid = partition_graph(rmat(64, 300, seed=9), 16)
        other = rmat(128, 300, seed=9)
        with pytest.raises(PartitionError):
            mutate_grid(grid, other)

    @given(
        seed=st.integers(min_value=0, max_value=50),
        n_ins=st.integers(min_value=0, max_value=12),
        n_del=st.integers(min_value=0, max_value=12),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_batches_match_full_rebuild(
        self, seed, n_ins, n_del
    ):
        rng = np.random.default_rng(seed)
        graph = rmat(96, 500, seed=1)
        grid = partition_graph(graph, 24)
        inserts = np.column_stack(
            [
                rng.integers(0, 96, size=n_ins),
                rng.integers(0, 96, size=n_ins),
                rng.uniform(0.5, 4.0, size=n_ins).round(3),
            ]
        ).astype(np.float64)
        deletes = np.column_stack(
            [
                rng.integers(0, 96, size=n_del),
                rng.integers(0, 96, size=n_del),
            ]
        ).astype(np.float64)
        new_graph = graph.with_edges(inserts=inserts, deletes=deletes)
        derived = mutate_grid(
            grid, new_graph, inserts=inserts, deletes=deletes
        )
        assert_grids_equal(derived, partition_graph(new_graph, 24))


class TestStoredGraphMutated:
    def test_overlay_leaves_file_untouched(self, tmp_path):
        from repro.graphs.io import save_store
        from repro.storage.mmap_store import StoredGraph

        graph = rmat(64, 300, seed=4)
        path = str(tmp_path / "g.gsx")
        save_store(graph, path)
        stored = StoredGraph(path)
        overlay = stored.mutated(
            inserts=[[0, 1, 3.0]], deletes=None
        )
        assert (0, 1, 3.0) in edge_set(overlay)
        # Reopening reads the original, unmutated bytes.
        assert edge_set(StoredGraph(path).graph()) == edge_set(graph)
