"""Unit tests for graph structural statistics (Figure 5 substrate)."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs import Graph
from repro.graphs.stats import (
    degree_histogram,
    degree_skew,
    summarize,
    tile_profile,
)


class TestDegreeStats:
    def test_histogram(self):
        values, counts = degree_histogram(np.array([0, 2, 2, 3]))
        assert np.array_equal(values, [0, 2, 3])
        assert np.array_equal(counts, [1, 2, 1])

    def test_skew(self):
        assert degree_skew(np.array([1, 1, 1, 1])) == pytest.approx(1.0)
        assert degree_skew(np.array([1, 1, 10])) == pytest.approx(10 / 4)

    def test_skew_of_zeros(self):
        assert degree_skew(np.zeros(4)) == 0.0


class TestTileProfile:
    def test_single_dense_tile(self):
        # A 2x2 clique in a 16-vertex graph, tile size 4.
        g = Graph.from_edge_list(
            [(0, 1), (1, 0), (0, 2), (2, 0)], num_vertices=16
        )
        tp = tile_profile(g, 4)
        assert tp.num_tiles_total == 16
        assert tp.num_tiles_nonempty == 1
        assert tp.tile_nnz[0] == 4
        assert tp.densities[0] == pytest.approx(4 / 16)

    def test_scattered_edges(self):
        g = Graph.from_edge_list([(0, 15), (15, 0)], num_vertices=16)
        tp = tile_profile(g, 4)
        assert tp.num_tiles_nonempty == 2
        assert tp.redundant_write_ratio == pytest.approx(2 * 16 / 2)

    def test_nonempty_fraction(self):
        g = Graph.from_edge_list([(0, 0)], num_vertices=8)
        tp = tile_profile(g, 4)
        assert tp.nonempty_fraction == pytest.approx(1 / 4)

    def test_fraction_below_density(self):
        g = Graph.from_edge_list(
            [(0, 0), (0, 1), (4, 4)], num_vertices=8
        )
        tp = tile_profile(g, 4)
        # densities: 2/16 and 1/16
        assert tp.fraction_below_density(1 / 16) == pytest.approx(0.5)
        assert tp.fraction_below_density(0.5) == 1.0

    def test_dense_cells(self):
        g = Graph.from_edge_list([(0, 0), (7, 7)], num_vertices=8)
        tp = tile_profile(g, 4)
        assert tp.dense_cells == 2 * 16

    def test_rejects_bad_tile_size(self, small_rmat):
        with pytest.raises(GraphFormatError):
            tile_profile(small_rmat, 0)

    def test_tile_nnz_sums_to_edges(self, medium_rmat):
        tp = tile_profile(medium_rmat, 16)
        assert tp.tile_nnz.sum() == medium_rmat.num_edges

    def test_bigger_tiles_never_increase_tile_count(self, medium_rmat):
        small = tile_profile(medium_rmat, 8)
        big = tile_profile(medium_rmat, 32)
        assert big.num_tiles_nonempty <= small.num_tiles_nonempty

    def test_empty_graph(self):
        g = Graph.from_edge_list([], num_vertices=8)
        tp = tile_profile(g, 4)
        assert tp.num_tiles_nonempty == 0
        assert tp.redundant_write_ratio == 0.0
        assert tp.mean_nonempty_density == 0.0
        assert tp.fraction_below_density(0.1) == 0.0


class TestSummarize:
    def test_fields(self, small_rmat):
        info = summarize(small_rmat)
        assert info["vertices"] == small_rmat.num_vertices
        assert info["edges"] == small_rmat.num_edges
        assert 0 < info["density"] < 1
        assert info["max_out_degree"] >= info["mean_out_degree"]

    def test_isolated_vertices_counted(self):
        g = Graph.from_edge_list([(0, 1)], num_vertices=5)
        assert summarize(g)["isolated_vertices"] == 3
