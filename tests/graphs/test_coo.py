"""Unit tests for the COO sparse matrix."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs import COOMatrix


def coo(rows, cols, data=None, shape=None):
    return COOMatrix(np.array(rows), np.array(cols), data, shape)


class TestConstruction:
    def test_basic(self):
        m = coo([0, 1], [1, 2], np.array([2.0, 3.0]))
        assert m.shape == (2, 3)
        assert m.nnz == 2

    def test_default_weights_are_ones(self):
        m = coo([0, 1], [1, 0])
        assert np.array_equal(m.data, [1.0, 1.0])

    def test_explicit_shape(self):
        m = coo([0], [0], shape=(5, 7))
        assert m.shape == (5, 7)

    def test_empty(self):
        m = COOMatrix(np.array([], dtype=int), np.array([], dtype=int))
        assert m.nnz == 0
        assert m.shape == (0, 0)
        assert m.density == 0.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(GraphFormatError):
            coo([0, 1], [1])

    def test_rejects_negative_indices(self):
        with pytest.raises(GraphFormatError):
            coo([-1], [0])

    def test_rejects_out_of_bounds(self):
        with pytest.raises(GraphFormatError):
            coo([0], [3], shape=(2, 2))

    def test_rejects_2d_arrays(self):
        with pytest.raises(GraphFormatError):
            COOMatrix(np.zeros((2, 2), dtype=int), np.zeros((2, 2), dtype=int))

    def test_rejects_wrong_data_length(self):
        with pytest.raises(GraphFormatError):
            coo([0, 1], [1, 0], np.array([1.0]))

    def test_density(self):
        m = coo([0, 1], [0, 1], shape=(2, 2))
        assert m.density == pytest.approx(0.5)


class TestSorting:
    def test_row_major_sort(self):
        m = coo([2, 0, 1], [0, 2, 1]).sorted_by("row")
        assert np.array_equal(m.rows, [0, 1, 2])
        assert np.array_equal(m.cols, [2, 1, 0])

    def test_col_major_sort(self):
        m = coo([2, 0, 1], [0, 2, 1]).sorted_by("col")
        assert np.array_equal(m.cols, [0, 1, 2])
        assert np.array_equal(m.rows, [2, 1, 0])

    def test_sort_keeps_data_aligned(self):
        m = coo([1, 0], [0, 0], np.array([5.0, 9.0])).sorted_by("row")
        assert np.array_equal(m.data, [9.0, 5.0])

    def test_unknown_order_rejected(self):
        with pytest.raises(GraphFormatError):
            coo([0], [0]).sorted_by("diagonal")


class TestDeduplication:
    def test_sum_combine(self):
        m = coo([0, 0, 1], [1, 1, 0], np.array([2.0, 3.0, 1.0]))
        d = m.deduplicated("sum")
        assert d.nnz == 2
        dense = d.to_dense()
        assert dense[0, 1] == 5.0

    def test_min_combine(self):
        m = coo([0, 0], [1, 1], np.array([2.0, 3.0]))
        assert m.deduplicated("min").data[0] == 2.0

    def test_max_combine(self):
        m = coo([0, 0], [1, 1], np.array([2.0, 3.0]))
        assert m.deduplicated("max").data[0] == 3.0

    def test_last_combine(self):
        m = coo([0, 0], [1, 1], np.array([2.0, 3.0]))
        assert m.deduplicated("last").data[0] == 3.0

    def test_unknown_combine_rejected(self):
        with pytest.raises(GraphFormatError):
            coo([0], [0]).deduplicated("mean")

    def test_empty_dedup(self):
        m = COOMatrix(np.array([], dtype=int), np.array([], dtype=int))
        assert m.deduplicated().nnz == 0

    def test_has_duplicates(self):
        assert coo([0, 0], [1, 1]).has_duplicates()
        assert not coo([0, 1], [1, 1]).has_duplicates()
        assert not coo([0], [1]).has_duplicates()


class TestTransforms:
    def test_transpose_swaps_shape(self):
        m = coo([0], [2], shape=(2, 5)).transpose()
        assert m.shape == (5, 2)
        assert m.rows[0] == 2 and m.cols[0] == 0

    def test_transpose_involution(self):
        m = coo([0, 1, 2], [2, 0, 1], np.array([1.0, 2.0, 3.0]))
        assert m.transpose().transpose() == m

    def test_without_self_loops(self):
        m = coo([0, 1, 1], [0, 1, 2]).without_self_loops()
        assert m.nnz == 1
        assert m.rows[0] == 1 and m.cols[0] == 2


class TestConversions:
    def test_dense_roundtrip(self):
        dense = np.array([[0.0, 2.0], [3.0, 0.0]])
        assert np.array_equal(COOMatrix.from_dense(dense).to_dense(), dense)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(GraphFormatError):
            COOMatrix.from_dense(np.array([1.0, 2.0]))

    def test_to_dense_accumulates_duplicates(self):
        m = coo([0, 0], [0, 0], np.array([1.0, 2.0]), shape=(1, 1))
        assert m.to_dense()[0, 0] == 3.0

    def test_csr_roundtrip(self):
        m = coo([2, 0, 1], [1, 2, 0], np.array([1.0, 2.0, 3.0]))
        assert m.to_csr().to_coo() == m

    def test_csc_roundtrip(self):
        m = coo([2, 0, 1], [1, 2, 0], np.array([1.0, 2.0, 3.0]))
        assert m.to_csc().to_coo() == m


class TestDegrees:
    def test_row_degrees(self):
        m = coo([0, 0, 2], [1, 2, 0], shape=(3, 3))
        assert np.array_equal(m.row_degrees(), [2, 0, 1])

    def test_col_degrees(self):
        m = coo([0, 0, 2], [1, 2, 0], shape=(3, 3))
        assert np.array_equal(m.col_degrees(), [1, 1, 1])


class TestEquality:
    def test_order_insensitive_equality(self):
        a = coo([0, 1], [1, 0], np.array([1.0, 2.0]))
        b = coo([1, 0], [0, 1], np.array([2.0, 1.0]))
        assert a == b

    def test_different_values_not_equal(self):
        a = coo([0], [1], np.array([1.0]))
        b = coo([0], [1], np.array([2.0]))
        assert a != b

    def test_not_equal_to_other_types(self):
        assert coo([0], [1]).__eq__(42) is NotImplemented
