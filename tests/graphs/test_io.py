"""Unit tests for graph I/O."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs import Graph
from repro.graphs.io import (
    load_binary,
    read_edge_list,
    save_binary,
    write_edge_list,
)


@pytest.fixture()
def weighted_graph():
    return Graph.from_edge_list(
        [(0, 1), (1, 2), (2, 0)],
        weights=[1.5, 2.0, 3.25],
        num_vertices=3,
        name="tri",
    )


class TestEdgeListText:
    def test_roundtrip_weighted(self, weighted_graph, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(weighted_graph, path)
        loaded = read_edge_list(path)
        assert loaded.edges == weighted_graph.edges

    def test_roundtrip_unweighted(self, tmp_path):
        g = Graph.from_edge_list([(0, 2), (2, 1)], num_vertices=3)
        path = tmp_path / "g.txt"
        write_edge_list(g, path, weighted=False)
        loaded = read_edge_list(path)
        assert np.array_equal(loaded.edges.rows, g.edges.rows)
        assert np.array_equal(loaded.weights, [1.0, 1.0])

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# SNAP header\n\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_weight_format_inferred(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 4.5\n1 0 2.0\n")
        g = read_edge_list(path)
        assert np.array_equal(np.sort(g.weights), [2.0, 4.5])

    def test_explicit_num_vertices(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        g = read_edge_list(path, num_vertices=10)
        assert g.num_vertices == 10

    def test_header_written(self, weighted_graph, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(weighted_graph, path, header="hello\nworld")
        text = path.read_text()
        assert "# hello" in text and "# world" in text
        assert "# vertices: 3" in text

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2.0\n1\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nothing\n")
        g = read_edge_list(path)
        assert g.num_edges == 0
        assert g.num_vertices == 0

    def test_name_defaults_to_filename(self, tmp_path):
        path = tmp_path / "mygraph.txt"
        path.write_text("0 1\n")
        assert read_edge_list(path).name == "mygraph.txt"


class TestBinary:
    def test_roundtrip(self, weighted_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_binary(weighted_graph, path)
        loaded = load_binary(path)
        assert loaded.edges == weighted_graph.edges
        assert loaded.name == "tri"
        assert loaded.num_vertices == 3

    def test_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, src=np.array([0]))
        with pytest.raises(GraphFormatError):
            load_binary(path)

    def test_roundtrip_preserves_isolated_vertices(self, tmp_path):
        g = Graph.from_edge_list([(0, 1)], num_vertices=100)
        path = tmp_path / "g.npz"
        save_binary(g, path)
        assert load_binary(path).num_vertices == 100
