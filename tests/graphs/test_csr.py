"""Unit tests for CSR/CSC matrices."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs import COOMatrix, CSRMatrix, CSCMatrix


@pytest.fixture()
def sample_coo():
    #      col0 col1 col2
    # row0   .   2.0  1.0
    # row1  3.0   .    .
    # row2   .    .   4.0
    return COOMatrix(
        np.array([0, 0, 1, 2]),
        np.array([1, 2, 0, 2]),
        np.array([2.0, 1.0, 3.0, 4.0]),
        (3, 3),
    )


class TestCSR:
    def test_from_coo_structure(self, sample_coo):
        csr = CSRMatrix.from_coo(sample_coo)
        assert np.array_equal(csr.indptr, [0, 2, 3, 4])
        assert np.array_equal(csr.indices, [1, 2, 0, 2])

    def test_row_access(self, sample_coo):
        csr = CSRMatrix.from_coo(sample_coo)
        cols, vals = csr.row(0)
        assert np.array_equal(cols, [1, 2])
        assert np.array_equal(vals, [2.0, 1.0])

    def test_empty_row(self, sample_coo):
        coo = COOMatrix(np.array([2]), np.array([0]), shape=(4, 4))
        csr = CSRMatrix.from_coo(coo)
        cols, vals = csr.row(1)
        assert cols.size == 0 and vals.size == 0

    def test_row_degrees(self, sample_coo):
        csr = CSRMatrix.from_coo(sample_coo)
        assert np.array_equal(csr.row_degrees(), [2, 1, 1])

    def test_spmv_matches_dense(self, sample_coo):
        csr = CSRMatrix.from_coo(sample_coo)
        x = np.array([1.0, 2.0, 3.0])
        assert np.allclose(csr.spmv(x), sample_coo.to_dense() @ x)

    def test_spmv_transposed_matches_dense(self, sample_coo):
        csr = CSRMatrix.from_coo(sample_coo)
        x = np.array([1.0, -1.0, 2.0])
        assert np.allclose(
            csr.spmv_transposed(x), sample_coo.to_dense().T @ x
        )

    def test_spmv_rejects_bad_length(self, sample_coo):
        csr = CSRMatrix.from_coo(sample_coo)
        with pytest.raises(GraphFormatError):
            csr.spmv(np.ones(5))
        with pytest.raises(GraphFormatError):
            csr.spmv_transposed(np.ones(5))

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(GraphFormatError):
            CSRMatrix(np.array([0, 2]), np.array([0]), np.array([1.0]), (2, 2))

    def test_validation_rejects_decreasing_indptr(self):
        with pytest.raises(GraphFormatError):
            CSRMatrix(
                np.array([0, 2, 1]),
                np.array([0, 1]),
                np.array([1.0, 1.0]),
                (2, 2),
            )

    def test_validation_rejects_column_out_of_bounds(self):
        with pytest.raises(GraphFormatError):
            CSRMatrix(np.array([0, 1]), np.array([5]), np.array([1.0]), (1, 2))

    def test_nnz(self, sample_coo):
        assert CSRMatrix.from_coo(sample_coo).nnz == 4


class TestCSREdgeCases:
    """Satellite coverage: empties, boundary slicing, round trips,
    and mmap-view immutability."""

    def test_zero_edge_matrix(self):
        coo = COOMatrix(
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            shape=(4, 4),
        )
        csr = CSRMatrix.from_coo(coo)
        assert csr.nnz == 0
        assert np.array_equal(csr.indptr, [0, 0, 0, 0, 0])
        assert np.array_equal(csr.row_degrees(), [0, 0, 0, 0])
        assert np.allclose(csr.spmv(np.ones(4)), np.zeros(4))
        back = csr.to_coo()
        assert back.nnz == 0 and back.shape == (4, 4)

    def test_zero_by_zero_matrix(self):
        csr = CSRMatrix(
            np.array([0]), np.array([], dtype=np.int64),
            np.array([], dtype=np.float64), (0, 0),
        )
        assert csr.nnz == 0
        assert csr.spmv(np.array([])).size == 0

    def test_leading_and_trailing_empty_rows(self):
        # Only the middle row has entries; rows 0, 2, 3 are empty.
        coo = COOMatrix(np.array([1, 1]), np.array([0, 3]), shape=(4, 4))
        csr = CSRMatrix.from_coo(coo)
        assert np.array_equal(csr.indptr, [0, 0, 2, 2, 2])
        for i in (0, 2, 3):
            cols, vals = csr.row(i)
            assert cols.size == 0 and vals.size == 0

    def test_coo_csr_round_trip_equality(self, medium_rmat):
        coo = medium_rmat.edges
        back = CSRMatrix.from_coo(coo).to_coo()
        # COOMatrix.__eq__ compares canonical (row, col) ordering.
        assert back == coo

    def test_slice_rows_full_and_empty_boundaries(self, sample_coo):
        csr = CSRMatrix.from_coo(sample_coo)
        full = csr.slice_rows(0, 3)
        assert full.nnz == csr.nnz
        assert np.array_equal(full.indptr, csr.indptr)
        for lo, hi in ((0, 0), (3, 3)):
            empty = csr.slice_rows(lo, hi)
            assert empty.shape == (0, 3) and empty.nnz == 0

    def test_slice_rows_interior(self, sample_coo):
        csr = CSRMatrix.from_coo(sample_coo)
        mid = csr.slice_rows(1, 3)
        assert mid.shape == (2, 3)
        assert np.array_equal(mid.indptr, [0, 1, 2])
        assert np.array_equal(mid.indices, [0, 2])
        assert np.array_equal(mid.data, [3.0, 4.0])

    def test_slice_rows_is_zero_copy(self, sample_coo):
        csr = CSRMatrix.from_coo(sample_coo)
        sliced = csr.slice_rows(1, 3)
        assert np.shares_memory(sliced.indices, csr.indices)
        assert np.shares_memory(sliced.data, csr.data)

    def test_slice_rows_rejects_out_of_bounds(self, sample_coo):
        csr = CSRMatrix.from_coo(sample_coo)
        for lo, hi in ((-1, 2), (0, 4), (2, 1)):
            with pytest.raises(GraphFormatError):
                csr.slice_rows(lo, hi)

    def test_mmap_view_immutability(self, tmp_path, medium_rmat):
        from repro.graphs.io import load_store, save_store

        path = str(tmp_path / "g.gsx")
        save_store(medium_rmat, path)
        graph = load_store(path)
        csr = graph.csr()
        for view in (csr.indptr, csr.indices, csr.data,
                     graph.edges.cols, graph.edges.data):
            with pytest.raises(ValueError):
                view[0] = 99
        # The slices a shard consumer receives are equally read-only.
        sliced = csr.slice_rows(0, min(2, csr.shape[0]))
        if sliced.nnz:
            with pytest.raises(ValueError):
                sliced.indices[0] = 1


class TestCSC:
    def test_from_coo_structure(self, sample_coo):
        csc = CSCMatrix.from_coo(sample_coo)
        assert np.array_equal(csc.indptr, [0, 1, 2, 4])
        assert np.array_equal(csc.indices, [1, 0, 0, 2])

    def test_col_access(self, sample_coo):
        csc = CSCMatrix.from_coo(sample_coo)
        rows, vals = csc.col(2)
        assert np.array_equal(rows, [0, 2])
        assert np.array_equal(vals, [1.0, 4.0])

    def test_col_degrees(self, sample_coo):
        csc = CSCMatrix.from_coo(sample_coo)
        assert np.array_equal(csc.col_degrees(), [1, 1, 2])

    def test_spmv_matches_dense(self, sample_coo):
        csc = CSCMatrix.from_coo(sample_coo)
        x = np.array([2.0, 0.5, -1.0])
        assert np.allclose(csc.spmv(x), sample_coo.to_dense() @ x)

    def test_spmv_rejects_bad_length(self, sample_coo):
        with pytest.raises(GraphFormatError):
            CSCMatrix.from_coo(sample_coo).spmv(np.ones(4))

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(GraphFormatError):
            CSCMatrix(np.array([0, 1]), np.array([0]), np.array([1.0]), (2, 2))

    def test_validation_rejects_row_out_of_bounds(self):
        with pytest.raises(GraphFormatError):
            CSCMatrix(
                np.array([0, 1, 1]), np.array([9]), np.array([1.0]), (2, 2)
            )


class TestCrossFormatAgreement:
    def test_csr_csc_spmv_agree(self, medium_rmat):
        csr = medium_rmat.edges.to_csr()
        csc = medium_rmat.edges.to_csc()
        rng = np.random.default_rng(0)
        x = rng.normal(size=medium_rmat.num_vertices)
        assert np.allclose(csr.spmv(x), csc.spmv(x))

    def test_transposed_spmv_equals_transpose_then_spmv(self, medium_rmat):
        csr = medium_rmat.edges.to_csr()
        csr_t = medium_rmat.edges.transpose().to_csr()
        rng = np.random.default_rng(1)
        x = rng.normal(size=medium_rmat.num_vertices)
        assert np.allclose(csr.spmv_transposed(x), csr_t.spmv(x))
