"""Unit tests for CSR/CSC matrices."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs import COOMatrix, CSRMatrix, CSCMatrix


@pytest.fixture()
def sample_coo():
    #      col0 col1 col2
    # row0   .   2.0  1.0
    # row1  3.0   .    .
    # row2   .    .   4.0
    return COOMatrix(
        np.array([0, 0, 1, 2]),
        np.array([1, 2, 0, 2]),
        np.array([2.0, 1.0, 3.0, 4.0]),
        (3, 3),
    )


class TestCSR:
    def test_from_coo_structure(self, sample_coo):
        csr = CSRMatrix.from_coo(sample_coo)
        assert np.array_equal(csr.indptr, [0, 2, 3, 4])
        assert np.array_equal(csr.indices, [1, 2, 0, 2])

    def test_row_access(self, sample_coo):
        csr = CSRMatrix.from_coo(sample_coo)
        cols, vals = csr.row(0)
        assert np.array_equal(cols, [1, 2])
        assert np.array_equal(vals, [2.0, 1.0])

    def test_empty_row(self, sample_coo):
        coo = COOMatrix(np.array([2]), np.array([0]), shape=(4, 4))
        csr = CSRMatrix.from_coo(coo)
        cols, vals = csr.row(1)
        assert cols.size == 0 and vals.size == 0

    def test_row_degrees(self, sample_coo):
        csr = CSRMatrix.from_coo(sample_coo)
        assert np.array_equal(csr.row_degrees(), [2, 1, 1])

    def test_spmv_matches_dense(self, sample_coo):
        csr = CSRMatrix.from_coo(sample_coo)
        x = np.array([1.0, 2.0, 3.0])
        assert np.allclose(csr.spmv(x), sample_coo.to_dense() @ x)

    def test_spmv_transposed_matches_dense(self, sample_coo):
        csr = CSRMatrix.from_coo(sample_coo)
        x = np.array([1.0, -1.0, 2.0])
        assert np.allclose(
            csr.spmv_transposed(x), sample_coo.to_dense().T @ x
        )

    def test_spmv_rejects_bad_length(self, sample_coo):
        csr = CSRMatrix.from_coo(sample_coo)
        with pytest.raises(GraphFormatError):
            csr.spmv(np.ones(5))
        with pytest.raises(GraphFormatError):
            csr.spmv_transposed(np.ones(5))

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(GraphFormatError):
            CSRMatrix(np.array([0, 2]), np.array([0]), np.array([1.0]), (2, 2))

    def test_validation_rejects_decreasing_indptr(self):
        with pytest.raises(GraphFormatError):
            CSRMatrix(
                np.array([0, 2, 1]),
                np.array([0, 1]),
                np.array([1.0, 1.0]),
                (2, 2),
            )

    def test_validation_rejects_column_out_of_bounds(self):
        with pytest.raises(GraphFormatError):
            CSRMatrix(np.array([0, 1]), np.array([5]), np.array([1.0]), (1, 2))

    def test_nnz(self, sample_coo):
        assert CSRMatrix.from_coo(sample_coo).nnz == 4


class TestCSC:
    def test_from_coo_structure(self, sample_coo):
        csc = CSCMatrix.from_coo(sample_coo)
        assert np.array_equal(csc.indptr, [0, 1, 2, 4])
        assert np.array_equal(csc.indices, [1, 0, 0, 2])

    def test_col_access(self, sample_coo):
        csc = CSCMatrix.from_coo(sample_coo)
        rows, vals = csc.col(2)
        assert np.array_equal(rows, [0, 2])
        assert np.array_equal(vals, [1.0, 4.0])

    def test_col_degrees(self, sample_coo):
        csc = CSCMatrix.from_coo(sample_coo)
        assert np.array_equal(csc.col_degrees(), [1, 1, 2])

    def test_spmv_matches_dense(self, sample_coo):
        csc = CSCMatrix.from_coo(sample_coo)
        x = np.array([2.0, 0.5, -1.0])
        assert np.allclose(csc.spmv(x), sample_coo.to_dense() @ x)

    def test_spmv_rejects_bad_length(self, sample_coo):
        with pytest.raises(GraphFormatError):
            CSCMatrix.from_coo(sample_coo).spmv(np.ones(4))

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(GraphFormatError):
            CSCMatrix(np.array([0, 1]), np.array([0]), np.array([1.0]), (2, 2))

    def test_validation_rejects_row_out_of_bounds(self):
        with pytest.raises(GraphFormatError):
            CSCMatrix(
                np.array([0, 1, 1]), np.array([9]), np.array([1.0]), (2, 2)
            )


class TestCrossFormatAgreement:
    def test_csr_csc_spmv_agree(self, medium_rmat):
        csr = medium_rmat.edges.to_csr()
        csc = medium_rmat.edges.to_csc()
        rng = np.random.default_rng(0)
        x = rng.normal(size=medium_rmat.num_vertices)
        assert np.allclose(csr.spmv(x), csc.spmv(x))

    def test_transposed_spmv_equals_transpose_then_spmv(self, medium_rmat):
        csr = medium_rmat.edges.to_csr()
        csr_t = medium_rmat.edges.transpose().to_csr()
        rng = np.random.default_rng(1)
        x = rng.normal(size=medium_rmat.num_vertices)
        assert np.allclose(csr.spmv_transposed(x), csr_t.spmv(x))
