"""Unit tests for interval partitioning into sub-shards."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graphs import Graph, IntervalPartition, partition_graph


class TestIntervalPartition:
    def test_num_intervals_rounds_up(self):
        p = IntervalPartition(10, 3)
        assert p.num_intervals == 4

    def test_exact_division(self):
        assert IntervalPartition(12, 3).num_intervals == 4

    def test_interval_of_vectorized(self):
        p = IntervalPartition(10, 3)
        assert np.array_equal(
            p.interval_of(np.array([0, 3, 9])), [0, 1, 3]
        )

    def test_bounds(self):
        p = IntervalPartition(10, 3)
        assert p.bounds(0) == (0, 3)
        assert p.bounds(3) == (9, 10)  # short tail interval

    def test_bounds_out_of_range(self):
        with pytest.raises(PartitionError):
            IntervalPartition(10, 3).bounds(4)

    def test_rejects_bad_parameters(self):
        with pytest.raises(PartitionError):
            IntervalPartition(0, 3)
        with pytest.raises(PartitionError):
            IntervalPartition(10, 0)


class TestShardGrid:
    def test_every_edge_in_exactly_one_shard(self, medium_rmat):
        grid = partition_graph(medium_rmat, 64)
        total = sum(s.num_edges for s in grid.iter_shards())
        assert total == medium_rmat.num_edges

    def test_shard_interval_membership(self, medium_rmat):
        grid = partition_graph(medium_rmat, 64)
        for shard in grid.iter_shards():
            assert np.all(shard.src // 64 == shard.src_interval)
            assert np.all(shard.dst // 64 == shard.dst_interval)

    def test_edges_sorted_by_destination_within_shard(self, medium_rmat):
        grid = partition_graph(medium_rmat, 64)
        for shard in grid.iter_shards():
            assert np.all(np.diff(shard.dst) >= 0)

    def test_row_major_order(self, medium_rmat):
        grid = partition_graph(medium_rmat, 64)
        coords = [
            (s.src_interval, s.dst_interval) for s in grid.iter_shards("row")
        ]
        assert coords == sorted(coords)

    def test_col_major_order(self, medium_rmat):
        grid = partition_graph(medium_rmat, 64)
        coords = [
            (s.dst_interval, s.src_interval) for s in grid.iter_shards("col")
        ]
        assert coords == sorted(coords)

    def test_unknown_order_rejected(self, medium_rmat):
        grid = partition_graph(medium_rmat, 64)
        with pytest.raises(PartitionError):
            list(grid.iter_shards("diagonal"))

    def test_shard_lookup(self):
        g = Graph.from_edge_list([(0, 0), (0, 5), (5, 0)], num_vertices=6)
        grid = partition_graph(g, 3)
        shard = grid.shard(0, 1)
        assert shard is not None
        assert shard.num_edges == 1
        assert shard.src[0] == 0 and shard.dst[0] == 5

    def test_empty_shard_lookup_returns_none(self):
        g = Graph.from_edge_list([(0, 0)], num_vertices=6)
        grid = partition_graph(g, 3)
        assert grid.shard(1, 1) is None

    def test_shard_lookup_out_of_range(self):
        g = Graph.from_edge_list([(0, 0)], num_vertices=6)
        grid = partition_graph(g, 3)
        with pytest.raises(PartitionError):
            grid.shard(5, 0)

    def test_shard_edge_counts(self, medium_rmat):
        grid = partition_graph(medium_rmat, 64)
        counts = grid.shard_edge_counts()
        assert counts.sum() == medium_rmat.num_edges
        assert counts.size == grid.num_shards
        assert np.all(counts > 0)  # only non-empty shards are stored

    def test_single_interval_degenerate(self, small_rmat):
        grid = partition_graph(small_rmat, small_rmat.num_vertices)
        assert grid.num_shards == 1
        assert grid.partition.num_intervals == 1

    def test_interval_size_one(self):
        g = Graph.from_edge_list([(0, 1), (1, 2)], num_vertices=3)
        grid = partition_graph(g, 1)
        assert grid.num_shards == 2

    def test_repr(self, small_rmat):
        assert "ShardGrid" in repr(partition_graph(small_rmat, 16))
