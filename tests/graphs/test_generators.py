"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs.generators import (
    barabasi_albert,
    bipartite_ratings,
    degree_sorted_relabel,
    erdos_renyi,
    grid_2d,
    rmat,
)
from repro.graphs.stats import degree_skew


class TestRmat:
    def test_exact_edge_count(self):
        g = rmat(128, 500, seed=1)
        assert g.num_edges == 500
        assert g.num_vertices == 128

    def test_deterministic(self):
        a = rmat(128, 400, seed=9)
        b = rmat(128, 400, seed=9)
        assert a.edges == b.edges

    def test_seed_changes_graph(self):
        a = rmat(128, 400, seed=1)
        b = rmat(128, 400, seed=2)
        assert a.edges != b.edges

    def test_no_self_loops(self):
        g = rmat(64, 300, seed=3)
        assert np.all(g.edges.rows != g.edges.cols)

    def test_no_duplicate_edges(self):
        g = rmat(64, 300, seed=3)
        assert not g.edges.has_duplicates()

    def test_skewed_degrees(self):
        g = rmat(512, 4000, seed=5)
        # Scale-free: the hub should dwarf the mean degree.
        assert degree_skew(g.out_degrees()) > 5.0

    def test_non_power_of_two_vertices(self):
        g = rmat(100, 300, seed=4)
        assert g.num_vertices == 100
        assert g.edges.rows.max() < 100
        assert g.edges.cols.max() < 100

    def test_weights_in_range(self):
        g = rmat(64, 200, seed=6, weight_range=(2.0, 5.0))
        assert g.weights.min() >= 2.0
        assert g.weights.max() <= 5.0

    def test_shuffle_ids_flattens_locality(self):
        from repro.graphs.stats import tile_profile

        clustered = rmat(1024, 8000, a=0.8, b=0.08, c=0.08, seed=7)
        shuffled = rmat(
            1024, 8000, a=0.8, b=0.08, c=0.08, seed=7, shuffle_ids=True
        )
        assert (
            tile_profile(shuffled, 16).redundant_write_ratio
            > tile_profile(clustered, 16).redundant_write_ratio
        )

    def test_rejects_bad_probabilities(self):
        with pytest.raises(GraphFormatError):
            rmat(64, 100, a=0.9, b=0.2, c=0.2)

    def test_rejects_tiny_vertex_count(self):
        with pytest.raises(GraphFormatError):
            rmat(1, 10)


class TestDegreeSortedRelabel:
    def test_preserves_counts(self):
        g = rmat(128, 500, seed=1)
        r = degree_sorted_relabel(g)
        assert r.num_edges == g.num_edges
        assert r.num_vertices == g.num_vertices

    def test_degrees_descend(self):
        g = degree_sorted_relabel(rmat(128, 900, seed=2))
        total = g.out_degrees() + g.in_degrees()
        # Vertex 0 must be the (joint) highest-degree vertex.
        assert total[0] == total.max()

    def test_is_isomorphic_by_degree_multiset(self):
        g = rmat(128, 500, seed=3)
        r = degree_sorted_relabel(g)
        assert np.array_equal(
            np.sort(g.out_degrees()), np.sort(r.out_degrees())
        )


class TestBarabasiAlbert:
    def test_structure(self):
        g = barabasi_albert(100, edges_per_vertex=3, seed=1)
        assert g.num_vertices == 100
        assert g.num_edges > 0
        assert np.all(g.edges.rows != g.edges.cols)

    def test_deterministic(self):
        assert (
            barabasi_albert(60, seed=2).edges
            == barabasi_albert(60, seed=2).edges
        )

    def test_rejects_too_few_vertices(self):
        with pytest.raises(GraphFormatError):
            barabasi_albert(3, edges_per_vertex=4)

    def test_preferential_attachment_creates_hubs(self):
        g = barabasi_albert(400, edges_per_vertex=2, seed=3)
        assert degree_skew(g.in_degrees()) > 3.0


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi(100, 700, seed=1)
        assert g.num_edges == 700

    def test_no_duplicates_or_loops(self):
        g = erdos_renyi(50, 400, seed=2)
        assert not g.edges.has_duplicates()
        assert np.all(g.edges.rows != g.edges.cols)

    def test_rejects_impossible_density(self):
        with pytest.raises(GraphFormatError):
            erdos_renyi(4, 100)

    def test_uniform_degrees(self):
        g = erdos_renyi(256, 4000, seed=3)
        assert degree_skew(g.out_degrees()) < 3.0


class TestGrid2D:
    def test_vertex_and_edge_counts(self):
        g = grid_2d(4, 3)
        assert g.num_vertices == 12
        # horizontal: 3*3, vertical: 4*2, both directions
        assert g.num_edges == 2 * (3 * 3 + 4 * 2)

    def test_unidirectional(self):
        g = grid_2d(4, 3, bidirectional=False)
        assert g.num_edges == 3 * 3 + 4 * 2

    def test_neighbours_only(self):
        g = grid_2d(5, 5)
        x1, y1 = g.edges.rows % 5, g.edges.rows // 5
        x2, y2 = g.edges.cols % 5, g.edges.cols // 5
        assert np.all(np.abs(x1 - x2) + np.abs(y1 - y2) == 1)

    def test_rejects_degenerate(self):
        with pytest.raises(GraphFormatError):
            grid_2d(1, 5)


class TestBipartiteRatings:
    def test_counts(self):
        b = bipartite_ratings(50, 10, 200, seed=1)
        assert b.num_users == 50
        assert b.num_items == 10
        assert b.num_ratings == 200

    def test_rating_levels(self):
        b = bipartite_ratings(30, 8, 100, seed=2, rating_levels=5)
        assert b.ratings.data.min() >= 1
        assert b.ratings.data.max() <= 5

    def test_no_duplicate_pairs(self):
        b = bipartite_ratings(30, 8, 120, seed=3)
        assert not b.ratings.has_duplicates()

    def test_popularity_skew(self):
        b = bipartite_ratings(500, 50, 4000, seed=4, popularity_skew=1.2)
        deg = b.item_degrees()
        # Zipf head: most popular item far above median.
        assert deg.max() > 4 * np.median(deg)

    def test_rejects_overfull(self):
        with pytest.raises(GraphFormatError):
            bipartite_ratings(2, 2, 10)

    def test_deterministic(self):
        a = bipartite_ratings(30, 8, 100, seed=5)
        b = bipartite_ratings(30, 8, 100, seed=5)
        assert a.ratings == b.ratings

    def test_weight_range_validation(self):
        with pytest.raises(GraphFormatError):
            rmat(64, 100, weight_range=(5.0, 1.0))
