"""Unit tests for graph transformations."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs.transform import (
    compact_ids,
    largest_component,
    relabel,
    subgraph,
    symmetrize,
)
from tests.conftest import make_graph


class TestSymmetrize:
    def test_adds_reverse_edges(self):
        g = symmetrize(make_graph([(0, 1)], n=2))
        dense = g.edges.to_dense()
        assert dense[0, 1] == 1.0 and dense[1, 0] == 1.0

    def test_reciprocal_edges_merged_min(self):
        g = make_graph([(0, 1), (1, 0)], weights=[3.0, 7.0], n=2)
        sym = symmetrize(g, combine="min")
        dense = sym.edges.to_dense()
        assert dense[0, 1] == 3.0 and dense[1, 0] == 3.0

    def test_result_is_symmetric(self, small_rmat):
        sym = symmetrize(small_rmat)
        dense_ok = sym.num_vertices <= 128
        if dense_ok:
            dense = sym.edges.to_dense()
            assert np.array_equal(dense > 0, (dense > 0).T)

    def test_degrees_match_after_symmetrize(self, small_rmat):
        sym = symmetrize(small_rmat)
        assert np.array_equal(sym.out_degrees(), sym.in_degrees())


class TestSubgraph:
    def test_induced_edges_only(self):
        g = make_graph([(0, 1), (1, 2), (2, 3)], n=4)
        sub, mapping = subgraph(g, np.array([1, 2]))
        assert sub.num_vertices == 2
        assert sub.num_edges == 1
        assert np.array_equal(mapping, [1, 2])
        assert sub.edges.rows[0] == 0 and sub.edges.cols[0] == 1

    def test_weights_preserved(self):
        g = make_graph([(0, 1)], weights=[5.5], n=3)
        sub, _ = subgraph(g, np.array([0, 1]))
        assert sub.weights[0] == 5.5

    def test_out_of_range_rejected(self, small_rmat):
        with pytest.raises(GraphFormatError):
            subgraph(small_rmat, np.array([10**6]))

    def test_duplicate_vertices_deduped(self):
        g = make_graph([(0, 1)], n=2)
        sub, mapping = subgraph(g, np.array([0, 0, 1]))
        assert sub.num_vertices == 2


class TestLargestComponent:
    def test_picks_biggest(self):
        g = make_graph([(0, 1), (1, 2), (4, 5)], n=6)
        sub, mapping = largest_component(g)
        assert sub.num_vertices == 3
        assert np.array_equal(mapping, [0, 1, 2])

    def test_direction_ignored(self):
        g = make_graph([(1, 0), (2, 1), (4, 5)], n=6)
        sub, mapping = largest_component(g)
        assert np.array_equal(mapping, [0, 1, 2])

    def test_whole_graph_connected(self):
        g = make_graph([(0, 1), (1, 2), (2, 0)], n=3)
        sub, mapping = largest_component(g)
        assert sub.num_vertices == 3
        assert sub.num_edges == 3


class TestCompactIds:
    def test_drops_isolated(self):
        g = make_graph([(0, 5)], n=10)
        sub, mapping = compact_ids(g)
        assert sub.num_vertices == 2
        assert np.array_equal(mapping, [0, 5])

    def test_nothing_to_drop(self, small_rmat):
        deg = small_rmat.out_degrees() + small_rmat.in_degrees()
        sub, mapping = compact_ids(small_rmat)
        assert sub.num_vertices == int(np.count_nonzero(deg))


class TestRelabel:
    def test_permutation_applied(self):
        g = make_graph([(0, 1)], n=3)
        out = relabel(g, np.array([2, 0, 1]))
        assert out.edges.rows[0] == 2 and out.edges.cols[0] == 0

    def test_identity(self, small_rmat):
        out = relabel(small_rmat, np.arange(small_rmat.num_vertices))
        assert out.edges == small_rmat.edges

    def test_rejects_non_bijection(self):
        g = make_graph([(0, 1)], n=3)
        with pytest.raises(GraphFormatError):
            relabel(g, np.array([0, 0, 1]))
        with pytest.raises(GraphFormatError):
            relabel(g, np.array([0, 1]))

    def test_degree_multiset_invariant(self, small_rmat):
        rng = np.random.default_rng(0)
        perm = rng.permutation(small_rmat.num_vertices)
        out = relabel(small_rmat, perm)
        assert np.array_equal(
            np.sort(out.out_degrees()), np.sort(small_rmat.out_degrees())
        )
