"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.core import cache as layout_cache


@pytest.fixture()
def cache_sandbox(monkeypatch, tmp_path):
    """Point the layout cache at a throwaway directory for one test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    yield tmp_path
    layout_cache.reset_cache()


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for expected in ("fig5", "fig11", "fig17", "table1", "abl-residency"):
            assert expected in out


class TestRun:
    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "MAC crossbar" in out

    def test_run_with_profile(self, capsys):
        assert main(["run", "abl-locality", "--profile", "tiny"]) == 0
        assert "Shuffled ids" in capsys.readouterr().out

    def test_run_saves_output(self, capsys, tmp_path):
        assert main(["run", "table1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table1.txt").exists()

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fig99"])
        assert excinfo.value.code == 2

    def test_run_with_jobs(self, capsys, cache_sandbox):
        code = main(
            ["run", "abl-interval", "--profile", "tiny", "--jobs", "2"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "abl-interval" in captured.out
        assert "hit rate" in captured.err  # manifest summary on stderr

    def test_run_format_json(self, capsys, cache_sandbox):
        code = main(
            ["run", "abl-interval", "--profile", "tiny", "--jobs", "1",
             "--format", "json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "abl-interval"

    def test_bad_jobs_is_an_error_exit(self, capsys, cache_sandbox):
        assert main(
            ["run", "abl-interval", "--profile", "tiny", "--jobs", "0"]
        ) == 1
        assert "jobs" in capsys.readouterr().err

    def test_no_cache_flag(self, capsys, cache_sandbox):
        code = main(
            ["run", "abl-interval", "--profile", "tiny", "--jobs", "1",
             "--no-cache"]
        )
        assert code == 0
        assert not (cache_sandbox / "cache").exists()


class TestRunAll:
    def test_only_subset_with_manifest(self, capsys, cache_sandbox):
        out = cache_sandbox / "reports"
        code = main(
            ["run-all", "--profile", "tiny", "--jobs", "2",
             "--only", "abl-interval", "--only", "abl-xbar",
             "--out", str(out)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "abl-interval" in stdout
        assert "abl-xbar" in stdout
        assert (out / "abl-interval.txt").exists()
        assert (out / "abl-xbar.json").exists()
        manifest = json.loads((out / "manifest.json").read_text())
        assert {e["experiment_id"] for e in manifest["experiments"]} == {
            "abl-interval", "abl-xbar"
        }

    def test_unknown_only_id_exits_one(self, capsys, cache_sandbox):
        assert main(["run-all", "--only", "fig99"]) == 1
        assert "fig99" in capsys.readouterr().err


class TestDatasets:
    def test_datasets_table(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "WikiVote" in out
        assert "106,000,000" in out  # Orkut edge count


class TestValidate:
    def test_validate_passes(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out


class TestArgs:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig5", "--profile", "huge"])


class TestStoreCommands:
    @pytest.fixture()
    def store_sandbox(self, monkeypatch, tmp_path):
        """Point the mmap store at a throwaway directory for one test."""
        from repro.storage.mmap_store import reset_store

        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
        reset_store()
        yield tmp_path / "store"
        reset_store()

    def test_store_convert_reports_digest(self, capsys, store_sandbox):
        assert main(["store-convert", "WV", "--profile", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "digest=" in out
        assert "WV-tiny" in out
        assert "shards=" in out
        assert store_sandbox.exists()

    def test_store_convert_is_idempotent(self, capsys, store_sandbox):
        assert main(["store-convert", "WV", "--profile", "tiny"]) == 0
        first = capsys.readouterr().out
        assert main(["store-convert", "WV", "--profile", "tiny"]) == 0
        second = capsys.readouterr().out
        assert first == second
        gsx_files = list(store_sandbox.glob("*.gsx"))
        assert len(gsx_files) == 1

    def test_store_info_lists_conversions(self, capsys, store_sandbox):
        main(["store-convert", "WV", "--profile", "tiny"])
        capsys.readouterr()
        assert main(["store-info"]) == 0
        out = capsys.readouterr().out
        assert "WV-tiny" in out
        assert "1 stored graph(s)" in out

    def test_store_info_empty_store(self, capsys, store_sandbox):
        assert main(["store-info"]) == 0
        assert "0 stored graph(s)" in capsys.readouterr().out

    def test_store_convert_rejects_unknown_dataset(self, store_sandbox):
        with pytest.raises(SystemExit):
            main(["store-convert", "NOPE"])


class TestHwReport:
    ARGS = ["hw-report", "--dataset", "WV", "--profile", "tiny",
            "--iterations", "1"]

    @pytest.fixture(autouse=True)
    def _clean_registry(self):
        from repro.obs.metrics import reset_metrics

        yield
        reset_metrics()  # hw-report publishes into the global registry

    def test_text_report_passes_parity(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "occupancy heatmap" in out
        assert "imbalance=" in out
        assert "parity: ok" in out

    def test_json_per_array_sums_match_global_totals(self, capsys):
        assert main(self.ARGS + ["--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["parity"]["ok"]
        assert report["parity"]["mismatches"] == {}
        # The acceptance criterion, restated from the artifact itself:
        # every counter's per-array sum equals the run's global total.
        for name, total in report["totals"].items():
            assert total == sum(
                entry["counters"][name] for entry in report["arrays"]
            ), name

    def test_artifacts_written(self, tmp_path, capsys):
        json_path = tmp_path / "nested" / "hw.json"
        metrics_path = tmp_path / "metrics.om"
        assert main(
            self.ARGS
            + ["--json", str(json_path), "--metrics", str(metrics_path)]
        ) == 0
        report = json.loads(json_path.read_text())
        assert report["parity"]["ok"]
        assert report["algorithm"] == "pagerank"
        text = metrics_path.read_text()
        assert 'repro_hw_cam_searches_total{bank="cam",array="0"}' in text
        assert text.endswith("# EOF\n")

    def test_traversal_kernels_supported(self, capsys):
        assert main(
            ["hw-report", "--dataset", "WV", "--profile", "tiny",
             "--algorithm", "sssp", "--format", "json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["parity"]["ok"]
        assert report["algorithm"] == "sssp"

    def test_bipartite_dataset_rejected(self, capsys):
        assert main(["hw-report", "--dataset", "NF"]) == 1
        assert "bipartite" in capsys.readouterr().err


class TestSloReport:
    def _stats_file(self, tmp_path):
        from repro.obs.slo import SLOTracker

        tracker = SLOTracker()
        now = 1_000_000.0
        for index in range(20):
            tracker.record(ok=index != 0, latency_s=0.02, now=now)
        path = tmp_path / "stats.json"
        path.write_text(
            json.dumps({"queries": 20, "slo": tracker.snapshot(now=now)})
        )
        return path

    def test_renders_from_stats_file(self, tmp_path, capsys):
        path = self._stats_file(tmp_path)
        assert main(["slo-report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "availability >= 99.9000%" in out
        assert "1m" in out and "budget remaining" in out

    def test_accepts_bare_snapshot(self, tmp_path, capsys):
        from repro.obs.slo import SLOTracker

        path = tmp_path / "slo.json"
        path.write_text(json.dumps(SLOTracker().snapshot(now=1.0)))
        assert main(["slo-report", str(path)]) == 0
        assert "budget remaining" in capsys.readouterr().out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["slo-report", str(tmp_path / "nope.json")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_non_slo_payload_rejected(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"queries": 3}))
        assert main(["slo-report", str(path)]) == 1
        assert "no SLO snapshot" in capsys.readouterr().err

    def test_unreachable_daemon_fails_cleanly(self, capsys):
        assert main(
            ["slo-report", "http://127.0.0.1:9/stats"]
        ) == 1
        assert "cannot fetch" in capsys.readouterr().err


class TestTraceGrep:
    TRACE = "4bf92f3577b34da6a3ce929d0e0e4736"

    def _flight_file(self, tmp_path):
        dump = {
            "capacity": 256,
            "entries": [
                {
                    "trace_id": self.TRACE,
                    "status": "ok",
                    "latency_s": 0.12,
                    "kept_because": "sampled",
                    "dataset": "WV",
                    "algorithm": "pagerank",
                    "spans": [
                        {"name": "serve.query", "cat": "serve",
                         "ts": 0, "dur": 120000,
                         "trace": self.TRACE, "args": {}},
                        {"name": "serve.session", "cat": "session",
                         "ts": 10, "dur": 100000,
                         "trace": self.TRACE, "args": {}},
                        {"name": "engine.run", "cat": "engine",
                         "ts": 20, "dur": 90000,
                         "trace": self.TRACE,
                         "args": {"algorithm": "pagerank"}},
                    ],
                }
            ],
        }
        path = tmp_path / "flight.json"
        path.write_text(json.dumps(dump))
        return path

    def test_renders_span_tree_from_flight_dump(self, tmp_path, capsys):
        path = self._flight_file(tmp_path)
        assert main(["trace-grep", self.TRACE, str(path)]) == 0
        out = capsys.readouterr().out
        assert f"trace {self.TRACE}" in out
        assert "status=ok" in out
        # Indentation proves the reconstructed nesting.
        assert "- serve.query" in out
        assert "  - serve.session" in out
        assert "    - engine.run" in out

    def test_unique_prefix_matches(self, tmp_path, capsys):
        path = self._flight_file(tmp_path)
        assert main(["trace-grep", self.TRACE[:8], str(path)]) == 0
        assert self.TRACE in capsys.readouterr().out

    def test_missing_trace_exits_one(self, tmp_path, capsys):
        path = self._flight_file(tmp_path)
        assert main(["trace-grep", "feedbeef", str(path)]) == 1
        assert "not found" in capsys.readouterr().err

    def test_reads_plain_trace_files_too(self, tmp_path, capsys):
        spans = [
            {"name": "serve.query", "cat": "serve", "ts": 0,
             "dur": 50, "trace": self.TRACE, "args": {}},
            {"name": "other.span", "cat": "task", "ts": 0,
             "dur": 50, "trace": "f" * 32, "args": {}},
        ]
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join(json.dumps(span) for span in spans) + "\n"
        )
        assert main(["trace-grep", self.TRACE, str(path)]) == 0
        out = capsys.readouterr().out
        assert "serve.query" in out
        assert "other.span" not in out

    def test_unreachable_daemon_fails_cleanly(self, capsys):
        assert main(
            ["trace-grep", "abc", "http://127.0.0.1:9/debug/flight"]
        ) == 1
        assert "cannot fetch" in capsys.readouterr().err
