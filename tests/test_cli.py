"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.core import cache as layout_cache


@pytest.fixture()
def cache_sandbox(monkeypatch, tmp_path):
    """Point the layout cache at a throwaway directory for one test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    yield tmp_path
    layout_cache.reset_cache()


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for expected in ("fig5", "fig11", "fig17", "table1", "abl-residency"):
            assert expected in out


class TestRun:
    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "MAC crossbar" in out

    def test_run_with_profile(self, capsys):
        assert main(["run", "abl-locality", "--profile", "tiny"]) == 0
        assert "Shuffled ids" in capsys.readouterr().out

    def test_run_saves_output(self, capsys, tmp_path):
        assert main(["run", "table1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table1.txt").exists()

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fig99"])
        assert excinfo.value.code == 2

    def test_run_with_jobs(self, capsys, cache_sandbox):
        code = main(
            ["run", "abl-interval", "--profile", "tiny", "--jobs", "2"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "abl-interval" in captured.out
        assert "hit rate" in captured.err  # manifest summary on stderr

    def test_run_format_json(self, capsys, cache_sandbox):
        code = main(
            ["run", "abl-interval", "--profile", "tiny", "--jobs", "1",
             "--format", "json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "abl-interval"

    def test_bad_jobs_is_an_error_exit(self, capsys, cache_sandbox):
        assert main(
            ["run", "abl-interval", "--profile", "tiny", "--jobs", "0"]
        ) == 1
        assert "jobs" in capsys.readouterr().err

    def test_no_cache_flag(self, capsys, cache_sandbox):
        code = main(
            ["run", "abl-interval", "--profile", "tiny", "--jobs", "1",
             "--no-cache"]
        )
        assert code == 0
        assert not (cache_sandbox / "cache").exists()


class TestRunAll:
    def test_only_subset_with_manifest(self, capsys, cache_sandbox):
        out = cache_sandbox / "reports"
        code = main(
            ["run-all", "--profile", "tiny", "--jobs", "2",
             "--only", "abl-interval", "--only", "abl-xbar",
             "--out", str(out)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "abl-interval" in stdout
        assert "abl-xbar" in stdout
        assert (out / "abl-interval.txt").exists()
        assert (out / "abl-xbar.json").exists()
        manifest = json.loads((out / "manifest.json").read_text())
        assert {e["experiment_id"] for e in manifest["experiments"]} == {
            "abl-interval", "abl-xbar"
        }

    def test_unknown_only_id_exits_one(self, capsys, cache_sandbox):
        assert main(["run-all", "--only", "fig99"]) == 1
        assert "fig99" in capsys.readouterr().err


class TestDatasets:
    def test_datasets_table(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "WikiVote" in out
        assert "106,000,000" in out  # Orkut edge count


class TestValidate:
    def test_validate_passes(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out


class TestArgs:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig5", "--profile", "huge"])


class TestStoreCommands:
    @pytest.fixture()
    def store_sandbox(self, monkeypatch, tmp_path):
        """Point the mmap store at a throwaway directory for one test."""
        from repro.storage.mmap_store import reset_store

        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
        reset_store()
        yield tmp_path / "store"
        reset_store()

    def test_store_convert_reports_digest(self, capsys, store_sandbox):
        assert main(["store-convert", "WV", "--profile", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "digest=" in out
        assert "WV-tiny" in out
        assert "shards=" in out
        assert store_sandbox.exists()

    def test_store_convert_is_idempotent(self, capsys, store_sandbox):
        assert main(["store-convert", "WV", "--profile", "tiny"]) == 0
        first = capsys.readouterr().out
        assert main(["store-convert", "WV", "--profile", "tiny"]) == 0
        second = capsys.readouterr().out
        assert first == second
        gsx_files = list(store_sandbox.glob("*.gsx"))
        assert len(gsx_files) == 1

    def test_store_info_lists_conversions(self, capsys, store_sandbox):
        main(["store-convert", "WV", "--profile", "tiny"])
        capsys.readouterr()
        assert main(["store-info"]) == 0
        out = capsys.readouterr().out
        assert "WV-tiny" in out
        assert "1 stored graph(s)" in out

    def test_store_info_empty_store(self, capsys, store_sandbox):
        assert main(["store-info"]) == 0
        assert "0 stored graph(s)" in capsys.readouterr().out

    def test_store_convert_rejects_unknown_dataset(self, store_sandbox):
        with pytest.raises(SystemExit):
            main(["store-convert", "NOPE"])
