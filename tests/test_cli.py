"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for expected in ("fig5", "fig11", "fig17", "table1", "abl-residency"):
            assert expected in out


class TestRun:
    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "MAC crossbar" in out

    def test_run_with_profile(self, capsys):
        assert main(["run", "abl-locality", "--profile", "tiny"]) == 0
        assert "Shuffled ids" in capsys.readouterr().out

    def test_run_saves_output(self, capsys, tmp_path):
        assert main(["run", "table1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table1.txt").exists()

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])


class TestDatasets:
    def test_datasets_table(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "WikiVote" in out
        assert "106,000,000" in out  # Orkut edge count


class TestValidate:
    def test_validate_passes(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out


class TestArgs:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig5", "--profile", "huge"])
