"""Tests for the content-addressed mmap CSR store."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.cache import graph_fingerprint
from repro.errors import StorageError
from repro.graphs import COOMatrix, Graph
from repro.storage.mmap_store import (
    FORMAT_VERSION,
    MmapStore,
    StoredGraph,
    build_shard_table,
    content_digest,
    read_header,
    write_graph_file,
)


@pytest.fixture()
def store(tmp_path) -> MmapStore:
    return MmapStore(str(tmp_path / "store"))


@pytest.fixture()
def stored(store, medium_rmat) -> StoredGraph:
    return store.put_graph(medium_rmat, tag="medium", target_edges=300)


class TestFileFormat:
    def test_round_trip_views_equal_source(self, stored, medium_rmat):
        csr = medium_rmat.csr()
        assert np.array_equal(stored.indptr, csr.indptr)
        assert np.array_equal(stored.indices, csr.indices)
        assert np.array_equal(stored.data, csr.data)
        assert stored.num_vertices == medium_rmat.num_vertices
        assert stored.num_edges == medium_rmat.num_edges

    def test_views_are_read_only_memmaps(self, stored):
        for view in (stored.indptr, stored.indices, stored.data):
            assert isinstance(view, np.memmap)
            with pytest.raises(ValueError):
                view[0] = 1

    def test_content_digest_is_deterministic(self, medium_rmat):
        csr = medium_rmat.csr()
        a = content_digest(
            medium_rmat.num_vertices, csr.indptr, csr.indices, csr.data
        )
        b = content_digest(
            medium_rmat.num_vertices,
            csr.indptr.astype(np.int32),  # non-canonical input dtype
            csr.indices,
            csr.data,
        )
        assert a == b

    def test_write_is_idempotent(self, store, medium_rmat):
        first = store.put_graph(medium_rmat)
        mtime = os.path.getmtime(first.path)
        second = store.put_graph(medium_rmat)
        assert second.digest == first.digest
        assert os.path.getmtime(second.path) == mtime  # not rewritten

    def test_header_fields(self, stored):
        header = read_header(stored.path)
        assert header["format_version"] == FORMAT_VERSION
        assert header["num_edges"] == stored.num_edges
        assert header["digest"] == stored.digest
        assert header["dtypes"] == {
            "indptr": "<i8", "indices": "<i8", "data": "<f8",
        }

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "bogus.gsx")
        with open(path, "wb") as fh:
            fh.write(b"NOTASTOREFILE" + b"\x00" * 64)
        with pytest.raises(StorageError, match="magic"):
            read_header(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = str(tmp_path / "short.gsx")
        with open(path, "wb") as fh:
            fh.write(b"GSX")
        with pytest.raises(StorageError, match="truncated"):
            read_header(path)

    def test_mismatched_indptr_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="indptr"):
            write_graph_file(
                str(tmp_path / "bad.gsx"),
                num_vertices=3,
                indptr=np.array([0, 1]),
                indices=np.array([0]),
                data=np.array([1.0]),
            )


class TestShardTable:
    def test_shards_cover_all_rows_and_edges(self, stored):
        shards = stored.shards
        assert shards[0].row_lo == 0
        assert shards[-1].row_hi == stored.num_vertices
        for prev, cur in zip(shards, shards[1:]):
            assert cur.row_lo == prev.row_hi
            assert cur.edge_lo == prev.edge_hi
        assert sum(s.num_edges for s in shards) == stored.num_edges

    def test_hub_row_exceeding_target_is_not_split(self):
        # One row holding 10 edges with a target of 4: the shard grows
        # to hold the whole row.
        indptr = np.array([0, 10, 11])
        table = build_shard_table(indptr, target_edges=4)
        assert table[0] == {
            "row_lo": 0, "row_hi": 1, "edge_lo": 0, "edge_hi": 10,
        }

    def test_shard_csr_matches_row_slice(self, stored):
        shard = stored.shards[1]
        local = stored.shard_csr(1)
        full = stored.csr()
        assert local.nnz == shard.num_edges
        assert np.array_equal(
            local.indices,
            full.indices[shard.edge_lo : shard.edge_hi],
        )
        # Zero-copy: shard views alias the file mapping.
        assert np.shares_memory(local.indices, stored.indices)

    def test_schedule_covers_every_shard_once(self, stored):
        assignment = stored.schedule(3)
        flat = sorted(i for worker in assignment for i in worker)
        assert flat == list(range(len(stored.shards)))

    def test_schedule_balances_edge_counts(self, stored):
        balance = stored.schedule_balance(3)
        # LPT over near-equal shards: within 2x of the perfect split.
        assert balance["balance"] > 0.5
        assert balance["workers"] == 3.0

    def test_schedule_rejects_bad_worker_count(self, stored):
        with pytest.raises(StorageError):
            stored.schedule(0)


class TestGraphConstruction:
    def test_graph_shares_memory_with_store(self, stored):
        graph = stored.graph()
        assert np.shares_memory(graph.edges.cols, stored.indices)
        assert np.shares_memory(graph.edges.data, stored.data)
        # csr() is the pre-seeded zero-copy object, not a rebuild.
        assert np.shares_memory(graph.csr().indices, stored.indices)

    def test_graph_fingerprint_is_store_digest(self, stored):
        assert graph_fingerprint(stored.graph()) == stored.digest

    def test_graph_semantics_match_in_memory(self, stored, medium_rmat):
        graph = stored.graph()
        assert np.array_equal(
            graph.out_degrees(), medium_rmat.out_degrees()
        )
        assert np.array_equal(graph.in_degrees(), medium_rmat.in_degrees())

    def test_empty_graph_round_trip(self, store):
        empty = Graph(
            COOMatrix(
                np.array([], dtype=np.int64),
                np.array([], dtype=np.int64),
                shape=(5, 5),
            ),
            name="empty",
        )
        stored = store.put_graph(empty)
        graph = stored.graph()
        assert graph.num_vertices == 5 and graph.num_edges == 0
        assert len(stored.shards) == 1


class TestEngineParity:
    """Acceptance: engine/micro event-count parity holds when the graph
    is mmap-backed instead of in-memory."""

    def test_pagerank_events_and_values(self, stored, medium_rmat):
        from repro.config import ArchConfig
        from repro.core.engine import GaaSXEngine
        from repro.core.micro import MicroGaaSX

        config = ArchConfig(num_crossbars=3)
        mmap_graph = stored.graph()
        engine = GaaSXEngine(mmap_graph, config=config)
        micro = MicroGaaSX(mmap_graph, config=config)
        fast = engine.pagerank(iterations=2)
        ranks, events = micro.pagerank(iterations=2)
        assert fast.stats.events.counters_equal(events)
        assert np.allclose(fast.ranks, ranks)
        # And the mmap-backed engine agrees with the in-memory engine.
        in_memory = GaaSXEngine(medium_rmat, config=config)
        assert np.allclose(
            fast.ranks, in_memory.pagerank(iterations=2).ranks
        )

    def test_bfs_events(self, stored):
        from repro.config import ArchConfig
        from repro.core.engine import GaaSXEngine
        from repro.core.micro import MicroGaaSX

        config = ArchConfig(num_crossbars=3)
        mmap_graph = stored.graph()
        fast = GaaSXEngine(mmap_graph, config=config).bfs(0)
        _, events = MicroGaaSX(mmap_graph, config=config).bfs(0)
        assert fast.stats.events.counters_equal(events)


class TestAliasesAndRegistry:
    def test_alias_resolves_to_digest(self, store, stored):
        assert store.resolve_alias("medium") == stored.digest
        assert store.open_tag("medium").digest == stored.digest

    def test_missing_alias_raises(self, store):
        assert store.resolve_alias("nope") is None
        with pytest.raises(StorageError, match="nope"):
            store.open_tag("nope")

    def test_missing_digest_raises(self, store):
        with pytest.raises(StorageError, match="digest"):
            store.open("0" * 32)

    def test_entries_lists_stored_graphs(self, store, stored):
        entries = store.entries()
        assert len(entries) == 1
        assert entries[0]["digest"] == stored.digest
        assert entries[0]["edges"] == stored.num_edges

    def test_dataset_converts_once(self, store):
        first = store.dataset("WV", "tiny")
        second = store.dataset("WV", "tiny")
        assert first.digest == second.digest
        assert len(store.entries()) == 1

    def test_bipartite_dataset_stored_as_unified(self, store):
        from repro.graphs.datasets import load_dataset

        stored = store.dataset("NF", "tiny")
        bipartite = load_dataset("NF", "tiny")
        expected = bipartite.as_unified_graph()
        assert stored.num_vertices == expected.num_vertices
        assert stored.num_edges == expected.num_edges
