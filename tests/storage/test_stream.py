"""Out-of-core streaming kernels: budget enforcement and parity."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.algorithms.pagerank import reference_iteration
from repro.errors import AlgorithmError
from repro.graphs import COOMatrix, Graph
from repro.storage.mmap_store import MmapStore, StoredGraph
from repro.storage.stream import (
    DEFAULT_BUDGET_BYTES,
    STREAM_BUDGET_ENV,
    StreamStats,
    resolve_budget,
    streaming_out_degrees,
    streaming_pagerank,
    streaming_pagerank_iteration,
)

ALPHA = 0.85


@pytest.fixture()
def stored(tmp_path, medium_rmat) -> StoredGraph:
    return MmapStore(str(tmp_path / "store")).put_graph(medium_rmat)


def inv_out_degrees(graph) -> np.ndarray:
    deg = graph.out_degrees().astype(np.float64)
    inv = np.zeros_like(deg)
    inv[deg > 0] = 1.0 / deg[deg > 0]
    return inv


class TestResolveBudget:
    def test_argument_wins(self, monkeypatch):
        monkeypatch.setenv(STREAM_BUDGET_ENV, "512")
        assert resolve_budget(1 << 20) == 1 << 20

    def test_env_override_in_mebibytes(self, monkeypatch):
        monkeypatch.setenv(STREAM_BUDGET_ENV, "2")
        assert resolve_budget() == 2 << 20

    def test_default(self, monkeypatch):
        monkeypatch.delenv(STREAM_BUDGET_ENV, raising=False)
        assert resolve_budget() == DEFAULT_BUDGET_BYTES

    def test_floor_rejected(self):
        with pytest.raises(AlgorithmError):
            resolve_budget(16)


class TestBoundedResidency:
    """Acceptance: streaming holds the resident budget AND reproduces
    the in-memory reference iteration exactly."""

    BUDGET = 4 << 10  # 4 KiB: forces many chunks on 2000 edges

    def test_every_chunk_within_budget(self, stored):
        chunks = list(stored.iter_chunks(self.BUDGET))
        assert len(chunks) > 1  # the budget actually bit
        for chunk in chunks:
            assert chunk.nbytes <= self.BUDGET
        assert sum(c.num_edges for c in chunks) == stored.num_edges

    def test_chunks_partition_edge_range(self, stored):
        chunks = list(stored.iter_chunks(self.BUDGET))
        assert chunks[0].edge_lo == 0
        assert chunks[-1].edge_hi == stored.num_edges
        for prev, cur in zip(chunks, chunks[1:]):
            assert cur.edge_lo == prev.edge_hi

    def test_iteration_matches_reference(self, stored, medium_rmat):
        edges = medium_rmat.edges
        inv = inv_out_degrees(medium_rmat)
        rng = np.random.default_rng(3)
        ranks = rng.uniform(0.1, 2.0, size=medium_rmat.num_vertices)
        expected = reference_iteration(
            ranks, edges.rows, edges.cols, inv, ALPHA
        )
        stats = StreamStats()
        got = streaming_pagerank_iteration(
            stored, ranks, inv, ALPHA,
            max_resident_bytes=self.BUDGET, stats=stats,
        )
        assert np.allclose(got, expected)
        assert stats.chunks > 1
        assert stats.max_chunk_bytes <= self.BUDGET
        assert stats.edges == stored.num_edges

    def test_full_pagerank_matches_reference_loop(self, stored, medium_rmat):
        edges = medium_rmat.edges
        inv = inv_out_degrees(medium_rmat)
        ranks = np.ones(medium_rmat.num_vertices)
        for _ in range(4):
            ranks = reference_iteration(
                ranks, edges.rows, edges.cols, inv, ALPHA
            )
        result = streaming_pagerank(
            stored, alpha=ALPHA, iterations=4,
            max_resident_bytes=self.BUDGET,
        )
        assert np.allclose(result.ranks, ranks)
        assert result.stats.iterations == 4
        assert result.stats.budget_bytes == self.BUDGET
        assert result.stats.max_chunk_bytes <= self.BUDGET

    def test_tolerance_stops_early(self, stored):
        result = streaming_pagerank(
            stored, iterations=200, tolerance=1e-3,
            max_resident_bytes=self.BUDGET,
        )
        assert result.stats.iterations < 200

    def test_budget_splits_hub_rows(self, tmp_path):
        # One source vertex with 100 out-edges; a tiny budget must cut
        # inside the row rather than blow past it.
        rows = np.zeros(100, dtype=np.int64)
        cols = np.arange(100, dtype=np.int64) % 50
        graph = Graph(
            COOMatrix(rows, cols, np.ones(100), (50, 50)), name="hub"
        )
        stored = MmapStore(str(tmp_path)).put_graph(graph)
        budget = 256
        chunks = list(stored.iter_chunks(budget))
        assert len(chunks) > 1
        for chunk in chunks:
            assert chunk.nbytes <= budget
        inv = inv_out_degrees(graph)
        ranks = np.ones(50)
        got = streaming_pagerank_iteration(
            stored, ranks, inv, ALPHA, max_resident_bytes=budget
        )
        expected = reference_iteration(ranks, rows, cols, inv, ALPHA)
        assert np.allclose(got, expected)


class TestDegenerateGraphs:
    def test_zero_edge_graph(self, tmp_path):
        graph = Graph(
            COOMatrix(
                np.array([], dtype=np.int64),
                np.array([], dtype=np.int64),
                shape=(6, 6),
            ),
            name="empty",
        )
        stored = MmapStore(str(tmp_path)).put_graph(graph)
        assert np.array_equal(streaming_out_degrees(stored), np.zeros(6))
        result = streaming_pagerank(stored, iterations=2)
        # No edges: every vertex holds the bare teleport mass.
        assert np.allclose(result.ranks, (1.0 - 0.85))

    def test_iterations_validated(self, stored):
        with pytest.raises(AlgorithmError):
            streaming_pagerank(stored, iterations=0)


@pytest.mark.skipif(
    not os.environ.get("REPRO_FULL_SCALE"),
    reason="full-scale profile: set REPRO_FULL_SCALE=1 to run",
)
class TestFullScaleProfile:
    """Acceptance: profile="full" LiveJournal completes one PageRank
    iteration under a configurable resident-memory cap."""

    def test_livejournal_full_one_iteration_under_cap(self):
        from repro.storage.mmap_store import get_store

        cap_mb = int(os.environ.get("REPRO_FULL_SCALE_CAP_MB", "256"))
        cap = cap_mb << 20
        # get_store() honors $REPRO_STORE_DIR, so the ~30-minute
        # full-scale generation/conversion is a one-time cost that
        # later runs (and humans who pre-converted) reuse.
        stored = get_store().dataset("LJ", "full")
        inv = np.zeros(stored.num_vertices)
        deg = streaming_out_degrees(stored)
        inv[deg > 0] = 1.0 / deg[deg > 0]
        stats = StreamStats(budget_bytes=cap)
        ranks = streaming_pagerank_iteration(
            stored,
            np.ones(stored.num_vertices),
            inv,
            ALPHA,
            max_resident_bytes=cap,
            stats=stats,
        )
        assert ranks.shape == (stored.num_vertices,)
        assert np.all(np.isfinite(ranks))
        assert stats.max_chunk_bytes <= cap
        assert stats.edges == stored.num_edges
