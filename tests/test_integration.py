"""End-to-end integration tests across the full stack."""

import numpy as np
import pytest

from repro import (
    ArchConfig,
    GaaSXEngine,
    load_dataset,
)
from repro.baselines import GraphREngine, reference
from repro.energy.ledger import EnergyLedger


class TestEndToEndDatasetRuns:
    """Run the whole pipeline on registry datasets (tiny profile)."""

    @pytest.mark.parametrize("key", ["WV", "SD", "AZ", "WG"])
    def test_all_algorithms_complete(self, key):
        graph = load_dataset(key, "tiny")
        engine = GaaSXEngine(graph)
        pr = engine.pagerank(iterations=3)
        bfs = engine.bfs(0)
        sssp = engine.sssp(0)
        assert np.all(pr.ranks > 0)
        assert bfs.reached().sum() >= 1
        assert np.isfinite(sssp.distances[0])

    def test_netflix_cf_completes(self):
        nf = load_dataset("NF", "tiny")
        result = GaaSXEngine(nf).collaborative_filtering(
            num_features=8, epochs=2
        )
        rmse = result.rmse(nf.ratings.rows, nf.ratings.cols, nf.ratings.data)
        assert np.isfinite(rmse)


class TestPaperHeadlineShape:
    """The qualitative claims that must hold on every dataset."""

    @pytest.fixture(scope="class")
    def engines(self):
        graph = load_dataset("WV", "tiny")
        return GaaSXEngine(graph), GraphREngine(graph)

    def test_gaasx_faster_and_greener_all_algorithms(self, engines):
        gaasx, graphr = engines
        for algo in ("pagerank", "bfs", "sssp"):
            if algo == "pagerank":
                a = gaasx.pagerank(iterations=5)
                b = graphr.pagerank(iterations=5)
            else:
                a = getattr(gaasx, algo)(0)
                b = getattr(graphr, algo)(0)
            assert b.stats.total_time_s > a.stats.total_time_s, algo
            assert b.stats.total_energy_j > a.stats.total_energy_j, algo

    def test_traversal_speedup_exceeds_pagerank_speedup(self):
        """Section V-B: GraphR's full-tile PR parallelism makes the PR
        gap the smallest of the three kernels."""
        graph = load_dataset("SD", "tiny")
        gaasx, graphr = GaaSXEngine(graph), GraphREngine(graph)
        pr = (
            graphr.pagerank(iterations=10).stats.total_time_s
            / gaasx.pagerank(iterations=10).stats.total_time_s
        )
        sssp = (
            graphr.sssp(0).stats.total_time_s
            / gaasx.sssp(0).stats.total_time_s
        )
        assert sssp > pr * 0.8  # traversal gap at least comparable

    def test_most_mac_ops_accumulate_one_row(self):
        """Figure 13: the dominant MAC op accumulates a single row."""
        graph = load_dataset("WV", "tiny")
        events = GaaSXEngine(graph).pagerank(iterations=1).stats.events
        hist = events.mac_rows_hist
        assert hist[1] == hist.max()


class TestEnergyConsistency:
    def test_stats_energy_equals_ledger_price(self, small_rmat):
        engine = GaaSXEngine(small_rmat)
        stats = engine.pagerank(iterations=2).stats
        repriced = EnergyLedger(engine.config.tech).price(
            stats.events, stats.total_time_s
        )
        assert stats.total_energy_j == pytest.approx(repriced.total_j)

    def test_average_power_in_design_envelope(self):
        """GaaS-X averages near (and below) its 1.66 W Table I power."""
        graph = load_dataset("SD", "tiny")
        stats = GaaSXEngine(graph).pagerank(iterations=5).stats
        power = stats.total_energy_j / stats.total_time_s
        assert 0.3 < power < 3.0


class TestQuantizedPipelineIntegration:
    def test_quantized_array_pagerank_step(self, figure7_graph):
        """One full quantized-crossbar gather matches float math within
        fixed-point tolerance."""
        from repro.xbar import EdgeCam, FixedPointFormat, MacCrossbar

        g = figure7_graph
        cam = EdgeCam(rows=16, vertex_bits=8)
        cam.load_edges(g.edges.rows, g.edges.cols)
        mac = MacCrossbar(rows=16, cols=1, exact=False,
                          value_format=FixedPointFormat(16, 8))
        k = g.num_edges
        mac.write(np.arange(k), np.zeros(k, dtype=int), g.weights)
        hits = cam.search_dst(2)
        out = mac.mac(np.ones(16), row_mask=hits, col_mask=np.array([0]))
        expected = g.weights[g.edges.cols == 2].sum()
        assert out[0] == pytest.approx(expected, abs=0.1)


class TestScaleInvariantShape:
    def test_speedup_grows_with_graph_scale(self):
        """Bigger graphs amortize fixed costs: the GaaS-X advantage
        should not collapse as graphs grow."""
        small = load_dataset("WV", "tiny")
        ratios = []
        for g in (small,):
            a = GaaSXEngine(g).pagerank(iterations=5)
            b = GraphREngine(g).pagerank(iterations=5)
            ratios.append(b.stats.total_time_s / a.stats.total_time_s)
        assert all(r > 1 for r in ratios)

    def test_custom_config_end_to_end(self):
        graph = load_dataset("WV", "tiny")
        config = ArchConfig(num_crossbars=16, mac_accumulate_limit=8)
        result = GaaSXEngine(graph, config=config).pagerank(iterations=3)
        assert np.allclose(
            result.ranks, reference.pagerank(graph, iterations=3)
        )
