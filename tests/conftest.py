"""Shared fixtures: small deterministic graphs and engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ArchConfig
from repro.graphs import COOMatrix, Graph
from repro.graphs.generators import bipartite_ratings, grid_2d, rmat


@pytest.fixture(scope="session")
def small_rmat() -> Graph:
    """~300-edge scale-free graph; the workhorse for engine tests."""
    return rmat(64, 300, seed=42, name="small-rmat")


@pytest.fixture(scope="session")
def medium_rmat() -> Graph:
    """~2000-edge graph spanning several crossbars and shards."""
    return rmat(256, 2000, seed=7, name="medium-rmat")


@pytest.fixture()
def diamond_graph() -> Graph:
    """Tiny hand-checkable DAG: 0 -> {1, 2} -> 3 with known weights.

    Shortest paths from 0: dist(1)=1, dist(2)=4, dist(3)=3 (via 1).
    """
    edges = np.array([[0, 1], [0, 2], [1, 3], [2, 3]])
    weights = np.array([1.0, 4.0, 2.0, 1.0])
    return Graph.from_edge_list(edges, weights, num_vertices=4, name="diamond")


@pytest.fixture()
def figure7_graph() -> Graph:
    """The example graph of the paper's Figure 7(a)."""
    triples = [
        (1, 2, 6.0), (3, 2, 5.0), (4, 2, 8.0), (1, 3, 4.0),
        (5, 3, 6.0), (2, 4, 4.0), (3, 4, 2.0), (5, 4, 7.0),
    ]
    edges = np.array([(s, d) for s, d, _ in triples])
    weights = np.array([w for _, _, w in triples])
    return Graph.from_edge_list(edges, weights, num_vertices=6, name="fig7")


@pytest.fixture(scope="session")
def small_bipartite():
    """Small rating graph for collaborative-filtering tests."""
    return bipartite_ratings(40, 12, 200, seed=5, name="small-ratings")


@pytest.fixture(scope="session")
def road_grid() -> Graph:
    """8x8 weighted grid (planar, positive weights)."""
    return grid_2d(8, 8, seed=3, name="road-grid")


@pytest.fixture()
def tiny_config() -> ArchConfig:
    """A 4-crossbar machine so multi-batch paths get exercised."""
    return ArchConfig(num_crossbars=4)


def make_graph(edges, weights=None, n=None) -> Graph:
    """Terse helper for literal edge lists in tests."""
    arr = np.asarray(edges)
    return Graph.from_edge_list(arr, weights, num_vertices=n)
