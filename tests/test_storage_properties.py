"""Property-based tests for the storage substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, partition_graph
from repro.graphs.coo import COOMatrix
from repro.storage import DiskModel, ShardStore


@st.composite
def small_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=20))
    count = draw(st.integers(min_value=0, max_value=40))
    src = draw(st.lists(st.integers(0, n - 1), min_size=count, max_size=count))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=count, max_size=count))
    coo = COOMatrix(
        np.array(src, dtype=np.int64),
        np.array(dst, dtype=np.int64),
        None,
        (n, n),
    ).deduplicated("last")
    return Graph(coo)


class TestShardStoreProperties:
    @given(small_graphs(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_extents_are_disjoint_and_cover_store(self, graph, interval):
        store = ShardStore(partition_graph(graph, interval))
        covered = 0
        last_end = 0
        for shard in store.grid.iter_shards("row"):
            extent = store.extent(shard.src_interval, shard.dst_interval)
            assert extent.offset_bytes == last_end
            size = int(extent.num_edges * store.disk.bytes_per_edge)
            last_end = extent.offset_bytes + size
            covered += size
        assert covered == store.total_bytes

    @given(small_graphs(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_col_scan_never_cheaper_than_row_scan(self, graph, interval):
        store = ShardStore(partition_graph(graph, interval))
        if store.num_shards == 0:
            return
        assert store.full_scan_time_s("col") >= store.full_scan_time_s("row")

    @given(
        small_graphs(),
        st.integers(min_value=1, max_value=8),
        st.lists(st.integers(0, 19), min_size=0, max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_selective_scan_monotone_in_selection(
        self, graph, interval, intervals
    ):
        store = ShardStore(partition_graph(graph, interval))
        k = store.grid.partition.num_intervals
        chosen = np.array([i % k for i in intervals], dtype=np.int64)
        partial = store.selective_scan_time_s(chosen)
        everything = store.selective_scan_time_s(np.arange(k))
        assert partial <= everything + 1e-12


class TestDiskModelProperties:
    @given(
        st.integers(min_value=0, max_value=10**7),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_stream_time_monotone(self, edges, seeks):
        disk = DiskModel()
        t = disk.stream_time_s(edges, seeks)
        assert t >= 0
        assert disk.stream_time_s(edges + 1, seeks) >= t
        assert disk.stream_time_s(edges, seeks + 1) >= t
