"""Unit tests for architecture configurations."""

import pytest

from repro.config import (
    ArchConfig,
    GraphRConfig,
    TABLE_I_COMPONENTS,
    TABLE_I_TOTAL_AREA_MM2,
    TABLE_I_TOTAL_POWER_W,
    TechnologyParams,
)
from repro.errors import ConfigError


class TestArchConfig:
    def test_defaults_match_table1(self):
        config = ArchConfig()
        assert config.num_crossbars == 2048
        assert config.cam_rows == 128
        assert config.mac_cols == 16
        assert config.mac_accumulate_limit == 16
        assert config.adc_bits == 6
        assert config.dac_bits == 2

    def test_bit_slices(self):
        assert ArchConfig().bit_slices == 8  # 16-bit / 2-bit cells

    def test_edges_per_batch(self):
        assert ArchConfig().edges_per_batch == 2048 * 128

    def test_replace(self):
        config = ArchConfig().replace(num_crossbars=64)
        assert config.num_crossbars == 64
        assert config.cam_rows == 128

    def test_rejects_mismatched_rows(self):
        with pytest.raises(ConfigError):
            ArchConfig(cam_rows=64, mac_rows=128)

    def test_rejects_bad_limit(self):
        with pytest.raises(ConfigError):
            ArchConfig(mac_accumulate_limit=0)
        with pytest.raises(ConfigError):
            ArchConfig(mac_accumulate_limit=200)

    def test_rejects_indivisible_value_bits(self):
        with pytest.raises(ConfigError):
            ArchConfig(value_bits=15)

    def test_rejects_nonpositive_crossbars(self):
        with pytest.raises(ConfigError):
            ArchConfig(num_crossbars=0)

    def test_rejects_bad_converters(self):
        with pytest.raises(ConfigError):
            ArchConfig(adc_bits=0)

    def test_max_resident_attributes(self):
        # 512 KB at 16-bit values = 256K attributes.
        assert ArchConfig().max_resident_attributes == 256 * 1024

    def test_attribute_fit_check(self):
        from repro.core.engine import GaaSXEngine
        from repro.graphs import Graph

        g = Graph.from_edge_list([(0, 1)], num_vertices=1000)
        assert GaaSXEngine(g).attributes_fit_buffer
        huge_interval = GaaSXEngine(g, interval_size=10**6)
        assert not huge_interval.attributes_fit_buffer


class TestGraphRConfig:
    def test_defaults(self):
        config = GraphRConfig()
        assert config.tile_size == 16
        assert config.num_crossbars == 2048

    def test_tiles_per_crossbar_accounts_for_bit_slicing(self):
        config = GraphRConfig()
        # 128/16 = 8 tile rows; 128 cols / (16 values x 8 slices) = 1.
        assert config.tiles_per_crossbar == 8

    def test_tiles_per_batch(self):
        config = GraphRConfig()
        assert config.tiles_per_batch == 2048 * 8

    def test_smaller_tiles_pack_more(self):
        assert (
            GraphRConfig(tile_size=8).tiles_per_crossbar
            > GraphRConfig(tile_size=16).tiles_per_crossbar
        )

    def test_rejects_indivisible_tile(self):
        with pytest.raises(ConfigError):
            GraphRConfig(tile_size=24)

    def test_rejects_nonpositive_tile(self):
        with pytest.raises(ConfigError):
            GraphRConfig(tile_size=0)


class TestTable1Data:
    def test_component_count(self):
        assert len(TABLE_I_COMPONENTS) == 10

    def test_totals_consistent_with_rows(self):
        area = sum(c.area_mm2 for c in TABLE_I_COMPONENTS)
        power = sum(c.power_mw for c in TABLE_I_COMPONENTS) / 1000
        assert area == pytest.approx(TABLE_I_TOTAL_AREA_MM2, rel=0.02)
        assert power == pytest.approx(TABLE_I_TOTAL_POWER_W, rel=0.02)

    def test_latencies_match_paper(self):
        tech = TechnologyParams()
        assert tech.mac_latency_s == pytest.approx(30e-9)
        assert tech.cam_latency_s == pytest.approx(4e-9)
