"""Unit tests for the GraphR dense-tile baseline."""

import numpy as np
import pytest

from repro.baselines.graphr import GraphREngine, build_tile_layout
from repro.config import GraphRConfig
from repro.core.engine import GaaSXEngine
from repro.graphs.stats import tile_profile
from tests.conftest import make_graph


class TestTileLayout:
    def test_tiles_match_profile(self, medium_rmat):
        layout = build_tile_layout(medium_rmat, GraphRConfig())
        profile = tile_profile(medium_rmat, 16)
        assert layout.num_tiles == profile.num_tiles_nonempty
        assert np.array_equal(
            np.sort(layout.tile_nnz), np.sort(profile.tile_nnz)
        )

    def test_edges_preserved(self, medium_rmat):
        layout = build_tile_layout(medium_rmat, GraphRConfig())
        assert layout.num_edges == medium_rmat.num_edges
        assert layout.tile_nnz.sum() == medium_rmat.num_edges

    def test_tile_membership(self, medium_rmat):
        layout = build_tile_layout(medium_rmat, GraphRConfig())
        t = 16
        for pos in range(min(layout.num_tiles, 40)):
            lo, hi = layout.tile_offsets[pos], layout.tile_offsets[pos + 1]
            assert np.all(layout.src[lo:hi] // t == layout.tile_row[pos])
            assert np.all(layout.dst[lo:hi] // t == layout.tile_col[pos])

    def test_groups_by_src(self, medium_rmat):
        layout = build_tile_layout(medium_rmat, GraphRConfig())
        groups = layout.groups_by_src()
        assert groups.count.sum() == medium_rmat.num_edges
        assert groups.num_groups >= layout.num_tiles

    def test_batches(self, medium_rmat):
        config = GraphRConfig(num_crossbars=4)
        layout = build_tile_layout(medium_rmat, config)
        expected = -(-layout.num_tiles // config.tiles_per_batch)
        assert layout.num_batches == expected

    def test_empty_graph(self):
        layout = build_tile_layout(make_graph([], n=8), GraphRConfig())
        assert layout.num_tiles == 0
        assert layout.num_batches == 0


class TestGraphRFunctional:
    """GraphR must compute identical results to GaaS-X — the engines
    differ only in cost structure."""

    def test_pagerank_identical(self, medium_rmat):
        a = GaaSXEngine(medium_rmat).pagerank(iterations=8)
        b = GraphREngine(medium_rmat).pagerank(iterations=8)
        assert np.allclose(a.ranks, b.ranks)

    def test_bfs_identical(self, medium_rmat):
        a = GaaSXEngine(medium_rmat).bfs(0)
        b = GraphREngine(medium_rmat).bfs(0)
        assert np.array_equal(
            np.nan_to_num(a.distances, posinf=-1),
            np.nan_to_num(b.distances, posinf=-1),
        )

    def test_sssp_identical(self, medium_rmat):
        a = GaaSXEngine(medium_rmat).sssp(3)
        b = GraphREngine(medium_rmat).sssp(3)
        assert np.array_equal(
            np.nan_to_num(a.distances, posinf=-1),
            np.nan_to_num(b.distances, posinf=-1),
        )

    def test_cf_identical(self, small_bipartite):
        a = GaaSXEngine(small_bipartite).collaborative_filtering(8, 2, seed=4)
        b = GraphREngine(small_bipartite).collaborative_filtering(8, 2, seed=4)
        assert np.allclose(a.user_features, b.user_features)
        assert np.allclose(a.item_features, b.item_features)


class TestGraphRCosts:
    def test_dense_conversion_writes_per_iteration(self, medium_rmat):
        config = GraphRConfig()
        one = GraphREngine(medium_rmat, config).pagerank(iterations=1)
        three = GraphREngine(medium_rmat, config).pagerank(iterations=3)
        layout = build_tile_layout(medium_rmat, config)
        per_iter = layout.num_tiles * 256 * config.bit_slices
        assert (
            three.stats.events.cell_writes - one.stats.events.cell_writes
            == 2 * per_iter
        )

    def test_dense_compute_engages_all_cells(self, medium_rmat):
        run = GraphREngine(medium_rmat).pagerank(iterations=1)
        layout = build_tile_layout(medium_rmat, GraphRConfig())
        assert run.stats.events.mac_cell_ops == layout.num_tiles * 256

    def test_gaasx_beats_graphr(self, medium_rmat):
        """The headline direction: GaaS-X wins time and energy."""
        a = GaaSXEngine(medium_rmat).pagerank(iterations=10)
        b = GraphREngine(medium_rmat).pagerank(iterations=10)
        assert b.stats.total_time_s > a.stats.total_time_s
        assert b.stats.total_energy_j > a.stats.total_energy_j

    def test_write_reduction_order_of_magnitude(self, medium_rmat):
        """Intro claim: ~30x fewer writes under sparse mapping."""
        a = GaaSXEngine(medium_rmat).pagerank(iterations=10)
        b = GraphREngine(medium_rmat).pagerank(iterations=10)
        ratio = b.stats.events.cell_writes / a.stats.events.cell_writes
        assert ratio > 10

    def test_frontier_skipping_reduces_traversal_cost(self, medium_rmat):
        full = GraphREngine(medium_rmat).bfs(0)
        skipping = GraphREngine(
            medium_rmat, frontier_tile_skipping=True
        ).bfs(0)
        assert (
            skipping.stats.total_time_s <= full.stats.total_time_s
        )
        assert np.array_equal(
            np.nan_to_num(full.distances, posinf=-1),
            np.nan_to_num(skipping.distances, posinf=-1),
        )

    def test_pagerank_mac_hist_records_tile_rows(self, medium_rmat):
        run = GraphREngine(medium_rmat).pagerank(iterations=1)
        hist = run.stats.events.mac_rows_hist
        assert hist[16] == run.stats.events.mac_ops  # whole-tile MACs

    def test_storage_charged_once(self, medium_rmat):
        run = GraphREngine(medium_rmat).bfs(0)
        events = run.stats.events
        # Coordinate storage: 64 single-level cells per edge.
        assert events.cam_cell_writes == 64 * medium_rmat.num_edges
