"""GraphR engine vs its array-level micro twin: identical events."""

import numpy as np
import pytest

from repro.baselines.graphr import GraphREngine
from repro.baselines.graphr.micro import MicroGraphR
from repro.config import GraphRConfig
from repro.graphs.generators import rmat


@pytest.fixture(scope="module")
def tiny_graph():
    return rmat(64, 300, seed=21)


@pytest.fixture(scope="module")
def tiny_config():
    return GraphRConfig(num_crossbars=2, tile_size=8)


class TestPageRankEquivalence:
    def test_events_identical(self, tiny_graph, tiny_config):
        engine = GraphREngine(tiny_graph, config=tiny_config)
        micro = MicroGraphR(tiny_graph, config=tiny_config)
        fast = engine.pagerank(iterations=2)
        ranks, events = micro.pagerank(iterations=2)
        assert fast.stats.events.counters_equal(events)

    def test_values_agree(self, tiny_graph, tiny_config):
        engine = GraphREngine(tiny_graph, config=tiny_config)
        micro = MicroGraphR(tiny_graph, config=tiny_config)
        fast = engine.pagerank(iterations=3)
        ranks, _ = micro.pagerank(iterations=3)
        assert np.allclose(fast.ranks, ranks)


class TestTraversalEquivalence:
    @pytest.mark.parametrize("algo", ["bfs", "sssp"])
    def test_events_identical(self, tiny_graph, tiny_config, algo):
        engine = GraphREngine(tiny_graph, config=tiny_config)
        micro = MicroGraphR(tiny_graph, config=tiny_config)
        fast = getattr(engine, algo)(0)
        dist, events = getattr(micro, algo)(0)
        assert fast.stats.events.counters_equal(events)

    @pytest.mark.parametrize("algo", ["bfs", "sssp"])
    def test_values_agree(self, tiny_graph, tiny_config, algo):
        engine = GraphREngine(tiny_graph, config=tiny_config)
        micro = MicroGraphR(tiny_graph, config=tiny_config)
        fast = getattr(engine, algo)(0)
        dist, _ = getattr(micro, algo)(0)
        assert np.array_equal(
            np.nan_to_num(fast.distances, posinf=-1),
            np.nan_to_num(dist, posinf=-1),
        )

    def test_zero_weight_edges_do_not_leak(self, tiny_config):
        """Dense zero cells are non-edges; a real 0-weight edge would be
        indistinguishable, so the micro model must still relax only
        stored edges (guarded via the COO index, as GraphR's controller
        does)."""
        from repro.graphs import Graph

        g = Graph.from_edge_list(
            [(0, 1), (1, 2)], weights=[1.0, 1.0], num_vertices=16
        )
        micro = MicroGraphR(g, config=tiny_config)
        dist, _ = micro.sssp(0)
        assert dist[2] == 2.0
        assert np.isinf(dist[3])  # never touched through a zero cell


class TestCrossEngineAgreement:
    def test_micro_graphr_equals_micro_gaasx_functionally(
        self, tiny_graph
    ):
        from repro.core.micro import MicroGaaSX

        gaasx_ranks, _ = MicroGaaSX(tiny_graph).pagerank(iterations=3)
        graphr_ranks, _ = MicroGraphR(tiny_graph).pagerank(iterations=3)
        assert np.allclose(gaasx_ranks, graphr_ranks)
