"""Unit tests for the golden reference implementations."""

import numpy as np
import pytest

from repro.baselines import reference
from repro.errors import AlgorithmError
from tests.conftest import make_graph


class TestReferencePageRank:
    def test_ignores_edge_weights(self):
        a = make_graph([(0, 1), (1, 0)], weights=[1.0, 1.0], n=2)
        b = make_graph([(0, 1), (1, 0)], weights=[9.0, 3.0], n=2)
        assert np.allclose(
            reference.pagerank(a, iterations=5),
            reference.pagerank(b, iterations=5),
        )

    def test_symmetric_cycle_uniform(self):
        g = make_graph([(0, 1), (1, 2), (2, 0)], n=3)
        ranks = reference.pagerank(g, iterations=50)
        assert np.allclose(ranks, ranks[0])
        assert ranks[0] == pytest.approx(1.0, abs=1e-6)

    def test_tolerance_stops_early(self, small_rmat):
        a = reference.pagerank(small_rmat, iterations=500, tolerance=1e-10)
        b = reference.pagerank(small_rmat, iterations=500, tolerance=None)
        assert np.allclose(a, b, atol=1e-6)


class TestReferenceBFS:
    def test_chain(self):
        g = make_graph([(0, 1), (1, 2), (2, 3)], n=4)
        assert np.array_equal(reference.bfs(g, 0), [0, 1, 2, 3])

    def test_unreachable(self):
        g = make_graph([(0, 1)], n=3)
        d = reference.bfs(g, 0)
        assert np.isinf(d[2])

    def test_source_validation(self, small_rmat):
        with pytest.raises(AlgorithmError):
            reference.bfs(small_rmat, -1)


class TestReferenceSSSP:
    def test_diamond(self, diamond_graph):
        assert np.array_equal(
            reference.sssp(diamond_graph, 0), [0.0, 1.0, 4.0, 3.0]
        )

    def test_rejects_negative_weights(self):
        g = make_graph([(0, 1)], weights=[-2.0], n=2)
        with pytest.raises(AlgorithmError):
            reference.sssp(g, 0)

    def test_source_validation(self, small_rmat):
        with pytest.raises(AlgorithmError):
            reference.sssp(small_rmat, 10**6)

    def test_bfs_lower_bounds_weighted_sssp(self, small_rmat):
        """With weights >= 1, hop count lower-bounds weighted distance."""
        bfs = reference.bfs(small_rmat, 0)
        sssp = reference.sssp(small_rmat, 0)
        mask = np.isfinite(bfs)
        assert np.array_equal(mask, np.isfinite(sssp))
        assert np.all(sssp[mask] >= bfs[mask] - 1e-9)


class TestReferenceCF:
    def test_deterministic(self, small_bipartite):
        a = reference.collaborative_filtering(small_bipartite, 4, 2, seed=3)
        b = reference.collaborative_filtering(small_bipartite, 4, 2, seed=3)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_shapes(self, small_bipartite):
        p, q = reference.collaborative_filtering(small_bipartite, 6, 1)
        assert p.shape == (small_bipartite.num_users, 6)
        assert q.shape == (small_bipartite.num_items, 6)

    def test_learning_reduces_error(self, small_bipartite):
        r = small_bipartite.ratings

        def rmse(p, q):
            pred = np.einsum("ij,ij->i", p[r.rows], q[r.cols])
            return np.sqrt(np.mean((pred - r.data) ** 2))

        p0, q0 = reference.collaborative_filtering(
            small_bipartite, 8, 0, learning_rate=0.01, seed=1
        )
        p1, q1 = reference.collaborative_filtering(
            small_bipartite, 8, 25, learning_rate=0.01, seed=1
        )
        assert rmse(p1, q1) < rmse(p0, q0)
