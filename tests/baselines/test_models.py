"""Unit tests for the workload traces and CPU/GPU/GRAM cost models."""

import numpy as np
import pytest

from repro.baselines import (
    CuMFModel,
    GAPBSModel,
    GraphChiModel,
    GraphREngine,
    GridGraphModel,
    GunrockModel,
    trace_cf,
    trace_pagerank,
    trace_traversal,
)
from repro.baselines.gram import GRAMModel
from repro.baselines.workload import WorkloadTrace
from repro.errors import AlgorithmError
from tests.conftest import make_graph


class TestTraces:
    def test_pagerank_trace(self, small_rmat):
        tr = trace_pagerank(small_rmat, iterations=4)
        assert tr.passes == 4
        assert np.all(tr.edges_per_pass == small_rmat.num_edges)
        assert tr.total_edges_processed == 4 * small_rmat.num_edges

    def test_traversal_trace_frontier_sizes(self, diamond_graph):
        tr = trace_traversal(diamond_graph, 0, weighted=False)
        # Superstep 1 expands vertex 0 (2 out-edges); superstep 2
        # expands {1, 2} (2 edges); superstep 3 expands {3} (0 edges).
        assert list(tr.edges_per_pass) == [2, 2, 0]
        assert list(tr.active_vertices_per_pass) == [1, 2, 1]

    def test_traversal_trace_matches_engine_supersteps(self, medium_rmat):
        from repro.core.engine import GaaSXEngine

        tr = trace_traversal(medium_rmat, 0, weighted=True)
        run = GaaSXEngine(medium_rmat).sssp(0)
        assert tr.passes == run.supersteps

    def test_traversal_source_validation(self, small_rmat):
        with pytest.raises(AlgorithmError):
            trace_traversal(small_rmat, -1, weighted=False)

    def test_wcc_trace_matches_engine_supersteps(self, medium_rmat):
        from repro.baselines.workload import trace_wcc
        from repro.core.engine import GaaSXEngine

        tr = trace_wcc(medium_rmat)
        run = GaaSXEngine(medium_rmat).wcc()
        assert tr.passes == run.supersteps
        assert tr.algorithm == "cc"

    def test_wcc_trace_counts_both_directions(self):
        from repro.baselines.workload import trace_wcc

        g = make_graph([(0, 1)], n=2)
        tr = trace_wcc(g)
        # Superstep 1: both endpoints active; the edge is visited once
        # forward (from 0) and once reverse (from 1).
        assert tr.edges_per_pass[0] == 2

    def test_cf_trace(self, small_bipartite):
        tr = trace_cf(small_bipartite, epochs=2)
        assert tr.passes == 2
        assert np.all(
            tr.edges_per_pass == 2 * small_bipartite.num_ratings
        )


def _trace(algorithm="pagerank", passes=3, edges=1000, vertices=100):
    return WorkloadTrace(
        algorithm,
        vertices,
        edges,
        np.full(passes, edges, dtype=np.int64),
        np.full(passes, vertices, dtype=np.int64),
    )


class TestCPUModels:
    def test_gridgraph_monotone_in_edges(self):
        model = GridGraphModel()
        small = model.run(_trace(edges=1000))
        big = model.run(_trace(edges=10000))
        assert big.time_s > small.time_s

    def test_gridgraph_energy_is_power_times_time(self):
        model = GridGraphModel()
        r = model.run(_trace())
        assert r.energy_j == pytest.approx(r.time_s * model.power_w)

    def test_gridgraph_rejects_cf(self):
        with pytest.raises(AlgorithmError):
            GridGraphModel().run(_trace("cf"))

    def test_gridgraph_overfetch_floor(self):
        """Tiny frontiers still stream a minimum fraction of the grid."""
        model = GridGraphModel()
        trace = WorkloadTrace(
            "bfs", 1000, 100000,
            np.array([1]), np.array([1]),
        )
        scanned = model._scanned_edges(trace)
        assert scanned[0] >= 100000 * model.min_scan_fraction

    def test_graphchi_slower_than_gridgraph(self):
        tr = _trace()
        assert GraphChiModel().run(tr).time_s > GridGraphModel().run(tr).time_s

    def test_graphchi_cf_counts_feature_flops(self, small_bipartite):
        tr = trace_cf(small_bipartite, epochs=1)
        few = GraphChiModel().run(tr, num_features=8)
        many = GraphChiModel().run(tr, num_features=64)
        assert many.time_s > few.time_s

    def test_gapbs_faster_than_gridgraph(self):
        tr = _trace()
        assert GAPBSModel().run(tr).time_s < GridGraphModel().run(tr).time_s

    def test_gapbs_sssp_costlier_than_bfs(self):
        bfs = GAPBSModel().run(_trace("bfs"))
        sssp = GAPBSModel().run(_trace("sssp"))
        assert sssp.time_s > bfs.time_s

    def test_gapbs_rejects_cf(self):
        with pytest.raises(AlgorithmError):
            GAPBSModel().run(_trace("cf"))

    def test_gapbs_cc_kernel(self):
        r = GAPBSModel().run(_trace("cc"))
        assert r.time_s > 0
        assert r.algorithm == "cc"


class TestGPUModels:
    def test_gunrock_launch_overhead_dominates_many_supersteps(self):
        few = GunrockModel().run(_trace("bfs", passes=2, edges=100))
        many = GunrockModel().run(_trace("bfs", passes=50, edges=100))
        assert many.time_s > few.time_s

    def test_gunrock_faster_than_gridgraph(self):
        tr = _trace(edges=10**6)
        assert GunrockModel().run(tr).time_s < GridGraphModel().run(tr).time_s

    def test_gunrock_rejects_cf(self):
        with pytest.raises(AlgorithmError):
            GunrockModel().run(_trace("cf"))

    def test_cumf_only_cf(self):
        with pytest.raises(AlgorithmError):
            CuMFModel().run(_trace("pagerank"))

    def test_cumf_scales_with_features(self, small_bipartite):
        tr = trace_cf(small_bipartite, epochs=1)
        assert (
            CuMFModel().run(tr, num_features=64).time_s
            > CuMFModel().run(tr, num_features=8).time_s
        )


class TestGRAM:
    def test_scales_graphr(self, small_rmat):
        run = GraphREngine(small_rmat).pagerank(iterations=3)
        gram = GRAMModel().from_graphr("pagerank", run.stats)
        assert gram.time_s < run.stats.total_time_s
        assert gram.energy_j < run.stats.total_energy_j

    def test_factors_applied(self, small_rmat):
        run = GraphREngine(small_rmat).pagerank(iterations=3)
        model = GRAMModel()
        gram = model.from_graphr("pagerank", run.stats)
        assert gram.time_s == pytest.approx(
            run.stats.total_time_s / model.speedup_over_graphr["pagerank"]
        )

    def test_unknown_algorithm_rejected(self, small_rmat):
        run = GraphREngine(small_rmat).pagerank(iterations=1)
        with pytest.raises(AlgorithmError):
            GRAMModel().from_graphr("cf", run.stats)


class TestTesseract:
    def test_scaled_up_from_graphr(self, small_rmat):
        from repro.baselines.gram import TesseractModel

        run = GraphREngine(small_rmat).pagerank(iterations=3)
        tess = TesseractModel().from_graphr("pagerank", run.stats)
        assert tess.time_s > run.stats.total_time_s
        assert tess.energy_j > run.stats.total_energy_j

    def test_published_band(self, small_rmat):
        from repro.baselines.gram import TesseractModel

        model = TesseractModel()
        assert 1 < model.slowdown_vs_graphr <= 4
        assert 4 <= model.energy_vs_graphr <= 10
