"""Unit tests for the energy accounting subsystem."""

import numpy as np
import pytest

from repro.config import (
    ArchConfig,
    TABLE_I_TOTAL_AREA_MM2,
    TABLE_I_TOTAL_POWER_W,
    TechnologyParams,
)
from repro.energy import EnergyLedger, SRAMBuffer, table1_report
from repro.energy.buffers import (
    ATTRIBUTE_BUFFER,
    INPUT_BUFFER,
    OUTPUT_BUFFER,
)
from repro.energy.report import component_rows, totals
from repro.errors import ConfigError
from repro.events import EventLog


class TestBuffers:
    def test_table1_buffer_rows_reproduced(self):
        # Table I: 16 KB -> 6.4e-3 mm^2 / 8.72 mW, linear in capacity.
        assert INPUT_BUFFER.area_mm2 == pytest.approx(6.4e-3)
        assert INPUT_BUFFER.power_mw == pytest.approx(8.72)
        assert OUTPUT_BUFFER.area_mm2 == pytest.approx(25.6e-3)
        assert OUTPUT_BUFFER.power_mw == pytest.approx(34.88)
        assert ATTRIBUTE_BUFFER.area_mm2 == pytest.approx(204.8e-3)
        assert ATTRIBUTE_BUFFER.power_mw == pytest.approx(279.04)

    def test_access_energy_scales_sublinearly(self):
        small = SRAMBuffer("s", 16)
        big = SRAMBuffer("b", 256)
        assert big.access_energy_j > small.access_energy_j
        assert big.access_energy_j < 16 * small.access_energy_j

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigError):
            SRAMBuffer("x", 0)


class TestLedger:
    def test_zero_events_only_static(self):
        tech = TechnologyParams()
        ledger = EnergyLedger(tech)
        breakdown = ledger.price(EventLog(), runtime_s=1.0)
        assert breakdown.dynamic_j == 0.0
        assert breakdown.static_j == pytest.approx(tech.static_power_w)

    def test_each_event_category_priced(self):
        tech = TechnologyParams()
        ledger = EnergyLedger(tech)
        events = EventLog(
            cam_searches=10,
            mac_ops=5,
            cell_writes=100,
            cam_cell_writes=50,
            adc_conversions=7,
            dac_conversions=3,
            sfu_ops=11,
            buffer_reads=2,
            buffer_writes=1,
        )
        b = ledger.price(events, runtime_s=0.0)
        assert b.cam_j == pytest.approx(10 * tech.cam_search_energy_j)
        assert b.mac_j == pytest.approx(5 * tech.mac_energy_j)
        assert b.write_j == pytest.approx(
            100 * tech.write_cell_energy_j + 50 * tech.cam_cell_write_energy_j
        )
        assert b.adc_j == pytest.approx(7 * tech.adc_energy_j)
        assert b.dac_j == pytest.approx(3 * tech.dac_energy_j)
        assert b.sfu_j == pytest.approx(11 * tech.sfu_op_energy_j)
        assert b.buffer_j == pytest.approx(3 * tech.buffer_access_energy_j)
        assert b.total_j == pytest.approx(b.dynamic_j)

    def test_negative_runtime_rejected(self):
        with pytest.raises(ConfigError):
            EnergyLedger().price(EventLog(), runtime_s=-1.0)

    def test_average_power(self):
        ledger = EnergyLedger(TechnologyParams())
        power = ledger.average_power_w(EventLog(), runtime_s=2.0)
        assert power == pytest.approx(TechnologyParams().static_power_w)

    def test_average_power_zero_runtime(self):
        assert EnergyLedger().average_power_w(EventLog(), 0.0) == 0.0

    def test_as_dict_totals(self):
        b = EnergyLedger().price(EventLog(mac_ops=1), 0.0)
        d = b.as_dict()
        assert d["total"] == pytest.approx(b.total_j)
        assert d["mac"] == pytest.approx(b.mac_j)


class TestTable1Report:
    def test_totals_match_paper(self):
        area, power = totals()
        assert area == pytest.approx(TABLE_I_TOTAL_AREA_MM2, rel=0.02)
        assert power == pytest.approx(TABLE_I_TOTAL_POWER_W, rel=0.02)

    def test_report_renders_all_components(self):
        text = table1_report()
        for name in ("MAC crossbar", "CAM crossbar", "ADC", "SFU",
                     "Attribute buffer"):
            assert name in text
        assert "2.69" in text  # paper total

    def test_crossbar_rows_scale_with_count(self):
        half = ArchConfig(num_crossbars=1024)
        rows_full = dict((r[0], r[3]) for r in component_rows())
        rows_half = dict((r[0], r[3]) for r in component_rows(half))
        assert rows_half["MAC crossbar"] == pytest.approx(
            rows_full["MAC crossbar"] / 2
        )
        # Controller does not scale with crossbar count.
        assert rows_half["Central controller"] == rows_full["Central controller"]
