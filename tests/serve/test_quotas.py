"""Token-bucket and admission-control tests (fake clock, no sleeps)."""

import pytest

from repro.errors import ConfigError, QuotaExceededError
from repro.serve.quotas import AdmissionController, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_unlimited_when_rate_is_none(self):
        bucket = TokenBucket(None, burst=1)
        assert all(bucket.try_acquire() for _ in range(1000))
        assert bucket.available == float("inf")

    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
        bucket.try_acquire()
        bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2/s * 0.5s = 1 token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_capped_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        clock.advance(100.0)
        assert bucket.available == 2.0

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigError):
            TokenBucket(rate=0, burst=2)
        with pytest.raises(ConfigError):
            TokenBucket(rate=1.0, burst=0)


class TestAdmissionController:
    def test_unlimited_by_default(self):
        controller = AdmissionController()
        for _ in range(100):
            controller.admit("anyone")

    def test_over_quota_raises_typed_error(self):
        clock = FakeClock()
        controller = AdmissionController(
            quota_rate=1.0, quota_burst=2, clock=clock
        )
        controller.admit("greedy")
        controller.admit("greedy")
        with pytest.raises(QuotaExceededError, match="greedy"):
            controller.admit("greedy")

    def test_tenants_are_isolated(self):
        clock = FakeClock()
        controller = AdmissionController(
            quota_rate=1.0, quota_burst=1, clock=clock
        )
        controller.admit("noisy")
        with pytest.raises(QuotaExceededError):
            controller.admit("noisy")
        # A different tenant draws from its own bucket.
        controller.admit("quiet")

    def test_describe_reports_tenants(self):
        clock = FakeClock()
        controller = AdmissionController(
            quota_rate=1.0, quota_burst=4, clock=clock
        )
        controller.admit("acme")
        described = controller.describe()
        assert described["quota_rate"] == 1.0
        assert described["tenants"]["acme"] == 3.0

    def test_describe_unlimited(self):
        controller = AdmissionController()
        controller.admit("acme")
        assert controller.describe()["tenants"]["acme"] == "unlimited"
