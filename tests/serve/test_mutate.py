"""The mutable-graph serve path: request schema, service, HTTP route.

What must hold end to end: a mutation rebinds the warm session to the
new content identity, the reuse cache migrates (never serves stale
state), warm algorithm state survives where sound, and every counter
surface (/stats, modelled payload) reports the reuse economics.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.core.reuse import reset_reuse_cache, set_reuse_enabled
from repro.errors import ConfigError, DatasetError
from repro.obs.metrics import MetricsRegistry
from repro.serve import AnalyticsService, MutateRequest, QueryRequest
from repro.serve.http import HttpFrontend


@pytest.fixture(autouse=True)
def fresh_reuse_state():
    reset_reuse_cache()
    set_reuse_enabled(None)
    yield
    reset_reuse_cache()
    set_reuse_enabled(None)


def make_service(**kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    return AnalyticsService(**kwargs)


def run(coro):
    return asyncio.run(coro)


# Enough iterations that runs reach the tolerance fixed point; the
# equivalence claims below are about converged answers.
PAGERANK = QueryRequest(
    "WV", "pagerank",
    params={"iterations": 200, "tolerance": 1e-8}, profile="tiny",
)
INCREMENTAL = QueryRequest(
    "WV", "pagerank",
    params={"iterations": 200, "tolerance": 1e-8, "incremental": True},
    profile="tiny",
)
MUTATION = MutateRequest(
    dataset="WV", inserts=[[1, 2], [3, 4, 2.0]], deletes=[[0, 1]],
    profile="tiny",
)


class TestMutateRequest:
    def test_roundtrip(self):
        request = MutateRequest.from_dict(MUTATION.to_dict())
        assert request == MUTATION
        assert request.session_selector == ("WV", "tiny")

    def test_requires_a_batch(self):
        with pytest.raises(ConfigError):
            MutateRequest(dataset="WV")

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            MutateRequest(dataset="NOPE", inserts=[[0, 1]])

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigError):
            MutateRequest.from_dict(
                {"dataset": "WV", "inserts": [[0, 1]], "bogus": 1}
            )

    def test_batches_must_be_lists(self):
        with pytest.raises(ConfigError):
            MutateRequest(dataset="WV", inserts="0,1")


class TestServiceMutate:
    def test_mutation_rebinds_session(self):
        service = make_service()

        async def scenario():
            await service.submit(PAGERANK)
            before = service.stats()["pool"]["sessions"][0]
            summary = await service.mutate(MUTATION)
            after = service.stats()["pool"]["sessions"][0]
            return before, summary, after

        try:
            before, summary, after = run(scenario())
        finally:
            run(service.aclose())
        assert summary["old_content_key"] == before["content_key"]
        assert summary["content_key"] == after["content_key"]
        assert summary["content_key"] != summary["old_content_key"]
        assert summary["inserts"] == 2 and summary["deletes"] == 1
        assert after["mutations_applied"] == 1
        assert summary["latency_s"] > 0
        assert summary["trace_id"]

    def test_post_mutation_query_uses_warm_ranks(self):
        service = make_service()

        async def scenario():
            converged = await service.submit(PAGERANK)
            await service.mutate(MUTATION)
            warm = await service.submit(INCREMENTAL)
            cold = await service.submit(PAGERANK)
            return converged, warm, cold

        try:
            converged, warm, cold = run(scenario())
        finally:
            run(service.aclose())
        # The incremental answer matches a cold recompute on the
        # mutated graph within the delta-parking tolerance ...
        assert warm.payload["top_vertices"] == cold.payload["top_vertices"]
        np.testing.assert_allclose(
            warm.payload["top_ranks"], cold.payload["top_ranks"],
            atol=1e-3,
        )
        np.testing.assert_allclose(
            warm.payload["rank_sum"], cold.payload["rank_sum"],
            atol=1e-2,
        )
        # ... and each query reports its own reuse economics.
        assert "reuse_hit_rate" in warm.modelled
        assert 0.0 <= warm.modelled["reuse_hit_rate"] <= 1.0

    def test_wcc_warm_state_survives_mutation(self):
        service = make_service()
        wcc = QueryRequest("WV", "wcc", profile="tiny")

        async def scenario():
            first = await service.submit(wcc)
            await service.mutate(MUTATION)
            warm = await service.submit(wcc)
            fresh = await service.submit(wcc)
            return first, warm, fresh

        try:
            _first, warm, fresh = run(scenario())
        finally:
            run(service.aclose())
        # The warm-started run answers identically to a recompute on
        # the mutated graph (fresh coalesces/caches are content-keyed,
        # so equality of checksums is equality of labels).
        assert warm.payload["checksum"] == fresh.payload["checksum"]

    def test_stats_surfaces_mutations_and_reuse(self):
        service = make_service()

        async def scenario():
            await service.submit(PAGERANK)
            await service.mutate(MUTATION)
            await service.submit(INCREMENTAL)
            return service.stats()

        try:
            stats = run(scenario())
        finally:
            run(service.aclose())
        assert stats["mutations"] == 1
        assert stats["mutate_latency"]["count"] == 1
        reuse = stats["reuse"]
        assert {"hits", "misses", "invalidations", "hit_rate"} <= set(
            reuse
        )
        assert reuse["hits"] + reuse["misses"] > 0

    def test_mutations_serialize_per_content_key(self):
        """Concurrent mutations both apply (no lost update)."""
        service = make_service()

        async def scenario():
            await service.submit(PAGERANK)
            await asyncio.gather(
                service.mutate(
                    MutateRequest(
                        dataset="WV", inserts=[[5, 6]], profile="tiny"
                    )
                ),
                service.mutate(
                    MutateRequest(
                        dataset="WV", inserts=[[6, 7]], profile="tiny"
                    )
                ),
            )
            return service.stats()["pool"]["sessions"][0]

        try:
            session = run(scenario())
        finally:
            run(service.aclose())
        assert session["mutations_applied"] == 2


class TestHttpMutate:
    async def _with_daemon(self, scenario):
        service = make_service()
        service.preload(["WV"], "tiny")
        frontend = HttpFrontend(service, port=0)
        host, port = await frontend.start()
        try:
            return await scenario(host, port)
        finally:
            await frontend.aclose()

    @staticmethod
    async def _post(host, port, path, body):
        reader, writer = await asyncio.open_connection(host, port)
        encoded = json.dumps(body).encode()
        writer.write(
            (
                f"POST {path} HTTP/1.1\r\nHost: {host}\r\n"
                f"Content-Length: {len(encoded)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
            + encoded
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        head, _, payload = raw.partition(b"\r\n\r\n")
        status = int(head.split(b" ", 2)[1])
        return status, json.loads(payload)

    def test_post_mutate_round_trip(self):
        async def scenario(host, port):
            await self._post(
                host, port, "/query", PAGERANK.to_dict()
            )
            status, summary = await self._post(
                host, port, "/mutate", MUTATION.to_dict()
            )
            q_status, result = await self._post(
                host, port, "/query", INCREMENTAL.to_dict()
            )
            return status, summary, q_status, result

        status, summary, q_status, result = run(
            self._with_daemon(scenario)
        )
        assert status == 200 and q_status == 200
        assert summary["content_key"] != summary["old_content_key"]
        assert summary["dataset"] == "WV"
        assert "reuse_hit_rate" in result["modelled"]

    def test_get_mutate_is_rejected(self):
        async def scenario(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                f"GET /mutate HTTP/1.1\r\nHost: {host}\r\n"
                "Connection: close\r\n\r\n".encode("ascii")
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            return int(raw.split(b" ", 2)[1])

        assert run(self._with_daemon(scenario)) == 405

    def test_malformed_body_maps_to_400(self):
        async def scenario(host, port):
            return await self._post(
                host, port, "/mutate", {"dataset": "WV"}
            )

        status, body = run(self._with_daemon(scenario))
        assert status == 400
        assert body["error"] == "ConfigError"
