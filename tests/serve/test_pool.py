"""Warm-session pool: mmap-backed graphs and graceful fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ArchConfig
from repro.core.engine import GaaSXEngine
from repro.errors import StorageError
from repro.graphs.datasets import load_dataset
from repro.serve import pool as pool_module
from repro.serve.pool import SessionPool, WarmSession
from repro.storage.mmap_store import get_store, reset_store


@pytest.fixture(autouse=True)
def _isolated_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
    reset_store()
    yield
    reset_store()


@pytest.fixture()
def tiny_config():
    return ArchConfig(num_crossbars=4)


class TestWarmSessionBacking:
    def test_square_dataset_is_mmap_backed(self, tiny_config):
        session = WarmSession("WV", "tiny", tiny_config)
        assert session.mmap_backed is True
        assert session.describe()["mmap_backed"] is True
        # Edge arrays come straight from the store file: read-only
        # views, byte-equal to a second mapping of the stored graph.
        cols = session.engine.graph.edges.cols
        assert cols.flags.writeable is False
        stored = get_store().dataset("WV", "tiny")
        assert np.array_equal(cols, stored.indices)

    def test_bipartite_dataset_stays_in_memory(self, tiny_config):
        session = WarmSession("NF", "tiny", tiny_config)
        assert session.mmap_backed is False
        assert session.describe()["mmap_backed"] is False

    def test_mmap_results_match_in_memory(self, tiny_config):
        session = WarmSession("WV", "tiny", tiny_config)
        reference = GaaSXEngine(
            load_dataset("WV", "tiny"), config=tiny_config
        )
        warm = session.engine.pagerank(iterations=3)
        cold = reference.pagerank(iterations=3)
        assert np.allclose(warm.ranks, cold.ranks)
        assert warm.stats.events.counters_equal(cold.stats.events)

    def test_content_key_uses_store_digest(self, tiny_config):
        session = WarmSession("WV", "tiny", tiny_config)
        digest = get_store().dataset("WV", "tiny").digest
        assert session.content_key.startswith(digest)

    def test_store_failure_degrades_to_loader(self, tiny_config, monkeypatch):
        def broken(dataset, profile):
            raise StorageError("store offline")

        monkeypatch.setattr(pool_module, "load_dataset_mmap", broken)
        session = WarmSession("WV", "tiny", tiny_config)
        assert session.mmap_backed is False
        # The query path still works on the in-memory graph.
        result = session.engine.pagerank(iterations=1)
        assert np.all(np.isfinite(result.ranks))


class TestPoolSharing:
    def test_sessions_share_one_store_file(self, tiny_config):
        pool = SessionPool(config=tiny_config, max_sessions=4)
        first = pool.acquire("WV", "tiny")
        second = pool.acquire("WV", "tiny")
        assert first is second  # LRU hit
        assert pool.hits == 1 and pool.misses == 1
        stored = get_store()
        # Exactly one conversion happened for the whole pool.
        assert len(stored.entries()) == 1
        pool.clear()
