"""HTTP front-end tests over an ephemeral-port daemon."""

import asyncio
import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve import AnalyticsService
from repro.serve.http import HttpFrontend


async def raw_request(host, port, payload: bytes) -> bytes:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(payload)
    await writer.drain()
    response = await reader.read()
    writer.close()
    await writer.wait_closed()
    return response


async def request(host, port, method, path, body=None):
    """One HTTP/1.1 exchange; returns (status, headers, body bytes)."""
    encoded = (
        json.dumps(body).encode("utf-8") if body is not None else b""
    )
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Length: {len(encoded)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("ascii")
    raw = await raw_request(host, port, head + encoded)
    header_blob, _, payload = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("ascii").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, payload


async def with_daemon(scenario, **service_kwargs):
    """Run ``scenario(host, port)`` against a live ephemeral daemon."""
    service_kwargs.setdefault("registry", MetricsRegistry())
    service = AnalyticsService(**service_kwargs)
    service.preload(["WV"], "tiny")
    frontend = HttpFrontend(service, port=0)
    host, port = await frontend.start()
    try:
        return await scenario(host, port)
    finally:
        await frontend.aclose()


QUERY = {
    "dataset": "WV",
    "algorithm": "pagerank",
    "params": {"iterations": 3},
    "profile": "tiny",
}


class TestRoutes:
    def test_healthz(self):
        async def scenario(host, port):
            return await request(host, port, "GET", "/healthz")

        status, _headers, body = asyncio.run(with_daemon(scenario))
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_query_round_trip(self):
        async def scenario(host, port):
            return await request(host, port, "POST", "/query", QUERY)

        status, headers, body = asyncio.run(with_daemon(scenario))
        assert status == 200
        assert headers["content-type"] == "application/json"
        result = json.loads(body)
        assert result["dataset"] == "WV"
        assert result["algorithm"] == "pagerank"
        assert result["payload"]["iterations"] == 3
        assert result["payload"]["checksum"]
        assert result["modelled"]["energy_j"] > 0

    def test_concurrent_queries_coalesce_over_http(self):
        async def scenario(host, port):
            responses = await asyncio.gather(
                *(
                    request(host, port, "POST", "/query", QUERY)
                    for _ in range(4)
                )
            )
            return [json.loads(body) for _status, _h, body in responses]

        results = asyncio.run(with_daemon(scenario, run_delay_s=0.05))
        assert sum(1 for r in results if r["coalesced"]) == 3
        assert len({r["key"] for r in results}) == 1

    def test_metrics_exposition(self):
        async def scenario(host, port):
            await request(host, port, "POST", "/query", QUERY)
            return await request(host, port, "GET", "/metrics")

        status, headers, body = asyncio.run(with_daemon(scenario))
        assert status == 200
        assert headers["content-type"].startswith(
            "application/openmetrics-text"
        )
        text = body.decode("utf-8")
        assert "repro_serve_queries_total 1" in text
        assert "repro_serve_engine_runs_total 1" in text
        assert 'repro_serve_latency_s{quantile="0.5"}' in text
        assert text.endswith("# EOF\n")

    def test_stats_endpoint(self):
        async def scenario(host, port):
            await request(host, port, "POST", "/query", QUERY)
            return await request(host, port, "GET", "/stats")

        status, _headers, body = asyncio.run(with_daemon(scenario))
        assert status == 200
        stats = json.loads(body)
        assert stats["queries"] == 1
        assert stats["pool"]["resident"] == 1


class TestErrorMapping:
    @pytest.mark.parametrize(
        "body,status,error",
        [
            ({**QUERY, "dataset": "XX"}, 400, "DatasetError"),
            ({**QUERY, "algorithm": "gnn"}, 400, "AlgorithmError"),
            ({**QUERY, "bogus": 1}, 400, "ConfigError"),
            ({"algorithm": "bfs"}, 400, "ConfigError"),
        ],
    )
    def test_client_errors_are_400(self, body, status, error):
        async def scenario(host, port):
            return await request(host, port, "POST", "/query", body)

        got_status, _headers, payload = asyncio.run(with_daemon(scenario))
        assert got_status == status
        assert json.loads(payload)["error"] == error

    def test_malformed_json_is_400(self):
        async def scenario(host, port):
            raw = (
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 9\r\nConnection: close\r\n\r\n"
                b"not json!"
            )
            return await raw_request(host, port, raw)

        response = asyncio.run(with_daemon(scenario))
        assert response.startswith(b"HTTP/1.1 400")

    def test_quota_exceeded_is_429(self):
        async def scenario(host, port):
            first = await request(host, port, "POST", "/query", QUERY)
            second = await request(host, port, "POST", "/query", QUERY)
            return first, second

        first, second = asyncio.run(
            with_daemon(scenario, quota_rate=0.001, quota_burst=1)
        )
        assert first[0] == 200
        assert second[0] == 429
        assert json.loads(second[2])["error"] == "QuotaExceededError"

    def test_timeout_is_504(self):
        async def scenario(host, port):
            return await request(
                host, port, "POST", "/query",
                {**QUERY, "timeout_s": 0.05},
            )

        status, _headers, body = asyncio.run(
            with_daemon(scenario, run_delay_s=0.5)
        )
        assert status == 504
        assert json.loads(body)["error"] == "QueryTimeoutError"

    def test_unknown_path_is_404(self):
        async def scenario(host, port):
            return await request(host, port, "GET", "/nope")

        status, _headers, _body = asyncio.run(with_daemon(scenario))
        assert status == 404

    def test_wrong_method_is_405(self):
        async def scenario(host, port):
            get_query = await request(host, port, "GET", "/query")
            post_stats = await request(host, port, "POST", "/stats")
            return get_query[0], post_stats[0]

        assert asyncio.run(with_daemon(scenario)) == (405, 405)
