"""HTTP front-end tests over an ephemeral-port daemon."""

import asyncio
import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve import AnalyticsService
from repro.serve.http import HttpFrontend


async def raw_request(host, port, payload: bytes) -> bytes:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(payload)
    await writer.drain()
    response = await reader.read()
    writer.close()
    await writer.wait_closed()
    return response


async def request(host, port, method, path, body=None, headers=None):
    """One HTTP/1.1 exchange; returns (status, headers, body bytes)."""
    encoded = (
        json.dumps(body).encode("utf-8") if body is not None else b""
    )
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in (headers or {}).items()
    )
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Length: {len(encoded)}\r\n"
        f"{extra}"
        f"Connection: close\r\n\r\n"
    ).encode("ascii")
    raw = await raw_request(host, port, head + encoded)
    header_blob, _, payload = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("ascii").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, payload


async def with_daemon(scenario, **service_kwargs):
    """Run ``scenario(host, port)`` against a live ephemeral daemon."""
    service_kwargs.setdefault("registry", MetricsRegistry())
    service = AnalyticsService(**service_kwargs)
    service.preload(["WV"], "tiny")
    frontend = HttpFrontend(service, port=0)
    host, port = await frontend.start()
    try:
        return await scenario(host, port)
    finally:
        await frontend.aclose()


QUERY = {
    "dataset": "WV",
    "algorithm": "pagerank",
    "params": {"iterations": 3},
    "profile": "tiny",
}


class TestRoutes:
    def test_healthz(self):
        async def scenario(host, port):
            return await request(host, port, "GET", "/healthz")

        status, _headers, body = asyncio.run(with_daemon(scenario))
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_query_round_trip(self):
        async def scenario(host, port):
            return await request(host, port, "POST", "/query", QUERY)

        status, headers, body = asyncio.run(with_daemon(scenario))
        assert status == 200
        assert headers["content-type"] == "application/json"
        result = json.loads(body)
        assert result["dataset"] == "WV"
        assert result["algorithm"] == "pagerank"
        assert result["payload"]["iterations"] == 3
        assert result["payload"]["checksum"]
        assert result["modelled"]["energy_j"] > 0

    def test_concurrent_queries_coalesce_over_http(self):
        async def scenario(host, port):
            responses = await asyncio.gather(
                *(
                    request(host, port, "POST", "/query", QUERY)
                    for _ in range(4)
                )
            )
            return [json.loads(body) for _status, _h, body in responses]

        results = asyncio.run(with_daemon(scenario, run_delay_s=0.05))
        assert sum(1 for r in results if r["coalesced"]) == 3
        assert len({r["key"] for r in results}) == 1

    def test_metrics_exposition(self):
        async def scenario(host, port):
            await request(host, port, "POST", "/query", QUERY)
            return await request(host, port, "GET", "/metrics")

        status, headers, body = asyncio.run(with_daemon(scenario))
        assert status == 200
        assert headers["content-type"].startswith(
            "application/openmetrics-text"
        )
        text = body.decode("utf-8")
        assert "repro_serve_queries_total 1" in text
        assert "repro_serve_engine_runs_total 1" in text
        assert 'repro_serve_latency_s{quantile="0.5"}' in text
        assert text.endswith("# EOF\n")

    def test_stats_endpoint(self):
        async def scenario(host, port):
            await request(host, port, "POST", "/query", QUERY)
            return await request(host, port, "GET", "/stats")

        status, _headers, body = asyncio.run(with_daemon(scenario))
        assert status == 200
        stats = json.loads(body)
        assert stats["queries"] == 1
        assert stats["pool"]["resident"] == 1


class TestErrorMapping:
    @pytest.mark.parametrize(
        "body,status,error",
        [
            ({**QUERY, "dataset": "XX"}, 400, "DatasetError"),
            ({**QUERY, "algorithm": "gnn"}, 400, "AlgorithmError"),
            ({**QUERY, "bogus": 1}, 400, "ConfigError"),
            ({"algorithm": "bfs"}, 400, "ConfigError"),
        ],
    )
    def test_client_errors_are_400(self, body, status, error):
        async def scenario(host, port):
            return await request(host, port, "POST", "/query", body)

        got_status, _headers, payload = asyncio.run(with_daemon(scenario))
        assert got_status == status
        assert json.loads(payload)["error"] == error

    def test_malformed_json_is_400(self):
        async def scenario(host, port):
            raw = (
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 9\r\nConnection: close\r\n\r\n"
                b"not json!"
            )
            return await raw_request(host, port, raw)

        response = asyncio.run(with_daemon(scenario))
        assert response.startswith(b"HTTP/1.1 400")

    def test_quota_exceeded_is_429(self):
        async def scenario(host, port):
            first = await request(host, port, "POST", "/query", QUERY)
            second = await request(host, port, "POST", "/query", QUERY)
            return first, second

        first, second = asyncio.run(
            with_daemon(scenario, quota_rate=0.001, quota_burst=1)
        )
        assert first[0] == 200
        assert second[0] == 429
        assert json.loads(second[2])["error"] == "QuotaExceededError"

    def test_timeout_is_504(self):
        async def scenario(host, port):
            return await request(
                host, port, "POST", "/query",
                {**QUERY, "timeout_s": 0.05},
            )

        status, _headers, body = asyncio.run(
            with_daemon(scenario, run_delay_s=0.5)
        )
        assert status == 504
        assert json.loads(body)["error"] == "QueryTimeoutError"

    def test_unknown_path_is_404(self):
        async def scenario(host, port):
            return await request(host, port, "GET", "/nope")

        status, _headers, body = asyncio.run(with_daemon(scenario))
        assert status == 404
        payload = json.loads(body)
        assert payload["error"] == "NotFound"
        assert payload["message"] == "/nope"

    def test_wrong_method_is_405(self):
        async def scenario(host, port):
            get_query = await request(host, port, "GET", "/query")
            post_stats = await request(host, port, "POST", "/stats")
            return get_query, post_stats

        get_query, post_stats = asyncio.run(with_daemon(scenario))
        assert get_query[0] == 405
        assert post_stats[0] == 405
        assert json.loads(get_query[2])["error"] == "MethodNotAllowed"
        assert json.loads(post_stats[2])["error"] == "MethodNotAllowed"

    def test_malformed_json_reports_config_error_payload(self):
        async def scenario(host, port):
            raw = (
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 10\r\nConnection: close\r\n\r\n"
                b"{not json}"
            )
            return await raw_request(host, port, raw)

        response = asyncio.run(with_daemon(scenario))
        assert response.startswith(b"HTTP/1.1 400")
        payload = json.loads(response.partition(b"\r\n\r\n")[2])
        assert payload["error"] == "ConfigError"
        assert "not valid JSON" in payload["message"]

    def test_oversized_body_is_413(self):
        async def scenario(host, port):
            # Declare a body past the limit; the server must refuse
            # from the header alone, without reading the body.
            raw = (
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 999999999\r\n"
                b"Connection: close\r\n\r\n"
            )
            return await raw_request(host, port, raw)

        response = asyncio.run(with_daemon(scenario))
        assert response.startswith(b"HTTP/1.1 413")
        payload = json.loads(response.partition(b"\r\n\r\n")[2])
        assert payload["error"] == "PayloadTooLarge"

    def test_unparseable_content_length_is_413(self):
        async def scenario(host, port):
            raw = (
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: banana\r\n"
                b"Connection: close\r\n\r\n"
            )
            return await raw_request(host, port, raw)

        response = asyncio.run(with_daemon(scenario))
        assert response.startswith(b"HTTP/1.1 413")

    def test_malformed_request_line_is_400(self):
        async def scenario(host, port):
            return await raw_request(host, port, b"garbage\r\n\r\n")

        response = asyncio.run(with_daemon(scenario))
        assert response.startswith(b"HTTP/1.1 400")


TRACEPARENT_RE = r"^00-[0-9a-f]{32}-[0-9a-f]{16}-0[01]$"


class TestTracing:
    def test_response_carries_traceparent_header(self):
        import re

        async def scenario(host, port):
            return await request(host, port, "POST", "/query", QUERY)

        status, headers, body = asyncio.run(with_daemon(scenario))
        assert status == 200
        assert re.match(TRACEPARENT_RE, headers["traceparent"])
        result = json.loads(body)
        # One id everywhere: header, x-trace-id, result body.
        trace_id = headers["traceparent"].split("-")[1]
        assert headers["x-trace-id"] == trace_id
        assert result["trace_id"] == trace_id

    def test_inbound_traceparent_continues_the_trace(self):
        inbound_trace = "4bf92f3577b34da6a3ce929d0e0e4736"
        header = f"00-{inbound_trace}-00f067aa0ba902b7-01"

        async def scenario(host, port):
            return await request(
                host, port, "POST", "/query", QUERY,
                headers={"traceparent": header},
            )

        status, headers, body = asyncio.run(with_daemon(scenario))
        assert status == 200
        assert headers["x-trace-id"] == inbound_trace
        assert json.loads(body)["trace_id"] == inbound_trace
        # The server minted its own span id under the caller's trace.
        assert headers["traceparent"] != header
        assert headers["traceparent"].split("-")[1] == inbound_trace

    def test_malformed_traceparent_starts_fresh_trace(self):
        async def scenario(host, port):
            return await request(
                host, port, "POST", "/query", QUERY,
                headers={"traceparent": "ff-bogus"},
            )

        status, headers, _body = asyncio.run(with_daemon(scenario))
        assert status == 200
        assert len(headers["x-trace-id"]) == 32

    def test_error_responses_also_carry_trace_headers(self):
        async def scenario(host, port):
            return await request(host, port, "GET", "/nope")

        status, headers, _body = asyncio.run(with_daemon(scenario))
        assert status == 404
        assert "x-trace-id" in headers

    def test_traced_query_lands_in_flight_recorder(self):
        inbound_trace = "ab" * 16
        header = f"00-{inbound_trace}-{'cd' * 8}-01"

        async def scenario(host, port):
            await request(
                host, port, "POST", "/query", QUERY,
                headers={"traceparent": header},
            )
            return await request(host, port, "GET", "/debug/flight")

        status, _headers, body = asyncio.run(with_daemon(scenario))
        assert status == 200
        dump = json.loads(body)
        # The first finished request is the baseline sample.
        entry = next(
            e for e in dump["entries"]
            if e["trace_id"] == inbound_trace
        )
        assert entry["status"] == "ok"
        assert entry["algorithm"] == "pagerank"
        names = [s["name"] for s in entry["spans"]]
        # Service, session, and the five modelled phases all share the
        # trace: the span set proves end-to-end context propagation.
        assert "serve.query" in names
        assert "serve.session" in names
        assert "engine.run" in names
        assert "Data loading" in names
        assert all(s["trace"] == inbound_trace for s in entry["spans"])

    def test_metrics_carry_slo_gauges_and_exemplars(self):
        async def scenario(host, port):
            await request(host, port, "POST", "/query", QUERY)
            return await request(host, port, "GET", "/metrics")

        _status, _headers, body = asyncio.run(with_daemon(scenario))
        text = body.decode("utf-8")
        assert "repro_slo_availability_burn_rate_1m 0" in text
        assert "repro_slo_latency_budget_remaining 1" in text
        # At least one latency bucket links to a real trace id.
        assert 'repro_serve_latency_s_bucket{le="' in text
        exemplar_lines = [
            line for line in text.splitlines()
            if "_bucket" in line and "trace_id=" in line
        ]
        assert exemplar_lines


class TestHealth:
    def test_readyz_when_warm(self):
        async def scenario(host, port):
            return await request(host, port, "GET", "/readyz")

        status, _headers, body = asyncio.run(with_daemon(scenario))
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["checks"] == {
            "accepting": True,
            "queue_headroom": True,
            "pool_warm": True,
            "store_reachable": True,
        }

    def test_readyz_unavailable_after_close(self):
        async def scenario(host, port):
            return host, port

        async def run():
            from repro.obs.metrics import MetricsRegistry
            from repro.serve import AnalyticsService
            from repro.serve.http import HttpFrontend

            service = AnalyticsService(registry=MetricsRegistry())
            frontend = HttpFrontend(service, port=0)
            host, port = await frontend.start()
            service._closed = True  # simulate shutdown mid-drain
            try:
                return await request(host, port, "GET", "/readyz")
            finally:
                service._closed = False
                await frontend.aclose()

        status, _headers, body = asyncio.run(run())
        assert status == 503
        assert json.loads(body)["checks"]["accepting"] is False
