"""Service-level proofs: coalescing, isolation, quotas, shedding.

The headline guarantee — N identical concurrent queries execute exactly
one engine run — is asserted through the ``serve.*`` metrics counters,
not timing: each service here meters into a private
:class:`~repro.obs.metrics.MetricsRegistry`, so counter values are
exact, not racy.
"""

import asyncio

import pytest

from repro.config import ArchConfig
from repro.core.engine import GaaSXEngine
from repro.errors import (
    QueryTimeoutError,
    QuotaExceededError,
    SessionPoolExhaustedError,
)
from repro.graphs.datasets import load_dataset
from repro.obs.metrics import MetricsRegistry
from repro.serve import AnalyticsService, QueryRequest
from repro.serve.protocol import SERVABLE_ALGORITHMS, summarize_result


def make_service(**kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    return AnalyticsService(**kwargs)


def run(coro):
    return asyncio.run(coro)


async def submit_burst(service, queries):
    """Submit all queries concurrently; returns results in order."""
    return await asyncio.gather(
        *(service.submit(q) for q in queries), return_exceptions=True
    )


class TestCoalescing:
    def test_identical_concurrent_queries_run_once(self):
        """Ten equal queries -> exactly one engine run, nine coalesced."""
        service = make_service(run_delay_s=0.05)
        query = QueryRequest(
            "WV", "pagerank", params={"iterations": 4}, profile="tiny"
        )
        try:
            service.preload(["WV"], "tiny")
            results = run(submit_burst(service, [query] * 10))
        finally:
            service.close()
        assert not any(isinstance(r, Exception) for r in results)
        registry = service.registry.snapshot()
        assert registry["serve.queries"] == 10
        assert registry["serve.engine_runs"] == 1
        assert registry["serve.coalesced"] == 9
        # Exactly one request triggered the run; the rest rode it.
        assert sum(1 for r in results if not r.coalesced) == 1
        assert sum(1 for r in results if r.coalesced) == 9
        # Shared run => shared key and byte-identical payloads.
        assert len({r.key for r in results}) == 1
        assert len({r.payload["checksum"] for r in results}) == 1

    def test_different_params_do_not_coalesce(self):
        service = make_service(run_delay_s=0.02)
        queries = [
            QueryRequest(
                "WV", "pagerank", params={"iterations": n},
                profile="tiny",
            )
            for n in (2, 4)
        ]
        try:
            service.preload(["WV"], "tiny")
            results = run(submit_burst(service, queries))
        finally:
            service.close()
        assert service.registry.snapshot()["serve.engine_runs"] == 2
        assert results[0].key != results[1].key
        assert (
            results[0].payload["checksum"]
            != results[1].payload["checksum"]
        )

    def test_mixed_queries_match_direct_engine_runs(self):
        """Concurrent mixed traffic returns exactly what a dedicated
        engine computes for each query — no cross-contamination."""
        service = make_service(run_delay_s=0.01)
        queries = [
            QueryRequest(
                "WV", "pagerank", params={"iterations": 3},
                profile="tiny",
            ),
            QueryRequest(
                "WV", "bfs", params={"source": 0}, profile="tiny"
            ),
            QueryRequest("WV", "wcc", profile="tiny"),
        ]
        try:
            service.preload(["WV"], "tiny")
            results = run(submit_burst(service, queries))
        finally:
            service.close()
        engine = GaaSXEngine(
            load_dataset("WV", "tiny"), config=ArchConfig()
        )
        for query, served in zip(queries, results):
            direct = summarize_result(
                query.algorithm,
                engine.run(query.algorithm, **query.params),
            )
            assert served.payload["checksum"] == direct["checksum"], (
                query.algorithm
            )

    def test_sequential_queries_do_not_coalesce(self):
        """Coalescing shares in-flight work only; a finished run's key
        is released and the next identical query runs fresh."""
        service = make_service()
        query = QueryRequest("WV", "wcc", profile="tiny")

        async def twice():
            first = await service.submit(query)
            second = await service.submit(query)
            return first, second

        try:
            service.preload(["WV"], "tiny")
            first, second = run(twice())
        finally:
            service.close()
        assert service.registry.snapshot()["serve.engine_runs"] == 2
        assert not first.coalesced and not second.coalesced
        assert first.payload == second.payload


class TestAdmission:
    def test_over_quota_tenant_rejected_in_quota_proceeds(self):
        service = make_service(quota_rate=0.001, quota_burst=2)
        query = QueryRequest("WV", "wcc", profile="tiny")

        async def scenario():
            greedy = [
                QueryRequest(
                    "WV", "wcc", profile="tiny", tenant="greedy"
                )
            ] * 3
            outcomes = await submit_burst(service, greedy)
            polite = await service.submit(
                QueryRequest("WV", "wcc", profile="tiny", tenant="polite")
            )
            return outcomes, polite

        try:
            service.preload(["WV"], "tiny")
            outcomes, polite = run(scenario())
        finally:
            service.close()
        rejected = [
            r for r in outcomes if isinstance(r, QuotaExceededError)
        ]
        served = [r for r in outcomes if not isinstance(r, Exception)]
        assert len(rejected) == 1 and len(served) == 2
        assert polite.payload["num_components"] >= 1
        snapshot = service.registry.snapshot()
        assert snapshot["serve.quota_rejected"] == 1

    def test_queue_bound_sheds_excess_distinct_queries(self):
        service = make_service(max_pending=1, run_delay_s=0.1)
        queries = [
            QueryRequest(
                "WV", "pagerank", params={"iterations": n},
                profile="tiny",
            )
            for n in (1, 2, 3)
        ]
        try:
            service.preload(["WV"], "tiny")
            results = run(submit_burst(service, queries))
        finally:
            service.close()
        shed = [
            r for r in results
            if isinstance(r, SessionPoolExhaustedError)
        ]
        served = [r for r in results if not isinstance(r, Exception)]
        assert len(served) == 1 and len(shed) == 2
        assert service.registry.snapshot()["serve.shed"] == 2

    def test_duplicates_are_exempt_from_the_queue_bound(self):
        """Coalesced queries add no engine work, so max_pending=1 must
        still serve any number of identical concurrent queries."""
        service = make_service(max_pending=1, run_delay_s=0.05)
        query = QueryRequest("WV", "wcc", profile="tiny")
        try:
            service.preload(["WV"], "tiny")
            results = run(submit_burst(service, [query] * 5))
        finally:
            service.close()
        assert not any(isinstance(r, Exception) for r in results)
        assert service.registry.snapshot()["serve.shed"] == 0

    def test_timeout_raises_typed_error(self):
        service = make_service(run_delay_s=0.5)
        query = QueryRequest(
            "WV", "wcc", profile="tiny", timeout_s=0.05
        )
        try:
            service.preload(["WV"], "tiny")
            with pytest.raises(QueryTimeoutError, match="deadline"):
                run(service.submit(query))
        finally:
            service.close()
        assert service.registry.snapshot()["serve.timeouts"] == 1

    def test_closed_service_refuses_queries(self):
        service = make_service()
        service.close()
        with pytest.raises(SessionPoolExhaustedError, match="shut down"):
            run(service.submit(QueryRequest("WV", "wcc", profile="tiny")))


class TestAllAlgorithms:
    def test_every_servable_algorithm_answers(self):
        params = {
            "pagerank": {"iterations": 3},
            "bfs": {"source": 0},
            "sssp": {"source": 0},
            "wcc": {},
            "cf": {"num_features": 4, "epochs": 1},
        }
        assert set(params) == set(SERVABLE_ALGORITHMS)
        service = make_service()
        queries = [
            QueryRequest(
                "NF" if algorithm == "cf" else "WV",
                algorithm,
                params=params[algorithm],
                profile="tiny",
            )
            for algorithm in SERVABLE_ALGORITHMS
        ]
        try:
            service.preload(["WV", "NF"], "tiny")
            results = run(submit_burst(service, queries))
        finally:
            service.close()
        assert not any(isinstance(r, Exception) for r in results)
        for result in results:
            assert result.payload["checksum"]
            assert result.modelled["total_s"] > 0
            assert result.latency_s > 0


class TestMetricsHygiene:
    def test_session_reuse_never_registers_new_instruments(self):
        """The double-registration audit: instruments are minted once
        per service; serving more queries over reused warm sessions
        must not grow the registry."""
        registry = MetricsRegistry()
        service = make_service(registry=registry)
        query = QueryRequest("WV", "wcc", profile="tiny")
        try:
            service.preload(["WV"], "tiny")
            run(service.submit(query))
            count_after_first = len(registry.instruments())
            for _ in range(3):
                run(service.submit(query))
            run(
                service.submit(
                    QueryRequest(
                        "WV", "pagerank", params={"iterations": 2},
                        profile="tiny",
                    )
                )
            )
            assert len(registry.instruments()) == count_after_first
        finally:
            service.close()

    def test_reinstantiation_over_shared_registry_is_safe(self):
        """Two services over one registry share instruments instead of
        colliding (no TypeError, no duplicate families)."""
        registry = MetricsRegistry()
        first = make_service(registry=registry)
        names = set(registry.instruments())
        second = make_service(registry=registry)  # must not raise
        assert set(registry.instruments()) == names
        first.close()
        second.close()

    def test_instrument_names_are_fixed_not_query_derived(self):
        registry = MetricsRegistry()
        service = make_service(registry=registry)
        try:
            service.preload(["WV"], "tiny")
            run(
                service.submit(
                    QueryRequest(
                        "WV", "bfs", params={"source": 7},
                        profile="tiny", tenant="acme",
                    )
                )
            )
        finally:
            service.close()
        for name in registry.instruments():
            assert "acme" not in name
            assert "WV" not in name
            assert "7" not in name


class TestRequestObservability:
    def test_result_carries_a_trace_id(self):
        service = make_service()
        query = QueryRequest("WV", "wcc", profile="tiny")
        try:
            service.preload(["WV"], "tiny")
            result = run(service.submit(query))
        finally:
            service.close()
        assert len(result.trace_id) == 32
        assert result.to_dict()["trace_id"] == result.trace_id

    def test_ambient_context_is_adopted(self):
        from repro.obs import context as obs_context

        service = make_service()
        query = QueryRequest("WV", "wcc", profile="tiny")

        async def scenario():
            ctx = obs_context.new_root()
            with obs_context.active(ctx):
                result = await service.submit(query)
            return ctx, result

        try:
            service.preload(["WV"], "tiny")
            ctx, result = run(scenario())
        finally:
            service.close()
        assert result.trace_id == ctx.trace_id

    def test_flight_recorder_keeps_the_first_query(self):
        service = make_service()
        query = QueryRequest(
            "WV", "pagerank", params={"iterations": 2}, profile="tiny"
        )
        try:
            service.preload(["WV"], "tiny")
            result = run(service.submit(query))
            entry = service.flight.find(result.trace_id)
        finally:
            service.close()
        assert entry is not None
        assert entry["status"] == "ok"
        assert entry["kept_because"] == "sampled"
        names = [s["name"] for s in entry["spans"]]
        assert "serve.query" in names
        assert "serve.session" in names
        assert "engine.run" in names

    def test_errors_keep_their_flight_entry(self):
        service = make_service(quota_rate=0.001, quota_burst=1)
        query = QueryRequest("WV", "wcc", profile="tiny")
        try:
            service.preload(["WV"], "tiny")
            run(service.submit(query))
            with pytest.raises(QuotaExceededError):
                run(service.submit(query))
            entries = service.flight.entries()
        finally:
            service.close()
        rejected = [e for e in entries if e["status"] != "ok"]
        assert len(rejected) == 1
        assert rejected[0]["status"] == "quota_rejected"
        assert rejected[0]["kept_because"] == "error"

    def test_slo_counts_server_faults_not_quota_rejections(self):
        service = make_service(quota_rate=0.001, quota_burst=1)
        query = QueryRequest("WV", "wcc", profile="tiny")
        try:
            service.preload(["WV"], "tiny")
            run(service.submit(query))
            with pytest.raises(QuotaExceededError):
                run(service.submit(query))
            stats = service.slo.window_stats(60)
        finally:
            service.close()
        # Both requests recorded; the client rejection is not an error.
        assert stats["total"] == 2
        assert stats["errors"] == 0

    def test_slo_counts_timeouts_as_server_faults(self):
        service = make_service(run_delay_s=0.3)
        query = QueryRequest(
            "WV", "wcc", profile="tiny", timeout_s=0.05
        )
        try:
            service.preload(["WV"], "tiny")
            with pytest.raises(QueryTimeoutError):
                run(service.submit(query))
            stats = service.slo.window_stats(60)
        finally:
            service.close()
        assert stats["errors"] == 1

    def test_coalesced_followers_link_the_leader_trace(self):
        service = make_service(run_delay_s=0.05, flight_capacity=64)
        # keep_every=16 would drop most follower traces; make the ring
        # keep everything so the link is observable.
        service.flight.keep_every = 1
        query = QueryRequest(
            "WV", "pagerank", params={"iterations": 4}, profile="tiny"
        )
        try:
            service.preload(["WV"], "tiny")
            results = run(submit_burst(service, [query] * 4))
            entries = service.flight.entries()
        finally:
            service.close()
        leader = next(r for r in results if not r.coalesced)
        followers = [
            e for e in entries if "leader_trace_id" in e
        ]
        assert len(followers) == 3
        assert all(
            e["leader_trace_id"] == leader.trace_id for e in followers
        )

    def test_pool_lifecycle_metrics_in_registry(self):
        registry = MetricsRegistry()
        service = make_service(registry=registry, max_sessions=1)
        try:
            service.preload(["WV"], "tiny")
            service.preload(["NF"], "tiny")  # evicts WV
        finally:
            service.close()
        snapshot = registry.snapshot()
        assert snapshot["serve.pool.sessions_created"] == 2
        assert snapshot["serve.pool.evictions"] == 1
        assert snapshot["serve.pool.resident"] == 0  # cleared on close

    def test_close_restores_tracer_state(self):
        from repro.obs.trace import get_tracer

        tracer = get_tracer()
        was_enabled = tracer.enabled
        tracer.enabled = False
        try:
            service = make_service()
            assert tracer.enabled
            sink_count = len(tracer._sinks)
            service.close()
            assert not tracer.enabled
            assert len(tracer._sinks) == sink_count - 1
        finally:
            tracer.enabled = was_enabled

    def test_readiness_checks(self):
        service = make_service()
        try:
            ready, checks = service.readiness()
            assert ready
            assert checks["accepting"] and checks["pool_warm"]
        finally:
            service.close()
        ready, checks = service.readiness()
        assert not ready
        assert checks["accepting"] is False

    def test_modelled_energy_rides_result_stats_and_metrics(self):
        """One query's priced energy shows up in its response, the
        cumulative /stats gauges, and the labelled /metrics series."""
        from repro.obs.export import render_openmetrics

        registry = MetricsRegistry()
        service = make_service(registry=registry)
        query = QueryRequest(
            "WV", "pagerank", {"iterations": 2}, profile="tiny"
        )
        try:
            service.preload(["WV"], "tiny")
            result = run(service.submit(query))
            stats = service.stats()
        finally:
            service.close()
        assert result.modelled["energy_j"] > 0
        breakdown = result.modelled["energy"]
        assert breakdown["total"] == pytest.approx(
            result.modelled["energy_j"]
        )
        assert stats["energy_j"] == pytest.approx(
            result.modelled["energy_j"]
        )
        by_category = stats["energy_by_category"]
        assert "total" not in by_category
        assert sum(by_category.values()) == pytest.approx(
            stats["energy_j"]
        )
        text = render_openmetrics(registry)
        assert "repro_serve_energy_j_total" in text
        assert 'repro_serve_energy_category_j_total{category=' in text

    def test_stats_include_slo_and_flight(self):
        service = make_service()
        query = QueryRequest("WV", "wcc", profile="tiny")
        try:
            service.preload(["WV"], "tiny")
            run(service.submit(query))
            stats = service.stats()
        finally:
            service.close()
        assert stats["slo"]["windows"]["1m"]["total"] == 1
        assert stats["flight"]["kept"] == 1
