"""Query protocol tests: validation, content keys, summaries."""

import pytest

from repro.errors import (
    AlgorithmError,
    ConfigError,
    DatasetError,
)
from repro.serve.protocol import (
    SERVABLE_ALGORITHMS,
    QueryRequest,
    canonical_params,
    query_key,
)


class TestQueryRequestValidation:
    def test_minimal_query(self):
        query = QueryRequest("WV", "pagerank")
        assert query.dataset == "WV"
        assert query.params == {}
        assert query.profile == "bench"
        assert query.tenant == "default"

    def test_dataset_case_insensitive(self):
        assert QueryRequest("wv", "pagerank").dataset == "WV"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError, match="XX"):
            QueryRequest("XX", "pagerank")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(AlgorithmError, match="kmeans"):
            QueryRequest("WV", "kmeans")

    def test_gnn_not_servable(self):
        assert "gnn" not in SERVABLE_ALGORITHMS
        with pytest.raises(AlgorithmError):
            QueryRequest("WV", "gnn")

    def test_bad_profile_rejected(self):
        with pytest.raises(ConfigError, match="profile"):
            QueryRequest("WV", "pagerank", profile="huge")

    def test_empty_tenant_rejected(self):
        with pytest.raises(ConfigError, match="tenant"):
            QueryRequest("WV", "pagerank", tenant="")

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ConfigError, match="timeout"):
            QueryRequest("WV", "pagerank", timeout_s=0)

    def test_non_json_params_rejected(self):
        with pytest.raises(ConfigError, match="JSON"):
            QueryRequest("WV", "pagerank", params={"x": object()})

    def test_frozen(self):
        query = QueryRequest("WV", "pagerank")
        with pytest.raises(AttributeError):
            query.dataset = "SD"


class TestRoundTrip:
    def test_to_from_dict(self):
        query = QueryRequest(
            "WV", "bfs", params={"source": 3}, profile="tiny",
            tenant="acme", timeout_s=9.5,
        )
        assert QueryRequest.from_dict(query.to_dict()) == query

    def test_from_dict_requires_dataset_and_algorithm(self):
        with pytest.raises(ConfigError, match="dataset"):
            QueryRequest.from_dict({"algorithm": "bfs"})
        with pytest.raises(ConfigError, match="algorithm"):
            QueryRequest.from_dict({"dataset": "WV"})

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="frobnicate"):
            QueryRequest.from_dict(
                {"dataset": "WV", "algorithm": "bfs", "frobnicate": 1}
            )

    def test_from_dict_rejects_non_object_params(self):
        with pytest.raises(ConfigError, match="params"):
            QueryRequest.from_dict(
                {"dataset": "WV", "algorithm": "bfs", "params": [1]}
            )


class TestContentKeys:
    def test_canonical_params_order_independent(self):
        assert canonical_params({"a": 1, "b": 2}) == canonical_params(
            {"b": 2, "a": 1}
        )

    def test_equal_queries_share_a_key(self):
        a = QueryRequest("WV", "pagerank", params={"iterations": 5})
        b = QueryRequest("wv", "pagerank", params={"iterations": 5})
        assert query_key("sess", a) == query_key("sess", b)

    def test_params_change_the_key(self):
        a = QueryRequest("WV", "pagerank", params={"iterations": 5})
        b = QueryRequest("WV", "pagerank", params={"iterations": 6})
        assert query_key("sess", a) != query_key("sess", b)

    def test_algorithm_changes_the_key(self):
        a = QueryRequest("WV", "bfs", params={"source": 0})
        b = QueryRequest("WV", "sssp", params={"source": 0})
        assert query_key("sess", a) != query_key("sess", b)

    def test_session_changes_the_key(self):
        query = QueryRequest("WV", "pagerank")
        assert query_key("sess-a", query) != query_key("sess-b", query)

    def test_tenant_does_not_change_the_key(self):
        # Coalescing is content-addressed: the same computation is
        # shared across tenants (quotas are charged per request).
        a = QueryRequest("WV", "pagerank", tenant="t1")
        b = QueryRequest("WV", "pagerank", tenant="t2")
        assert query_key("sess", a) == query_key("sess", b)

    def test_session_selector(self):
        query = QueryRequest("WV", "pagerank", profile="tiny")
        assert query.session_selector == ("WV", "tiny")
