"""Edge-case coverage: degenerate graphs through the full engine stack."""

import numpy as np
import pytest

from repro.baselines import reference
from repro.baselines.graphr import GraphREngine
from repro.core.engine import GaaSXEngine
from repro.graphs import COOMatrix, Graph
from tests.conftest import make_graph


class TestEmptyGraph:
    @pytest.fixture()
    def empty(self):
        return Graph.from_edge_list([], num_vertices=5)

    def test_pagerank(self, empty):
        result = GaaSXEngine(empty).pagerank(iterations=3)
        assert np.allclose(result.ranks, 0.15)

    def test_bfs(self, empty):
        result = GaaSXEngine(empty).bfs(2)
        assert result.distances[2] == 0
        assert np.isinf(result.distances).sum() == 4

    def test_wcc(self, empty):
        result = GaaSXEngine(empty).wcc()
        assert result.num_components == 5

    def test_graphr(self, empty):
        result = GraphREngine(empty).pagerank(iterations=3)
        assert np.allclose(result.ranks, 0.15)

    def test_zero_cost(self, empty):
        stats = GaaSXEngine(empty).pagerank(iterations=3).stats
        assert stats.events.cam_searches == 0
        assert stats.events.mac_ops == 0


class TestSelfLoops:
    @pytest.fixture()
    def looped(self):
        # 0 -> 0 (self loop), 0 -> 1.
        coo = COOMatrix(
            np.array([0, 0]), np.array([0, 1]),
            np.array([2.0, 1.0]), (3, 3),
        )
        return Graph(coo)

    def test_pagerank_matches_reference(self, looped):
        result = GaaSXEngine(looped).pagerank(iterations=10)
        assert np.allclose(
            result.ranks, reference.pagerank(looped, iterations=10)
        )

    def test_sssp_ignores_self_loop(self, looped):
        result = GaaSXEngine(looped).sssp(0)
        assert result.distances[0] == 0.0
        assert result.distances[1] == 1.0

    def test_graphr_agrees(self, looped):
        a = GaaSXEngine(looped).pagerank(iterations=5)
        b = GraphREngine(looped).pagerank(iterations=5)
        assert np.allclose(a.ranks, b.ranks)


class TestSingleVertex:
    def test_all_kernels(self):
        g = Graph.from_edge_list([], num_vertices=1)
        engine = GaaSXEngine(g)
        assert engine.pagerank(iterations=2).ranks[0] == pytest.approx(0.15)
        assert engine.bfs(0).distances[0] == 0
        assert engine.wcc().num_components == 1


class TestParallelEdgesInput:
    def test_duplicate_edges_flow_through_engine(self):
        """A caller can hand-build a COO with duplicate (u, v) pairs;
        the engine treats each stored row as its own edge, exactly like
        the hardware would store two CAM rows."""
        coo = COOMatrix(
            np.array([0, 0]), np.array([1, 1]),
            np.array([3.0, 5.0]), (2, 2),
        )
        g = Graph(coo)
        result = GaaSXEngine(g).sssp(0)
        assert result.distances[1] == 3.0  # min over both stored rows

    def test_duplicate_edges_pagerank_counts_multiplicity(self):
        coo = COOMatrix(
            np.array([0, 0]), np.array([1, 1]), np.ones(2), (2, 2)
        )
        g = Graph(coo)
        result = GaaSXEngine(g).pagerank(iterations=5)
        ref = reference.pagerank(g, iterations=5)
        assert np.allclose(result.ranks, ref)


class TestDisconnectedSource:
    def test_sssp_from_sink(self):
        g = make_graph([(0, 1), (1, 2)], n=3)
        result = GaaSXEngine(g).sssp(2)  # vertex 2 has no out-edges
        assert result.distances[2] == 0
        assert np.isinf(result.distances[0])

    def test_high_vertex_ids_untouched(self):
        g = make_graph([(0, 1)], n=1000)
        result = GaaSXEngine(g).bfs(0)
        assert result.reached().sum() == 2
