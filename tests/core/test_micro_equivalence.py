"""The repository's central validation: the vectorized engine counts
exactly the events the array-level simulator performs."""

import numpy as np
import pytest

from repro.baselines import reference
from repro.config import ArchConfig
from repro.core.engine import GaaSXEngine
from repro.core.micro import MicroGaaSX
from repro.graphs.generators import rmat


def finite_or(x, fill=-1.0):
    return np.where(np.isfinite(x), x, fill)


@pytest.fixture(scope="module")
def tiny_graph():
    return rmat(96, 400, seed=17)


@pytest.fixture(scope="module")
def multi_batch_config():
    # 3 crossbars force several batches and partial crossbars.
    return ArchConfig(num_crossbars=3)


class TestPageRankEquivalence:
    def test_events_identical(self, tiny_graph, multi_batch_config):
        engine = GaaSXEngine(tiny_graph, config=multi_batch_config)
        micro = MicroGaaSX(tiny_graph, config=multi_batch_config)
        fast = engine.pagerank(iterations=2)
        ranks, events = micro.pagerank(iterations=2)
        assert fast.stats.events.counters_equal(events)

    def test_values_agree(self, tiny_graph, multi_batch_config):
        engine = GaaSXEngine(tiny_graph, config=multi_batch_config)
        micro = MicroGaaSX(tiny_graph, config=multi_batch_config)
        fast = engine.pagerank(iterations=3)
        ranks, _ = micro.pagerank(iterations=3)
        assert np.allclose(fast.ranks, ranks)

    def test_micro_matches_reference(self, tiny_graph):
        micro = MicroGaaSX(tiny_graph)
        ranks, _ = micro.pagerank(iterations=4)
        assert np.allclose(
            ranks, reference.pagerank(tiny_graph, iterations=4)
        )


class TestTraversalEquivalence:
    @pytest.mark.parametrize("algo", ["bfs", "sssp"])
    def test_events_identical(self, tiny_graph, multi_batch_config, algo):
        engine = GaaSXEngine(tiny_graph, config=multi_batch_config)
        micro = MicroGaaSX(tiny_graph, config=multi_batch_config)
        fast = getattr(engine, algo)(0)
        dist, events = getattr(micro, algo)(0)
        assert fast.stats.events.counters_equal(events)

    @pytest.mark.parametrize("algo", ["bfs", "sssp"])
    def test_values_agree(self, tiny_graph, multi_batch_config, algo):
        engine = GaaSXEngine(tiny_graph, config=multi_batch_config)
        micro = MicroGaaSX(tiny_graph, config=multi_batch_config)
        fast = getattr(engine, algo)(0)
        dist, _ = getattr(micro, algo)(0)
        assert np.allclose(finite_or(fast.distances), finite_or(dist))

    def test_micro_sssp_matches_dijkstra(self, tiny_graph):
        micro = MicroGaaSX(tiny_graph)
        dist, _ = micro.sssp(0)
        assert np.allclose(
            finite_or(dist), finite_or(reference.sssp(tiny_graph, 0))
        )

    def test_hand_checked_example(self, figure7_graph):
        """The paper's Figure 7 graph, accumulating dst=2 weights.

        Edges into vertex 2: (1,2,6), (3,2,5), (4,2,8) -> sum 19.
        Exercised through a single micro PageRank-style search."""
        micro = MicroGaaSX(figure7_graph)
        # SSSP from 1: dist(2) = 6, dist(3) = 4, dist(4) = min(10, 6) = 6.
        dist, _ = micro.sssp(1)
        assert dist[2] == 6.0
        assert dist[3] == 4.0
        assert dist[4] == 6.0


class TestAccumulateLimitEquivalence:
    def test_non_default_limit(self, tiny_graph):
        config = ArchConfig(num_crossbars=3, mac_accumulate_limit=4)
        engine = GaaSXEngine(tiny_graph, config=config)
        micro = MicroGaaSX(tiny_graph, config=config)
        fast = engine.pagerank(iterations=1)
        _, events = micro.pagerank(iterations=1)
        assert fast.stats.events.counters_equal(events)
