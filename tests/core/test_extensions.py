"""Tests for the extension kernels (WCC, GNN), streaming mode and the
quantized micro engine."""

import numpy as np
import pytest

from repro.core.algorithms.gnn import reference_forward
from repro.core.engine import GaaSXEngine
from repro.core.micro import MicroGaaSX
from repro.errors import AlgorithmError
from repro.graphs.generators import rmat
from tests.conftest import make_graph

networkx = pytest.importorskip("networkx")


class TestWCC:
    def test_matches_networkx(self, medium_rmat):
        result = GaaSXEngine(medium_rmat).wcc()
        g = networkx.DiGraph()
        g.add_nodes_from(range(medium_rmat.num_vertices))
        g.add_edges_from(
            zip(
                medium_rmat.edges.rows.tolist(),
                medium_rmat.edges.cols.tolist(),
            )
        )
        comps = list(networkx.weakly_connected_components(g))
        assert result.num_components == len(comps)
        label_of = {}
        for comp in comps:
            smallest = min(comp)
            for v in comp:
                label_of[v] = smallest
        ref = np.array(
            [label_of[v] for v in range(medium_rmat.num_vertices)]
        )
        assert np.array_equal(result.labels, ref)

    def test_label_is_component_minimum(self, small_rmat):
        result = GaaSXEngine(small_rmat).wcc()
        for label in np.unique(result.labels):
            members = np.flatnonzero(result.labels == label)
            assert members.min() == label

    def test_direction_ignored(self):
        g = make_graph([(3, 0), (1, 3)], n=5)  # chain via reverse edges
        result = GaaSXEngine(g).wcc()
        assert result.labels[0] == result.labels[1] == result.labels[3]
        assert result.labels[2] == 2  # isolated keeps its own id

    def test_isolated_vertices_are_singletons(self):
        g = make_graph([(0, 1)], n=4)
        result = GaaSXEngine(g).wcc()
        assert result.num_components == 3
        assert np.array_equal(result.component_sizes(), [2, 1, 1])

    def test_events_counted(self, small_rmat):
        result = GaaSXEngine(small_rmat).wcc()
        events = result.stats.events
        assert events.cam_searches > 0
        assert events.mac_ops > 0
        assert result.stats.total_energy_j > 0


class TestGNN:
    @pytest.fixture()
    def setup(self, medium_rmat):
        rng = np.random.default_rng(3)
        features = rng.uniform(0, 1, size=(medium_rmat.num_vertices, 12))
        w1 = rng.normal(size=(12, 16)) * 0.3
        w2 = rng.normal(size=(16, 4)) * 0.3
        return medium_rmat, features, [w1, w2]

    def test_matches_reference(self, setup):
        graph, features, weights = setup
        result = GaaSXEngine(graph).gnn_forward(features, weights)
        ref = reference_forward(
            graph.edges.rows, graph.edges.cols, graph.num_vertices,
            features, weights,
        )
        assert np.allclose(result.embeddings, ref)

    def test_output_shape(self, setup):
        graph, features, weights = setup
        result = GaaSXEngine(graph).gnn_forward(features, weights)
        assert result.embeddings.shape == (graph.num_vertices, 4)
        assert result.num_layers == 2

    def test_isolated_vertex_keeps_self_features(self):
        g = make_graph([(0, 1)], n=3)
        features = np.eye(3)
        w = np.eye(3)
        result = GaaSXEngine(g).gnn_forward(features, [w], activation="none")
        # Vertex 2 has no in-edges: (h_2) / 1 = its own one-hot.
        assert np.allclose(result.embeddings[2], [0, 0, 1])
        # Vertex 1 averages its own and vertex 0's features.
        assert np.allclose(result.embeddings[1], [0.5, 0.5, 0])

    def test_relu_applied_between_layers(self, setup):
        graph, features, _ = setup
        w_neg = -np.eye(12)
        w_id = np.eye(12)
        out = GaaSXEngine(graph).gnn_forward(
            features, [w_neg, w_id], activation="relu"
        )
        # First layer output is all-negative, ReLU zeroes it, so the
        # final embeddings are exactly zero.
        assert np.allclose(out.embeddings, 0.0)

    def test_validation(self, setup):
        graph, features, weights = setup
        engine = GaaSXEngine(graph)
        with pytest.raises(AlgorithmError):
            engine.gnn_forward(features[:-1], weights)
        with pytest.raises(AlgorithmError):
            engine.gnn_forward(features, [])
        with pytest.raises(AlgorithmError):
            engine.gnn_forward(features, [np.ones((5, 5))])
        with pytest.raises(AlgorithmError):
            engine.gnn_forward(features, weights, activation="tanh")

    def test_wider_features_cost_more(self, medium_rmat):
        rng = np.random.default_rng(0)
        engine = GaaSXEngine(medium_rmat)
        narrow = engine.gnn_forward(
            rng.uniform(size=(medium_rmat.num_vertices, 8)),
            [rng.normal(size=(8, 8))],
        )
        wide = engine.gnn_forward(
            rng.uniform(size=(medium_rmat.num_vertices, 64)),
            [rng.normal(size=(64, 64))],
        )
        assert wide.stats.total_time_s > narrow.stats.total_time_s
        assert wide.stats.total_energy_j > narrow.stats.total_energy_j


class TestStreamingMode:
    def test_streaming_costs_more(self, medium_rmat):
        resident = GaaSXEngine(medium_rmat).pagerank(iterations=8)
        streaming = GaaSXEngine(medium_rmat, streaming=True).pagerank(
            iterations=8
        )
        assert streaming.stats.total_time_s > resident.stats.total_time_s
        assert (
            streaming.stats.events.cell_writes
            > resident.stats.events.cell_writes
        )

    def test_streaming_identical_results(self, medium_rmat):
        a = GaaSXEngine(medium_rmat).pagerank(iterations=5)
        b = GaaSXEngine(medium_rmat, streaming=True).pagerank(iterations=5)
        assert np.allclose(a.ranks, b.ranks)

    def test_streaming_pagerank_writes_scale_with_iterations(
        self, medium_rmat
    ):
        engine = GaaSXEngine(medium_rmat, streaming=True)
        one = engine.pagerank(iterations=1).stats.events
        four = engine.pagerank(iterations=4).stats.events
        assert four.row_writes == 4 * one.row_writes

    def test_streaming_sssp_loads_only_active_shards(self, medium_rmat):
        stream = GaaSXEngine(medium_rmat, streaming=True).sssp(0)
        resident = GaaSXEngine(medium_rmat).sssp(0)
        # Per-superstep selective loading may still exceed the one-time
        # full load, but results must agree.
        assert np.array_equal(
            np.nan_to_num(stream.distances, posinf=-1),
            np.nan_to_num(resident.distances, posinf=-1),
        )
        assert (
            stream.stats.events.cam_row_writes
            >= resident.stats.events.cam_row_writes
        )


class TestQuantizedMicro:
    def test_quantized_pagerank_close_to_exact(self):
        graph = rmat(48, 150, seed=9)
        exact, _ = MicroGaaSX(graph).pagerank(iterations=3)
        quant, _ = MicroGaaSX(graph, quantized=True).pagerank(iterations=3)
        assert np.allclose(exact, quant, rtol=0.1, atol=0.2)

    def test_quantized_sssp_matches_exact(self):
        """Integer edge weights are exactly representable in Q8.8, so
        even the quantized pipeline must produce identical distances."""
        graph = rmat(48, 150, seed=9, weight_range=(1.0, 9.0))
        exact, _ = MicroGaaSX(graph).sssp(0)
        quant, _ = MicroGaaSX(graph, quantized=True).sssp(0)
        assert np.array_equal(
            np.nan_to_num(exact, posinf=-1), np.nan_to_num(quant, posinf=-1)
        )

    def test_quantized_counts_same_op_events(self):
        graph = rmat(48, 150, seed=9)
        _, ev_exact = MicroGaaSX(graph).pagerank(iterations=1)
        _, ev_quant = MicroGaaSX(graph, quantized=True).pagerank(iterations=1)
        # Op-level counters agree; only ADC activity differs (the
        # quantized pipeline digitizes every slice-phase).
        for key in ("cam_searches", "mac_ops", "cell_writes", "row_writes"):
            assert ev_exact.as_dict()[key] == ev_quant.as_dict()[key]
        assert ev_quant.adc_conversions >= ev_exact.adc_conversions
