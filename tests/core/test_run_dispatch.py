"""Tests for GaaSXEngine.run(): uniform kernel dispatch by name."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import GaaSXEngine
from repro.errors import AlgorithmError


class TestDispatch:
    def test_algorithms_registry(self):
        assert GaaSXEngine.ALGORITHMS == (
            "pagerank", "bfs", "sssp", "wcc", "cf", "gnn"
        )

    def test_pagerank_matches_direct_call(self, small_rmat):
        engine = GaaSXEngine(small_rmat)
        via_run = engine.run("pagerank", iterations=5)
        direct = engine.pagerank(iterations=5)
        np.testing.assert_allclose(via_run.ranks, direct.ranks)

    def test_bfs_matches_direct_call(self, small_rmat):
        engine = GaaSXEngine(small_rmat)
        via_run = engine.run("bfs", source=0)
        direct = engine.bfs(0)
        np.testing.assert_array_equal(via_run.distances, direct.distances)

    def test_sssp_matches_direct_call(self, diamond_graph):
        engine = GaaSXEngine(diamond_graph)
        via_run = engine.run("sssp", source=0)
        direct = engine.sssp(0)
        np.testing.assert_allclose(via_run.distances, direct.distances)

    def test_wcc_matches_direct_call(self, small_rmat):
        engine = GaaSXEngine(small_rmat)
        assert (
            engine.run("wcc").num_components
            == engine.wcc().num_components
        )

    def test_cf_dispatches_to_collaborative_filtering(
        self, small_bipartite
    ):
        engine = GaaSXEngine(small_bipartite)
        via_run = engine.run("cf", num_features=4, epochs=1)
        direct = engine.collaborative_filtering(num_features=4, epochs=1)
        np.testing.assert_allclose(
            via_run.user_features, direct.user_features
        )

    def test_gnn_matches_direct_call(self, small_rmat):
        rng = np.random.default_rng(0)
        features = rng.uniform(size=(small_rmat.num_vertices, 8))
        weights = [rng.normal(size=(8, 4))]
        engine = GaaSXEngine(small_rmat)
        via_run = engine.run("gnn", features=features, weights=weights)
        direct = engine.gnn_forward(features, weights)
        np.testing.assert_allclose(via_run.embeddings, direct.embeddings)


class TestErrors:
    def test_unknown_algorithm_raises(self, small_rmat):
        engine = GaaSXEngine(small_rmat)
        with pytest.raises(AlgorithmError, match="unknown algorithm"):
            engine.run("page-rank")

    def test_error_lists_valid_names(self, small_rmat):
        engine = GaaSXEngine(small_rmat)
        with pytest.raises(AlgorithmError) as excinfo:
            engine.run("nope")
        message = str(excinfo.value)
        for name in GaaSXEngine.ALGORITHMS:
            assert name in message

    def test_kernel_kwargs_pass_through(self, small_rmat):
        engine = GaaSXEngine(small_rmat)
        with pytest.raises(TypeError):
            engine.run("pagerank", not_a_kwarg=1)
