"""Tests for the content-keyed layout cache (repro.core.cache)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ArchConfig
from repro.core import cache as layout_cache
from repro.core.cache import (
    CacheStats,
    LayoutCache,
    config_fingerprint,
    graph_fingerprint,
)
from repro.core.loader import build_layout
from repro.graphs.generators import rmat
from repro.graphs.partition import partition_graph


@pytest.fixture(autouse=True)
def _isolated_global_cache():
    """Keep global-cache mutations from leaking into other tests."""
    yield
    layout_cache.reset_cache()


class TestFingerprints:
    def test_config_fingerprint_is_content_based(self):
        assert config_fingerprint(ArchConfig()) == config_fingerprint(
            ArchConfig()
        )

    def test_config_fingerprint_tracks_field_changes(self):
        assert config_fingerprint(ArchConfig()) != config_fingerprint(
            ArchConfig(num_crossbars=7)
        )

    def test_graph_fingerprint_is_content_based(self):
        a = rmat(64, 300, seed=42, name="a")
        b = rmat(64, 300, seed=42, name="b")
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_graph_fingerprint_tracks_edges(self):
        a = rmat(64, 300, seed=42)
        b = rmat(64, 300, seed=43)
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_graph_fingerprint_memoized_on_instance(self, small_rmat):
        first = graph_fingerprint(small_rmat)
        assert graph_fingerprint(small_rmat) == first
        assert getattr(small_rmat, "_repro_content_fingerprint") == first


class TestInProcessTier:
    def test_grid_hit_returns_same_object(self, small_rmat):
        cache = LayoutCache()
        first = cache.grid(small_rmat, 16)
        second = cache.grid(small_rmat, 16)
        assert first is second
        assert cache.stats.grid_hits == 1
        assert cache.stats.grid_misses == 1

    def test_grid_keyed_by_content_not_identity(self):
        cache = LayoutCache()
        cache.grid(rmat(64, 300, seed=42), 16)
        cache.grid(rmat(64, 300, seed=42), 16)  # equal content, new object
        assert cache.stats.grid_hits == 1

    def test_distinct_intervals_miss(self, small_rmat):
        cache = LayoutCache()
        cache.grid(small_rmat, 16)
        cache.grid(small_rmat, 32)
        assert cache.stats.grid_misses == 2

    def test_layout_hit(self, small_rmat):
        cache = LayoutCache()
        config = ArchConfig()
        grid = cache.grid(small_rmat, 16)
        first = cache.layout(small_rmat, grid, "row", config)
        second = cache.layout(small_rmat, grid, "row", config)
        assert first is second
        assert cache.stats.layout_hits == 1

    def test_layout_keyed_by_order_and_config(self, small_rmat):
        cache = LayoutCache()
        grid = cache.grid(small_rmat, 16)
        cache.layout(small_rmat, grid, "row", ArchConfig())
        cache.layout(small_rmat, grid, "col", ArchConfig())
        cache.layout(small_rmat, grid, "row", ArchConfig(num_crossbars=7))
        assert cache.stats.layout_misses == 3
        assert cache.stats.layout_hits == 0

    def test_lru_eviction(self):
        cache = LayoutCache(max_grids=1)
        a = rmat(64, 300, seed=1)
        b = rmat(64, 300, seed=2)
        cache.grid(a, 16)
        cache.grid(b, 16)  # evicts a
        cache.grid(a, 16)  # must recompute
        assert cache.stats.grid_misses == 3
        assert cache.stats.grid_hits == 0


class TestDiskTier:
    def test_grid_rehydrates_across_instances(self, small_rmat, tmp_path):
        warm = LayoutCache(disk_dir=str(tmp_path))
        original = warm.grid(small_rmat, 16)
        assert warm.stats.disk_writes == 1

        cold = LayoutCache(disk_dir=str(tmp_path))  # fresh process stand-in
        restored = cold.grid(small_rmat, 16)
        assert cold.stats.grid_disk_hits == 1
        assert cold.stats.grid_misses == 0
        np.testing.assert_array_equal(restored.src, original.src)
        np.testing.assert_array_equal(restored.dst, original.dst)
        np.testing.assert_array_equal(restored.weight, original.weight)
        fresh = partition_graph(small_rmat, 16)
        np.testing.assert_array_equal(restored.src, fresh.src)

    def test_layout_rehydrates_across_instances(self, small_rmat, tmp_path):
        config = ArchConfig()
        warm = LayoutCache(disk_dir=str(tmp_path))
        grid = warm.grid(small_rmat, 16)
        original = warm.layout(small_rmat, grid, "row", config)

        cold = LayoutCache(disk_dir=str(tmp_path))
        restored = cold.layout(
            small_rmat, cold.grid(small_rmat, 16), "row", config
        )
        assert cold.stats.layout_disk_hits == 1
        np.testing.assert_array_equal(restored.src, original.src)
        np.testing.assert_array_equal(
            restored.xbar_of_edge, original.xbar_of_edge
        )
        assert restored.num_xbars == original.num_xbars
        fresh = build_layout(grid, "row", config)
        np.testing.assert_array_equal(restored.src, fresh.src)

    def test_cached_graph_skips_builder_on_second_load(self, tmp_path):
        calls = []

        def builder():
            calls.append(1)
            return rmat(64, 300, seed=42, name="built")

        warm = LayoutCache(disk_dir=str(tmp_path))
        original = warm.cached_graph("test|rmat|64|300|42", builder)
        cold = LayoutCache(disk_dir=str(tmp_path))
        restored = cold.cached_graph("test|rmat|64|300|42", builder)
        assert len(calls) == 1
        assert cold.stats.graph_disk_hits == 1
        assert restored.name == original.name
        assert restored.num_vertices == original.num_vertices
        np.testing.assert_array_equal(
            restored.edges.rows, original.edges.rows
        )
        np.testing.assert_array_equal(
            restored.edges.data, original.edges.data
        )

    def test_corrupt_entry_is_a_miss(self, small_rmat, tmp_path):
        warm = LayoutCache(disk_dir=str(tmp_path))
        warm.grid(small_rmat, 16)
        for entry in tmp_path.iterdir():
            entry.write_bytes(b"not an npz file")
        cold = LayoutCache(disk_dir=str(tmp_path))
        cold.grid(small_rmat, 16)  # must rebuild, not crash
        assert cold.stats.grid_misses == 1

    def test_version_bump_invalidates_keys(self, monkeypatch):
        old = layout_cache._entry_key("grid", "abc", 16)
        monkeypatch.setattr(layout_cache, "CACHE_VERSION", 999)
        assert layout_cache._entry_key("grid", "abc", 16) != old

    def test_disabled_disk_tier_never_writes(self, small_rmat, tmp_path):
        cache = LayoutCache(disk_dir=None)
        cache.grid(small_rmat, 16)
        assert cache.stats.disk_writes == 0
        assert list(tmp_path.iterdir()) == []


class TestStats:
    def test_hit_rate(self):
        stats = CacheStats(grid_hits=3, layout_disk_hits=1, grid_misses=1)
        assert stats.hits == 4
        assert stats.lookups == 5
        assert stats.hit_rate == pytest.approx(0.8)

    def test_empty_hit_rate_is_zero(self):
        assert CacheStats().hit_rate == 0.0

    def test_delta(self):
        before = CacheStats(grid_hits=2).to_dict()
        after = CacheStats(grid_hits=5, layout_misses=1).to_dict()
        delta = CacheStats.delta(before, after)
        assert delta["grid_hits"] == 3
        assert delta["layout_misses"] == 1


class TestGlobalCache:
    def test_enable_disk_cache_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        layout_cache.reset_cache()
        assert layout_cache.enable_disk_cache() == str(tmp_path / "env")
        assert layout_cache.get_cache().disk_dir == str(tmp_path / "env")

    def test_explicit_path_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert layout_cache.enable_disk_cache(
            str(tmp_path / "explicit")
        ) == str(tmp_path / "explicit")

    def test_disable_detaches_disk_tier(self, tmp_path):
        layout_cache.enable_disk_cache(str(tmp_path))
        layout_cache.disable_disk_cache()
        assert layout_cache.get_cache().disk_dir is None
