"""Accounting invariants of the collaborative-filtering kernel."""

import numpy as np
import pytest

from repro.core.engine import GaaSXEngine


class TestCFEvents:
    def test_events_scale_with_epochs(self, small_bipartite):
        engine = GaaSXEngine(small_bipartite)
        one = engine.collaborative_filtering(8, epochs=1).stats.events
        three = engine.collaborative_filtering(8, epochs=3).stats.events
        # Per-epoch compute triples; one-time loads stay fixed.
        assert three.mac_ops == 3 * one.mac_ops
        assert three.cam_searches == 3 * one.cam_searches
        assert three.cam_row_writes == one.cam_row_writes

    def test_feature_width_drives_segments(self, small_bipartite):
        engine = GaaSXEngine(small_bipartite)
        narrow = engine.collaborative_filtering(16, epochs=1).stats.events
        wide = engine.collaborative_filtering(32, epochs=1).stats.events
        # 32 features need two 16-column segments: twice the MAC ops in
        # the sweeps (cell writes also grow with the feature tables).
        assert wide.mac_ops == 2 * narrow.mac_ops
        assert wide.cell_writes > narrow.cell_writes

    def test_both_phases_search_both_fields(self, small_bipartite):
        engine = GaaSXEngine(small_bipartite)
        events = engine.collaborative_filtering(8, epochs=1).stats.events
        layout = engine.layout("col")
        item_groups = layout.groups_by("dst").num_groups
        user_groups = layout.groups_by("src").num_groups
        # Two sweeps per phase: error dots + accumulation.
        assert events.cam_searches == 2 * (item_groups + user_groups)

    def test_rating_rows_written_once(self, small_bipartite):
        engine = GaaSXEngine(small_bipartite)
        events = engine.collaborative_filtering(8, epochs=4).stats.events
        assert events.cam_row_writes == small_bipartite.num_ratings

    def test_positive_time_and_energy(self, small_bipartite):
        stats = GaaSXEngine(small_bipartite).collaborative_filtering(
            8, epochs=2
        ).stats
        assert stats.load_time_s > 0
        assert stats.compute_time_s > 0
        assert stats.total_energy_j > 0


class TestCFHyperparameters:
    def test_zero_learning_rate_freezes_factors(self, small_bipartite):
        engine = GaaSXEngine(small_bipartite)
        frozen = engine.collaborative_filtering(
            8, epochs=5, learning_rate=0.0, seed=9
        )
        initial = engine.collaborative_filtering(
            8, epochs=0, learning_rate=0.01, seed=9
        )
        assert np.allclose(frozen.user_features, initial.user_features)
        assert np.allclose(frozen.item_features, initial.item_features)

    def test_regularization_shrinks_factors(self, small_bipartite):
        engine = GaaSXEngine(small_bipartite)
        loose = engine.collaborative_filtering(
            8, epochs=10, learning_rate=0.005, regularization=0.0, seed=3
        )
        tight = engine.collaborative_filtering(
            8, epochs=10, learning_rate=0.005, regularization=0.5, seed=3
        )
        assert (
            np.linalg.norm(tight.user_features)
            < np.linalg.norm(loose.user_features)
        )

    def test_seed_controls_init(self, small_bipartite):
        engine = GaaSXEngine(small_bipartite)
        a = engine.collaborative_filtering(8, epochs=1, seed=1)
        b = engine.collaborative_filtering(8, epochs=1, seed=2)
        assert not np.allclose(a.user_features, b.user_features)
