"""Tests for the five-phase execution-plan summary."""

import pytest

from repro.core.controller import build_plan
from repro.core.engine import GaaSXEngine


@pytest.fixture()
def plan(small_rmat):
    engine = GaaSXEngine(small_rmat)
    result = engine.pagerank(iterations=3)
    return build_plan(result.stats, engine.config), result.stats


class TestExecutionPlan:
    def test_five_phases_in_paper_order(self, plan):
        names = [p.name for p in plan[0].phases]
        assert names == [
            "Initialization",
            "Data loading",
            "CAM search",
            "MAC operation",
            "Special function",
        ]

    def test_times_sum_to_total(self, plan):
        execution_plan, stats = plan
        total = sum(p.time_s for p in execution_plan.phases)
        assert total == pytest.approx(stats.total_time_s)

    def test_energy_covers_dynamic(self, plan):
        execution_plan, stats = plan
        total = sum(p.energy_j for p in execution_plan.phases)
        assert total == pytest.approx(stats.energy.dynamic_j)

    def test_operation_counts(self, plan):
        execution_plan, stats = plan
        assert (
            execution_plan.phase("CAM search").operations
            == stats.events.cam_searches
        )
        assert (
            execution_plan.phase("MAC operation").operations
            == stats.events.mac_ops
        )

    def test_phase_lookup_missing(self, plan):
        with pytest.raises(KeyError):
            plan[0].phase("Teleportation")

    def test_render(self, plan):
        text = plan[0].render()
        assert "CAM search" in text
        assert "passes: 3" in text

    def test_passes_recorded(self, plan):
        assert plan[0].passes == 3
