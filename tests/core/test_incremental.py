"""Incremental recompute: delta PageRank / warm WCC vs. full runs.

The contract under test: for any graph and any mutation sequence, the
incremental kernels answer within epsilon of a from-scratch recompute
(PageRank) or exactly (WCC min-label propagation), and memoization
never perturbs the hardware accounting (EventLog / per-array counter
parity).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ArchConfig
from repro.core.algorithms.incremental import wcc_warm_state
from repro.core.engine import GaaSXEngine
from repro.core.micro import MicroGaaSX
from repro.core.reuse import reset_reuse_cache, set_reuse_enabled
from repro.errors import AlgorithmError
from repro.graphs import Graph
from repro.obs.hw import HwMonitor, check_parity


@pytest.fixture(autouse=True)
def fresh_reuse_state():
    reset_reuse_cache()
    set_reuse_enabled(None)
    yield
    reset_reuse_cache()
    set_reuse_enabled(None)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def graphs(draw, max_vertices=20, max_edges=50):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    count = draw(st.integers(min_value=1, max_value=max_edges))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=count, max_size=count,
        )
    )
    return Graph.from_edge_list(np.array(pairs), num_vertices=n)


@st.composite
def mutations(draw, n, max_rows=8):
    def batch():
        rows = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                min_size=0, max_size=max_rows,
            )
        )
        return np.array(
            [[s, d, 1.0] for s, d in rows], dtype=np.float64
        ).reshape(-1, 3)

    return batch(), batch()  # (inserts, deletes)


@st.composite
def graph_and_mutation_sequence(draw):
    graph = draw(graphs())
    steps = draw(st.integers(min_value=1, max_value=3))
    seq = [draw(mutations(graph.num_vertices)) for _ in range(steps)]
    return graph, seq


# ----------------------------------------------------------------------
# PageRank
# ----------------------------------------------------------------------
class TestIncrementalPageRank:
    @given(graph_and_mutation_sequence())
    @settings(max_examples=25, deadline=None)
    def test_matches_full_recompute_within_epsilon(self, data):
        graph, sequence = data
        # Enough iterations that both runs reach the 1e-10 fixed point
        # (worst-case contraction rate is alpha=0.85 per pass): the
        # epsilon-equivalence contract is about converged answers, not
        # mid-flight truncations.
        warm = GaaSXEngine(graph).pagerank(
            iterations=200, tolerance=1e-10
        ).ranks
        for inserts, deletes in sequence:
            graph = graph.with_edges(inserts=inserts, deletes=deletes)
            engine = GaaSXEngine(graph)
            full = engine.pagerank(iterations=200, tolerance=1e-10)
            incremental = engine.pagerank(
                iterations=200, tolerance=1e-10, incremental=True,
                warm_ranks=warm, epsilon=1e-9,
            )
            np.testing.assert_allclose(
                incremental.ranks, full.ranks, atol=1e-6,
            )
            warm = incremental.ranks

    def test_cold_incremental_matches_full(self, small_rmat):
        engine = GaaSXEngine(small_rmat)
        full = engine.pagerank(iterations=200, tolerance=1e-10)
        incremental = engine.pagerank(
            iterations=200, tolerance=1e-10, incremental=True,
            epsilon=1e-9,
        )
        np.testing.assert_allclose(
            incremental.ranks, full.ranks, atol=1e-6
        )

    def test_warm_restart_converges_early(self, small_rmat):
        engine = GaaSXEngine(small_rmat)
        warm = engine.pagerank(iterations=60, tolerance=1e-6).ranks
        restarted = engine.pagerank(
            iterations=60, tolerance=1e-6, incremental=True,
            warm_ranks=warm,
        )
        assert restarted.iterations < 60

    def test_disabled_reuse_falls_back_to_full(self, small_rmat):
        set_reuse_enabled(False)
        engine = GaaSXEngine(small_rmat)
        full = engine.pagerank(iterations=10)
        fallback = engine.pagerank(iterations=10, incremental=True)
        assert np.array_equal(fallback.ranks, full.ranks)
        assert fallback.iterations == full.iterations

    def test_personalization_is_rejected(self, small_rmat):
        engine = GaaSXEngine(small_rmat)
        with pytest.raises(AlgorithmError):
            engine.pagerank(
                incremental=True,
                personalization=np.ones(small_rmat.num_vertices),
            )


# ----------------------------------------------------------------------
# WCC
# ----------------------------------------------------------------------
class TestIncrementalWcc:
    @given(graph_and_mutation_sequence())
    @settings(max_examples=25, deadline=None)
    def test_warm_labels_match_full_recompute(self, data):
        graph, sequence = data
        labels = GaaSXEngine(graph).wcc().labels
        for inserts, deletes in sequence:
            new_graph = graph.with_edges(
                inserts=inserts, deletes=deletes
            )
            warm_labels, seed = wcc_warm_state(
                labels, new_graph.num_vertices,
                inserts=inserts, deletes=deletes,
            )
            engine = GaaSXEngine(new_graph)
            warm = engine.wcc(
                warm_labels=warm_labels, seed_vertices=seed
            )
            full = engine.wcc()
            assert np.array_equal(warm.labels, full.labels)
            graph, labels = new_graph, warm.labels

    def test_warm_state_shape_is_validated(self):
        with pytest.raises(AlgorithmError):
            wcc_warm_state(np.zeros(3, dtype=np.int64), 5)

    def test_insert_only_seeds_endpoints(self):
        labels = np.arange(6, dtype=np.int64)
        warm, seed = wcc_warm_state(
            labels, 6, inserts=np.array([[2, 4, 1.0]])
        )
        assert np.array_equal(warm, labels)
        assert np.array_equal(seed, [2, 4])


# ----------------------------------------------------------------------
# Accounting parity under memoization
# ----------------------------------------------------------------------
class TestMemoizedParity:
    def test_warm_micro_run_keeps_counter_parity(self, medium_rmat):
        limit = ArchConfig().mac_accumulate_limit
        runs = []
        for _ in range(2):  # second run answers from the memo
            monitor = HwMonitor(limit)
            ranks, events = MicroGaaSX(
                medium_rmat, hw=monitor
            ).pagerank(iterations=2)
            assert check_parity(monitor, events)["ok"]
            runs.append((ranks, events.as_dict()))
        (cold_ranks, cold_events), (warm_ranks, warm_events) = runs
        assert np.array_equal(cold_ranks, warm_ranks)
        assert cold_events == warm_events

    def test_incremental_engine_events_match_full_structure(
        self, small_rmat
    ):
        """The delta path charges real search/MAC events (nonzero),
        and disabling reuse reproduces the full kernel's accounting
        exactly."""
        engine = GaaSXEngine(small_rmat)
        incremental = engine.pagerank(
            iterations=10, incremental=True
        )
        assert incremental.stats.events.cam_searches > 0
        set_reuse_enabled(False)
        full = engine.pagerank(iterations=10)
        fallback = engine.pagerank(iterations=10, incremental=True)
        assert (
            fallback.stats.events.as_dict() == full.stats.events.as_dict()
        )
