"""Functional correctness of the GaaS-X kernels against golden
references and networkx."""

import numpy as np
import pytest

from repro.baselines import reference
from repro.core.engine import GaaSXEngine

networkx = pytest.importorskip("networkx")


def to_nx(graph):
    g = networkx.DiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    for s, d, w in zip(graph.edges.rows, graph.edges.cols, graph.weights):
        g.add_edge(int(s), int(d), weight=float(w))
    return g


def dist_equal(a, b):
    mask_a, mask_b = np.isfinite(a), np.isfinite(b)
    return np.array_equal(mask_a, mask_b) and np.allclose(a[mask_a], b[mask_b])


class TestPageRank:
    def test_matches_reference(self, medium_rmat):
        engine = GaaSXEngine(medium_rmat)
        result = engine.pagerank(alpha=0.85, iterations=15)
        ref = reference.pagerank(medium_rmat, alpha=0.85, iterations=15)
        assert np.allclose(result.ranks, ref)

    def test_fixed_point_property(self, small_rmat):
        """At convergence the ranks satisfy Equation 3."""
        engine = GaaSXEngine(small_rmat)
        result = engine.pagerank(iterations=200, tolerance=1e-12)
        ranks = result.ranks
        out_deg = small_rmat.out_degrees().astype(float)
        inv = np.divide(1.0, out_deg, out=np.zeros_like(out_deg),
                        where=out_deg > 0)
        contrib = np.bincount(
            small_rmat.edges.cols,
            weights=ranks[small_rmat.edges.rows] * inv[small_rmat.edges.rows],
            minlength=small_rmat.num_vertices,
        )
        assert np.allclose(ranks, 0.15 + 0.85 * contrib, atol=1e-8)

    def test_sink_only_vertices_get_base_rank(self):
        from tests.conftest import make_graph

        g = make_graph([(0, 1), (2, 1)], n=3)
        result = GaaSXEngine(g).pagerank(alpha=0.85, iterations=20)
        # Vertices 0 and 2 have no in-edges: rank = 1 - alpha.
        assert result.ranks[0] == pytest.approx(0.15)
        assert result.ranks[2] == pytest.approx(0.15)

    def test_alpha_zero_gives_uniform(self, small_rmat):
        result = GaaSXEngine(small_rmat).pagerank(alpha=0.0, iterations=5)
        assert np.allclose(result.ranks, 1.0)

    def test_figure9_example(self, figure7_graph):
        """PageRank on the paper's example graph matches the reference."""
        result = GaaSXEngine(figure7_graph).pagerank(iterations=10)
        ref = reference.pagerank(figure7_graph, iterations=10)
        assert np.allclose(result.ranks, ref)


class TestBFS:
    def test_matches_networkx(self, medium_rmat):
        engine = GaaSXEngine(medium_rmat)
        result = engine.bfs(0)
        lengths = networkx.single_source_shortest_path_length(
            to_nx(medium_rmat), 0
        )
        ref = np.full(medium_rmat.num_vertices, np.inf)
        for v, l in lengths.items():
            ref[v] = l
        assert dist_equal(result.distances, ref)

    def test_matches_reference(self, medium_rmat):
        result = GaaSXEngine(medium_rmat).bfs(5)
        assert dist_equal(result.distances, reference.bfs(medium_rmat, 5))

    def test_isolated_source(self):
        from tests.conftest import make_graph

        g = make_graph([(0, 1)], n=4)
        result = GaaSXEngine(g).bfs(3)
        assert result.distances[3] == 0
        assert np.isinf(result.distances[0])
        assert result.supersteps == 1  # one (empty) frontier check

    def test_supersteps_equal_eccentricity(self, diamond_graph):
        result = GaaSXEngine(diamond_graph).bfs(0)
        assert np.array_equal(result.distances, [0, 1, 1, 2])
        assert result.supersteps == 3  # two expanding steps + one empty check

    def test_reached_mask(self, diamond_graph):
        result = GaaSXEngine(diamond_graph).bfs(1)
        assert np.array_equal(result.reached(), [False, True, False, True])


class TestSSSP:
    def test_matches_dijkstra_reference(self, medium_rmat):
        result = GaaSXEngine(medium_rmat).sssp(0)
        assert dist_equal(result.distances, reference.sssp(medium_rmat, 0))

    def test_matches_networkx(self, road_grid):
        result = GaaSXEngine(road_grid).sssp(0)
        lengths = networkx.single_source_dijkstra_path_length(
            to_nx(road_grid), 0
        )
        ref = np.full(road_grid.num_vertices, np.inf)
        for v, l in lengths.items():
            ref[v] = l
        assert dist_equal(result.distances, ref)

    def test_diamond_shortest_path(self, diamond_graph):
        result = GaaSXEngine(diamond_graph).sssp(0)
        assert np.array_equal(result.distances, [0.0, 1.0, 4.0, 3.0])

    def test_bfs_equals_sssp_on_unit_weights(self, medium_rmat):
        unit = medium_rmat.with_unit_weights()
        bfs = GaaSXEngine(unit).bfs(0)
        sssp = GaaSXEngine(unit).sssp(0)
        assert dist_equal(bfs.distances, sssp.distances)

    def test_triangle_inequality(self, small_rmat):
        result = GaaSXEngine(small_rmat).sssp(0)
        d = result.distances
        for s, t, w in zip(
            small_rmat.edges.rows, small_rmat.edges.cols, small_rmat.weights
        ):
            if np.isfinite(d[s]):
                assert d[t] <= d[s] + w + 1e-9

    def test_rejects_negative_weights(self):
        from tests.conftest import make_graph

        g = make_graph([(0, 1)], weights=[-1.0], n=2)
        with pytest.raises(Exception):
            GaaSXEngine(g).sssp(0)


class TestCollaborativeFiltering:
    def test_matches_reference(self, small_bipartite):
        engine = GaaSXEngine(small_bipartite)
        result = engine.collaborative_filtering(
            num_features=8, epochs=3, seed=11
        )
        ref_p, ref_q = reference.collaborative_filtering(
            small_bipartite, num_features=8, epochs=3, seed=11
        )
        assert np.allclose(result.user_features, ref_p)
        assert np.allclose(result.item_features, ref_q)

    def test_training_reduces_rmse(self, small_bipartite):
        engine = GaaSXEngine(small_bipartite)
        r = small_bipartite.ratings
        short = engine.collaborative_filtering(
            num_features=8, epochs=1, learning_rate=0.01, seed=1
        )
        long = engine.collaborative_filtering(
            num_features=8, epochs=30, learning_rate=0.01, seed=1
        )
        assert long.rmse(r.rows, r.cols, r.data) < short.rmse(
            r.rows, r.cols, r.data
        )

    def test_predict_shape(self, small_bipartite):
        result = GaaSXEngine(small_bipartite).collaborative_filtering(
            num_features=4, epochs=1
        )
        users = np.array([0, 1])
        items = np.array([0, 1])
        assert result.predict(users, items).shape == (2,)

    def test_epochs_counted(self, small_bipartite):
        result = GaaSXEngine(small_bipartite).collaborative_filtering(
            num_features=4, epochs=5
        )
        assert result.epochs == 5
        assert result.stats.passes == 5

    def test_rejects_bad_features(self, small_bipartite):
        with pytest.raises(Exception):
            GaaSXEngine(small_bipartite).collaborative_filtering(
                num_features=0
            )


class TestPersonalizedPageRank:
    def test_uniform_personalization_equals_default(self, small_rmat):
        import numpy as np

        engine = GaaSXEngine(small_rmat)
        plain = engine.pagerank(iterations=8)
        uniform = engine.pagerank(
            iterations=8,
            personalization=np.ones(small_rmat.num_vertices),
        )
        assert np.allclose(plain.ranks, uniform.ranks)

    def test_teleport_mass_concentrates(self, small_rmat):
        import numpy as np

        engine = GaaSXEngine(small_rmat)
        pref = np.zeros(small_rmat.num_vertices)
        pref[7] = 1.0
        result = engine.pagerank(iterations=20, personalization=pref)
        plain = engine.pagerank(iterations=20)
        # The preferred vertex gains rank relative to the uniform run.
        assert result.ranks[7] > plain.ranks[7]

    def test_validation(self, small_rmat):
        import numpy as np
        import pytest as _pytest

        engine = GaaSXEngine(small_rmat)
        with _pytest.raises(Exception):
            engine.pagerank(personalization=np.ones(3))
        with _pytest.raises(Exception):
            engine.pagerank(
                personalization=-np.ones(small_rmat.num_vertices)
            )
        with _pytest.raises(Exception):
            engine.pagerank(
                personalization=np.zeros(small_rmat.num_vertices)
            )
