"""Frontier-sparse engine primitives against their dense references.

``segmented_min`` vs ``np.minimum.at``, ``unique_vertices`` (both
paths) vs ``np.unique``, the lazy ``GroupIndex`` vertex→groups /
vertex→edges CSR indexes vs brute-force scans, and the deferred
search-pass accounting on empty frontiers.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ArchConfig
from repro.core.engine import (
    DeferredSearchAccounting,
    segmented_min,
    unique_vertices,
)
from repro.core.loader import build_layout
from repro.events import EventLog
from repro.graphs import COOMatrix, Graph, partition_graph


def _random_graph(rng, n=20, count=40):
    src = rng.integers(0, n, size=count)
    dst = rng.integers(0, n, size=count)
    w = rng.uniform(0.1, 1.0, size=count)
    coo = COOMatrix(
        np.asarray(src), np.asarray(dst), np.asarray(w), shape=(n, n)
    )
    return Graph(coo, name="rand")


def _layout_for(graph, order="row"):
    grid = partition_graph(graph, 8)
    return build_layout(grid, order, ArchConfig())


class TestSegmentedMin:
    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_matches_minimum_at_scatter(self, seed):
        rng = np.random.default_rng(seed)
        graph = _random_graph(rng)
        layout = _layout_for(graph)
        rank = layout.sort_rank("dst")
        edges = np.flatnonzero(rng.random(layout.dst.size) < 0.6)
        if edges.size == 0:
            return
        values = rng.uniform(0.0, 5.0, size=edges.size)
        touched, mins = segmented_min(layout.dst, values, rank, edges)
        reference = np.full(graph.num_vertices, np.inf)
        np.minimum.at(reference, layout.dst[edges], values)
        assert np.array_equal(touched, np.unique(layout.dst[edges]))
        assert np.array_equal(mins, reference[touched])

    def test_single_edge(self):
        rng = np.random.default_rng(1)
        graph = _random_graph(rng)
        layout = _layout_for(graph)
        rank = layout.sort_rank("dst")
        touched, mins = segmented_min(
            layout.dst, np.array([2.5]), rank, np.array([0])
        )
        assert touched.size == 1 and touched[0] == layout.dst[0]
        assert mins[0] == 2.5


class TestUniqueVertices:
    def test_sort_path_matches_unique(self):
        scratch = np.zeros(10_000, dtype=bool)
        ids = np.array([7, 3, 7, 1, 3, 9])
        out = unique_vertices(ids, scratch)
        assert np.array_equal(out, [1, 3, 7, 9])
        assert not scratch.any()

    def test_scatter_path_matches_unique(self):
        scratch = np.zeros(8, dtype=bool)
        ids = np.array([5, 0, 5, 2, 2, 7, 0])
        out = unique_vertices(ids, scratch)
        assert np.array_equal(out, [0, 2, 5, 7])
        # The scratch buffer must come back all-False for the next call.
        assert not scratch.any()

    def test_empty(self):
        scratch = np.zeros(4, dtype=bool)
        out = unique_vertices(np.empty(0, dtype=np.int64), scratch)
        assert out.size == 0

    @given(
        st.lists(st.integers(min_value=0, max_value=30), max_size=60),
        st.integers(min_value=31, max_value=5000),
    )
    @settings(max_examples=60, deadline=None)
    def test_both_paths_equal_np_unique(self, ids, scratch_size):
        ids = np.array(ids, dtype=np.int64)
        scratch = np.zeros(scratch_size, dtype=bool)
        out = unique_vertices(ids, scratch)
        assert np.array_equal(out, np.unique(ids))
        assert not scratch.any()


class TestGroupIndexes:
    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_vertex_index_lists_every_group(self, seed):
        rng = np.random.default_rng(seed)
        graph = _random_graph(rng)
        layout = _layout_for(graph)
        groups = layout.groups_by("src")
        offsets, perm = groups.vertex_index(graph.num_vertices)
        assert offsets[-1] == groups.vertex.size
        for v in range(graph.num_vertices):
            listed = np.sort(perm[offsets[v] : offsets[v + 1]])
            expected = np.flatnonzero(groups.vertex == v)
            assert np.array_equal(listed, expected)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_edge_index_lists_every_edge(self, seed):
        rng = np.random.default_rng(seed)
        graph = _random_graph(rng)
        layout = _layout_for(graph)
        groups = layout.groups_by("src")
        offsets, edges = groups.edge_index(graph.num_vertices)
        assert offsets[-1] == layout.src.size
        for v in range(graph.num_vertices):
            listed = np.sort(edges[offsets[v] : offsets[v + 1]])
            expected = np.flatnonzero(layout.src == v)
            assert np.array_equal(listed, expected)

    def test_groups_of_matches_brute_force(self):
        rng = np.random.default_rng(4)
        graph = _random_graph(rng)
        layout = _layout_for(graph)
        groups = layout.groups_by("src")
        frontier = np.array([0, 3, 11])
        got = groups.groups_of(frontier, graph.num_vertices)
        expected = np.flatnonzero(np.isin(groups.vertex, frontier))
        assert np.array_equal(np.sort(got), expected)


class TestDeferredAccountingEdgeCases:
    def _accounting(self, seed=0):
        rng = np.random.default_rng(seed)
        graph = _random_graph(rng)
        layout = _layout_for(graph)
        groups = layout.groups_by("src")
        return DeferredSearchAccounting(
            ArchConfig(), layout, groups, graph.num_vertices
        )

    def test_no_frontiers_is_free(self):
        acct = self._accounting()
        events = EventLog()
        assert acct.finalize(events) == 0.0
        assert events.cam_searches == 0
        assert acct.total_groups == 0

    def test_empty_frontier_arrays_are_ignored(self):
        acct = self._accounting()
        acct.add(np.empty(0, dtype=np.int64))
        events = EventLog()
        assert acct.finalize(events) == 0.0
        assert events.cam_searches == 0

    def test_frontier_without_groups_is_free(self):
        # A frontier of vertices with no outgoing groups (e.g. a sink)
        # expands to zero searches and zero latency.
        rng = np.random.default_rng(2)
        graph = _random_graph(rng)
        layout = _layout_for(graph)
        groups = layout.groups_by("src")
        sinks = np.setdiff1d(
            np.arange(graph.num_vertices), np.unique(layout.src)
        )
        if sinks.size == 0:
            return
        acct = DeferredSearchAccounting(
            ArchConfig(), layout, groups, graph.num_vertices
        )
        acct.add(sinks[:1])
        events = EventLog()
        assert acct.finalize(events) == 0.0
        assert events.cam_searches == 0
        assert acct.total_groups == 0
