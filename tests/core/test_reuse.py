"""The cross-superstep reuse layer: cache semantics, gating, counters.

Equivalence of memoized vs. non-memoized *results* (ranks, events,
per-array counters) is proven in ``test_incremental.py`` and
``test_micro_equivalence.py``; this file pins the cache mechanics —
LRU bounds, invalidation, migration, the enable switch, and the
per-thread scope tally.
"""

import numpy as np
import pytest

from repro.config import ArchConfig
from repro.core.engine import GaaSXEngine
from repro.core.reuse import (
    ReuseCache,
    affected_shard_keys,
    frontier_fingerprint,
    get_reuse_cache,
    layout_token,
    migrate_for_mutation,
    reset_reuse_cache,
    reuse_enabled,
    reuse_scope,
    set_reuse_enabled,
)
from repro.graphs.partition import mutate_grid, partition_graph


@pytest.fixture(autouse=True)
def fresh_reuse_state():
    """Isolate every test from the process-global cache and override."""
    reset_reuse_cache()
    set_reuse_enabled(None)
    yield
    reset_reuse_cache()
    set_reuse_enabled(None)


class TestEnableSwitch:
    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_REUSE", raising=False)
        assert reuse_enabled() is True

    @pytest.mark.parametrize("value", ["0", "false", "off", "no", " OFF "])
    def test_falsey_env_disables(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_REUSE", value)
        assert reuse_enabled() is False

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_REUSE", "0")
        set_reuse_enabled(True)
        assert reuse_enabled() is True
        set_reuse_enabled(None)
        assert reuse_enabled() is False

    def test_argument_beats_everything(self):
        set_reuse_enabled(False)
        assert reuse_enabled(override=True) is True
        assert reuse_enabled(override=False) is False


class TestFingerprints:
    def test_same_content_same_fingerprint(self):
        a = np.arange(16, dtype=np.int64)
        assert frontier_fingerprint(a) == frontier_fingerprint(a.copy())

    def test_dtype_is_part_of_identity(self):
        ints = np.zeros(8, dtype=np.int64)
        assert frontier_fingerprint(ints) != frontier_fingerprint(
            ints.astype(np.float64)
        )

    def test_token_embeds_graph_identity(self, small_rmat):
        config = ArchConfig()
        token = layout_token(small_rmat, 16, "col", config)
        mutated = small_rmat.with_edges(inserts=[[0, 1, 5.0]])
        assert token != layout_token(mutated, 16, "col", config)
        assert token != layout_token(small_rmat, 16, "row", config)


class TestReuseCache:
    def test_lookup_store_roundtrip(self):
        cache = ReuseCache()
        assert cache.lookup("t", 0, "fp") is None
        cache.store("t", 0, "fp", np.arange(4))
        value = cache.lookup("t", 0, "fp")
        assert np.array_equal(value, np.arange(4))
        assert cache.hits == 1 and cache.misses == 1

    def test_stored_arrays_are_frozen(self):
        cache = ReuseCache()
        cache.store("t", 0, "fp", np.arange(4))
        value = cache.lookup("t", 0, "fp")
        with pytest.raises(ValueError):
            value[0] = 99

    def test_entry_bound_evicts_lru(self):
        cache = ReuseCache(max_entries=3)
        for i in range(4):
            cache.store("t", i, "fp", np.arange(2))
        assert cache.lookup("t", 0, "fp") is None  # oldest gone
        assert cache.lookup("t", 3, "fp") is not None

    def test_byte_bound_evicts(self):
        cache = ReuseCache(max_bytes=1024)
        cache.store("t", 0, "a", np.zeros(64))  # 512 B
        cache.store("t", 0, "b", np.zeros(64))
        cache.store("t", 0, "c", np.zeros(64))  # evicts "a"
        assert cache.lookup("t", 0, "a") is None
        assert cache.describe()["bytes"] <= 1024

    def test_oversized_value_is_never_cached(self):
        cache = ReuseCache(max_bytes=128)
        cache.store("t", 0, "fp", np.zeros(1024))
        assert cache.describe()["entries"] == 0

    def test_packed_keys_builder_runs_once(self):
        cache = ReuseCache()
        calls = []

        def build():
            calls.append(1)
            return np.arange(3)

        first = cache.packed_keys("t", 0, "dst", build)
        second = cache.packed_keys("t", 0, "dst", build)
        assert len(calls) == 1
        assert np.array_equal(first, second)

    def test_invalidate_one_token(self):
        cache = ReuseCache()
        cache.store("a", 0, "fp", np.arange(2))
        cache.store("b", 0, "fp", np.arange(2))
        assert cache.invalidate("a") == 1
        assert cache.lookup("a", 0, "fp") is None
        assert cache.lookup("b", 0, "fp") is not None
        assert cache.invalidations == 1

    def test_invalidate_all(self):
        cache = ReuseCache()
        cache.store("a", 0, "fp", np.arange(2))
        cache.packed_keys("a", 0, "dst", lambda: np.arange(2))
        assert cache.invalidate() == 2
        assert cache.describe()["entries"] == 0

    def test_migrate_carries_mapped_units_only(self):
        cache = ReuseCache()
        cache.store("old", 0, "fp", np.arange(2))
        cache.store("old", 1, "fp", np.arange(2))
        cache.store("old", "gang", "fp", np.arange(2))
        carried, dropped = cache.migrate("old", "new", {0: 5})
        assert (carried, dropped) == (1, 2)
        assert cache.lookup("new", 5, "fp") is not None
        assert cache.lookup("old", 0, "fp") is None
        assert cache.invalidations == 2

    def test_describe_shape(self):
        cache = ReuseCache()
        cache.store("t", 0, "fp", np.arange(2))
        cache.lookup("t", 0, "fp")
        info = cache.describe()
        assert set(info) == {
            "hits", "misses", "invalidations", "hit_rate", "entries",
            "bytes",
        }
        assert info["hit_rate"] == 1.0


class TestScopes:
    def test_scope_tallies_this_thread(self):
        cache = ReuseCache()
        with reuse_scope() as scope:
            cache.lookup("t", 0, "fp")  # miss
            cache.store("t", 0, "fp", np.arange(2))
            cache.lookup("t", 0, "fp")  # hit
        assert scope.hits == 1 and scope.misses == 1
        assert scope.hit_rate == 0.5
        # Lookups after exit do not leak into the closed scope.
        cache.lookup("t", 0, "fp")
        assert scope.hits == 1

    def test_empty_scope_rate_is_zero(self):
        with reuse_scope() as scope:
            pass
        assert scope.hit_rate == 0.0


class TestEngineIntegration:
    def test_second_run_hits_and_results_match(self, small_rmat):
        engine = GaaSXEngine(small_rmat)
        with reuse_scope() as cold:
            first = engine.pagerank(iterations=4)
        with reuse_scope() as warm:
            second = engine.pagerank(iterations=4)
        assert cold.hits == 0
        assert warm.hits > 0 and warm.misses == 0
        assert np.array_equal(first.ranks, second.ranks)
        assert first.stats.events.as_dict() == second.stats.events.as_dict()

    def test_disabled_runs_never_touch_the_cache(self, small_rmat):
        set_reuse_enabled(False)
        engine = GaaSXEngine(small_rmat)
        engine.pagerank(iterations=4)
        engine.pagerank(iterations=4)
        assert get_reuse_cache().describe()["entries"] == 0


class TestMutationMigration:
    def test_affected_shard_keys(self):
        touched = affected_shard_keys(
            np.array([[0, 5, 1.0]]), np.array([[5, 0, 1.0]]),
            interval_size=4, num_intervals=2,
        )
        assert touched == {0 * 2 + 1, 1 * 2 + 0}

    def test_untouched_shards_carry_touched_drop(self, medium_rmat):
        config = ArchConfig()
        grid = partition_graph(medium_rmat, 64)
        cache = ReuseCache()
        # One entry per crossbar of the col order plus a layout-wide one.
        token = layout_token(medium_rmat, 64, "col", config)
        table = {}
        from repro.core.reuse import _shard_xbar_table

        for key, (off, num, _edges) in _shard_xbar_table(
            grid, "col", config.cam_rows
        ).items():
            for slot in range(num):
                cache.store(token, off + slot, "fp", np.arange(2))
                table[off + slot] = key
        cache.store(token, "gang", "fp", np.arange(2))
        # Mutate inside exactly one interval cell.
        inserts = np.array([[1, 2, 1.0]])
        new_graph = medium_rmat.with_edges(inserts=inserts)
        new_grid = mutate_grid(grid, new_graph, inserts=inserts)
        migration = migrate_for_mutation(
            cache, medium_rmat, new_graph, grid, new_grid, config,
            inserts, None,
        )
        touched = affected_shard_keys(
            inserts, None, grid.partition.interval_size,
            grid.partition.num_intervals,
        )
        untouched_xbars = [
            unit for unit, key in table.items() if key not in touched
        ]
        assert migration["carried"] == len(untouched_xbars)
        # The touched crossbar(s) and the layout-wide entry dropped.
        assert migration["invalidated"] == (
            len(table) - len(untouched_xbars) + 1
        )
        new_token = layout_token(new_graph, 64, "col", config)
        assert cache.lookup(new_token, untouched_xbars[0], "fp") is not None
