"""Unit tests for shard-to-crossbar packing."""

import numpy as np
import pytest

from repro.config import ArchConfig
from repro.core.loader import build_layout
from repro.errors import ConfigError
from repro.graphs import partition_graph


@pytest.fixture()
def layout(medium_rmat, tiny_config):
    grid = partition_graph(medium_rmat, 64)
    return build_layout(grid, "col", tiny_config)


class TestBuildLayout:
    def test_every_edge_assigned(self, layout, medium_rmat):
        assert layout.num_edges == medium_rmat.num_edges
        assert layout.xbar_of_edge.min() >= 0
        assert layout.xbar_of_edge.max() == layout.num_xbars - 1

    def test_crossbar_capacity_respected(self, layout, tiny_config):
        rows = layout.rows_per_xbar()
        assert rows.max() <= tiny_config.cam_rows
        assert rows.min() > 0

    def test_crossbars_hold_single_shard(self, medium_rmat, tiny_config):
        grid = partition_graph(medium_rmat, 64)
        layout = build_layout(grid, "col", tiny_config)
        q = 64
        k = grid.partition.num_intervals
        shard_of_edge = (layout.src // q) * k + (layout.dst // q)
        for x in range(layout.num_xbars):
            shards = np.unique(shard_of_edge[layout.xbar_of_edge == x])
            assert shards.size == 1

    def test_batches(self, layout, tiny_config):
        expected = -(-layout.num_xbars // tiny_config.num_crossbars)
        assert layout.num_batches == expected
        batches = layout.batch_of_xbar(np.arange(layout.num_xbars))
        assert batches.max() == layout.num_batches - 1

    def test_resident_flag(self, small_rmat):
        grid = partition_graph(small_rmat, 64)
        big_machine = build_layout(grid, "col", ArchConfig())
        assert big_machine.resident
        small_machine = build_layout(grid, "col", ArchConfig(num_crossbars=1))
        assert not small_machine.resident

    def test_edge_weights_preserved(self, layout, medium_rmat):
        assert np.sort(layout.weight).sum() == pytest.approx(
            medium_rmat.weights.sum()
        )

    def test_empty_graph(self, tiny_config):
        from repro.graphs import Graph

        g = Graph.from_edge_list([], num_vertices=10)
        layout = build_layout(partition_graph(g, 4), "row", tiny_config)
        assert layout.num_xbars == 0
        assert layout.num_batches == 0
        assert layout.groups_by("src").num_groups == 0


class TestGroups:
    def test_group_counts_sum_to_edges(self, layout):
        for field in ("src", "dst"):
            groups = layout.groups_by(field)
            assert groups.count.sum() == layout.num_edges

    def test_groups_cached(self, layout):
        assert layout.groups_by("dst") is layout.groups_by("dst")

    def test_unknown_field_rejected(self, layout):
        with pytest.raises(ConfigError):
            layout.groups_by("weight")

    def test_group_membership_consistent(self, layout):
        groups = layout.groups_by("dst")
        for g in range(min(groups.num_groups, 50)):
            lo, hi = groups.group_offsets[g], groups.group_offsets[g + 1]
            edges = groups.edge_perm[lo:hi]
            assert np.all(layout.dst[edges] == groups.vertex[g])
            assert np.all(layout.xbar_of_edge[edges] == groups.xbar[g])

    def test_groups_match_bruteforce(self, layout):
        groups = layout.groups_by("src")
        brute = {}
        for e in range(layout.num_edges):
            key = (int(layout.xbar_of_edge[e]), int(layout.src[e]))
            brute[key] = brute.get(key, 0) + 1
        ours = {
            (int(x), int(v)): int(c)
            for x, v, c in zip(groups.xbar, groups.vertex, groups.count)
        }
        assert ours == brute
