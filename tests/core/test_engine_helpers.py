"""Unit tests for the engine's shared accounting machinery."""

import numpy as np
import pytest

from repro.config import ArchConfig
from repro.core.engine import (
    GaaSXEngine,
    chunk_histogram,
    default_interval_size,
    gather_ranges,
)
from repro.errors import AlgorithmError
from repro.events import EventLog
from repro.graphs.generators import rmat


class TestGatherRanges:
    def test_basic(self):
        out = gather_ranges(np.array([0, 10]), np.array([3, 2]))
        assert np.array_equal(out, [0, 1, 2, 10, 11])

    def test_empty(self):
        out = gather_ranges(np.array([], dtype=int), np.array([], dtype=int))
        assert out.size == 0

    def test_zero_length_ranges_skipped(self):
        out = gather_ranges(np.array([5, 9]), np.array([0, 2]))
        assert np.array_equal(out, [9, 10])


class TestChunkHistogram:
    def test_under_limit(self):
        ops, hist = chunk_histogram(np.array([1, 3, 16]), 16)
        assert np.array_equal(ops, [1, 1, 1])
        assert hist[1] == 1 and hist[3] == 1 and hist[16] == 1

    def test_over_limit_splits(self):
        ops, hist = chunk_histogram(np.array([20]), 16)
        assert ops[0] == 2
        assert hist[16] == 1 and hist[4] == 1

    def test_exact_multiple(self):
        ops, hist = chunk_histogram(np.array([32]), 16)
        assert ops[0] == 2
        assert hist[16] == 2
        assert hist[0] == 0

    def test_total_rows_preserved(self):
        rng = np.random.default_rng(0)
        hits = rng.integers(1, 100, size=50)
        _, hist = chunk_histogram(hits, 16)
        assert (hist * np.arange(hist.size)).sum() == hits.sum()

    def test_ops_equal_hist_total(self):
        rng = np.random.default_rng(1)
        hits = rng.integers(1, 100, size=50)
        ops, hist = chunk_histogram(hits, 16)
        assert ops.sum() == hist.sum()


class TestDefaultIntervalSize:
    def test_floor(self):
        assert default_interval_size(10) == 128

    def test_large_graph_64_intervals(self):
        assert default_interval_size(64_000) == 1000


class TestEngineBasics:
    def test_layout_cached(self, small_rmat):
        engine = GaaSXEngine(small_rmat)
        assert engine.layout("col") is engine.layout("col")

    def test_cf_requires_bipartite(self, small_rmat):
        engine = GaaSXEngine(small_rmat)
        with pytest.raises(AlgorithmError):
            engine.collaborative_filtering()

    def test_bipartite_unified(self, small_bipartite):
        engine = GaaSXEngine(small_bipartite)
        assert engine.graph.num_vertices == (
            small_bipartite.num_users + small_bipartite.num_items
        )

    def test_source_validation(self, small_rmat):
        engine = GaaSXEngine(small_rmat)
        with pytest.raises(AlgorithmError):
            engine.bfs(small_rmat.num_vertices)
        with pytest.raises(AlgorithmError):
            engine.sssp(-1)


class TestAccountingInvariants:
    def test_load_charges_once(self, small_rmat):
        engine = GaaSXEngine(small_rmat)
        result = engine.pagerank(iterations=7)
        events = result.stats.events
        # One MAC row and one CAM row per edge, independent of the
        # iteration count (the in-place residency model).
        assert events.row_writes == small_rmat.num_edges
        assert events.cam_row_writes == small_rmat.num_edges

    def test_pagerank_events_scale_with_iterations(self, small_rmat):
        engine = GaaSXEngine(small_rmat)
        one = engine.pagerank(iterations=1).stats.events
        three = engine.pagerank(iterations=3).stats.events
        assert three.cam_searches == 3 * one.cam_searches
        assert three.mac_ops == 3 * one.mac_ops

    def test_bfs_writes_no_mac_cells(self, small_rmat):
        """BFS presets the weight column to 1 (Section IV)."""
        engine = GaaSXEngine(small_rmat)
        events = engine.bfs(0).stats.events
        assert events.cell_writes == 0
        assert events.cam_row_writes == small_rmat.num_edges

    def test_sssp_writes_weights(self, small_rmat):
        engine = GaaSXEngine(small_rmat)
        events = engine.sssp(0).stats.events
        config = ArchConfig()
        assert events.cell_writes == small_rmat.num_edges * config.bit_slices

    def test_dac_counts_equal_rows_driven(self, small_rmat):
        engine = GaaSXEngine(small_rmat)
        events = engine.pagerank(iterations=1).stats.events
        assert events.dac_conversions == events.mac_rows_accumulated

    def test_hist_total_equals_mac_ops(self, small_rmat):
        engine = GaaSXEngine(small_rmat)
        events = engine.sssp(0).stats.events
        assert events.mac_rows_hist.sum() == events.mac_ops

    def test_accumulate_limit_bounds_hist(self, small_rmat):
        config = ArchConfig(mac_accumulate_limit=8)
        engine = GaaSXEngine(small_rmat, config=config)
        events = engine.pagerank(iterations=1).stats.events
        assert events.mac_rows_hist.size <= 9 or not np.any(
            events.mac_rows_hist[9:]
        )

    def test_energy_attached(self, small_rmat):
        stats = GaaSXEngine(small_rmat).pagerank(iterations=1).stats
        assert stats.energy is not None
        assert stats.total_energy_j > 0
        assert stats.total_time_s > 0

    def test_more_crossbars_not_slower(self, medium_rmat):
        slow = GaaSXEngine(medium_rmat, config=ArchConfig(num_crossbars=2))
        fast = GaaSXEngine(medium_rmat, config=ArchConfig(num_crossbars=64))
        t_slow = slow.pagerank(iterations=2).stats.total_time_s
        t_fast = fast.pagerank(iterations=2).stats.total_time_s
        assert t_fast <= t_slow

    def test_tolerance_early_exit(self, small_rmat):
        engine = GaaSXEngine(small_rmat)
        result = engine.pagerank(iterations=100, tolerance=1e-3)
        assert result.iterations < 100
        assert result.stats.passes == result.iterations
