"""Tests for the parallel cache-aware executor."""

from __future__ import annotations

import os

import pytest

from repro.core import cache as layout_cache
from repro.errors import ConfigError
from repro.experiments.executor import (
    execute,
    group_weight,
    plan_groups,
    resolve_jobs,
    schedule_summary,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment

#: Cheap single-dataset experiments from two distinct affinity groups.
FAST_IDS = ("abl-interval", "abl-maclimit", "abl-xbar")


@pytest.fixture(autouse=True)
def _isolated_global_cache():
    yield
    layout_cache.reset_cache()


class TestResolveJobs:
    def test_default_is_cpu_count(self):
        assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_explicit_count_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError, match="jobs"):
            resolve_jobs(0)


class TestPlanGroups:
    def test_equal_dataset_needs_share_a_group(self):
        specs = [get_experiment(i) for i in FAST_IDS]
        groups = plan_groups(specs)
        assert len(groups) == 2  # {abl-interval, abl-maclimit}, {abl-xbar}
        sizes = sorted(len(g) for g in groups)
        assert sizes == [1, 2]
        for group in groups:
            assert len({spec.cache_group for spec in group}) == 1

    def test_groups_sorted_heaviest_first(self):
        groups = plan_groups(list(EXPERIMENTS.values()))
        weights = [group_weight(g[0].cache_group) for g in groups]
        assert weights == sorted(weights, reverse=True)
        assert sum(len(g) for g in groups) == len(EXPERIMENTS)

    def test_group_weight_scales_with_dataset_edges(self):
        # LiveJournal dwarfs WikiVote at every profile; the scheduler
        # must see that, not just member counts.
        assert group_weight(("LJ",)) > group_weight(("WV",)) * 10
        assert group_weight(()) == 1  # dataset-free groups sort last

    def test_schedule_summary_balance(self):
        groups = plan_groups(list(EXPERIMENTS.values()))
        summary = schedule_summary(groups, jobs=4)
        loads = summary["worker_edge_loads"]
        assert len(loads) == 4
        assert sum(loads) == sum(
            group_weight(g[0].cache_group) for g in groups
        )
        assert 0.0 < summary["balance"] <= 1.0
        # LPT over these group weights keeps workers within 2x of the
        # mean — the degenerate all-on-one-worker plan cannot pass.
        assert summary["balance"] > 0.5


class TestExecute:
    def test_results_in_registry_order(self, tmp_path):
        report = execute(
            experiment_ids=("abl-interval", "abl-xbar"),  # reversed
            profile="tiny",
            jobs=1,
            cache_dir=str(tmp_path),
        )
        # Registry order puts abl-xbar first, whatever the request order.
        assert list(report.results) == ["abl-xbar", "abl-interval"]

    def test_parallel_results_identical_to_serial(self, tmp_path):
        serial = execute(
            experiment_ids=FAST_IDS, profile="tiny", jobs=1,
            cache_dir=str(tmp_path / "serial"),
        )
        layout_cache.reset_cache()
        parallel = execute(
            experiment_ids=FAST_IDS, profile="tiny", jobs=2,
            cache_dir=str(tmp_path / "parallel"),
        )
        assert parallel.manifest.jobs == 2
        assert list(parallel.results) == list(serial.results)
        for experiment_id in FAST_IDS:
            assert (
                parallel.results[experiment_id].to_dict()
                == serial.results[experiment_id].to_dict()
            )

    def test_second_run_hits_the_cache(self, tmp_path):
        cache_dir = str(tmp_path)
        execute(
            experiment_ids=("abl-interval",), profile="tiny", jobs=1,
            cache_dir=cache_dir,
        )
        layout_cache.reset_cache()  # fresh process stand-in
        second = execute(
            experiment_ids=("abl-interval",), profile="tiny", jobs=1,
            cache_dir=cache_dir,
        )
        totals = second.manifest.cache_totals
        assert totals.get("grid_disk_hits", 0) > 0
        assert second.manifest.cache_hit_rate > 0

    def test_manifest_entries(self, tmp_path):
        report = execute(
            experiment_ids=("abl-interval",), profile="tiny", jobs=1,
            cache_dir=str(tmp_path),
        )
        manifest = report.manifest
        assert manifest.profile == "tiny"
        assert manifest.jobs == 1
        assert manifest.cache_dir == str(tmp_path)
        assert manifest.cache_version == layout_cache.CACHE_VERSION
        assert manifest.wall_time_s > 0
        (entry,) = manifest.entries
        assert entry.experiment_id == "abl-interval"
        assert entry.wall_time_s > 0
        assert entry.worker == os.getpid()  # single job runs in-process
        assert entry.group == ("WV",)
        assert len(entry.config_fingerprint) == 16
        payload = manifest.to_dict()
        assert payload["experiments"][0]["experiment_id"] == "abl-interval"
        assert "cache_hit_rate" in payload

    def test_no_disk_cache(self):
        report = execute(
            experiment_ids=("abl-interval",), profile="tiny", jobs=1,
            disk_cache=False,
        )
        assert report.manifest.cache_dir is None
        assert report.manifest.cache_totals.get("disk_writes", 0) == 0

    def test_summary_mentions_hit_rate(self, tmp_path):
        report = execute(
            experiment_ids=("abl-interval",), profile="tiny", jobs=1,
            cache_dir=str(tmp_path),
        )
        summary = report.manifest.summary()
        assert "hit rate" in summary
        assert "1 experiments" in summary
