"""Integration tests for the experiment harness (tiny profile)."""

import warnings

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments import EXPERIMENTS
from repro.experiments.harness import ComparisonMatrix
from repro.experiments.registry import get_experiment
from repro.experiments.runner import RunRequest, RunSession

TINY = ("WV", "SD")


def drive(experiment_id, **kwargs):
    """Invoke one registered driver directly with custom keywords.

    Parameterized harness runs (explicit matrices, sweep overrides) go
    straight to the driver; plain runs use RunRequest/RunSession.
    """
    spec = get_experiment(experiment_id)
    if not spec.accepts_profile:
        kwargs.pop("profile", None)
    return spec.driver(**kwargs)


@pytest.fixture(scope="module")
def matrix():
    return ComparisonMatrix(profile="tiny", datasets=TINY, iterations=3)


class TestHarness:
    def test_cells_cached(self, matrix):
        assert matrix.cell("WV", "pagerank") is matrix.cell("WV", "pagerank")

    def test_cell_fields(self, matrix):
        cell = matrix.cell("WV", "bfs")
        assert cell.speedup_vs_graphr > 0
        assert cell.energy_savings_vs_graphr > 0
        assert cell.trace.algorithm == "bfs"

    def test_unknown_algorithm(self, matrix):
        with pytest.raises(ConfigError):
            matrix.cell("WV", "kmeans")

    def test_all_cells_shape(self, matrix):
        assert len(matrix.all_cells()) == len(TINY) * 3


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "table1", "table2", "fig5", "fig11", "fig12", "fig13",
            "fig14", "fig15", "fig16", "fig17", "gapbs",
            "abl-maclimit", "abl-tile", "abl-xbar", "abl-locality",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(ConfigError):
            get_experiment("fig99")


class TestFigureDrivers:
    def test_fig5(self, matrix):
        r = drive("fig5", profile="tiny", datasets=TINY, matrix=matrix)
        writes = r.series_by_name("Writes")
        assert all(v > 1 for v in writes.values)

    def test_fig11_positive_speedups(self, matrix):
        r = drive("fig11", profile="tiny", matrix=matrix)
        for s in r.series:
            assert all(v > 1 for v in s.values)

    def test_fig12_positive_savings(self, matrix):
        r = drive("fig12", profile="tiny", matrix=matrix)
        for s in r.series:
            assert all(v > 1 for v in s.values)

    def test_fig13_cdf_monotone_ends_at_one(self, matrix):
        r = drive("fig13", profile="tiny", matrix=matrix)
        cdf = r.series_by_name("Cumulative fraction").values
        assert all(b >= a - 1e-12 for a, b in zip(cdf, cdf[1:]))
        assert cdf[-1] == pytest.approx(1.0)

    def test_fig14_uses_gram_datasets(self):
        m = ComparisonMatrix(profile="tiny", datasets=("AZ", "WV", "LJ"),
                             iterations=2)
        r = drive("fig14", profile="tiny", matrix=m)
        assert len(r.series) == 2
        assert all(v > 0 for s in r.series for v in s.values)

    def test_fig15_fig16(self, matrix):
        r15 = drive("fig15", profile="tiny", matrix=matrix)
        r16 = drive("fig16", profile="tiny", matrix=matrix)
        assert len(r15.series) == 6  # 2 platforms x 3 algorithms
        assert len(r16.series) == 6

    def test_gapbs(self, matrix):
        r = drive("gapbs", profile="tiny", matrix=matrix)
        assert "geomean speedup (paper ~155x)" in r.notes

    def test_fig17(self):
        r = drive("fig17", profile="tiny", epochs=1, num_features=8)
        assert r.series_by_name("Execution time").labels == [
            "GraphChi", "cuMF", "GraphR",
        ]
        assert all(v > 0 for s in r.series for v in s.values)


class TestTableDrivers:
    def test_table1_totals(self):
        r = drive("table1")
        assert "2.69" in r.notes["total area"]
        assert "1.66" in r.notes["total power"]

    def test_table2(self):
        r = drive("table2", profile="tiny")
        v = r.series_by_name("Paper vertices")
        assert v.values[v.labels.index("WV")] == 7000


class TestAblations:
    def test_mac_limit_sweep(self):
        r = drive(
            "abl-maclimit", dataset="WV", profile="tiny",
            limits=(4, 16), iterations=2,
        )
        bits = r.series_by_name("Required ADC bits").values
        assert bits == [4.0, 6.0]

    def test_tile_size_sweep(self):
        r = drive(
            "abl-tile", profile="tiny", datasets=("WV",), tile_sizes=(8, 16),
        )
        assert len(r.series) == 4

    def test_xbar_sweep_monotone(self):
        r = drive(
            "abl-xbar", dataset="WV", profile="tiny",
            counts=(4, 2048), iterations=2,
        )
        times = r.series_by_name("Time (s)").values
        assert times[1] <= times[0]

    def test_locality_ablation(self):
        r = drive("abl-locality", profile="tiny", datasets=("WV",))
        clustered = r.series_by_name("Clustered (SNAP-like)").values[0]
        shuffled = r.series_by_name("Shuffled ids").values[0]
        assert shuffled > clustered


class TestExtensionDrivers:
    def test_ext_wcc(self):
        r = drive("ext-wcc", profile="tiny", datasets=("WV",))
        assert r.series_by_name("Components").values[0] >= 1
        assert r.series_by_name("Supersteps").values[0] >= 1
        assert r.series_by_name("Speedup vs GAPBS CC").values[0] > 0

    def test_ext_energy(self):
        r = drive(
            "ext-energy", dataset="WV", profile="tiny", iterations=2,
        )
        for s in r.series:
            assert sum(s.values) == pytest.approx(1.0)

    def test_ext_gnn(self):
        r = drive(
            "ext-gnn", profile="tiny", feature_widths=(8, 32),
        )
        times = r.series_by_name("Time (s)").values
        assert times[1] > times[0]

    def test_ext_scaling(self):
        r = drive(
            "ext-scaling", sizes=((2_000, 16_000), (8_000, 64_000)),
            iterations=2,
        )
        speedups = r.series_by_name("Speedup vs GraphR").values
        assert all(s > 1 for s in speedups)

    def test_abl_residency(self):
        r = drive(
            "abl-residency", dataset="WV", profile="tiny", iterations=3,
        )
        assert all(v > 1 for v in r.series_by_name("Time ratio").values)

    def test_abl_disk(self):
        r = drive(
            "abl-disk", dataset="WV", profile="tiny",
            bandwidths_gbs=(0.1, 10.0), iterations=3,
        )
        loads = r.series_by_name("Load time (s)").values
        assert loads[0] > loads[1]

    def test_abl_variation(self):
        r = drive(
            "abl-variation", sigmas=(0.05,), row_counts=(1, 16),
        )
        assert all(v >= 0 for s in r.series for v in s.values)

    def test_abl_interval(self):
        r = drive(
            "abl-interval", dataset="WV", profile="tiny",
            interval_sizes=(16, 64), iterations=2,
        )
        assert all(v > 0 for v in r.series_by_name("Time (s)").values)

    def test_abl_precision(self):
        r = drive(
            "abl-precision", value_bits=(8, 16),
            num_vertices=48, num_edges=150, iterations=2,
        )
        errors = r.series_by_name("Max relative error").values
        assert errors[1] < errors[0]


class TestRunner:
    def test_saves_report(self, tmp_path):
        session = RunSession(RunRequest(
            experiment_id="table1", output_dir=str(tmp_path),
            use_disk_cache=False,
        ))
        session.run()
        assert (tmp_path / "table1.txt").exists()
        assert "MAC crossbar" in (tmp_path / "table1.txt").read_text()


class TestJSONExport:
    def test_to_dict_roundtrips_through_json(self):
        import json

        r = drive("table1")
        payload = json.loads(json.dumps(r.to_dict()))
        assert payload["experiment_id"] == "table1"
        assert payload["series"][0]["labels"][0] == "MAC crossbar"

    def test_runner_writes_json(self, tmp_path):
        session = RunSession(RunRequest(
            experiment_id="table1", output_dir=str(tmp_path),
            use_disk_cache=False,
        ))
        session.run()
        import json

        data = json.loads((tmp_path / "table1.json").read_text())
        assert data["title"]
        assert len(data["series"]) == 2


class TestNoDeprecationWarnings:
    def test_module_is_warning_free(self, matrix):
        """The shims are gone, so nothing here may warn about them."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            drive("fig11", profile="tiny", matrix=matrix)
