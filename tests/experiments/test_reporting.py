"""Unit tests for experiment result containers and rendering."""

import pytest

from repro.errors import ConfigError
from repro.experiments.reporting import (
    ExperimentResult,
    Series,
    geometric_mean,
)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            geometric_mean([1.0, 0.0])


class TestSeries:
    def test_alignment_enforced(self):
        with pytest.raises(ConfigError):
            Series("s", ["a"], [1.0, 2.0])

    def test_geomean(self):
        s = Series("s", ["a", "b"], [2.0, 8.0])
        assert s.geomean == pytest.approx(4.0)


class TestBarChart:
    def test_basic_chart(self):
        from repro.experiments.reporting import bar_chart

        s = Series("Speed", ["a", "bb"], [1.0, 2.0])
        chart = bar_chart(s, width=10)
        lines = chart.splitlines()
        assert lines[0] == "Speed:"
        assert lines[2].count("#") == 10  # max value fills the width
        assert lines[1].count("#") == 5

    def test_log_scale(self):
        from repro.experiments.reporting import bar_chart

        s = Series("S", ["x", "y"], [10.0, 1000.0])
        chart = bar_chart(s, width=30, log_scale=True)
        x_bar = chart.splitlines()[1].count("#")
        y_bar = chart.splitlines()[2].count("#")
        assert 0 < x_bar < y_bar

    def test_log_scale_rejects_nonpositive(self):
        from repro.experiments.reporting import bar_chart

        with pytest.raises(ConfigError):
            bar_chart(Series("S", ["x"], [0.0]), log_scale=True)

    def test_zero_value_renders_empty_bar(self):
        from repro.experiments.reporting import bar_chart

        chart = bar_chart(Series("S", ["x", "y"], [0.0, 5.0]))
        assert chart.splitlines()[1].count("#") == 0

    def test_render_chart_on_result(self):
        r = ExperimentResult(
            "x", "chart test",
            series=[Series("A", ["p", "q"], [1.0, 3.0])],
            notes={"k": "v"},
        )
        text = r.render_chart(width=12)
        assert "chart test" in text
        assert "#" in text
        assert "k: v" in text


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            "fig99",
            "A test figure",
            series=[
                Series("Row A", ["x", "y"], [1.5, 2.5]),
                Series("Row B", ["x", "y"], [100.0, 0.001]),
            ],
            notes={"geomean": "2.0x"},
        )

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "fig99" in text
        assert "Row A" in text and "Row B" in text
        assert "geomean: 2.0x" in text

    def test_render_column_alignment(self):
        lines = self.make().render().splitlines()
        header = lines[1]
        assert header.rstrip().endswith("y")

    def test_series_by_name(self):
        r = self.make()
        assert r.series_by_name("Row A").values == [1.5, 2.5]
        with pytest.raises(ConfigError):
            r.series_by_name("missing")

    def test_mismatched_labels_render_as_block(self):
        r = ExperimentResult(
            "x", "t",
            series=[
                Series("A", ["p"], [1.0]),
                Series("B", ["q", "r"], [2.0, 3.0]),
            ],
        )
        text = r.render()
        assert "B:" in text

    def test_render_empty(self):
        text = ExperimentResult("e", "empty").render()
        assert "empty" in text
