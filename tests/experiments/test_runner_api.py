"""Tests for the typed RunRequest/RunSession API."""

from __future__ import annotations

import json

import pytest

from repro.core import cache as layout_cache
from repro.errors import ConfigError
from repro.experiments import EXPERIMENTS, RunRequest, RunSession


@pytest.fixture(autouse=True)
def _isolated_global_cache():
    yield
    layout_cache.reset_cache()


class TestRunRequest:
    def test_defaults_resolve_to_all_experiments(self):
        request = RunRequest()
        assert request.experiment_ids == tuple(EXPERIMENTS)

    def test_single_id(self):
        assert RunRequest("fig11").experiment_ids == ("fig11",)

    def test_sequence_normalized_to_tuple(self):
        request = RunRequest(experiment_id=["fig11", "fig12"])
        assert request.experiment_id == ("fig11", "fig12")
        assert request.experiment_ids == ("fig11", "fig12")

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigError, match="fig99"):
            RunRequest("fig99")

    def test_unknown_id_in_sequence_rejected(self):
        with pytest.raises(ConfigError):
            RunRequest(experiment_id=["fig11", "fig99"])

    def test_bad_profile_rejected(self):
        with pytest.raises(ConfigError, match="profile"):
            RunRequest("fig11", profile="huge")

    def test_bad_format_rejected(self):
        with pytest.raises(ConfigError, match="format"):
            RunRequest("fig11", format="yaml")

    def test_bad_jobs_rejected(self):
        with pytest.raises(ConfigError, match="jobs"):
            RunRequest("fig11", jobs=0)

    def test_frozen(self):
        request = RunRequest("fig11")
        with pytest.raises(AttributeError):
            request.profile = "tiny"


class TestRunSession:
    def test_results_unavailable_before_run(self):
        session = RunSession(RunRequest("abl-interval"))
        with pytest.raises(ConfigError, match="has not run"):
            session.results
        with pytest.raises(ConfigError, match="has not run"):
            session.manifest

    def test_run_and_persist(self, tmp_path):
        out = tmp_path / "reports"
        request = RunRequest(
            "abl-interval", profile="tiny", jobs=1,
            output_dir=str(out), cache_dir=str(tmp_path / "cache"),
        )
        session = RunSession(request)
        results = session.run()
        assert list(results) == ["abl-interval"]
        assert (out / "abl-interval.txt").exists()
        assert (out / "abl-interval.json").exists()
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["profile"] == "tiny"
        ids = [e["experiment_id"] for e in manifest["experiments"]]
        assert ids == ["abl-interval"]
        saved = json.loads((out / "abl-interval.json").read_text())
        assert saved == results["abl-interval"].to_dict()

    def test_rendered_json(self, tmp_path):
        request = RunRequest(
            "abl-interval", profile="tiny", jobs=1, format="json",
            cache_dir=str(tmp_path),
        )
        session = RunSession(request)
        session.run()
        payload = json.loads(session.rendered("abl-interval"))
        assert payload["experiment_id"] == "abl-interval"

    def test_rendered_text(self, tmp_path):
        request = RunRequest(
            "abl-interval", profile="tiny", jobs=1,
            cache_dir=str(tmp_path),
        )
        session = RunSession(request)
        session.run()
        rendered = session.rendered("abl-interval")
        assert "abl-interval" in rendered


class TestRetiredShims:
    """The pre-RunRequest ad-hoc surface is gone, not merely warning."""

    def test_shims_are_not_importable(self):
        import repro.experiments as experiments
        import repro.experiments.runner as runner

        for retired in ("run" "_experiment", "run" "_all"):
            assert not hasattr(runner, retired)
            assert not hasattr(experiments, retired)
            assert retired not in experiments.__all__


class TestSpecMetadata:
    def test_every_spec_declares_profile_support(self):
        for spec in EXPERIMENTS.values():
            assert isinstance(spec.accepts_profile, bool)
            assert isinstance(spec.datasets, tuple)

    def test_profile_kwargs(self):
        assert EXPERIMENTS["fig11"].profile_kwargs("tiny") == {
            "profile": "tiny"
        }
        assert EXPERIMENTS["table1"].profile_kwargs("tiny") == {}
