"""Smoke tests: every shipped example must run to completion.

Run as subprocesses so an example's import graph, argument handling
and printing are exercised exactly as a user would hit them.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

FAST_EXAMPLES = [
    "crossbar_playground.py",
    "route_planner.py",
    "social_network_gnn.py",
    "movie_recommender.py",
]


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=os.path.join(EXAMPLES_DIR, ".."),
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name):
    proc = run_example(name)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), "example produced no output"


def test_quickstart_output_contents():
    proc = run_example("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "Top-5 ranked vertices" in proc.stdout
    assert "Hardware events" in proc.stdout


def test_design_space_output_contents():
    proc = run_example("accelerator_design_space.py")
    assert proc.returncode == 0, proc.stderr
    assert "6-bit ADC" in proc.stdout or "ADC" in proc.stdout
    assert "2048" in proc.stdout
