"""Property-based tests (hypothesis) on core data structures and
invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import chunk_histogram, gather_ranges
from repro.events import EventLog
from repro.graphs import COOMatrix, Graph, partition_graph
from repro.xbar import EdgeCam, FixedPointFormat, MacCrossbar
from repro.xbar.cells import slice_values, unslice_values


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def edge_lists(draw, max_vertices=24, max_edges=60):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    count = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=count, max_size=count,
        )
    )
    dst = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=count, max_size=count,
        )
    )
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=count, max_size=count,
        )
    )
    return n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64), np.array(weights)


def coo_from(n, src, dst, w):
    return COOMatrix(src, dst, w, (n, n))


# ----------------------------------------------------------------------
# Sparse format properties
# ----------------------------------------------------------------------
class TestFormatProperties:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_csr_roundtrip_preserves_matrix(self, data):
        n, src, dst, w = data
        coo = coo_from(n, src, dst, w)
        assert np.array_equal(coo.to_csr().to_coo().to_dense(), coo.to_dense())

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_csc_roundtrip_preserves_matrix(self, data):
        n, src, dst, w = data
        coo = coo_from(n, src, dst, w)
        assert np.array_equal(coo.to_csc().to_coo().to_dense(), coo.to_dense())

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_transpose_involution(self, data):
        n, src, dst, w = data
        coo = coo_from(n, src, dst, w)
        assert coo.transpose().transpose() == coo

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_spmv_matches_dense(self, data):
        n, src, dst, w = data
        coo = coo_from(n, src, dst, w)
        x = np.linspace(-1, 1, n)
        assert np.allclose(coo.to_csr().spmv(x), coo.to_dense() @ x)

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_dedup_never_increases_nnz(self, data):
        n, src, dst, w = data
        coo = coo_from(n, src, dst, w)
        d = coo.deduplicated("sum")
        assert d.nnz <= coo.nnz
        assert not d.has_duplicates()
        # Sum-combine preserves the dense matrix exactly.
        assert np.allclose(d.to_dense(), coo.to_dense())

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_sort_is_permutation(self, data):
        n, src, dst, w = data
        coo = coo_from(n, src, dst, w)
        s = coo.sorted_by("col")
        assert s.nnz == coo.nnz
        assert np.allclose(np.sort(s.data), np.sort(coo.data))


# ----------------------------------------------------------------------
# Partitioning properties
# ----------------------------------------------------------------------
class TestPartitionProperties:
    @given(edge_lists(), st.integers(min_value=1, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_partition_covers_every_edge_once(self, data, interval):
        n, src, dst, w = data
        graph = Graph(coo_from(n, src, dst, w).deduplicated("last"))
        grid = partition_graph(graph, interval)
        seen = set()
        for shard in grid.iter_shards():
            for s, d in zip(shard.src, shard.dst):
                seen.add((int(s), int(d)))
            assert np.all(shard.src // interval == shard.src_interval)
            assert np.all(shard.dst // interval == shard.dst_interval)
        expected = {
            (int(s), int(d))
            for s, d in zip(graph.edges.rows, graph.edges.cols)
        }
        assert seen == expected


# ----------------------------------------------------------------------
# Crossbar properties
# ----------------------------------------------------------------------
class TestXbarProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=65535),
                 min_size=1, max_size=32)
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_slicing_roundtrip(self, codes):
        arr = np.array(codes)
        assert np.array_equal(
            unslice_values(slice_values(arr, 2, 8), 2), arr
        )

    @given(
        st.lists(st.floats(min_value=0, max_value=200, allow_nan=False),
                 min_size=1, max_size=50)
    )
    @settings(max_examples=60, deadline=None)
    def test_quantization_error_bounded(self, values):
        fmt = FixedPointFormat(16, 8)
        arr = np.clip(np.array(values), 0, fmt.max_value)
        err = np.abs(fmt.dequantize(fmt.quantize(arr)) - arr)
        assert np.all(err <= fmt.resolution / 2 + 1e-12)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=0, max_value=15),
            ),
            min_size=1, max_size=16,
        ),
        st.integers(min_value=0, max_value=15),
    )
    @settings(max_examples=50, deadline=None)
    def test_cam_search_equals_linear_scan(self, pairs, key):
        src = np.array([p[0] for p in pairs])
        dst = np.array([p[1] for p in pairs])
        cam = EdgeCam(rows=16, vertex_bits=8)
        cam.load_edges(src, dst)
        expected = np.zeros(16, dtype=bool)
        expected[: len(pairs)] = dst == key
        assert np.array_equal(cam.search_dst(key), expected)

    @given(
        st.lists(st.floats(min_value=0, max_value=10, allow_nan=False),
                 min_size=4, max_size=4),
        st.lists(st.booleans(), min_size=4, max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_selective_mac_equals_masked_dot(self, weights, mask):
        mac = MacCrossbar(rows=4, cols=1)
        mac.write(np.arange(4), np.zeros(4, dtype=int), np.array(weights))
        m = np.array(mask)
        out = mac.mac(np.ones(4), row_mask=m)
        assert out[0] == pytest.approx(np.array(weights)[m].sum())


# ----------------------------------------------------------------------
# Engine helper properties
# ----------------------------------------------------------------------
class TestHelperProperties:
    @given(
        st.lists(st.integers(min_value=1, max_value=500),
                 min_size=1, max_size=50),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=80, deadline=None)
    def test_chunk_histogram_conserves_rows_and_ops(self, hits, limit):
        arr = np.array(hits)
        ops, hist = chunk_histogram(arr, limit)
        assert (hist * np.arange(hist.size)).sum() == arr.sum()
        assert ops.sum() == hist.sum()
        assert np.all(ops == -(-arr // limit))
        assert hist[0] == 0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),
                st.integers(min_value=0, max_value=10),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_gather_ranges_matches_concatenation(self, ranges):
        starts = np.array([r[0] for r in ranges], dtype=np.int64)
        lengths = np.array([r[1] for r in ranges], dtype=np.int64)
        expected = (
            np.concatenate([np.arange(s, s + l) for s, l in ranges])
            if ranges and lengths.sum()
            else np.empty(0, dtype=np.int64)
        )
        assert np.array_equal(gather_ranges(starts, lengths), expected)

    @given(st.integers(min_value=0, max_value=20),
           st.integers(min_value=0, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_eventlog_scaled_matches_repeated_merge(self, rows, factor):
        log = EventLog(cam_searches=3, buffer_reads=rows)
        if rows:
            log.record_mac(rows)
        total = EventLog()
        for _ in range(factor):
            total.merge(log)
        assert total.counters_equal(log.scaled(factor))


# ----------------------------------------------------------------------
# Transform properties
# ----------------------------------------------------------------------
class TestTransformProperties:
    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_symmetrize_idempotent_structure(self, data):
        from repro.graphs.transform import symmetrize

        n, src, dst, w = data
        graph = Graph(coo_from(n, src, dst, w).deduplicated("last"))
        once = symmetrize(graph)
        twice = symmetrize(once)
        assert np.array_equal(
            once.edges.to_dense() > 0, twice.edges.to_dense() > 0
        )

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_relabel_preserves_structure(self, data):
        from repro.graphs.transform import relabel

        n, src, dst, w = data
        graph = Graph(coo_from(n, src, dst, w).deduplicated("last"))
        rng = np.random.default_rng(int(src.sum()) % 1000)
        perm = rng.permutation(n)
        out = relabel(graph, perm)
        assert out.num_edges == graph.num_edges
        assert np.array_equal(
            np.sort(out.in_degrees()), np.sort(graph.in_degrees())
        )

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_largest_component_is_connected(self, data):
        from repro.graphs.transform import largest_component, symmetrize

        n, src, dst, w = data
        graph = Graph(coo_from(n, src, dst, w).deduplicated("last"))
        sub, _ = largest_component(graph)
        if sub.num_vertices <= 1:
            return
        # Min-label propagation on the (symmetrized) result converges
        # to a single label.
        sym = symmetrize(sub)
        labels = np.arange(sym.num_vertices)
        for _ in range(sym.num_vertices):
            new = labels.copy()
            np.minimum.at(new, sym.edges.cols, labels[sym.edges.rows])
            if np.array_equal(new, labels):
                break
            labels = new
        assert np.unique(labels).size == 1


# ----------------------------------------------------------------------
# Algorithm invariants on random graphs
# ----------------------------------------------------------------------
class TestAlgorithmProperties:
    @given(edge_lists(max_vertices=16, max_edges=40))
    @settings(max_examples=25, deadline=None)
    def test_engine_pagerank_matches_reference(self, data):
        from repro.baselines import reference
        from repro.core.engine import GaaSXEngine

        n, src, dst, w = data
        graph = Graph(coo_from(n, src, dst, w + 1.0).deduplicated("last"))
        result = GaaSXEngine(graph).pagerank(iterations=5)
        assert np.allclose(
            result.ranks, reference.pagerank(graph, iterations=5)
        )

    @given(edge_lists(max_vertices=16, max_edges=40))
    @settings(max_examples=25, deadline=None)
    def test_engine_sssp_matches_dijkstra(self, data):
        from repro.baselines import reference
        from repro.core.engine import GaaSXEngine

        n, src, dst, w = data
        graph = Graph(coo_from(n, src, dst, w + 0.5).deduplicated("last"))
        ours = GaaSXEngine(graph).sssp(0).distances
        ref = reference.sssp(graph, 0)
        assert np.allclose(
            np.nan_to_num(ours, posinf=-1), np.nan_to_num(ref, posinf=-1)
        )

    @given(edge_lists(max_vertices=14, max_edges=30))
    @settings(max_examples=15, deadline=None)
    def test_graphr_and_gaasx_agree_everywhere(self, data):
        from repro.baselines.graphr import GraphREngine
        from repro.core.engine import GaaSXEngine

        n, src, dst, w = data
        graph = Graph(coo_from(n, src, dst, w + 1.0).deduplicated("last"))
        a = GaaSXEngine(graph).bfs(0).distances
        b = GraphREngine(graph).bfs(0).distances
        assert np.array_equal(
            np.nan_to_num(a, posinf=-1), np.nan_to_num(b, posinf=-1)
        )
