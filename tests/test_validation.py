"""Tests for the programmatic validation battery."""

import pytest

from repro.validation import Check, ValidationReport, run_validation


class TestValidationBattery:
    @pytest.fixture(scope="class")
    def report(self):
        return run_validation(num_vertices=64, num_edges=250, seed=2)

    def test_all_checks_pass(self, report):
        assert report.passed, report.render()

    def test_expected_checks_present(self, report):
        names = {c.name for c in report.checks}
        assert "pagerank matches reference" in names
        assert "GaaS-X engine/micro event equality" in names
        assert "GraphR engine/micro event equality" in names
        assert "Table I totals reproduce" in names

    def test_render(self, report):
        text = report.render()
        assert "PASS" in text
        assert "all checks passed" in text

    def test_progress_callback(self):
        messages = []
        run_validation(
            num_vertices=64, num_edges=250, seed=2,
            progress=messages.append,
        )
        assert len(messages) >= 8


class TestReportMechanics:
    def test_failed_report(self):
        report = ValidationReport(
            checks=[Check("good", True), Check("bad", False, "boom")]
        )
        assert not report.passed
        text = report.render()
        assert "[FAIL] bad  (boom)" in text
        assert "FAILURES PRESENT" in text
