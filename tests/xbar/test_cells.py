"""Unit tests for fixed-point formats and bit slicing."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.xbar.cells import FixedPointFormat, slice_values, unslice_values


class TestFixedPointFormat:
    def test_scale_and_range(self):
        fmt = FixedPointFormat(16, 8)
        assert fmt.scale == 256
        assert fmt.max_code == 65535
        assert fmt.max_value == pytest.approx(65535 / 256)
        assert fmt.resolution == pytest.approx(1 / 256)

    def test_quantize_roundtrip_exact_values(self):
        fmt = FixedPointFormat(16, 8)
        values = np.array([0.0, 1.0, 2.5, 100.25])
        assert np.array_equal(fmt.dequantize(fmt.quantize(values)), values)

    def test_quantize_rounds_to_nearest(self):
        fmt = FixedPointFormat(8, 4)
        assert fmt.quantize(np.array([0.06]))[0] == 1  # 0.06*16 = 0.96 -> 1

    def test_quantize_clips(self):
        fmt = FixedPointFormat(8, 4)
        assert fmt.quantize(np.array([1e9]))[0] == fmt.max_code
        assert fmt.quantize(np.array([-5.0]))[0] == 0

    def test_quantization_error_bounded(self):
        fmt = FixedPointFormat(16, 8)
        rng = np.random.default_rng(0)
        values = rng.uniform(0, fmt.max_value, size=1000)
        err = np.abs(fmt.dequantize(fmt.quantize(values)) - values)
        assert err.max() <= fmt.resolution / 2 + 1e-12

    def test_integer_only_format(self):
        fmt = FixedPointFormat(8, 0)
        assert fmt.quantize(np.array([3.4]))[0] == 3

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            FixedPointFormat(0, 0)
        with pytest.raises(ConfigError):
            FixedPointFormat(8, 9)


class TestBitSlicing:
    def test_slice_unslice_roundtrip(self):
        codes = np.array([0, 1, 255, 65535, 43690])
        slices = slice_values(codes, 2, 8)
        assert np.array_equal(unslice_values(slices, 2), codes)

    def test_slices_most_significant_first(self):
        slices = slice_values(np.array([0b11_00_01_10]), 2, 4)
        assert np.array_equal(slices[0], [3, 0, 1, 2])

    def test_slice_values_bounded_by_cell_bits(self):
        slices = slice_values(np.arange(1000), 2, 8)
        assert slices.max() <= 3
        assert slices.min() >= 0

    def test_matrix_slicing_shape(self):
        codes = np.arange(12).reshape(3, 4)
        assert slice_values(codes, 2, 8).shape == (3, 4, 8)

    def test_rejects_negative_codes(self):
        with pytest.raises(ConfigError):
            slice_values(np.array([-1]), 2, 8)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            slice_values(np.array([1]), 0, 4)
