"""Unit tests for the MAC crossbar (exact and quantized modes)."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigError
from repro.events import EventLog
from repro.xbar import FixedPointFormat, MacCrossbar


def make(rows=8, cols=4, **kwargs):
    return MacCrossbar(rows=rows, cols=cols, **kwargs)


class TestProgramming:
    def test_scattered_write(self):
        mac = make()
        mac.write(np.array([0, 2]), np.array([1, 3]), np.array([2.0, 5.0]))
        stored = mac.stored_values()
        assert stored[0, 1] == 2.0
        assert stored[2, 3] == 5.0

    def test_write_counts(self):
        events = EventLog()
        mac = make(events=events)
        mac.write(np.array([0, 0, 1]), np.array([0, 1, 0]), np.ones(3))
        assert events.row_writes == 2  # two distinct rows
        assert events.cell_writes == 3 * mac.bit_slices

    def test_write_rows(self):
        events = EventLog()
        mac = make(events=events)
        mac.write_rows(np.array([1, 3]), np.ones((2, 4)))
        assert events.row_writes == 2
        assert events.cell_writes == 8 * mac.bit_slices
        assert np.array_equal(mac.stored_values()[1], np.ones(4))

    def test_write_bounds_checked(self):
        with pytest.raises(CapacityError):
            make().write(np.array([9]), np.array([0]), np.array([1.0]))
        with pytest.raises(CapacityError):
            make().write_rows(np.array([9]), np.ones((1, 4)))

    def test_write_shape_checked(self):
        with pytest.raises(ConfigError):
            make().write(np.array([0, 1]), np.array([0]), np.array([1.0]))
        with pytest.raises(ConfigError):
            make().write_rows(np.array([0]), np.ones((1, 3)))

    def test_preset_no_events(self):
        events = EventLog()
        mac = make(events=events)
        mac.preset(np.ones((8, 4)))
        assert events.row_writes == 0
        assert events.cell_writes == 0
        assert mac.stored_values()[5, 2] == 1.0

    def test_preset_shape_checked(self):
        with pytest.raises(ConfigError):
            make().preset(np.ones((2, 2)))


class TestExactMac:
    def test_full_dot_product(self):
        mac = make()
        weights = np.arange(32, dtype=float).reshape(8, 4)
        mac.write_rows(np.arange(8), weights)
        x = np.linspace(0, 1, 8)
        assert np.allclose(mac.mac(x), x @ weights)

    def test_selective_rows(self):
        mac = make()
        mac.write(np.arange(4), np.zeros(4, dtype=int), np.array([1.0, 2.0, 4.0, 8.0]))
        mask = np.zeros(8, dtype=bool)
        mask[[1, 3]] = True
        out = mac.mac(np.ones(8), row_mask=mask)
        assert out[0] == 10.0

    def test_selective_columns(self):
        mac = make()
        mac.write_rows(np.arange(8), np.tile(np.arange(4.0), (8, 1)))
        out = mac.mac(np.ones(8), col_mask=np.array([2]))
        assert out[2] == 16.0
        assert out[0] == 0.0  # unengaged column stays zero

    def test_empty_mask_returns_zeros_no_events(self):
        events = EventLog()
        mac = make(events=events)
        out = mac.mac(np.ones(8), row_mask=np.zeros(8, dtype=bool))
        assert np.array_equal(out, np.zeros(4))
        assert events.mac_ops == 0

    def test_accumulate_limit_splits_ops(self):
        events = EventLog()
        mac = make(rows=40, accumulate_limit=16, events=events)
        mac.write(np.arange(40), np.zeros(40, dtype=int), np.ones(40))
        mac.mac(np.ones(40), row_mask=np.arange(40))
        assert events.mac_ops == 3  # 16 + 16 + 8
        assert events.mac_rows_hist[16] == 2
        assert events.mac_rows_hist[8] == 1

    def test_events_per_op(self):
        events = EventLog()
        mac = make(events=events)
        mac.mac(np.ones(8), row_mask=np.array([0, 1, 2]), col_mask=np.array([0, 1]))
        assert events.mac_ops == 1
        assert events.dac_conversions == 3
        assert events.adc_conversions == 2
        assert events.mac_cell_ops == 6

    def test_input_length_checked(self):
        with pytest.raises(ConfigError):
            make().mac(np.ones(5))

    def test_bad_mask_rejected(self):
        with pytest.raises(ConfigError):
            make().mac(np.ones(8), row_mask=np.array([99]))
        with pytest.raises(ConfigError):
            make().mac(np.ones(8), row_mask=np.zeros(5, dtype=bool))


class TestTransposedAndRowwise:
    def test_transposed_matches_matmul(self):
        mac = make()
        weights = np.arange(32, dtype=float).reshape(8, 4)
        mac.write_rows(np.arange(8), weights)
        x = np.array([1.0, 0.5, 2.0, -1.0])
        assert np.allclose(mac.mac_transposed(x), weights @ x)

    def test_transposed_selective(self):
        mac = make()
        weights = np.ones((8, 4))
        mac.write_rows(np.arange(8), weights)
        out = mac.mac_transposed(
            np.ones(4), col_mask=np.array([0, 1]), row_mask=np.array([3])
        )
        assert out[3] == 2.0
        assert out[0] == 0.0

    def test_rowwise_candidates(self):
        """The SSSP shape: out[r] = w[r]*1 + 1*dist (Figure 9b)."""
        mac = make()
        mac.write(np.arange(3), np.zeros(3, dtype=int), np.array([5.0, 2.0, 7.0]))
        ones = mac.stored_values()
        ones[:, 1] = 1.0
        mac.preset(ones)
        inputs = np.zeros(4)
        inputs[0] = 1.0
        inputs[1] = 10.0  # dist(u)
        out = mac.mac_rowwise(
            inputs, row_mask=np.array([0, 2]), col_mask=np.array([0, 1])
        )
        assert out[0] == 15.0
        assert out[2] == 17.0
        assert out[1] == 0.0

    def test_rowwise_event_convention(self):
        events = EventLog()
        mac = make(events=events)
        mac.mac_rowwise(
            np.ones(4), row_mask=np.array([0, 1, 2]), col_mask=np.array([0, 1])
        )
        assert events.mac_ops == 1
        assert events.mac_rows_hist[3] == 1
        assert events.adc_conversions == 2
        assert events.mac_cell_ops == 6

    def test_rowwise_input_length_checked(self):
        with pytest.raises(ConfigError):
            make().mac_rowwise(np.ones(8))


class TestQuantizedMode:
    def test_quantized_matches_exact_for_representable_values(self):
        fmt = FixedPointFormat(16, 8)
        exact = make(exact=True, value_format=fmt)
        quant = make(exact=False, value_format=fmt)
        weights = np.array([1.5, 2.25, 0.5, 3.0])
        for mac in (exact, quant):
            mac.write(np.arange(4), np.zeros(4, dtype=int), weights)
        x = np.zeros(8)
        x[:4] = [2.0, 1.0, 4.0, 0.5]
        a = exact.mac(x, row_mask=np.arange(4), col_mask=np.array([0]))
        b = quant.mac(x, row_mask=np.arange(4), col_mask=np.array([0]))
        assert np.allclose(a, b)

    def test_quantized_error_bounded(self):
        fmt = FixedPointFormat(16, 8)
        quant = make(exact=False, value_format=fmt)
        rng = np.random.default_rng(1)
        weights = rng.uniform(0, 4, size=4)
        quant.write(np.arange(4), np.zeros(4, dtype=int), weights)
        x = np.zeros(8)
        x[:4] = rng.uniform(0, 4, size=4)
        out = quant.mac(x, row_mask=np.arange(4), col_mask=np.array([0]))[0]
        exact = float(x[:4] @ weights)
        # Worst case: per-operand rounding of inputs and weights.
        tol = 4 * (4 + 4) * fmt.resolution
        assert abs(out - exact) < tol

    def test_quantized_transposed(self):
        fmt = FixedPointFormat(16, 8)
        quant = make(exact=False, value_format=fmt)
        weights = np.zeros((8, 4))
        weights[:3, 0] = [1.5, 2.25, 0.5]
        quant.preset(weights)
        out = quant.mac_transposed(
            np.array([2.0, 0.0, 0.0, 0.0]), col_mask=np.array([0])
        )
        assert np.allclose(out[:3], [3.0, 4.5, 1.0])

    def test_quantized_counts_adc_per_slice_phase(self):
        events = EventLog()
        fmt = FixedPointFormat(4, 0)  # 2 slices, 4 input phases
        quant = MacCrossbar(
            rows=4, cols=2, exact=False, value_format=fmt, events=events
        )
        quant.write(np.array([0]), np.array([0]), np.array([3.0]))
        events_before = events.adc_conversions
        quant.mac(
            np.array([1.0, 0, 0, 0]),
            row_mask=np.array([0]),
            col_mask=np.array([0]),
        )
        # Input code 1 has one non-zero phase; 2 slices -> 2 ADC uses
        # inside the pipeline plus the op-level sample accounting.
        assert events.adc_conversions > events_before


class TestValidation:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigError):
            MacCrossbar(rows=0)

    def test_rejects_bad_limit(self):
        with pytest.raises(ConfigError):
            MacCrossbar(accumulate_limit=0)

    def test_rejects_indivisible_bits(self):
        with pytest.raises(ConfigError):
            MacCrossbar(value_format=FixedPointFormat(15, 4), cell_bits=2)
