"""Unit tests for the TCAM crossbar and the edge CAM."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigError
from repro.events import EventLog
from repro.xbar import CamCrossbar, EdgeCam


def bits(pattern: str) -> np.ndarray:
    return np.array([c == "1" for c in pattern], dtype=bool)


class TestCamCrossbar:
    def test_exact_match(self):
        cam = CamCrossbar(rows=4, width_bits=4)
        cam.write_row(0, bits("1010"))
        cam.write_row(1, bits("1111"))
        hit = cam.search(bits("1010"))
        assert np.array_equal(hit, [True, False, False, False])

    def test_ternary_mask_ignores_bits(self):
        cam = CamCrossbar(rows=2, width_bits=4)
        cam.write_row(0, bits("1010"))
        cam.write_row(1, bits("1001"))
        # Match only the first two bits.
        hit = cam.search(bits("1000"), mask=bits("1100"))
        assert np.array_equal(hit, [True, True])

    def test_unwritten_rows_never_hit(self):
        cam = CamCrossbar(rows=4, width_bits=4)
        cam.write_row(0, bits("0000"))
        hit = cam.search(bits("0000"))
        assert np.array_equal(hit, [True, False, False, False])

    def test_invalidate(self):
        cam = CamCrossbar(rows=2, width_bits=4)
        cam.write_row(0, bits("1111"))
        cam.invalidate()
        assert not cam.search(bits("1111")).any()

    def test_write_counts_events(self):
        events = EventLog()
        cam = CamCrossbar(rows=2, width_bits=8, events=events)
        cam.write_row(0, np.zeros(8, dtype=bool))
        assert events.cam_row_writes == 1
        assert events.cam_cell_writes == 16  # two cells per bit

    def test_search_counts_events(self):
        events = EventLog()
        cam = CamCrossbar(rows=2, width_bits=4, events=events)
        cam.search(bits("0000"))
        cam.search(bits("1111"))
        assert events.cam_searches == 2

    def test_write_out_of_bounds(self):
        with pytest.raises(CapacityError):
            CamCrossbar(rows=2, width_bits=4).write_row(2, bits("0000"))

    def test_bad_pattern_width(self):
        with pytest.raises(ConfigError):
            CamCrossbar(rows=2, width_bits=4).write_row(0, bits("00000"))

    def test_bad_key_width(self):
        with pytest.raises(ConfigError):
            CamCrossbar(rows=2, width_bits=4).search(bits("001"))


class TestEdgeCam:
    def test_search_by_destination(self):
        cam = EdgeCam(rows=8, vertex_bits=8)
        cam.load_edges(np.array([1, 3, 4, 1]), np.array([2, 2, 2, 3]))
        assert np.array_equal(
            np.flatnonzero(cam.search_dst(2)), [0, 1, 2]
        )

    def test_search_by_source(self):
        cam = EdgeCam(rows=8, vertex_bits=8)
        cam.load_edges(np.array([1, 3, 4, 1]), np.array([2, 2, 2, 3]))
        assert np.array_equal(np.flatnonzero(cam.search_src(1)), [0, 3])

    def test_miss_returns_empty(self):
        cam = EdgeCam(rows=4, vertex_bits=8)
        cam.load_edges(np.array([1]), np.array([2]))
        assert not cam.search_dst(9).any()

    def test_src_dst_fields_do_not_alias(self):
        """Searching dst=5 must not hit a row whose src is 5."""
        cam = EdgeCam(rows=4, vertex_bits=8)
        cam.load_edges(np.array([5]), np.array([7]))
        assert not cam.search_dst(5).any()
        assert not cam.search_src(7).any()

    def test_reload_replaces_contents(self):
        cam = EdgeCam(rows=4, vertex_bits=8)
        cam.load_edges(np.array([1, 2]), np.array([3, 4]))
        cam.load_edges(np.array([9]), np.array([9]))
        assert not cam.search_src(1).any()
        assert cam.search_src(9).any()

    def test_capacity_enforced(self):
        cam = EdgeCam(rows=2, vertex_bits=8)
        with pytest.raises(CapacityError):
            cam.load_edges(np.arange(3), np.arange(3))

    def test_stored_accessors(self):
        cam = EdgeCam(rows=4, vertex_bits=8)
        cam.load_edges(np.array([1, 2]), np.array([3, 4]))
        assert np.array_equal(cam.stored_src()[:2], [1, 2])
        assert np.array_equal(cam.stored_dst()[:2], [3, 4])
        assert cam.stored_src()[2] == -1

    def test_vertex_bits_capacity(self):
        with pytest.raises(ConfigError):
            EdgeCam(vertex_bits=65)

    def test_large_vertex_ids(self):
        cam = EdgeCam(rows=2, vertex_bits=32)
        big = 2**31 - 1
        cam.load_edges(np.array([big]), np.array([big - 1]))
        assert cam.search_src(big).any()
        assert cam.search_dst(big - 1).any()

    def test_search_equals_linear_scan(self):
        rng = np.random.default_rng(3)
        src = rng.integers(0, 50, size=60)
        dst = rng.integers(0, 50, size=60)
        cam = EdgeCam(rows=64, vertex_bits=8)
        cam.load_edges(src, dst)
        for v in range(50):
            expect = np.zeros(64, dtype=bool)
            expect[:60] = dst == v
            assert np.array_equal(cam.search_dst(v), expect)
