"""Tests for the device-variation model."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.xbar import MacCrossbar
from repro.xbar.noise import VariationModel, mac_error_vs_rows


class TestVariationModel:
    def test_zero_sigma_identity(self):
        model = VariationModel(0.0)
        values = np.array([1.0, 2.0, 3.0])
        assert np.array_equal(model.perturb(values), values)

    def test_perturb_is_multiplicative(self):
        model = VariationModel(0.05, seed=1)
        values = np.array([2.0, 4.0])
        out = model.perturb(values)
        assert np.all(out > 0)
        assert not np.array_equal(out, values)

    def test_deterministic_per_seed(self):
        a = VariationModel(0.05, seed=3).perturb(np.ones(10))
        b = VariationModel(0.05, seed=3).perturb(np.ones(10))
        assert np.array_equal(a, b)

    def test_error_scale_tracks_sigma(self):
        rng_values = np.ones(20_000)
        small = VariationModel(0.02, seed=1).perturb(rng_values)
        large = VariationModel(0.10, seed=1).perturb(rng_values)
        assert np.std(np.log(large)) > np.std(np.log(small))
        assert np.std(np.log(small)) == pytest.approx(0.02, rel=0.1)

    def test_apply_to_crossbar_no_write_events(self):
        mac = MacCrossbar(rows=8, cols=4)
        mac.write_rows(np.arange(8), np.ones((8, 4)))
        writes_before = mac.events.cell_writes
        VariationModel(0.05, seed=2).apply_to(mac)
        assert mac.events.cell_writes == writes_before
        assert not np.array_equal(mac.stored_values(), np.ones((8, 4)))

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigError):
            VariationModel(-0.1)


class TestMacErrorStudy:
    def test_error_positive_and_bounded(self):
        err = mac_error_vs_rows(0.05, 16, trials=50)
        assert 0 < err < 0.2

    def test_error_grows_with_sigma(self):
        low = mac_error_vs_rows(0.02, 16, trials=100)
        high = mac_error_vs_rows(0.10, 16, trials=100)
        assert high > low

    def test_rejects_bad_rows(self):
        with pytest.raises(ConfigError):
            mac_error_vs_rows(0.05, 0)
