"""Unit tests for the DAC and ADC models."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.events import EventLog
from repro.xbar import ADC, DAC


class TestDAC:
    def test_levels(self):
        assert DAC(2).levels == 4

    def test_convert_passthrough(self):
        dac = DAC(2)
        out = dac.convert(np.array([0, 1, 3]))
        assert np.array_equal(out, [0.0, 1.0, 3.0])

    def test_counts_conversions(self):
        events = EventLog()
        DAC(2, events=events).convert(np.array([0, 1, 2]))
        assert events.dac_conversions == 3

    def test_rejects_wide_codes(self):
        with pytest.raises(ConfigError):
            DAC(2).convert(np.array([4]))

    def test_rejects_negative_codes(self):
        with pytest.raises(ConfigError):
            DAC(2).convert(np.array([-1]))

    def test_phases_for(self):
        dac = DAC(2)
        assert dac.phases_for(16) == 8
        assert dac.phases_for(3) == 2

    def test_rejects_zero_bits(self):
        with pytest.raises(ConfigError):
            DAC(0)


class TestADC:
    def test_max_code(self):
        assert ADC(6).max_code == 63

    def test_integer_sums_lossless_at_default_scale(self):
        """Default full-scale = max code, so integer bit-line sums up to
        63 digitize exactly — the property the 16-row MAC limit buys."""
        adc = ADC(6)
        sums = np.arange(64)
        assert np.array_equal(adc.convert(sums.astype(float)), sums)

    def test_clips_at_full_scale(self):
        adc = ADC(6)
        assert adc.convert(np.array([100.0]))[0] == 63

    def test_saturates_predicate(self):
        adc = ADC(6)
        assert adc.saturates(64.0)
        assert not adc.saturates(48.0)

    def test_worst_case_16_row_sum_fits_6_bits(self):
        """16 rows x max 2-bit cell (3) x 1 input bit = 48 < 64
        (Section V-A's sizing argument)."""
        assert not ADC(6).saturates(16 * 3 * 1)

    def test_custom_full_scale_quantizes(self):
        adc = ADC(2, max_input=1.0)
        assert adc.convert(np.array([0.5]))[0] == 2  # 0.5*3 = 1.5 -> 2

    def test_counts_conversions(self):
        events = EventLog()
        ADC(6, events=events).convert(np.zeros(5))
        assert events.adc_conversions == 5

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            ADC(0)
        with pytest.raises(ConfigError):
            ADC(6, max_input=-1.0)


class TestADCSaturation:
    """Clipping at ``max_code`` is counted, not silent."""

    def test_convert_counts_clipped_samples(self):
        events = EventLog()
        adc = ADC(6, events=events)
        out = adc.convert(np.array([100.0, 32.0, 64.0]))
        # Two samples above full scale clip to the max code.
        assert events.adc_saturations == 2
        assert out.tolist() == [63, 32, 63]

    def test_no_saturation_within_range(self):
        events = EventLog()
        ADC(6, events=events).convert(np.arange(64, dtype=float))
        assert events.adc_saturations == 0

    def test_clipped_codes_never_exceed_max_code(self):
        adc = ADC(4)
        out = adc.convert(np.array([1e9, -5.0, 7.0]))
        assert out.max() <= adc.max_code
        assert out.min() >= 0

    def test_saturates_agrees_with_convert_counting(self):
        adc = ADC(6, events=EventLog())
        for value in (0.0, 48.0, 63.0, 63.6, 64.0, 500.0):
            before = adc.events.adc_saturations
            adc.convert(np.array([value]))
            clipped = adc.events.adc_saturations - before
            assert bool(clipped) == adc.saturates(value), value

    def test_hw_mirror_counts_saturations(self):
        from repro.obs.hw import HwMonitor

        monitor = HwMonitor()
        adc = ADC(6, events=EventLog())
        adc.hw = monitor.register("mac")
        adc.convert(np.array([100.0, 1.0]))
        totals = monitor.totals()
        assert totals["adc_conversions"] == 2
        assert totals["adc_saturations"] == 1
