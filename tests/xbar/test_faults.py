"""Failure-injection tests: stuck cells and dead CAM rows."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.xbar import EdgeCam, MacCrossbar
from repro.xbar.faults import FaultModel, edges_lost_to_dead_rows


def loaded_cam(rows=16):
    cam = EdgeCam(rows=rows, vertex_bits=8)
    cam.load_edges(np.arange(8), np.arange(8) + 1)
    return cam


class TestDeadCamRows:
    def test_dead_rows_never_hit(self):
        cam = loaded_cam()
        model = FaultModel(dead_row_fraction=0.5, seed=1)
        dead = model.kill_cam_rows(cam)
        for row in dead:
            if row < 8:  # row actually held an edge
                assert not cam.search_src(int(row))[row]

    def test_healthy_rows_unaffected(self):
        cam = loaded_cam()
        dead = FaultModel(dead_row_fraction=0.25, seed=2).kill_cam_rows(cam)
        alive = [r for r in range(8) if r not in set(dead.tolist())]
        for row in alive:
            assert cam.search_src(row)[row]

    def test_zero_fraction_no_faults(self):
        cam = loaded_cam()
        dead = FaultModel(dead_row_fraction=0.0).kill_cam_rows(cam)
        assert dead.size == 0

    def test_lost_edges_reported(self):
        cam = loaded_cam()
        dead = FaultModel(dead_row_fraction=0.5, seed=3).kill_cam_rows(cam)
        lost = edges_lost_to_dead_rows(cam, dead)
        for s, d in lost:
            assert d == s + 1  # the loaded pattern

    def test_deterministic(self):
        a = FaultModel(dead_row_fraction=0.5, seed=7).kill_cam_rows(loaded_cam())
        b = FaultModel(dead_row_fraction=0.5, seed=7).kill_cam_rows(loaded_cam())
        assert np.array_equal(a, b)


class TestStuckMacCells:
    def test_cells_changed_without_events(self):
        mac = MacCrossbar(rows=8, cols=4)
        mac.write_rows(np.arange(8), np.full((8, 4), 2.0))
        writes_before = mac.events.cell_writes
        count = FaultModel(stuck_cell_fraction=0.25, seed=1).stick_mac_cells(mac)
        assert count == 8  # 25 % of 32 cells
        assert mac.events.cell_writes == writes_before
        assert not np.array_equal(mac.stored_values(), np.full((8, 4), 2.0))

    def test_zero_fraction_identity(self):
        mac = MacCrossbar(rows=8, cols=4)
        mac.write_rows(np.arange(8), np.full((8, 4), 2.0))
        FaultModel(stuck_cell_fraction=0.0).stick_mac_cells(mac)
        assert np.array_equal(mac.stored_values(), np.full((8, 4), 2.0))

    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultModel(dead_row_fraction=1.5)
        with pytest.raises(ConfigError):
            FaultModel(stuck_cell_fraction=-0.1)


class TestAlgorithmicBlastRadius:
    def test_dead_rows_drop_reachability(self):
        """A dead CAM row silently removes its edge: SSSP through that
        edge must degrade, and the damage equals exactly the lost
        edges."""
        from repro.baselines import reference
        from repro.graphs import Graph
        from repro.graphs.generators import rmat

        graph = rmat(32, 120, seed=4)
        cam = EdgeCam(rows=128, vertex_bits=8)
        cam.load_edges(graph.edges.rows, graph.edges.cols)
        dead = FaultModel(dead_row_fraction=0.3, seed=5).kill_cam_rows(cam)
        lost = {tuple(e) for e in edges_lost_to_dead_rows(cam, dead)}
        keep = [
            i
            for i in range(graph.num_edges)
            if (graph.edges.rows[i], graph.edges.cols[i]) not in lost
        ]
        degraded = Graph.from_edge_list(
            np.stack(
                [graph.edges.rows[keep], graph.edges.cols[keep]], axis=1
            ),
            weights=graph.weights[keep],
            num_vertices=32,
        )
        healthy = reference.sssp(graph, 0)
        faulty = reference.sssp(degraded, 0)
        # Losing edges can only lengthen (or disconnect) paths.
        both = np.isfinite(healthy) & np.isfinite(faulty)
        assert np.all(faulty[both] >= healthy[both] - 1e-9)
