"""Batched CAM/MAC entry points must match their sequential forms.

The frontier-sparse rewrite added ``search_many``/``search_packed``,
``mac_many``/``mac_rowwise_many`` and the :class:`CamBank`/
:class:`MacBank` gang views. Each batched call is a pure simulation
speedup: values and every event counter (including the Figure 13 rows
histogram) must be exactly what the one-at-a-time calls produce.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.events import EventLog
from repro.xbar import EdgeCam, MacCrossbar
from repro.xbar.cam_array import CamBank, CamCrossbar, encode_ids
from repro.xbar.mac_array import MacBank


def _loaded_edge_cam(seed=0, rows=32, vertex_bits=8, count=20):
    rng = np.random.default_rng(seed)
    events = EventLog()
    cam = EdgeCam(rows=rows, vertex_bits=vertex_bits, events=events)
    src = rng.integers(0, 50, size=count)
    dst = rng.integers(0, 50, size=count)
    cam.load_edges(src, dst)
    return cam, src, dst


class TestEncodeIds:
    def test_matches_binary_representation(self):
        out = encode_ids(np.array([0, 1, 5, 255]), 8)
        for value, row in zip([0, 1, 5, 255], out):
            assert "".join("1" if b else "0" for b in row) == format(value, "08b")

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigError):
            encode_ids(np.array([256]), 8)
        with pytest.raises(ConfigError):
            encode_ids(np.array([-1]), 8)


class TestSearchManyEquivalence:
    def test_matches_sequential_search(self):
        cam, src, dst = _loaded_edge_cam()
        vertices = np.unique(src)
        batched = cam.search_many(vertices, "src")
        for i, v in enumerate(vertices):
            assert np.array_equal(batched[i], cam.search_src(int(v)))

    def test_counts_one_search_per_key(self):
        cam, src, dst = _loaded_edge_cam()
        before = cam.events.cam_searches
        cam.search_many(np.arange(7), "dst")
        assert cam.events.cam_searches == before + 7

    def test_empty_batch(self):
        cam, _, _ = _loaded_edge_cam()
        before = cam.events.cam_searches
        hits = cam.search_many(np.empty(0, dtype=np.int64), "src")
        assert hits.shape == (0, cam.rows)
        assert cam.events.cam_searches == before

    def test_pack_keys_round_trip(self):
        cam, src, _ = _loaded_edge_cam()
        vertices = np.unique(src)
        key_words, mask_words = cam.pack_keys(vertices, "src")
        assert np.array_equal(
            cam.search_packed(key_words, mask_words),
            cam.search_many(vertices, "src"),
        )

    def test_all_masked_search_hits_every_valid_row(self):
        # A fully-masked (all don't-care) key matches any written row:
        # no bit is required to agree, invalid rows still never hit.
        events = EventLog()
        cam = CamCrossbar(rows=8, width_bits=16, events=events)
        cam.write_row(2, np.ones(16, dtype=bool))
        cam.write_row(5, np.zeros(16, dtype=bool))
        hits = cam.search(
            np.ones(16, dtype=bool), mask=np.zeros(16, dtype=bool)
        )
        assert np.array_equal(np.flatnonzero(hits), [2, 5])

    def test_search_many_all_masked(self):
        events = EventLog()
        cam = CamCrossbar(rows=8, width_bits=16, events=events)
        cam.write_row(1, np.zeros(16, dtype=bool))
        keys = np.stack([np.ones(16, dtype=bool), np.zeros(16, dtype=bool)])
        hits = cam.search_many(keys, mask=np.zeros(16, dtype=bool))
        assert np.array_equal(hits[0], hits[1])
        assert np.array_equal(np.flatnonzero(hits[0]), [1])


class TestCamBank:
    def test_matches_per_member_search(self):
        events = EventLog()
        cams = []
        rng = np.random.default_rng(3)
        for _ in range(4):
            cam = EdgeCam(rows=16, vertex_bits=8, events=events)
            cam.load_edges(
                rng.integers(0, 30, size=10), rng.integers(0, 30, size=10)
            )
            cams.append(cam)
        bank = CamBank([c.cam for c in cams])
        member_ids = rng.integers(0, 4, size=25)
        vertices = rng.integers(0, 30, size=25)
        key_words, mask_words = cams[0].pack_keys(vertices, "src")
        before = events.cam_searches
        ganged = bank.search_packed(member_ids, key_words, mask_words)
        assert events.cam_searches == before + 25
        for i, (m, v) in enumerate(zip(member_ids, vertices)):
            assert np.array_equal(ganged[i], cams[m].search_src(int(v)))

    def test_rejects_mixed_event_logs(self):
        a = CamCrossbar(rows=8, width_bits=16, events=EventLog())
        b = CamCrossbar(rows=8, width_bits=16, events=EventLog())
        with pytest.raises(ConfigError):
            CamBank([a, b])

    def test_rejects_mixed_geometry(self):
        events = EventLog()
        a = CamCrossbar(rows=8, width_bits=16, events=events)
        b = CamCrossbar(rows=16, width_bits=16, events=events)
        with pytest.raises(ConfigError):
            CamBank([a, b])

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            CamBank([])


def _loaded_mac(events, seed=0, rows=32, cols=8, limit=4):
    rng = np.random.default_rng(seed)
    mac = MacCrossbar(
        rows=rows, cols=cols, accumulate_limit=limit, events=events
    )
    mac.preset(rng.uniform(-1.0, 1.0, size=(rows, cols)))
    return mac


class TestMacManyEquivalence:
    def test_values_and_events_match_sequential(self):
        rng = np.random.default_rng(7)
        seq_events, batch_events = EventLog(), EventLog()
        seq = _loaded_mac(seq_events)
        batch = _loaded_mac(batch_events)
        inputs = rng.uniform(-1.0, 1.0, size=32)
        hit_rows = rng.random((6, 32)) < 0.4
        cols = np.array([0, 3])
        expected = np.stack(
            [seq.mac(inputs, row_mask=h, col_mask=cols) for h in hit_rows]
        )
        got = batch.mac_many(inputs, hit_rows, col_mask=cols)
        assert np.allclose(got, expected)
        assert batch_events.counters_equal(seq_events)
        assert np.array_equal(
            batch_events.mac_rows_hist, seq_events.mac_rows_hist
        )

    def test_over_limit_hit_sets_split_identically(self):
        seq_events, batch_events = EventLog(), EventLog()
        seq = _loaded_mac(seq_events, limit=4)
        batch = _loaded_mac(batch_events, limit=4)
        inputs = np.ones(32)
        hit_rows = np.zeros((2, 32), dtype=bool)
        hit_rows[0, :11] = True  # 4 + 4 + 3
        hit_rows[1, 20:26] = True  # 4 + 2
        for h in hit_rows:
            seq.mac(inputs, row_mask=h)
        batch.mac_many(inputs, hit_rows)
        assert batch_events.counters_equal(seq_events)
        assert np.array_equal(
            batch_events.mac_rows_hist, seq_events.mac_rows_hist
        )

    def test_empty_batch_counts_nothing(self):
        events = EventLog()
        mac = _loaded_mac(events)
        writes = events.mac_ops
        out = mac.mac_many(np.ones(32), np.zeros((0, 32), dtype=bool))
        assert out.shape == (0, 8)
        assert events.mac_ops == writes

    def test_quantized_fallback_matches_sequential(self):
        rng = np.random.default_rng(11)
        seq_events, batch_events = EventLog(), EventLog()
        seq = MacCrossbar(rows=16, cols=4, exact=False, events=seq_events)
        batch = MacCrossbar(rows=16, cols=4, exact=False, events=batch_events)
        weights = rng.uniform(-1.0, 1.0, size=(16, 4))
        seq.preset(weights)
        batch.preset(weights)
        inputs = rng.uniform(-1.0, 1.0, size=16)
        hit_rows = rng.random((3, 16)) < 0.5
        expected = np.stack([seq.mac(inputs, row_mask=h) for h in hit_rows])
        got = batch.mac_many(inputs, hit_rows)
        assert np.array_equal(got, expected)
        assert batch_events.counters_equal(seq_events)


class TestMacRowwiseManyEquivalence:
    def test_values_and_events_match_sequential(self):
        rng = np.random.default_rng(13)
        seq_events, batch_events = EventLog(), EventLog()
        seq = _loaded_mac(seq_events)
        batch = _loaded_mac(batch_events)
        inputs = rng.uniform(-1.0, 1.0, size=(5, 8))
        hit_rows = rng.random((5, 32)) < 0.3
        cols = np.array([0, 1])
        expected = np.stack(
            [
                seq.mac_rowwise(inp, row_mask=h, col_mask=cols)
                for inp, h in zip(inputs, hit_rows)
            ]
        )
        got = batch.mac_rowwise_many(inputs, hit_rows, col_mask=cols)
        assert np.allclose(got, expected)
        assert batch_events.counters_equal(seq_events)
        assert np.array_equal(
            batch_events.mac_rows_hist, seq_events.mac_rows_hist
        )


class TestMacBank:
    def test_matches_per_member_rowwise(self):
        rng = np.random.default_rng(17)
        gang_events, seq_events = EventLog(), EventLog()
        gang_macs = [_loaded_mac(gang_events, seed=s) for s in range(3)]
        seq_macs = [_loaded_mac(seq_events, seed=s) for s in range(3)]
        bank = MacBank(gang_macs)
        member_ids = rng.integers(0, 3, size=9)
        inputs = rng.uniform(-1.0, 1.0, size=(9, 8))
        hit_rows = rng.random((9, 32)) < 0.3
        cols = np.array([0, 1])
        got = bank.mac_rowwise_many(member_ids, inputs, hit_rows, col_mask=cols)
        expected = np.stack(
            [
                seq_macs[m].mac_rowwise(inp, row_mask=h, col_mask=cols)
                for m, inp, h in zip(member_ids, inputs, hit_rows)
            ]
        )
        assert np.allclose(got, expected)
        assert gang_events.counters_equal(seq_events)
        assert np.array_equal(
            gang_events.mac_rows_hist, seq_events.mac_rows_hist
        )

    def test_rejects_mixed_event_logs(self):
        with pytest.raises(ConfigError):
            MacBank([
                MacCrossbar(rows=8, cols=4, events=EventLog()),
                MacCrossbar(rows=8, cols=4, events=EventLog()),
            ])

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            MacBank([])


class TestBatchedSearchProperty:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_search_many_matches_linear_scan(self, data):
        count = data.draw(st.integers(min_value=0, max_value=24))
        src = np.array(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=40),
                    min_size=count, max_size=count,
                )
            ),
            dtype=np.int64,
        )
        dst = np.array(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=40),
                    min_size=count, max_size=count,
                )
            ),
            dtype=np.int64,
        )
        cam = EdgeCam(rows=24, vertex_bits=8, events=EventLog())
        cam.load_edges(src, dst)
        queries = np.arange(41)
        hits = cam.search_many(queries, "dst")
        for i, v in enumerate(queries):
            expected = np.zeros(24, dtype=bool)
            expected[: count][dst == v] = True
            assert np.array_equal(hits[i], expected)
