"""Unit tests for the special function unit."""

import numpy as np

from repro.events import EventLog
from repro.xbar import SpecialFunctionUnit


def make():
    events = EventLog()
    return SpecialFunctionUnit(events=events), events


class TestOps:
    def test_add(self):
        sfu, events = make()
        out = sfu.add(np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        assert np.array_equal(out, [4.0, 6.0])
        assert events.sfu_ops == 2

    def test_multiply(self):
        sfu, events = make()
        out = sfu.multiply(np.array([2.0, 3.0]), np.array([4.0, 5.0]))
        assert np.array_equal(out, [8.0, 15.0])
        assert events.sfu_ops == 2

    def test_minimum(self):
        sfu, events = make()
        out = sfu.minimum(np.array([1.0, 9.0]), np.array([5.0, 2.0]))
        assert np.array_equal(out, [1.0, 2.0])
        assert events.sfu_ops == 2

    def test_minimum_handles_infinity(self):
        sfu, _ = make()
        out = sfu.minimum(np.array([np.inf]), np.array([3.0]))
        assert out[0] == 3.0

    def test_compare_less(self):
        sfu, events = make()
        out = sfu.compare_less(np.array([1.0, 5.0]), np.array([2.0, 2.0]))
        assert np.array_equal(out, [True, False])
        assert events.sfu_ops == 2

    def test_affine_counts_two_ops_per_element(self):
        sfu, events = make()
        out = sfu.affine(np.array([1.0, 2.0, 3.0]), 0.85, 0.15)
        assert np.allclose(out, [1.0, 1.85, 2.7])
        assert events.sfu_ops == 6

    def test_scalar_broadcast_charges_max_size(self):
        sfu, events = make()
        sfu.add(np.array([1.0, 2.0, 3.0]), np.array(1.0))
        assert events.sfu_ops == 3

    def test_default_event_log(self):
        sfu = SpecialFunctionUnit()
        sfu.add(np.array([1.0]), np.array([1.0]))
        assert sfu.events.sfu_ops == 1
