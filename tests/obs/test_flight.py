"""Flight-recorder (tail-based trace sampling) tests."""

import pytest

from repro.obs.flight import MAX_SPANS_PER_TRACE, FlightRecorder


def span(trace_id, name="s", **args):
    return {
        "name": name, "cat": "serve", "ts": 0, "dur": 1,
        "trace": trace_id, "args": args,
    }


class TestTailSampling:
    def test_errors_always_kept(self):
        recorder = FlightRecorder(keep_every=0)
        for index in range(5):
            trace = f"t{index}"
            recorder.begin(trace)
            recorder.finish(trace, status="error", error="boom")
        assert recorder.kept == 5
        assert all(
            e["kept_because"] == "error" for e in recorder.entries()
        )

    def test_slow_requests_kept(self):
        recorder = FlightRecorder(slow_threshold_s=0.5, keep_every=0)
        recorder.begin("fast")
        recorder.finish("fast", status="ok", latency_s=0.1)
        recorder.begin("slow")
        recorder.finish("slow", status="ok", latency_s=0.75)
        assert [e["trace_id"] for e in recorder.entries()] == ["slow"]
        assert recorder.entries()[0]["kept_because"] == "slow"

    def test_baseline_sampling_every_nth(self):
        recorder = FlightRecorder(keep_every=4, slow_threshold_s=10)
        for index in range(8):
            trace = f"t{index}"
            recorder.begin(trace)
            recorder.finish(trace, status="ok", latency_s=0.01)
        kept = [e["trace_id"] for e in recorder.entries()]
        assert kept == ["t0", "t4"]  # the 1st and the (N+1)th
        assert recorder.dropped == 6

    def test_keep_every_zero_disables_baseline(self):
        recorder = FlightRecorder(keep_every=0, slow_threshold_s=10)
        recorder.begin("t")
        recorder.finish("t", status="ok", latency_s=0.01)
        assert recorder.kept == 0

    def test_ring_bounded_by_capacity(self):
        recorder = FlightRecorder(capacity=3, keep_every=1)
        for index in range(10):
            trace = f"t{index}"
            recorder.begin(trace)
            recorder.finish(trace, status="ok")
        entries = recorder.entries()
        assert len(entries) == 3
        assert [e["trace_id"] for e in entries] == ["t7", "t8", "t9"]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestSpanRouting:
    def test_spans_accumulate_on_active_trace(self):
        recorder = FlightRecorder(keep_every=1)
        recorder.begin("t1")
        recorder.observe_span(span("t1", "serve.query"))
        recorder.observe_span(span("t1", "serve.session"))
        recorder.finish("t1", status="ok")
        entry = recorder.find("t1")
        assert [s["name"] for s in entry["spans"]] == [
            "serve.query", "serve.session",
        ]

    def test_unknown_and_untraced_spans_ignored(self):
        recorder = FlightRecorder(keep_every=1)
        recorder.begin("t1")
        recorder.observe_span(span("other"))
        recorder.observe_span({"name": "no-trace", "cat": "task"})
        recorder.finish("t1", status="ok")
        assert recorder.find("t1")["spans"] == []

    def test_per_trace_span_cap(self):
        recorder = FlightRecorder(keep_every=1)
        recorder.begin("t1")
        for _ in range(MAX_SPANS_PER_TRACE + 10):
            recorder.observe_span(span("t1"))
        recorder.finish("t1", status="ok")
        assert len(recorder.find("t1")["spans"]) == MAX_SPANS_PER_TRACE


class TestLifecycle:
    def test_finish_unknown_trace_makes_synthetic_entry(self):
        # An error before begin() (e.g. in the HTTP layer) must still
        # leave a record.
        recorder = FlightRecorder()
        kept = recorder.finish(
            "never-begun", status="error", error="early crash"
        )
        assert kept is True
        entry = recorder.find("never-begun")
        assert entry["error"] == "early crash"
        assert entry["spans"] == []

    def test_annotate_attaches_fields_mid_flight(self):
        recorder = FlightRecorder(keep_every=1)
        recorder.begin("t1", tenant="acme")
        recorder.annotate("t1", leader_trace_id="t0")
        recorder.finish("t1", status="ok")
        entry = recorder.find("t1")
        assert entry["tenant"] == "acme"
        assert entry["leader_trace_id"] == "t0"

    def test_find_sees_active_traces(self):
        recorder = FlightRecorder()
        recorder.begin("t1", dataset="WV")
        assert recorder.find("t1")["dataset"] == "WV"
        assert recorder.find("nope") is None

    def test_dump_and_describe(self):
        recorder = FlightRecorder(capacity=8, keep_every=1)
        recorder.begin("t1")
        recorder.finish("t1", status="ok", latency_s=0.2)
        recorder.begin("t2")
        dump = recorder.dump()
        assert dump["capacity"] == 8
        assert dump["started"] == 2
        assert dump["finished"] == 1
        assert dump["active"] == ["t2"]
        assert dump["entries"][0]["trace_id"] == "t1"
        assert dump["entries"][0]["latency_s"] == 0.2
        describe = recorder.describe()
        assert describe["resident"] == 1
        assert describe["active"] == 1
        assert "entries" not in describe  # stats only, no bodies

    def test_clear(self):
        recorder = FlightRecorder(keep_every=1)
        recorder.begin("t1")
        recorder.finish("t1")
        recorder.clear()
        assert recorder.entries() == []
        assert recorder.find("t1") is None
