"""Tests for the span tracer."""

import json

import pytest

from repro.obs.trace import (
    PHASE_CATEGORY,
    TRACE_FORMATS,
    Tracer,
    _NOOP_SPAN,
    get_tracer,
    reset_tracer,
)


@pytest.fixture()
def tracer():
    t = Tracer()
    t.enabled = True
    return t


class TestDisabled:
    def test_disabled_by_default(self):
        assert Tracer().enabled is False

    def test_disabled_span_is_shared_noop(self):
        t = Tracer()
        span = t.span("anything", category="x", data=1)
        assert span is _NOOP_SPAN
        assert t.span("other") is span  # no per-call allocation

    def test_noop_span_contextmanager(self):
        t = Tracer()
        with t.span("ignored") as span:
            span.set(more="args")
        assert t.records() == []

    def test_disabled_add_span_is_dropped(self):
        t = Tracer()
        t.add_span("phase", PHASE_CATEGORY, ts_us=0, dur_us=5)
        assert t.records() == []


class TestRecording:
    def test_span_records_on_exit(self, tracer):
        with tracer.span("work", category="experiment", profile="tiny"):
            pass
        (record,) = tracer.records()
        assert record["name"] == "work"
        assert record["cat"] == "experiment"
        assert record["args"] == {"profile": "tiny"}
        assert record["dur"] >= 0
        assert record["parent"] is None

    def test_nesting_links_parent(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner, outer_rec = tracer.records()
        assert inner["name"] == "inner"
        assert inner["parent"] == outer.span_id
        assert outer_rec["parent"] is None

    def test_set_updates_args(self, tracer):
        with tracer.span("work", a=1) as span:
            span.set(b=2)
        (record,) = tracer.records()
        assert record["args"] == {"a": 1, "b": 2}

    def test_add_span_parents_under_open_span(self, tracer):
        with tracer.span("engine") as open_span:
            tracer.add_span(
                "CAM search", PHASE_CATEGORY, ts_us=10, dur_us=5,
                args={"operations": 7},
            )
        phase = tracer.records()[0]
        assert phase["parent"] == open_span.span_id
        assert phase["args"]["operations"] == 7

    def test_span_survives_exceptions(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        assert tracer.records()[0]["name"] == "failing"


class TestMerging:
    def test_drain_empties_buffer(self, tracer):
        with tracer.span("a"):
            pass
        drained = tracer.drain()
        assert len(drained) == 1
        assert tracer.records() == []

    def test_ingest_round_trip(self, tracer):
        with tracer.span("worker-span"):
            pass
        records = tracer.drain()
        parent = Tracer()
        parent.enabled = True
        parent.ingest(records)
        assert parent.records()[0]["name"] == "worker-span"

    def test_records_are_picklable_plain_dicts(self, tracer):
        with tracer.span("a", numbers=[1, 2]):
            pass
        (record,) = tracer.records()
        assert json.loads(json.dumps(record)) == record


class TestExport:
    def test_jsonl_one_object_per_line(self, tracer):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        lines = tracer.export_jsonl().splitlines()
        assert len(lines) == 2
        assert {json.loads(line)["name"] for line in lines} == {"a", "b"}

    def test_chrome_envelope(self, tracer):
        with tracer.span("a", category="run"):
            pass
        payload = json.loads(tracer.export_chrome())
        (event,) = payload["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "a"
        assert {"ts", "dur", "pid", "tid"} <= set(event)

    def test_write_both_formats(self, tracer, tmp_path):
        with tracer.span("a"):
            pass
        for fmt in TRACE_FORMATS:
            path = tracer.write(str(tmp_path / f"t.{fmt}"), fmt)
            text = (tmp_path / f"t.{fmt}").read_text()
            assert path.endswith(fmt)
            assert "a" in text

    def test_write_rejects_unknown_format(self, tracer, tmp_path):
        with pytest.raises(ValueError):
            tracer.write(str(tmp_path / "t"), "xml")

    def test_write_creates_parent_dirs(self, tracer, tmp_path):
        target = tmp_path / "deep" / "nested" / "trace.json"
        tracer.write(str(target), "chrome")
        assert target.exists()


class TestGlobal:
    def test_get_tracer_is_singleton(self):
        reset_tracer()
        try:
            assert get_tracer() is get_tracer()
        finally:
            reset_tracer()

    def test_reset_replaces(self):
        first = get_tracer()
        reset_tracer()
        try:
            assert get_tracer() is not first
        finally:
            reset_tracer()
