"""Tests for the per-array hardware counter board.

The load-bearing property is *parity by construction*: every counter
summed over the arrays equals the run's global
:class:`~repro.events.EventLog` total, because each event-log increment
site mirrors into the attached slot. The integration tests prove it on
real engine runs (exact and quantized, including the gang-bank scatter
paths); the unit tests pin the chunking arithmetic those runs rely on.
"""

import numpy as np
import pytest

from repro.config import ArchConfig, TechnologyParams
from repro.core.micro import MicroGaaSX
from repro.energy.ledger import EnergyLedger
from repro.errors import ConfigError
from repro.events import EventLog
from repro.graphs.generators import rmat
from repro.obs.export import render_openmetrics
from repro.obs.hw import (
    HW_COUNTERS,
    HwMonitor,
    build_report,
    check_parity,
    publish_counters,
    render_report,
    utilization_summary,
)
from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def graph():
    return rmat(128, 512, seed=3, name="hw-test")


def run_monitored(graph, algorithm="pagerank", **engine_kwargs):
    monitor = HwMonitor(ArchConfig().mac_accumulate_limit)
    engine = MicroGaaSX(graph, hw=monitor, **engine_kwargs)
    if algorithm == "pagerank":
        _, events = engine.pagerank(iterations=2)
    elif algorithm == "bfs":
        _, events = engine.bfs(0)
    else:
        _, events = engine.sssp(0)
    return monitor, events


class TestMonitorBasics:
    def test_rejects_degenerate_limit(self):
        with pytest.raises(ConfigError):
            HwMonitor(0)

    def test_register_allocates_labelled_slots(self):
        monitor = HwMonitor()
        cam0 = monitor.register("cam")
        cam1 = monitor.register("cam")
        mac0 = monitor.register("mac", index=7)
        assert (cam0.slot, cam1.slot, mac0.slot) == (0, 1, 2)
        # Per-bank default indexing; explicit index respected.
        assert (cam0.index, cam1.index, mac0.index) == (0, 1, 7)
        assert monitor.labels() == [
            {"bank": "cam", "array": "0"},
            {"bank": "cam", "array": "1"},
            {"bank": "mac", "array": "7"},
        ]

    def test_slot_growth_preserves_counts(self):
        monitor = HwMonitor()
        handles = [monitor.register("cam") for _ in range(20)]
        for i, handle in enumerate(handles):
            handle.add("cam_searches", i + 1)
        counts = monitor.counts("cam_searches")
        assert counts.tolist() == list(range(1, 21))

    def test_unknown_counter_rejected(self):
        with pytest.raises(ConfigError):
            HwMonitor().counts("warp_drives")

    def test_record_chunk_charges_converters(self):
        monitor = HwMonitor(16)
        handle = monitor.register("mac")
        handle.record_chunk(5, 3)
        totals = monitor.totals()
        assert totals["mac_ops"] == 1
        assert totals["mac_rows_accumulated"] == 5
        assert totals["mac_cell_ops"] == 15
        assert totals["dac_conversions"] == 5
        assert totals["adc_conversions"] == 3
        assert monitor.rows_hist()[0, 5] == 1

    def test_hist_grows_beyond_limit(self):
        monitor = HwMonitor(16)
        monitor.register("mac").record_chunk(40, 1)
        hist = monitor.rows_hist()
        assert hist.shape[1] >= 41
        assert hist[0, 40] == 1


class TestBatchedAttribution:
    """The gang-path scatter must reproduce the per-chunk arithmetic."""

    def test_record_batch_matches_chunk_loop(self):
        limit = 16
        hits = np.array([1, 16, 17, 40, 0])
        cols = 4
        batched = HwMonitor(limit)
        batched.register("mac").record_batch(hits, cols)
        looped = HwMonitor(limit)
        handle = looped.register("mac")
        for h in hits:
            h = int(h)
            while h > 0:
                chunk = min(h, limit)
                handle.record_chunk(chunk, cols)
                h -= chunk
        assert batched.totals() == looped.totals()
        assert np.array_equal(batched.rows_hist(), looped.rows_hist())

    def test_record_batch_many_scatters_per_slot(self):
        monitor = HwMonitor(16)
        monitor.register("mac")
        monitor.register("mac")
        monitor.record_batch_many(
            np.array([0, 1, 0]), np.array([16, 3, 2]), 2
        )
        ops = monitor.counts("mac_ops")
        assert ops.tolist() == [2, 1]  # slot 0: one full + one partial
        rows = monitor.counts("mac_rows_accumulated")
        assert rows.tolist() == [18, 3]
        hist = monitor.rows_hist()
        assert hist[0, 16] == 1 and hist[0, 2] == 1
        assert hist[1, 3] == 1

    def test_record_batch_many_shape_mismatch(self):
        monitor = HwMonitor()
        monitor.register("mac")
        with pytest.raises(ConfigError):
            monitor.record_batch_many(
                np.array([0]), np.array([1, 2]), 1
            )

    def test_add_many_broadcasts_scalar(self):
        monitor = HwMonitor()
        monitor.register("cam")
        monitor.register("cam")
        monitor.add_many(np.array([0, 1, 1]), "cam_searches", 1)
        assert monitor.counts("cam_searches").tolist() == [1, 2]


class TestTimeline:
    def test_end_step_bins_operation_deltas(self):
        monitor = HwMonitor()
        cam = monitor.register("cam")
        mac = monitor.register("mac")
        cam.add("cam_searches", 3)
        first = monitor.end_step()
        mac.record_chunk(2, 1)
        second = monitor.end_step()
        assert first["ops"] == [3, 0]
        assert first["active_frac"] == pytest.approx(0.5)
        assert second["ops"] == [0, 1]
        assert len(monitor.timeline) == 2

    def test_empty_monitor_step(self):
        row = HwMonitor().end_step()
        assert row["total_ops"] == 0
        assert row["active_frac"] == 0.0


@pytest.mark.parametrize("algorithm", ["pagerank", "bfs", "sssp"])
@pytest.mark.parametrize("quantized", [False, True])
class TestEngineParity:
    """Per-array sums equal the global EventLog on real runs."""

    def test_parity(self, graph, algorithm, quantized):
        monitor, events = run_monitored(
            graph, algorithm, quantized=quantized
        )
        verdict = check_parity(monitor, events)
        assert verdict["ok"], verdict["mismatches"]

    def test_occupancy_matches_event_log(self, graph, algorithm, quantized):
        monitor, events = run_monitored(
            graph, algorithm, quantized=quantized
        )
        limit = monitor.accumulate_limit
        global_stats = events.rows_occupancy(limit)
        hist = monitor.rows_hist().sum(axis=0)
        ops = hist.sum()
        mean = (hist * np.arange(hist.size)).sum() / ops if ops else 0.0
        assert mean == pytest.approx(global_stats["mean_rows"])


class TestParityDetection:
    def test_missing_mirror_detected(self, graph):
        monitor, events = run_monitored(graph)
        # Simulate an unmirrored event-log increment.
        events.cam_searches += 1
        verdict = check_parity(monitor, events)
        assert not verdict["ok"]
        assert "cam_searches" in verdict["mismatches"]

    def test_hist_divergence_detected(self):
        monitor = HwMonitor(16)
        monitor.register("mac").record_chunk(4, 1)
        events = EventLog()
        events.record_mac(5, cols=1)  # same op count, different rows bin
        verdict = check_parity(monitor, events)
        assert "mac_rows_hist" in verdict["mismatches"]


class TestEnergyAttribution:
    def test_per_array_energy_sums_to_ledger(self, graph):
        monitor, events = run_monitored(graph)
        tech = TechnologyParams()
        breakdown = EnergyLedger(tech).price(events, runtime_s=0.0)
        per_array = monitor.energy(tech)
        for key in ("cam_j", "mac_j", "write_j", "adc_j", "dac_j"):
            attributed = sum(entry[key] for entry in per_array)
            assert attributed == pytest.approx(
                getattr(breakdown, key)
            ), key

    def test_phase_rollup_covers_every_category(self):
        monitor = HwMonitor()
        monitor.register("mac").record_chunk(4, 2)
        (entry,) = monitor.energy()
        assert entry["total_j"] == pytest.approx(
            sum(entry["phases"].values())
        )
        assert entry["total_j"] == pytest.approx(
            entry["cam_j"] + entry["mac_j"] + entry["write_j"]
            + entry["adc_j"] + entry["dac_j"]
        )


class TestReport:
    def test_report_totals_and_parity(self, graph):
        monitor, events = run_monitored(graph)
        report = build_report(monitor, events)
        assert report["parity"]["ok"]
        assert report["totals"] == monitor.totals()
        assert len(report["arrays"]) == monitor.num_arrays
        # JSON-serializable end to end.
        import json

        json.dumps(report)

    def test_render_contains_heatmap_and_verdict(self, graph):
        monitor, events = run_monitored(graph)
        text = render_report(build_report(monitor, events))
        assert "occupancy heatmap" in text
        assert "parity: ok" in text
        assert "imbalance=" in text
        assert "timeline:" in text

    def test_render_flags_parity_failure(self, graph):
        monitor, events = run_monitored(graph)
        events.mac_ops += 5
        text = render_report(build_report(monitor, events))
        assert "parity: FAILED" in text

    def test_utilization_summary_empty_monitor(self):
        summary = utilization_summary(HwMonitor())
        assert summary["arrays"] == 0
        assert summary["imbalance"] == 0.0
        assert summary["busiest"] is None

    def test_utilization_summary_balanced(self):
        monitor = HwMonitor()
        for _ in range(4):
            monitor.register("cam")
        for slot in range(4):
            monitor.add_many(np.array([slot]), "cam_searches", 10)
        summary = utilization_summary(monitor)
        assert summary["imbalance"] == pytest.approx(1.0)
        assert summary["active_frac"] == pytest.approx(1.0)
        assert summary["cv"] == pytest.approx(0.0)


class TestPublish:
    def test_labelled_series_render(self, graph):
        monitor, _ = run_monitored(graph)
        registry = MetricsRegistry()
        publish_counters(monitor, registry)
        text = render_openmetrics(registry)
        assert "# TYPE repro_hw_cam_searches counter" in text
        assert 'repro_hw_cam_searches_total{bank="cam",array="0"}' in text

    def test_metrics_sums_match_monitor(self, graph):
        monitor, _ = run_monitored(graph)
        registry = MetricsRegistry()
        publish_counters(monitor, registry)
        totals = monitor.totals()
        snapshot = registry.snapshot()
        for name in HW_COUNTERS:
            if totals[name]:
                assert snapshot[f"hw.{name}"] == totals[name]

    def test_zero_counters_not_materialized(self):
        monitor = HwMonitor()
        monitor.register("cam")
        registry = MetricsRegistry()
        publish_counters(monitor, registry)
        assert registry.snapshot() == {}
