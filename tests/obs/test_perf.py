"""Provenance and cProfile-hook tests."""

import pytest

from repro.cli import main
from repro.obs.perf import (
    DEFAULT_TOP,
    git_sha,
    host_fingerprint,
    profiled,
    render_profile_table,
    top_self_time,
)


def busy_work():
    return sum(i * i for i in range(20_000))


class TestProvenance:
    def test_fingerprint_keys(self):
        fp = host_fingerprint()
        assert set(fp) == {
            "platform", "machine", "python", "implementation",
            "numpy", "cpu_count",
        }
        assert fp["cpu_count"] >= 1
        assert fp["python"].count(".") == 2

    def test_git_sha_in_repo(self):
        sha = git_sha()
        assert sha != "unknown"
        assert len(sha) >= 7

    def test_git_sha_outside_repo(self, tmp_path):
        assert git_sha(cwd=str(tmp_path)) == "unknown"


class TestProfiled:
    def test_disabled_when_path_is_none(self):
        with profiled(None) as profiler:
            busy_work()
        assert profiler is None

    def test_dumps_pstats_file(self, tmp_path):
        path = tmp_path / "deep" / "run.pstats"
        with profiled(str(path)) as profiler:
            busy_work()
        assert profiler is not None
        assert path.exists()
        rows = top_self_time(str(path))
        assert rows
        assert len(rows) <= DEFAULT_TOP
        assert any("busy_work" in row["function"] for row in rows)
        # Sorted by self time, descending.
        selfs = [row["self_s"] for row in rows]
        assert selfs == sorted(selfs, reverse=True)

    def test_top_limits_rows(self, tmp_path):
        path = tmp_path / "run.pstats"
        with profiled(str(path)):
            busy_work()
        assert len(top_self_time(str(path), top=2)) == 2

    def test_unreadable_dump_raises_value_error(self, tmp_path):
        bad = tmp_path / "bad.pstats"
        bad.write_bytes(b"not a pstats dump")
        with pytest.raises(ValueError, match="cannot read"):
            top_self_time(str(bad))

    def test_render_table(self, tmp_path):
        path = tmp_path / "run.pstats"
        with profiled(str(path)):
            busy_work()
        table = render_profile_table(top_self_time(str(path), top=3))
        assert "self time" in table
        assert "calls" in table

    def test_render_empty_rows(self):
        assert "(no profile samples)" in render_profile_table([])


class TestProfilingCLI:
    def test_run_prof_then_trace_summary_pstats(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        prof = tmp_path / "run.pstats"
        code = main(
            ["run", "table1", "--no-cache", "--trace", str(trace),
             "--prof", str(prof)]
        )
        assert code == 0
        assert prof.exists()
        capsys.readouterr()
        code = main(
            ["trace-summary", str(trace), "--pstats", str(prof),
             "--top", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "phase" in out  # the trace table
        assert "self time" in out  # the appended profile table

    def test_trace_summary_bad_pstats_exits_one(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(
            ["run", "table1", "--no-cache", "--trace", str(trace)]
        ) == 0
        bad = tmp_path / "bad.pstats"
        bad.write_bytes(b"garbage")
        capsys.readouterr()
        assert main(
            ["trace-summary", str(trace), "--pstats", str(bad)]
        ) == 1
        assert "cannot read" in capsys.readouterr().err
