"""SLO tracker (error budgets, multi-window burn rates) tests."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOConfig, SLOTracker, render_slo_report

NOW = 1_000_000.0


def make_tracker(**overrides):
    config = SLOConfig(**overrides) if overrides else SLOConfig()
    return SLOTracker(config)


class TestConfig:
    def test_defaults(self):
        config = SLOConfig()
        assert config.availability_target == 0.999
        assert config.availability_budget == pytest.approx(0.001)
        assert config.latency_budget == pytest.approx(0.01)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"availability_target": 0.0},
            {"availability_target": 1.0},
            {"latency_target_s": 0.0},
            {"latency_quantile": 1.0},
            {"windows": ()},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SLOConfig(**kwargs)


class TestBurnRates:
    def test_all_ok_burns_nothing(self):
        tracker = make_tracker()
        for _ in range(100):
            tracker.record(ok=True, latency_s=0.01, now=NOW)
        stats = tracker.window_stats(60, now=NOW)
        assert stats["availability"] == 1.0
        assert stats["availability_burn_rate"] == 0.0
        assert stats["latency_burn_rate"] == 0.0

    def test_availability_burn_rate_math(self):
        # 1 failure in 100 = 1% observed vs 0.1% budget -> burn 10.
        tracker = make_tracker()
        for index in range(100):
            tracker.record(ok=index != 0, latency_s=0.01, now=NOW)
        stats = tracker.window_stats(60, now=NOW)
        assert stats["errors"] == 1
        assert stats["availability"] == pytest.approx(0.99)
        assert stats["availability_burn_rate"] == pytest.approx(10.0)

    def test_latency_burn_rate_math(self):
        # 5 slow in 100 = 5% observed vs 1% budget -> burn 5.
        tracker = make_tracker(latency_target_s=0.5)
        for index in range(100):
            latency = 1.0 if index < 5 else 0.01
            tracker.record(ok=True, latency_s=latency, now=NOW)
        stats = tracker.window_stats(60, now=NOW)
        assert stats["slow"] == 5
        assert stats["latency_burn_rate"] == pytest.approx(5.0)

    def test_windows_see_different_history(self):
        tracker = make_tracker()
        # An error 2 minutes ago: outside 1m, inside 5m and 1h.
        tracker.record(ok=False, latency_s=0.01, now=NOW - 120)
        for _ in range(9):
            tracker.record(ok=True, latency_s=0.01, now=NOW)
        assert tracker.window_stats(60, now=NOW)["errors"] == 0
        assert tracker.window_stats(300, now=NOW)["errors"] == 1

    def test_samples_pruned_past_longest_window(self):
        tracker = make_tracker()
        tracker.record(ok=False, latency_s=0.01, now=NOW - 7200)
        tracker.record(ok=True, latency_s=0.01, now=NOW)
        assert tracker.window_stats(3600, now=NOW)["total"] == 1

    def test_empty_window_is_healthy(self):
        stats = make_tracker().window_stats(60, now=NOW)
        assert stats["total"] == 0
        assert stats["availability"] == 1.0
        assert stats["availability_burn_rate"] == 0.0


class TestSnapshotAndExport:
    def test_snapshot_shape(self):
        tracker = make_tracker()
        tracker.record(ok=True, latency_s=0.01, now=NOW)
        snapshot = tracker.snapshot(now=NOW)
        assert set(snapshot["windows"]) == {"1m", "5m", "1h"}
        assert snapshot["objectives"]["availability_target"] == 0.999
        assert snapshot["availability_budget_remaining"] == 1.0
        assert snapshot["latency_budget_remaining"] == 1.0

    def test_budget_remaining_goes_negative_when_blown(self):
        tracker = make_tracker()
        for _ in range(10):
            tracker.record(ok=False, latency_s=0.01, now=NOW)
        snapshot = tracker.snapshot(now=NOW)
        assert snapshot["availability_budget_remaining"] < 0

    def test_export_publishes_gauges(self):
        tracker = make_tracker()
        for index in range(100):
            tracker.record(ok=index != 0, latency_s=0.01, now=NOW)
        registry = MetricsRegistry()
        tracker.export_to(registry, now=NOW)
        snapshot = registry.snapshot()
        assert snapshot["slo.availability.burn_rate.1m"] == (
            pytest.approx(10.0)
        )
        assert snapshot["slo.requests.1m"] == 100
        assert snapshot["slo.availability.budget_remaining"] == (
            pytest.approx(-9.0)
        )
        assert "slo.latency.burn_rate.1h" in snapshot

    def test_export_overwrites_in_place(self):
        tracker = make_tracker()
        registry = MetricsRegistry()
        tracker.record(ok=False, latency_s=0.01, now=NOW)
        tracker.export_to(registry, now=NOW)
        # Two hours later the error aged out of every window.
        tracker.record(ok=True, latency_s=0.01, now=NOW + 7200)
        tracker.export_to(registry, now=NOW + 7200)
        assert registry.snapshot()[
            "slo.availability.burn_rate.1h"
        ] == 0.0


class TestReport:
    def test_render_contains_windows_and_budgets(self):
        tracker = make_tracker()
        for index in range(50):
            tracker.record(ok=index != 0, latency_s=0.02, now=NOW)
        text = render_slo_report(tracker.snapshot(now=NOW))
        assert "availability >= 99.9000%" in text
        assert "1m" in text and "1h" in text
        assert "budget remaining" in text
