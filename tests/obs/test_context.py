"""Trace-context (W3C traceparent over contextvars) tests."""

import concurrent.futures
import re

import pytest

from repro.obs import context as obs_context
from repro.obs.context import (
    TraceContext,
    from_traceparent,
    new_root,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)

TRACEPARENT = re.compile(
    r"^00-[0-9a-f]{32}-[0-9a-f]{16}-0[01]$"
)


class TestIds:
    def test_trace_id_shape(self):
        trace_id = new_trace_id()
        assert re.fullmatch(r"[0-9a-f]{32}", trace_id)
        assert trace_id != "0" * 32

    def test_span_id_shape(self):
        span_id = new_span_id()
        assert re.fullmatch(r"[0-9a-f]{16}", span_id)
        assert span_id != "0" * 16

    def test_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(64)}) == 64


class TestParse:
    def test_valid_header(self):
        ctx = parse_traceparent(
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
        )
        assert ctx is not None
        assert ctx.trace_id == "4bf92f3577b34da6a3ce929d0e0e4736"
        assert ctx.span_id == "00f067aa0ba902b7"
        assert ctx.sampled is True

    def test_unsampled_flag(self):
        ctx = parse_traceparent(
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"
        )
        assert ctx is not None and ctx.sampled is False

    def test_case_and_whitespace_normalised(self):
        ctx = parse_traceparent(
            "  00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01 "
        )
        assert ctx is not None
        assert ctx.trace_id == "4bf92f3577b34da6a3ce929d0e0e4736"

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-short-00f067aa0ba902b7-01",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-short-01",
            # Non-hex digits.
            "00-zzf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
            # All-zero trace / span ids are invalid per the spec.
            "00-" + "0" * 32 + "-00f067aa0ba902b7-01",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-" + "0" * 16 + "-01",
            # Reserved version.
            "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
        ],
    )
    def test_malformed_rejected(self, header):
        assert parse_traceparent(header) is None


class TestFromTraceparent:
    def test_valid_header_continues_the_trace(self):
        header = (
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
        )
        ctx = from_traceparent(header)
        assert ctx.trace_id == "4bf92f3577b34da6a3ce929d0e0e4736"
        assert ctx.span_id != "00f067aa0ba902b7"  # a fresh server span
        assert ctx.parent_span_id == "00f067aa0ba902b7"

    def test_missing_header_mints_a_root(self):
        ctx = from_traceparent(None)
        assert re.fullmatch(r"[0-9a-f]{32}", ctx.trace_id)
        assert ctx.parent_span_id is None

    def test_malformed_header_mints_a_root(self):
        ctx = from_traceparent("ff-bad")
        assert ctx.parent_span_id is None


class TestRoundTrip:
    def test_to_traceparent_shape(self):
        assert TRACEPARENT.match(new_root().to_traceparent())

    def test_round_trip_preserves_identity(self):
        ctx = new_root()
        parsed = parse_traceparent(ctx.to_traceparent())
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id

    def test_child_keeps_trace_id(self):
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id
        assert child.parent_span_id == ctx.span_id


class TestActivation:
    def test_no_context_by_default(self):
        assert obs_context.current() is None
        assert obs_context.current_trace_id() is None

    def test_activate_and_restore(self):
        ctx = new_root()
        token = obs_context.activate(ctx)
        try:
            assert obs_context.current() is ctx
            assert obs_context.current_trace_id() == ctx.trace_id
        finally:
            obs_context.restore(token)
        assert obs_context.current() is None

    def test_active_context_manager(self):
        ctx = new_root()
        with obs_context.active(ctx) as active_ctx:
            assert active_ctx is ctx
            assert obs_context.current_trace_id() == ctx.trace_id
        assert obs_context.current() is None

    def test_wrap_carries_context_into_threads(self):
        # run_in_executor does not propagate contextvars; wrap() must.
        ctx = new_root()
        with concurrent.futures.ThreadPoolExecutor(1) as pool:
            with obs_context.active(ctx):
                wrapped = obs_context.wrap(obs_context.current_trace_id)
                bare = pool.submit(obs_context.current_trace_id).result()
                carried = pool.submit(wrapped).result()
        assert bare is None
        assert carried == ctx.trace_id
