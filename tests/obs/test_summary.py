"""Tests for trace-file loading and the per-phase summary table."""

import json

import pytest

from repro.core.controller import PHASE_NAMES
from repro.errors import ConfigError
from repro.obs.summary import (
    load_trace,
    render_summary,
    summarize_categories,
    summarize_phases,
)
from repro.obs.trace import PHASE_CATEGORY, Tracer


def make_phase_trace():
    """A tracer holding one run span and all five modelled phases."""
    tracer = Tracer()
    tracer.enabled = True
    with tracer.span("run", category="run"):
        cursor = 1000
        for index, name in enumerate(PHASE_NAMES):
            tracer.add_span(
                name, PHASE_CATEGORY, ts_us=cursor, dur_us=10 * index,
                args={"operations": 100 * (index + 1), "modelled": True},
            )
            cursor += 10 * index
    return tracer


class TestLoadTrace:
    @pytest.mark.parametrize("fmt", ["jsonl", "chrome"])
    def test_round_trip(self, tmp_path, fmt):
        tracer = make_phase_trace()
        path = str(tmp_path / f"trace.{fmt}")
        tracer.write(path, fmt)
        spans = load_trace(path)
        assert len(spans) == len(PHASE_NAMES) + 1
        names = {s["name"] for s in spans}
        assert set(PHASE_NAMES) <= names

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            load_trace(str(tmp_path / "absent.json"))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        with pytest.raises(ConfigError):
            load_trace(str(path))

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json\nnot either")
        with pytest.raises(ConfigError):
            load_trace(str(path))

    def test_json_without_trace_events(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(ConfigError):
            load_trace(str(path))

    def test_single_line_jsonl(self, tmp_path):
        path = tmp_path / "one.jsonl"
        path.write_text(json.dumps(
            {"name": "solo", "cat": "task", "ts": 0, "dur": 1}
        ))
        (span,) = load_trace(str(path))
        assert span["name"] == "solo"


class TestSummaries:
    def test_phase_rows_in_canonical_order(self, tmp_path):
        tracer = make_phase_trace()
        path = str(tmp_path / "t.json")
        tracer.write(path, "chrome")
        rows = summarize_phases(load_trace(path))
        assert [r["phase"] for r in rows] == list(PHASE_NAMES)
        assert rows[1]["operations"] == 200
        assert rows[1]["dur_us"] == 10.0

    def test_phase_aggregation_across_repeats(self):
        tracer = Tracer()
        tracer.enabled = True
        for _ in range(3):
            tracer.add_span(
                "CAM search", PHASE_CATEGORY, ts_us=0, dur_us=4,
                args={"operations": 10},
            )
        (row,) = summarize_phases(tracer.records())
        assert row["spans"] == 3
        assert row["operations"] == 30
        assert row["dur_us"] == 12.0

    def test_categories_exclude_phases(self):
        tracer = make_phase_trace()
        rows = summarize_categories(tracer.records())
        assert [r["category"] for r in rows] == ["run"]

    def test_render_contains_all_phases(self):
        tracer = make_phase_trace()
        table = render_summary(tracer.records())
        for name in PHASE_NAMES:
            assert name in table
        assert "share" in table

    def test_render_without_phase_spans(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("only-a-run", category="run"):
            pass
        table = render_summary(tracer.records())
        assert "no phase spans" in table
