"""Tests for trace-file loading and the per-phase summary table."""

import json

import pytest

from repro.core.controller import PHASE_NAMES
from repro.errors import ConfigError
from repro.obs.summary import (
    load_trace,
    render_summary,
    summarize_categories,
    summarize_phases,
)
from repro.obs.trace import PHASE_CATEGORY, Tracer


def make_phase_trace():
    """A tracer holding one run span and all five modelled phases."""
    tracer = Tracer()
    tracer.enabled = True
    with tracer.span("run", category="run"):
        cursor = 1000
        for index, name in enumerate(PHASE_NAMES):
            tracer.add_span(
                name, PHASE_CATEGORY, ts_us=cursor, dur_us=10 * index,
                args={"operations": 100 * (index + 1), "modelled": True},
            )
            cursor += 10 * index
    return tracer


class TestLoadTrace:
    @pytest.mark.parametrize("fmt", ["jsonl", "chrome"])
    def test_round_trip(self, tmp_path, fmt):
        tracer = make_phase_trace()
        path = str(tmp_path / f"trace.{fmt}")
        tracer.write(path, fmt)
        spans = load_trace(path)
        assert len(spans) == len(PHASE_NAMES) + 1
        names = {s["name"] for s in spans}
        assert set(PHASE_NAMES) <= names

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            load_trace(str(tmp_path / "absent.json"))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        with pytest.raises(ConfigError):
            load_trace(str(path))

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json\nnot either")
        with pytest.raises(ConfigError):
            load_trace(str(path))

    def test_json_without_trace_events(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(ConfigError):
            load_trace(str(path))

    def test_single_line_jsonl(self, tmp_path):
        path = tmp_path / "one.jsonl"
        path.write_text(json.dumps(
            {"name": "solo", "cat": "task", "ts": 0, "dur": 1}
        ))
        (span,) = load_trace(str(path))
        assert span["name"] == "solo"


class TestSummaries:
    def test_phase_rows_in_canonical_order(self, tmp_path):
        tracer = make_phase_trace()
        path = str(tmp_path / "t.json")
        tracer.write(path, "chrome")
        rows = summarize_phases(load_trace(path))
        assert [r["phase"] for r in rows] == list(PHASE_NAMES)
        assert rows[1]["operations"] == 200
        assert rows[1]["dur_us"] == 10.0

    def test_phase_aggregation_across_repeats(self):
        tracer = Tracer()
        tracer.enabled = True
        for _ in range(3):
            tracer.add_span(
                "CAM search", PHASE_CATEGORY, ts_us=0, dur_us=4,
                args={"operations": 10},
            )
        (row,) = summarize_phases(tracer.records())
        assert row["spans"] == 3
        assert row["operations"] == 30
        assert row["dur_us"] == 12.0

    def test_categories_exclude_phases(self):
        tracer = make_phase_trace()
        rows = summarize_categories(tracer.records())
        assert [r["category"] for r in rows] == ["run"]

    def test_render_contains_all_phases(self):
        tracer = make_phase_trace()
        table = render_summary(tracer.records())
        for name in PHASE_NAMES:
            assert name in table
        assert "share" in table

    def test_occupancy_is_operations_weighted(self):
        tracer = Tracer()
        tracer.enabled = True
        tracer.add_span(
            "MAC operation", PHASE_CATEGORY, ts_us=0, dur_us=1,
            args={"operations": 100, "occupancy": 0.5,
                  "adc_saturations": 2},
        )
        tracer.add_span(
            "MAC operation", PHASE_CATEGORY, ts_us=1, dur_us=1,
            args={"operations": 300, "occupancy": 0.9,
                  "adc_saturations": 1},
        )
        (row,) = summarize_phases(tracer.records())
        assert row["occupancy"] == pytest.approx(
            (100 * 0.5 + 300 * 0.9) / 400
        )
        assert row["adc_saturations"] == 3

    def test_spans_without_new_args_read_as_zero(self):
        # Trace files recorded before occupancy/adc_saturations existed
        # must still summarize.
        tracer = make_phase_trace()
        rows = summarize_phases(tracer.records())
        for row in rows:
            assert row["occupancy"] == 0.0
            assert row["adc_saturations"] == 0

    def test_render_carries_new_columns(self):
        tracer = Tracer()
        tracer.enabled = True
        tracer.add_span(
            "MAC operation", PHASE_CATEGORY, ts_us=0, dur_us=5,
            args={"operations": 10, "occupancy": 0.25,
                  "adc_saturations": 4},
        )
        table = render_summary(tracer.records())
        assert "occup" in table
        assert "adc sat" in table
        assert "25.0%" in table

    def test_render_without_phase_spans(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("only-a-run", category="run"):
            pass
        table = render_summary(tracer.records())
        assert "no phase spans" in table


class TestMalformedSpans:
    """A parseable file can still carry junk; reject it loudly."""

    def test_non_dict_jsonl_entry(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "ok", "dur": 1}\n42\n')
        with pytest.raises(ConfigError, match="not a span object"):
            load_trace(str(path))

    def test_span_without_name(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(
            {"traceEvents": [{"cat": "task", "ts": 0, "dur": 1}]}
        ))
        with pytest.raises(ConfigError, match="not a span object"):
            load_trace(str(path))

    def test_string_entry_in_trace_events(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"traceEvents": ["bogus"]}))
        with pytest.raises(ConfigError, match="not a span object"):
            load_trace(str(path))

    def test_non_numeric_duration(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps({"name": "x", "dur": "soon"}))
        with pytest.raises(ConfigError, match="non-numeric duration"):
            load_trace(str(path))

    def test_numeric_string_duration_coerced(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps({"name": "x", "dur": "2.5"}))
        (span,) = load_trace(str(path))
        assert span["dur"] == 2.5


class TestTraceSummaryCLIFailures:
    """``repro trace-summary`` must fail cleanly, never traceback."""

    @pytest.fixture()
    def run_cli(self, capsys):
        from repro.cli import main

        def _run(path):
            code = main(["trace-summary", str(path)])
            captured = capsys.readouterr()
            assert "Traceback" not in captured.err
            return code, captured.err

        return _run

    def test_missing_file(self, run_cli, tmp_path):
        code, err = run_cli(tmp_path / "absent.json")
        assert code == 1
        assert "cannot read" in err

    def test_empty_file(self, run_cli, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        code, err = run_cli(path)
        assert code == 1
        assert "is empty" in err

    def test_malformed_file(self, run_cli, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken\nlines")
        code, err = run_cli(path)
        assert code == 1
        assert "not valid JSON" in err

    def test_junk_span_file(self, run_cli, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text('{"name": "ok"}\n[]\n')
        code, err = run_cli(path)
        assert code == 1
        assert "not a span object" in err
