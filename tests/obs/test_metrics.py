"""Tests for the metrics registry."""

import pytest

from repro.events import EventLog
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    observe_event_counts,
    reset_metrics,
)


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        c.inc(0.5)
        assert c.value == 5.5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("x")
        g.set(3)
        g.set(1)
        assert g.value == 1

    def test_histogram_summary(self):
        h = Histogram("x")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == 3
        assert summary["sum"] == 6.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)

    def test_empty_histogram_summary(self):
        summary = Histogram("x").summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0


class TestRegistry:
    def test_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(TypeError):
            r.gauge("a")

    def test_snapshot(self):
        r = MetricsRegistry()
        r.counter("runs").inc(2)
        r.gauge("jobs").set(4)
        r.histogram("wall").observe(1.5)
        snap = r.snapshot()
        assert snap["runs"] == 2
        assert snap["jobs"] == 4
        assert snap["wall"]["count"] == 1

    def test_reset_drops_instruments(self):
        r = MetricsRegistry()
        r.counter("a").inc()
        r.reset()
        assert r.snapshot() == {}
        assert r.counter("a").value == 0

    def test_global_registry_singleton(self):
        reset_metrics()
        try:
            assert get_metrics() is get_metrics()
        finally:
            reset_metrics()


class TestEventAbsorption:
    def test_observe_event_counts(self):
        r = MetricsRegistry()
        events = EventLog(cam_searches=3, sfu_ops=7)
        observe_event_counts(events.as_dict(), registry=r)
        snap = r.snapshot()
        assert snap["events.cam_searches"] == 3
        assert snap["events.sfu_ops"] == 7
        # Zero counters are not materialized.
        assert "events.mac_ops" not in snap

    def test_accumulates_across_calls(self):
        r = MetricsRegistry()
        observe_event_counts({"mac_ops": 2}, registry=r)
        observe_event_counts({"mac_ops": 5}, registry=r)
        assert r.counter("events.mac_ops").value == 7

    def test_custom_prefix(self):
        r = MetricsRegistry()
        observe_event_counts({"mac_ops": 1}, prefix="gaasx", registry=r)
        assert "gaasx.mac_ops" in r.snapshot()
