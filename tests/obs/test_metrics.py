"""Tests for the metrics registry."""

import pytest

from repro.events import EventLog
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LabeledCounter,
    MetricsRegistry,
    get_metrics,
    observe_event_counts,
    reset_metrics,
)


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        c.inc(0.5)
        assert c.value == 5.5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("x")
        g.set(3)
        g.set(1)
        assert g.value == 1

    def test_histogram_summary(self):
        h = Histogram("x")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == 3
        assert summary["sum"] == 6.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)

    def test_empty_histogram_summary(self):
        summary = Histogram("x").summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0
        assert summary["p50"] == 0.0
        assert summary["p99"] == 0.0


class TestHistogramQuantiles:
    def test_nearest_rank(self):
        h = Histogram("x")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.quantile(0.5) == 50.0
        assert h.quantile(0.99) == 99.0
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0

    def test_summary_carries_p50_p99(self):
        h = Histogram("x")
        for v in (5.0, 1.0, 9.0):
            h.observe(v)
        summary = h.summary()
        assert summary["p50"] == 5.0
        assert summary["p99"] == 9.0

    def test_two_samples_p99_is_the_larger(self):
        h = Histogram("x")
        h.observe(1.0)
        h.observe(2.5)
        assert h.quantile(0.99) == 2.5

    def test_empty_quantile_is_zero(self):
        assert Histogram("x").quantile(0.5) == 0.0

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x").quantile(1.5)

    def test_reservoir_is_bounded_and_recent(self):
        h = Histogram("x")
        size = Histogram.RESERVOIR_SIZE
        for _ in range(size):
            h.observe(1000.0)
        # A full second generation overwrites the ring entirely, so
        # quantiles reflect recent traffic, not the old plateau.
        for _ in range(size):
            h.observe(1.0)
        assert len(h._samples) == size
        assert h.quantile(0.99) == 1.0
        # The streaming aggregates still cover everything observed.
        assert h.count == 2 * size
        assert h.max == 1000.0


class TestLabeledCounter:
    def test_series_keyed_by_label_values(self):
        c = LabeledCounter("hw.ops", labelnames=("bank", "array"))
        c.inc(3, bank="cam", array="0")
        c.inc(2, bank="cam", array="0")
        c.inc(5, bank="mac", array="1")
        assert c.series() == {("cam", "0"): 5, ("mac", "1"): 5}

    def test_value_sums_all_series(self):
        c = LabeledCounter("x", labelnames=("k",))
        c.inc(1, k="a")
        c.inc(2, k="b")
        assert c.value == 3

    def test_label_values_coerced_to_str(self):
        c = LabeledCounter("x", labelnames=("array",))
        c.inc(1, array=7)
        assert c.series() == {("7",): 1}

    def test_rejects_decrease(self):
        c = LabeledCounter("x", labelnames=("k",))
        with pytest.raises(ValueError):
            c.inc(-1, k="a")

    def test_rejects_wrong_label_set(self):
        c = LabeledCounter("x", labelnames=("bank", "array"))
        with pytest.raises(ValueError):
            c.inc(1, bank="cam")  # missing a label
        with pytest.raises(ValueError):
            c.inc(1, bank="cam", array="0", extra="y")

    def test_rejects_empty_labelnames(self):
        with pytest.raises(ValueError):
            LabeledCounter("x", labelnames=())

    def test_registry_get_or_create(self):
        r = MetricsRegistry()
        a = r.labeled_counter("hw.ops", labelnames=("bank", "array"))
        assert r.labeled_counter(
            "hw.ops", labelnames=("bank", "array")
        ) is a

    def test_registry_labelnames_conflict(self):
        r = MetricsRegistry()
        r.labeled_counter("hw.ops", labelnames=("bank",))
        with pytest.raises(TypeError):
            r.labeled_counter("hw.ops", labelnames=("tenant",))

    def test_registry_kind_conflict(self):
        r = MetricsRegistry()
        r.counter("plain")
        with pytest.raises(TypeError):
            r.labeled_counter("plain", labelnames=("k",))

    def test_snapshot_reports_sum(self):
        r = MetricsRegistry()
        c = r.labeled_counter("hw.ops", labelnames=("k",))
        c.inc(4, k="a")
        c.inc(6, k="b")
        assert r.snapshot()["hw.ops"] == 10


class TestRegistry:
    def test_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(TypeError):
            r.gauge("a")

    def test_snapshot(self):
        r = MetricsRegistry()
        r.counter("runs").inc(2)
        r.gauge("jobs").set(4)
        r.histogram("wall").observe(1.5)
        snap = r.snapshot()
        assert snap["runs"] == 2
        assert snap["jobs"] == 4
        assert snap["wall"]["count"] == 1

    def test_reset_drops_instruments(self):
        r = MetricsRegistry()
        r.counter("a").inc()
        r.reset()
        assert r.snapshot() == {}
        assert r.counter("a").value == 0

    def test_global_registry_singleton(self):
        reset_metrics()
        try:
            assert get_metrics() is get_metrics()
        finally:
            reset_metrics()


class TestEventAbsorption:
    def test_observe_event_counts(self):
        r = MetricsRegistry()
        events = EventLog(cam_searches=3, sfu_ops=7)
        observe_event_counts(events.as_dict(), registry=r)
        snap = r.snapshot()
        assert snap["events.cam_searches"] == 3
        assert snap["events.sfu_ops"] == 7
        # Zero counters are not materialized.
        assert "events.mac_ops" not in snap

    def test_accumulates_across_calls(self):
        r = MetricsRegistry()
        observe_event_counts({"mac_ops": 2}, registry=r)
        observe_event_counts({"mac_ops": 5}, registry=r)
        assert r.counter("events.mac_ops").value == 7

    def test_custom_prefix(self):
        r = MetricsRegistry()
        observe_event_counts({"mac_ops": 1}, prefix="gaasx", registry=r)
        assert "gaasx.mac_ops" in r.snapshot()


class TestConcurrency:
    """The registry must survive worker threads hammering it."""

    THREADS = 8
    PER_THREAD = 2_000

    def test_concurrent_counter_and_histogram_totals_exact(self):
        import threading

        r = MetricsRegistry()
        barrier = threading.Barrier(self.THREADS)

        def worker():
            barrier.wait()
            for i in range(self.PER_THREAD):
                r.counter("stress.ops").inc()
                r.histogram("stress.wall").observe(i % 7)
                if i % 100 == 0:
                    r.histogram("stress.wall").summary()  # racing reads

        threads = [
            threading.Thread(target=worker) for _ in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = self.THREADS * self.PER_THREAD
        assert r.counter("stress.ops").value == expected
        summary = r.histogram("stress.wall").summary()
        assert summary["count"] == expected
        assert summary["sum"] == self.THREADS * sum(
            i % 7 for i in range(self.PER_THREAD)
        )
        assert summary["min"] == 0
        assert summary["max"] == 6

    def test_racing_get_returns_one_instrument(self):
        import threading

        r = MetricsRegistry()
        barrier = threading.Barrier(self.THREADS)
        seen = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            instrument = r.counter("stress.single")
            with lock:
                seen.append(instrument)

        threads = [
            threading.Thread(target=worker) for _ in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(instrument) for instrument in seen}) == 1

    def test_snapshot_under_concurrent_writes_is_consistent(self):
        import threading

        r = MetricsRegistry()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                r.histogram("stress.snap").observe(1.0)

        t = threading.Thread(target=writer)
        t.start()
        try:
            for _ in range(200):
                snap = r.snapshot().get("stress.snap")
                if snap is None:
                    continue
                # count and sum move together: never torn.
                assert snap["sum"] == snap["count"] * 1.0
        finally:
            stop.set()
            t.join()
