"""Benchmark store, regression gate, and bench CLI tests."""

import copy
import json

import pytest

from repro.cli import main
from repro.errors import ConfigError, ReproError
from repro.obs import bench


def synth_workload(median=0.01, mad=0.0002, metrics=None):
    return {
        "kind": "kernel",
        "wall_s": {
            "median_s": median,
            "mad_s": mad,
            "n": 3,
            "runs_s": [median] * 3,
        },
        "metrics": dict(metrics or {}),
    }


def synth_record(workloads=None, suite="quick"):
    if workloads is None:
        workloads = {"engine.pagerank": synth_workload()}
    return bench.make_record(
        suite=suite, profile="tiny", repeats=3, workloads=workloads
    )


@pytest.fixture(scope="module")
def quick_run(tmp_path_factory):
    """One real ``repro bench --quick`` run shared by the CLI tests."""
    out = tmp_path_factory.mktemp("bench-out")
    code = main(
        ["bench", "--quick", "--repeats", "1", "--out", str(out),
         "--metrics", str(out / "metrics.om")]
    )
    assert code == 0
    return out


class TestRecordStore:
    def test_make_record_is_stamped_and_valid(self):
        record = bench.validate_record(synth_record())
        assert record["schema"] == bench.SCHEMA_VERSION
        assert record["git_sha"]
        assert record["created_unix"] > 0
        assert set(record["host"]) >= {
            "platform", "machine", "python", "implementation",
            "numpy", "cpu_count",
        }

    def test_validate_rejects_wrong_schema(self):
        record = synth_record()
        record["schema"] = 99
        with pytest.raises(ConfigError, match="schema"):
            bench.validate_record(record)

    def test_validate_rejects_missing_wall_summary(self):
        record = synth_record()
        del record["workloads"]["engine.pagerank"]["wall_s"]
        with pytest.raises(ConfigError, match="wall_s"):
            bench.validate_record(record)

    def test_validate_rejects_non_numeric_metrics(self):
        record = synth_record(
            {"w": synth_workload(metrics={"modelled.total_s": "fast"})}
        )
        with pytest.raises(ConfigError, match="metrics"):
            bench.validate_record(record)

    def test_append_and_load_roundtrip(self, tmp_path):
        path = bench.bench_path(str(tmp_path), "quick")
        bench.append_record(path, synth_record())
        bench.append_record(path, synth_record())
        trajectory = bench.load_trajectory(path)
        assert trajectory["suite"] == "quick"
        assert len(trajectory["records"]) == 2
        assert bench.latest_record(trajectory) is trajectory["records"][-1]

    def test_append_rejects_suite_mismatch(self, tmp_path):
        path = bench.bench_path(str(tmp_path), "quick")
        bench.append_record(path, synth_record(suite="quick"))
        with pytest.raises(ConfigError, match="suite"):
            bench.append_record(path, synth_record(suite="kernels"))

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            bench.load_trajectory(str(tmp_path / "BENCH_nope.json"))

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            bench.load_trajectory(str(path))

    def test_load_empty_records(self, tmp_path):
        path = tmp_path / "BENCH_empty.json"
        path.write_text(json.dumps(
            {"schema": bench.SCHEMA_VERSION, "suite": "quick",
             "records": []}
        ))
        with pytest.raises(ConfigError, match="no records"):
            bench.load_trajectory(str(path))

    def test_unknown_suite_rejected(self):
        with pytest.raises(ConfigError, match="unknown bench suite"):
            bench.run_suite("nope")

    def test_repeats_must_be_positive(self):
        with pytest.raises(ConfigError, match="repeats"):
            bench.run_workload(
                bench.WORKLOADS["cam.search"], "tiny", repeats=0
            )


class TestHwWorkload:
    def test_metrics_carry_balance_and_parity(self):
        result = bench.run_workload(
            bench.WORKLOADS["hw.pagerank"], "tiny", repeats=1
        )
        metrics = result.metrics
        assert metrics["hw.parity_ok"] == 1.0
        assert metrics["hw.arrays"] > 0
        assert metrics["hw.imbalance"] >= 1.0
        assert 0.0 < metrics["hw.active_frac"] <= 1.0
        assert 0.0 < metrics["xbar.occupancy"] <= 1.0

    def test_registered_in_suites(self):
        assert "hw.pagerank" in bench.SUITES["quick"][0]
        assert "hw.pagerank" in bench.SUITES["kernels"][0]


class TestDirections:
    def test_wall_and_modelled_are_lower_better(self):
        for name in ("wall_s", "modelled.total_s", "modelled.energy_j",
                     "phase.cam_search.modelled_s", "model.full_scan_s"):
            assert bench.metric_direction(name) == "lower"

    def test_efficiency_ratios_are_higher_better(self):
        for name in ("cache.hit_rate", "xbar.occupancy", "xbar.full_frac",
                     "hw.active_frac", "hw.parity_ok"):
            assert bench.metric_direction(name) == "higher"

    def test_imbalance_is_lower_better(self):
        assert bench.metric_direction("hw.imbalance") == "lower"

    def test_raw_counts_are_neutral(self):
        for name in ("events.cam_searches", "phase.mac_operation.operations",
                     "layout.num_edges", "xbar.mean_rows"):
            assert bench.metric_direction(name) == "neutral"

    def test_reuse_metrics(self):
        assert bench.metric_direction("incremental.speedup") == "higher"
        assert bench.metric_direction("reuse.hit_rate") == "higher"
        # Raw component timings inform but never gate — the speedup
        # ratio is the gated metric.
        assert bench.metric_direction("incremental.full_s") == "neutral"
        assert bench.metric_direction("incremental.incremental_s") == "neutral"


class TestComparator:
    def test_injected_2x_slowdown_is_a_regression(self):
        baseline = synth_record()
        current = copy.deepcopy(baseline)
        wall = current["workloads"]["engine.pagerank"]["wall_s"]
        wall["median_s"] *= 2.0
        deltas = bench.compare_records(baseline, current)
        assert bench.has_regressions(deltas)
        (delta,) = [d for d in deltas if d.verdict == "regression"]
        assert delta.metric == "wall_s"
        assert delta.ratio == pytest.approx(2.0)

    def test_2x_speedup_is_an_improvement(self):
        baseline = synth_record()
        current = copy.deepcopy(baseline)
        current["workloads"]["engine.pagerank"]["wall_s"]["median_s"] /= 2
        deltas = bench.compare_records(baseline, current)
        assert not bench.has_regressions(deltas)
        assert any(d.verdict == "improvement" for d in deltas)

    def test_sub_threshold_move_is_ok(self):
        baseline = synth_record()
        current = copy.deepcopy(baseline)
        current["workloads"]["engine.pagerank"]["wall_s"]["median_s"] *= 1.1
        deltas = bench.compare_records(baseline, current)
        assert all(d.verdict == "ok" for d in deltas)

    def test_noisy_wall_move_is_suppressed(self):
        # 2x relative, but the MAD noise band swallows the absolute
        # delta: a jittery machine cannot fail the gate on its own.
        baseline = synth_record(
            {"w": synth_workload(median=0.010, mad=0.008)}
        )
        current = copy.deepcopy(baseline)
        current["workloads"]["w"]["wall_s"]["median_s"] = 0.020
        deltas = bench.compare_records(baseline, current)
        assert not bench.has_regressions(deltas)

    def test_modelled_metrics_ignore_wall_noise(self):
        baseline = synth_record(
            {"w": synth_workload(mad=10.0,
                                 metrics={"modelled.total_s": 1.0})}
        )
        current = copy.deepcopy(baseline)
        current["workloads"]["w"]["metrics"]["modelled.total_s"] = 2.0
        deltas = bench.compare_records(baseline, current)
        assert bench.has_regressions(deltas)

    def test_hit_rate_drop_is_a_regression(self):
        baseline = synth_record(
            {"w": synth_workload(metrics={"cache.hit_rate": 0.9})}
        )
        current = copy.deepcopy(baseline)
        current["workloads"]["w"]["metrics"]["cache.hit_rate"] = 0.4
        deltas = bench.compare_records(baseline, current)
        assert bench.has_regressions(deltas)

    def test_neutral_count_drift_never_fails(self):
        baseline = synth_record(
            {"w": synth_workload(metrics={"events.cam_searches": 100.0})}
        )
        current = copy.deepcopy(baseline)
        current["workloads"]["w"]["metrics"]["events.cam_searches"] = 900.0
        deltas = bench.compare_records(baseline, current)
        assert not bench.has_regressions(deltas)
        assert any(d.verdict == "changed" for d in deltas)

    def test_new_and_removed_workloads_reported(self):
        baseline = synth_record({"old": synth_workload()})
        current = synth_record({"new": synth_workload()})
        verdicts = {
            d.workload: d.verdict
            for d in bench.compare_records(baseline, current)
        }
        assert verdicts == {"old": "removed", "new": "new"}

    def test_zero_baseline_ratio_is_inf(self):
        delta = bench.Delta("w", "m", 0.0, 1.0, "neutral", "changed")
        assert delta.ratio == float("inf")

    def test_render_comparison_mentions_regressions(self):
        baseline = synth_record()
        current = copy.deepcopy(baseline)
        current["workloads"]["engine.pagerank"]["wall_s"]["median_s"] *= 3
        text = bench.render_comparison(
            bench.compare_records(baseline, current)
        )
        assert "regression" in text
        assert "metrics compared" in text

    def test_render_comparison_quiet_when_clean(self):
        record = synth_record()
        text = bench.render_comparison(
            bench.compare_records(record, copy.deepcopy(record))
        )
        assert "no metric moved" in text


class TestBenchCLI:
    def test_quick_suite_writes_schema_valid_record(self, quick_run):
        path = bench.bench_path(str(quick_run), "quick")
        trajectory = bench.load_trajectory(path)
        record = bench.latest_record(trajectory)
        assert record["suite"] == "quick"
        assert record["profile"] == "tiny"
        assert set(record["workloads"]) == {
            "engine.pagerank", "cam.search", "mac.accumulate",
            "traversal.superstep", "micro.traversal", "hw.pagerank",
            "incremental.pagerank", "exp.abl-interval",
        }
        # The kernel workloads carry crossbar-utilization stats, the
        # experiment workload the traced per-phase decomposition.
        mac = record["workloads"]["mac.accumulate"]["metrics"]
        assert 0.0 < mac["xbar.occupancy"] <= 1.0
        exp = record["workloads"]["exp.abl-interval"]["metrics"]
        assert any(key.startswith("phase.") for key in exp)
        # The frontier workloads expose their superstep/event shape.
        trav = record["workloads"]["traversal.superstep"]["metrics"]
        assert trav["traversal.supersteps"] > 1000
        micro = record["workloads"]["micro.traversal"]["metrics"]
        assert micro["events.cam_searches"] > 0

    def test_quick_suite_exports_openmetrics(self, quick_run):
        text = (quick_run / "metrics.om").read_text()
        assert text.endswith("# EOF\n")
        assert "# TYPE repro_" in text

    def test_compare_detects_injected_slowdown(self, quick_run, tmp_path):
        source = bench.bench_path(str(quick_run), "quick")
        baseline = bench.latest_record(bench.load_trajectory(source))
        slowed = copy.deepcopy(baseline)
        for entry in slowed["workloads"].values():
            wall = entry["wall_s"]
            wall["median_s"] *= 2.0
            wall["mad_s"] = wall["median_s"] * 0.01
        path = bench.bench_path(str(tmp_path), "quick")
        bench.append_record(path, baseline)
        bench.append_record(path, slowed)
        assert main(["bench-compare", path]) == 3

    def test_compare_warn_only_exits_zero(self, quick_run, tmp_path, capsys):
        source = bench.bench_path(str(quick_run), "quick")
        baseline = bench.latest_record(bench.load_trajectory(source))
        slowed = copy.deepcopy(baseline)
        for entry in slowed["workloads"].values():
            entry["wall_s"]["median_s"] *= 2.0
            entry["wall_s"]["mad_s"] = 0.0
        path = bench.bench_path(str(tmp_path), "quick")
        bench.append_record(path, baseline)
        bench.append_record(path, slowed)
        assert main(["bench-compare", path, "--warn-only"]) == 0
        assert "regression" in capsys.readouterr().out

    def test_compare_workload_filter_scopes_the_gate(
        self, quick_run, tmp_path, capsys
    ):
        # Slow down one workload only: gating on an unaffected workload
        # passes, gating on the slowed one fails, an unknown name is a
        # usage error.
        source = bench.bench_path(str(quick_run), "quick")
        baseline = bench.latest_record(bench.load_trajectory(source))
        slowed = copy.deepcopy(baseline)
        wall = slowed["workloads"]["micro.traversal"]["wall_s"]
        wall["median_s"] *= 2.0
        wall["mad_s"] = wall["median_s"] * 0.01
        path = bench.bench_path(str(tmp_path), "quick")
        bench.append_record(path, baseline)
        bench.append_record(path, slowed)
        assert main(
            ["bench-compare", path, "--workload", "traversal.superstep"]
        ) == 0
        assert main(
            ["bench-compare", path, "--workload", "micro.traversal"]
        ) == 3
        assert main(
            ["bench-compare", path, "--workload", "no.such.workload"]
        ) == 1
        assert "absent" in capsys.readouterr().err

    def test_compare_identical_records_passes(self, quick_run, tmp_path,
                                              capsys):
        source = bench.bench_path(str(quick_run), "quick")
        record = bench.latest_record(bench.load_trajectory(source))
        path = bench.bench_path(str(tmp_path), "quick")
        bench.append_record(path, record)
        bench.append_record(path, copy.deepcopy(record))
        assert main(["bench-compare", path]) == 0

    def test_compare_explicit_baseline_file(self, tmp_path):
        base_path = bench.bench_path(str(tmp_path), "quick")
        bench.append_record(base_path, synth_record())
        cur_dir = tmp_path / "cur"
        cur_path = bench.bench_path(str(cur_dir), "quick")
        bench.append_record(cur_path, synth_record())
        assert main(["bench-compare", cur_path, base_path]) == 0

    def test_compare_single_record_needs_baseline(self, tmp_path, capsys):
        path = bench.bench_path(str(tmp_path), "quick")
        bench.append_record(path, synth_record())
        assert main(["bench-compare", path]) == 1
        assert "only one record" in capsys.readouterr().err

    def test_compare_missing_file_fails_cleanly(self, tmp_path, capsys):
        missing = str(tmp_path / "BENCH_quick.json")
        assert main(["bench-compare", missing]) == 1
        err = capsys.readouterr().err
        # The message must name the exact path and how to create it.
        assert "does not exist" in err
        assert "BENCH_quick.json" in err
        assert "repro bench" in err

    def test_compare_missing_baseline_names_path(self, tmp_path, capsys):
        cur_path = bench.bench_path(str(tmp_path), "quick")
        bench.append_record(cur_path, synth_record())
        missing = str(tmp_path / "baselines" / "BENCH_quick.json")
        assert main(["bench-compare", cur_path, missing]) == 1
        err = capsys.readouterr().err
        assert "baseline" in err and "does not exist" in err
        assert "baselines" in err

    def test_compare_empty_baseline_fails_cleanly(self, tmp_path, capsys):
        cur_path = bench.bench_path(str(tmp_path), "quick")
        bench.append_record(cur_path, synth_record())
        empty = tmp_path / "BENCH_empty.json"
        empty.write_bytes(b"")
        assert main(["bench-compare", cur_path, str(empty)]) == 1
        err = capsys.readouterr().err
        assert "empty" in err and "BENCH_empty.json" in err

    def test_bench_prints_summary_table(self, quick_run, capsys):
        # Re-run the cheapest comparison path: the fixture's stdout was
        # already consumed, so drive a fresh tiny suite print-through.
        path = bench.bench_path(str(quick_run), "quick")
        record = bench.latest_record(bench.load_trajectory(path))
        assert record["repeats"] == 1
