"""OpenMetrics text exposition tests."""

import json
import re

import pytest

from repro.cli import main
from repro.obs.export import (
    escape_label_value,
    metric_name,
    render_openmetrics,
    write_openmetrics,
)
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry

#: Every sample line: name, optional comma-separated {label="..."}
#: set (label values admit \\, \", \n escapes), numeric value, optional
#: exemplar clause (# {labels} value timestamp).
SAMPLE = re.compile(
    r"^[a-zA-Z_][a-zA-Z0-9_]*"
    r"(\{[a-zA-Z_+]+=\"(?:\\.|[^\"\\])*\""
    r"(,[a-zA-Z_+]+=\"(?:\\.|[^\"\\])*\")*\})? \S+"
    r"( # \{[a-zA-Z_]+=\"[^\"]*\"\} \S+ \S+)?$"
)

#: A valid OpenMetrics exemplar clause on a _bucket sample. The label
#: value admits escape sequences (\\, \", \n) per the text format.
EXEMPLAR = re.compile(
    r" # \{trace_id=\"(?P<trace_id>(?:\\.|[^\"\\])*)\"\} "
    r"(?P<value>[0-9.e+-]+) (?P<ts>[0-9.]+)$"
)


def parse_families(text):
    """Minimal OpenMetrics parse: {family: type} plus sample lines."""
    assert text.endswith("# EOF\n")
    families = {}
    samples = []
    for line in text.splitlines():
        if line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            families[name] = kind
        else:
            assert SAMPLE.match(line), line
            samples.append(line)
    return families, samples


class TestMetricName:
    def test_dotted_names_flatten(self):
        assert metric_name("cache.hit_rate") == "repro_cache_hit_rate"

    def test_invalid_characters_replaced(self):
        assert metric_name("phase.cam-search/ops") == (
            "repro_phase_cam_search_ops"
        )

    def test_leading_digit_guarded(self):
        assert metric_name("2x.speedup").startswith("repro__")


class TestRenderFromRegistry:
    @pytest.fixture()
    def registry(self):
        registry = MetricsRegistry()
        registry.counter("executor.runs").inc(3)
        registry.gauge("cache.hit_rate").set(0.87)
        hist = registry.histogram("executor.experiment_wall_s")
        hist.observe(1.0)
        hist.observe(2.5)
        return registry

    def test_counter_gets_total_suffix(self, registry):
        text = render_openmetrics(registry)
        families, samples = parse_families(text)
        assert families["repro_executor_runs"] == "counter"
        assert "repro_executor_runs_total 3" in samples

    def test_gauge_exports_value(self, registry):
        text = render_openmetrics(registry)
        families, samples = parse_families(text)
        assert families["repro_cache_hit_rate"] == "gauge"
        assert "repro_cache_hit_rate 0.87" in samples

    def test_histogram_exports_as_summary(self, registry):
        text = render_openmetrics(registry)
        families, samples = parse_families(text)
        name = "repro_executor_experiment_wall_s"
        assert families[name] == "summary"
        assert f"{name}_count 2" in samples
        assert f"{name}_sum 3.5" in samples
        assert families[f"{name}_min"] == "gauge"
        assert families[f"{name}_max"] == "gauge"

    def test_histogram_quantiles_ride_the_summary_family(self, registry):
        text = render_openmetrics(registry)
        _families, samples = parse_families(text)
        name = "repro_executor_experiment_wall_s"
        assert f'{name}{{quantile="0.5"}} 1.0' in samples
        assert f'{name}{{quantile="0.99"}} 2.5' in samples
        # Labelled quantile samples must stay contiguous with the
        # summary family: between _sum and the _min companion gauge.
        assert text.index(f"{name}_sum") < text.index('quantile="0.5"')
        assert text.index('quantile="0.99"') < text.index(f"{name}_min")

    def test_terminated_by_eof(self, registry):
        assert render_openmetrics(registry).endswith("# EOF\n")

    def test_empty_registry_is_just_eof(self):
        assert render_openmetrics(MetricsRegistry()) == "# EOF\n"


class TestLabeledCounterRendering:
    def test_one_sample_line_per_series(self):
        registry = MetricsRegistry()
        family = registry.labeled_counter(
            "hw.cam_searches", labelnames=("bank", "array")
        )
        family.inc(12, bank="cam", array="0")
        family.inc(7, bank="cam", array="1")
        text = render_openmetrics(registry)
        families, samples = parse_families(text)
        assert families["repro_hw_cam_searches"] == "counter"
        assert (
            'repro_hw_cam_searches_total{bank="cam",array="0"} 12'
            in samples
        )
        assert (
            'repro_hw_cam_searches_total{bank="cam",array="1"} 7'
            in samples
        )

    def test_series_sorted_deterministically(self):
        registry = MetricsRegistry()
        family = registry.labeled_counter("hw.ops", labelnames=("k",))
        family.inc(1, k="b")
        family.inc(1, k="a")
        text = render_openmetrics(registry)
        assert text.index('k="a"') < text.index('k="b"')

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        family = registry.labeled_counter("hw.ops", labelnames=("k",))
        family.inc(1, k='odd"value')
        text = render_openmetrics(registry)
        assert 'k="odd\\"value"' in text
        parse_families(text)  # every line still valid


class TestLabelEscaping:
    def test_backslash_escaped(self):
        assert escape_label_value("a\\b") == "a\\\\b"

    def test_double_quote_escaped(self):
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'

    def test_newline_escaped(self):
        assert escape_label_value("line1\nline2") == "line1\\nline2"

    def test_backslash_escaped_before_others(self):
        # The backslash pass must run first, or the escapes it writes
        # for quote/newline would themselves get re-escaped.
        assert escape_label_value('\\"\n') == '\\\\\\"\\n'

    def test_plain_text_untouched(self):
        assert escape_label_value("abc-123_ü") == "abc-123_ü"

    def test_escaped_exemplar_stays_one_line(self):
        registry = MetricsRegistry()
        hist = registry.histogram("serve.latency_s", buckets=(0.1, 1.0))
        hist.observe(0.05, exemplar='evil\\"\nid')
        text = render_openmetrics(registry)
        line = next(
            l for l in text.splitlines() if "_bucket" in l and "#" in l
        )
        assert '\\"' in line and "\\n" in line
        assert "\n" not in line  # splitlines already proves it, but:
        assert EXEMPLAR.search(line)


class TestBucketedHistogram:
    @pytest.fixture()
    def registry(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "serve.latency_s", buckets=DEFAULT_LATENCY_BUCKETS
        )
        hist.observe(0.003, exemplar="a" * 32)
        hist.observe(0.2, exemplar="b" * 32)
        hist.observe(42.0, exemplar="c" * 32)  # lands in +Inf
        return registry

    def test_exports_histogram_family(self, registry):
        families, samples = parse_families(render_openmetrics(registry))
        assert families["repro_serve_latency_s"] == "histogram"
        assert "repro_serve_latency_s_count 3" in samples

    def test_buckets_are_cumulative_with_inf_last(self, registry):
        text = render_openmetrics(registry)
        buckets = [
            line for line in text.splitlines()
            if line.startswith("repro_serve_latency_s_bucket")
        ]
        assert len(buckets) == len(DEFAULT_LATENCY_BUCKETS) + 1
        assert 'le="+Inf"' in buckets[-1]
        counts = [int(line.split("#")[0].split()[-1]) for line in buckets]
        assert counts == sorted(counts)  # cumulative, monotone
        assert counts[-1] == 3

    def test_exemplars_link_buckets_to_trace_ids(self, registry):
        text = render_openmetrics(registry)
        exemplars = {}
        for line in text.splitlines():
            match = EXEMPLAR.search(line)
            if match and "_bucket" in line:
                exemplars[match["trace_id"]] = float(match["value"])
        assert exemplars["a" * 32] == 0.003
        assert exemplars["b" * 32] == 0.2
        assert exemplars["c" * 32] == 42.0  # the +Inf bucket's exemplar

    def test_every_line_is_valid_openmetrics(self, registry):
        # parse_families asserts the SAMPLE shape of each line,
        # exemplar clauses included.
        parse_families(render_openmetrics(registry))

    def test_quantile_samples_still_present(self, registry):
        # The serve-smoke CI job asserts on the p99 sample; bucketing
        # must not remove the quantile series.
        text = render_openmetrics(registry)
        assert 'repro_serve_latency_s{quantile="0.99"}' in text

    def test_freshest_exemplar_wins_per_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0,))
        hist.observe(0.5, exemplar="old")
        hist.observe(0.6, exemplar="new")
        text = render_openmetrics(registry)
        assert 'trace_id="new"' in text
        assert 'trace_id="old"' not in text

    def test_exemplar_free_buckets_have_no_clause(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        bucket_lines = [
            line
            for line in render_openmetrics(registry).splitlines()
            if "_bucket" in line
        ]
        assert bucket_lines and all(
            "#" not in line for line in bucket_lines
        )


class TestRenderFromSnapshot:
    def test_scalars_become_gauges(self):
        text = render_openmetrics({"cache.hits": 10, "cache.hit_rate": 0.5})
        families, samples = parse_families(text)
        assert families["repro_cache_hits"] == "gauge"
        assert "repro_cache_hits 10" in samples

    def test_summary_dicts_detected_by_count_key(self):
        text = render_openmetrics(
            {"wall": {"count": 4, "sum": 8.0, "min": 1.0, "max": 3.0}}
        )
        families, samples = parse_families(text)
        assert families["repro_wall"] == "summary"
        assert "repro_wall_count 4" in samples

    def test_string_entries_skipped(self):
        text = render_openmetrics({"git_sha": "abc123", "runs": 1})
        assert "abc123" not in text
        assert "repro_runs 1" in text

    def test_write_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "nested" / "metrics.om"
        written = write_openmetrics({"runs": 1}, str(path))
        assert written == str(path)
        assert path.read_text().endswith("# EOF\n")


class TestMetricsExportCLI:
    def test_exports_run_snapshot(self, tmp_path, capsys):
        # `repro run --out DIR` persists metrics.json next to the
        # manifest; metrics-export converts it to exposition text.
        assert main(
            ["run", "table1", "--out", str(tmp_path), "--no-cache"]
        ) == 0
        snapshot_path = tmp_path / "metrics.json"
        snapshot = json.loads(snapshot_path.read_text())
        assert snapshot  # the executor published something
        capsys.readouterr()
        assert main(["metrics-export", str(snapshot_path)]) == 0
        text = capsys.readouterr().out
        families, _samples = parse_families(text)
        assert any(name.startswith("repro_") for name in families)

    def test_live_registry_when_no_path(self, capsys):
        from repro.obs.metrics import get_metrics

        get_metrics().counter("test.export_probe").inc()
        assert main(["metrics-export"]) == 0
        out = capsys.readouterr().out
        assert "repro_test_export_probe_total" in out
        assert out.endswith("# EOF\n")

    def test_missing_snapshot_fails_cleanly(self, tmp_path, capsys):
        assert main(["metrics-export", str(tmp_path / "nope.json")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_malformed_snapshot_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        path.write_text("[1, 2]")
        assert main(["metrics-export", str(path)]) == 1
        assert "JSON object" in capsys.readouterr().err
