"""OpenMetrics text exposition tests."""

import json
import re

import pytest

from repro.cli import main
from repro.obs.export import (
    metric_name,
    render_openmetrics,
    write_openmetrics,
)
from repro.obs.metrics import MetricsRegistry

#: Every sample line: name, optional {label="..."} set, numeric value.
SAMPLE = re.compile(
    r"^[a-zA-Z_][a-zA-Z0-9_]*(\{[a-zA-Z_]+=\"[^\"]*\"\})? \S+$"
)


def parse_families(text):
    """Minimal OpenMetrics parse: {family: type} plus sample lines."""
    assert text.endswith("# EOF\n")
    families = {}
    samples = []
    for line in text.splitlines():
        if line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            families[name] = kind
        else:
            assert SAMPLE.match(line), line
            samples.append(line)
    return families, samples


class TestMetricName:
    def test_dotted_names_flatten(self):
        assert metric_name("cache.hit_rate") == "repro_cache_hit_rate"

    def test_invalid_characters_replaced(self):
        assert metric_name("phase.cam-search/ops") == (
            "repro_phase_cam_search_ops"
        )

    def test_leading_digit_guarded(self):
        assert metric_name("2x.speedup").startswith("repro__")


class TestRenderFromRegistry:
    @pytest.fixture()
    def registry(self):
        registry = MetricsRegistry()
        registry.counter("executor.runs").inc(3)
        registry.gauge("cache.hit_rate").set(0.87)
        hist = registry.histogram("executor.experiment_wall_s")
        hist.observe(1.0)
        hist.observe(2.5)
        return registry

    def test_counter_gets_total_suffix(self, registry):
        text = render_openmetrics(registry)
        families, samples = parse_families(text)
        assert families["repro_executor_runs"] == "counter"
        assert "repro_executor_runs_total 3" in samples

    def test_gauge_exports_value(self, registry):
        text = render_openmetrics(registry)
        families, samples = parse_families(text)
        assert families["repro_cache_hit_rate"] == "gauge"
        assert "repro_cache_hit_rate 0.87" in samples

    def test_histogram_exports_as_summary(self, registry):
        text = render_openmetrics(registry)
        families, samples = parse_families(text)
        name = "repro_executor_experiment_wall_s"
        assert families[name] == "summary"
        assert f"{name}_count 2" in samples
        assert f"{name}_sum 3.5" in samples
        assert families[f"{name}_min"] == "gauge"
        assert families[f"{name}_max"] == "gauge"

    def test_histogram_quantiles_ride_the_summary_family(self, registry):
        text = render_openmetrics(registry)
        _families, samples = parse_families(text)
        name = "repro_executor_experiment_wall_s"
        assert f'{name}{{quantile="0.5"}} 1.0' in samples
        assert f'{name}{{quantile="0.99"}} 2.5' in samples
        # Labelled quantile samples must stay contiguous with the
        # summary family: between _sum and the _min companion gauge.
        assert text.index(f"{name}_sum") < text.index('quantile="0.5"')
        assert text.index('quantile="0.99"') < text.index(f"{name}_min")

    def test_terminated_by_eof(self, registry):
        assert render_openmetrics(registry).endswith("# EOF\n")

    def test_empty_registry_is_just_eof(self):
        assert render_openmetrics(MetricsRegistry()) == "# EOF\n"


class TestRenderFromSnapshot:
    def test_scalars_become_gauges(self):
        text = render_openmetrics({"cache.hits": 10, "cache.hit_rate": 0.5})
        families, samples = parse_families(text)
        assert families["repro_cache_hits"] == "gauge"
        assert "repro_cache_hits 10" in samples

    def test_summary_dicts_detected_by_count_key(self):
        text = render_openmetrics(
            {"wall": {"count": 4, "sum": 8.0, "min": 1.0, "max": 3.0}}
        )
        families, samples = parse_families(text)
        assert families["repro_wall"] == "summary"
        assert "repro_wall_count 4" in samples

    def test_string_entries_skipped(self):
        text = render_openmetrics({"git_sha": "abc123", "runs": 1})
        assert "abc123" not in text
        assert "repro_runs 1" in text

    def test_write_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "nested" / "metrics.om"
        written = write_openmetrics({"runs": 1}, str(path))
        assert written == str(path)
        assert path.read_text().endswith("# EOF\n")


class TestMetricsExportCLI:
    def test_exports_run_snapshot(self, tmp_path, capsys):
        # `repro run --out DIR` persists metrics.json next to the
        # manifest; metrics-export converts it to exposition text.
        assert main(
            ["run", "table1", "--out", str(tmp_path), "--no-cache"]
        ) == 0
        snapshot_path = tmp_path / "metrics.json"
        snapshot = json.loads(snapshot_path.read_text())
        assert snapshot  # the executor published something
        capsys.readouterr()
        assert main(["metrics-export", str(snapshot_path)]) == 0
        text = capsys.readouterr().out
        families, _samples = parse_families(text)
        assert any(name.startswith("repro_") for name in families)

    def test_live_registry_when_no_path(self, capsys):
        from repro.obs.metrics import get_metrics

        get_metrics().counter("test.export_probe").inc()
        assert main(["metrics-export"]) == 0
        out = capsys.readouterr().out
        assert "repro_test_export_probe_total" in out
        assert out.endswith("# EOF\n")

    def test_missing_snapshot_fails_cleanly(self, tmp_path, capsys):
        assert main(["metrics-export", str(tmp_path / "nope.json")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_malformed_snapshot_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        path.write_text("[1, 2]")
        assert main(["metrics-export", str(path)]) == 1
        assert "JSON object" in capsys.readouterr().err
