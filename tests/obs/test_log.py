"""Tests for the structured logger."""

import io
import json

import pytest

from repro.obs.log import (
    LOG_LEVEL_ENV,
    StructuredLogger,
    configure_logging,
    get_level,
    get_logger,
    set_level,
)


@pytest.fixture(autouse=True)
def restore_level():
    before = get_level()
    yield
    set_level(before)


def make_logger(name="test"):
    stream = io.StringIO()
    return StructuredLogger(name, stream=stream), stream


class TestEmission:
    def test_json_line_shape(self):
        logger, stream = make_logger("repro.test")
        set_level("info")
        logger.info("run.complete", experiments=3, wall_time_s=1.25)
        record = json.loads(stream.getvalue())
        assert record["level"] == "info"
        assert record["logger"] == "repro.test"
        assert record["event"] == "run.complete"
        assert record["experiments"] == 3
        assert record["wall_time_s"] == 1.25
        assert isinstance(record["ts"], float)

    def test_one_line_per_record(self):
        logger, stream = make_logger()
        set_level("info")
        logger.info("a")
        logger.warning("b")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)

    def test_non_json_values_stringified(self):
        logger, stream = make_logger()
        set_level("info")
        logger.info("odd", value={1, 2}.__class__)  # a type object
        assert json.loads(stream.getvalue())  # must not raise

    def test_default_stream_is_stderr(self, capsys):
        set_level("info")
        get_logger("repro.capture-test").info("hello.event")
        captured = capsys.readouterr()
        assert "hello.event" in captured.err
        assert captured.out == ""  # stdout stays byte-stable


class TestLevels:
    def test_debug_suppressed_at_info(self):
        logger, stream = make_logger()
        set_level("info")
        logger.debug("noise")
        assert stream.getvalue() == ""

    def test_debug_emitted_at_debug(self):
        logger, stream = make_logger()
        set_level("debug")
        logger.debug("detail")
        assert "detail" in stream.getvalue()

    def test_error_always_passes(self):
        logger, stream = make_logger()
        set_level("error")
        logger.warning("dropped")
        logger.error("kept")
        assert "dropped" not in stream.getvalue()
        assert "kept" in stream.getvalue()

    def test_is_enabled_for(self):
        set_level("warning")
        logger, _ = make_logger()
        assert not logger.is_enabled_for("info")
        assert logger.is_enabled_for("error")

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            set_level("loud")


class TestConfigure:
    def test_env_variable_respected(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "debug")
        assert configure_logging() == "debug"

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "debug")
        assert configure_logging("warning") == "warning"

    def test_default_is_info(self, monkeypatch):
        monkeypatch.delenv(LOG_LEVEL_ENV, raising=False)
        assert configure_logging() == "info"

    def test_get_logger_cached(self):
        assert get_logger("repro.x") is get_logger("repro.x")
