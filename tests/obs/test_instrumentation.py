"""End-to-end observability: engines, executor, runner, CLI."""

import json

import pytest

from repro.cli import main
from repro.core.controller import PHASE_NAMES, build_plan, record_plan
from repro.core.engine import GaaSXEngine
from repro.baselines.graphr.engine import GraphREngine
from repro.experiments.executor import RunManifest, execute
from repro.experiments.runner import RunRequest, RunSession
from repro.errors import ConfigError
from repro.obs.metrics import get_metrics, reset_metrics
from repro.obs.trace import PHASE_CATEGORY, get_tracer, reset_tracer


@pytest.fixture()
def clean_obs():
    """Fresh global tracer/registry, restored afterwards."""
    reset_tracer()
    reset_metrics()
    yield get_tracer()
    reset_tracer()
    reset_metrics()


@pytest.fixture(autouse=True)
def restore_log_level():
    from repro.obs.log import get_level, set_level

    before = get_level()
    yield
    set_level(before)


class TestEngineInstrumentation:
    def test_disabled_tracer_records_nothing(self, small_rmat, clean_obs):
        GaaSXEngine(small_rmat).pagerank(iterations=2)
        assert clean_obs.records() == []

    def test_gaasx_run_emits_all_phases(self, small_rmat, clean_obs):
        clean_obs.enabled = True
        GaaSXEngine(small_rmat).run("pagerank", iterations=2)
        records = clean_obs.records()
        phase_names = {
            r["name"] for r in records if r["cat"] == PHASE_CATEGORY
        }
        assert phase_names == set(PHASE_NAMES)
        engine_spans = [r for r in records if r["cat"] == "engine"]
        assert engine_spans[0]["args"]["algorithm"] == "pagerank"

    def test_phases_nest_under_engine_span(self, small_rmat, clean_obs):
        clean_obs.enabled = True
        GaaSXEngine(small_rmat).run("bfs", source=0)
        records = clean_obs.records()
        engine_span = next(r for r in records if r["cat"] == "engine")
        phases = [r for r in records if r["cat"] == PHASE_CATEGORY]
        assert all(p["parent"] == engine_span["id"] for p in phases)

    def test_graphr_emits_phases_too(self, small_rmat, clean_obs):
        clean_obs.enabled = True
        GraphREngine(small_rmat).pagerank(iterations=2)
        records = clean_obs.records()
        phases = [r for r in records if r["cat"] == PHASE_CATEGORY]
        assert {p["name"] for p in phases} == set(PHASE_NAMES)
        assert all(p["args"]["engine"] == "graphr" for p in phases)

    def test_phase_metrics_published(self, small_rmat, clean_obs):
        clean_obs.enabled = True
        GaaSXEngine(small_rmat).pagerank(iterations=2)
        snap = get_metrics().snapshot()
        assert snap.get("phase.mac_operation.operations", 0) > 0
        assert snap.get("events.mac_ops", 0) > 0

    def test_record_plan_marks_spans_modelled(self, small_rmat, clean_obs):
        clean_obs.enabled = True
        result = GaaSXEngine(small_rmat).pagerank(iterations=1)
        clean_obs.clear()
        record_plan(build_plan(result.stats), engine="gaasx")
        for record in clean_obs.records():
            assert record["args"]["modelled"] is True


class TestExecutorInstrumentation:
    def test_trace_spans_through_pool(self, tmp_path, clean_obs):
        clean_obs.enabled = True
        report = execute(
            ["abl-interval", "abl-xbar"], profile="tiny", jobs=2,
            cache_dir=str(tmp_path),
        )
        assert len(report.results) == 2
        records = clean_obs.records()
        by_cat = {}
        for r in records:
            by_cat.setdefault(r["cat"], []).append(r)
        assert len(by_cat["experiment"]) == 2
        assert len(by_cat["shard"]) == 2  # two affinity groups
        assert set(PHASE_NAMES) <= {
            r["name"] for r in by_cat[PHASE_CATEGORY]
        }

    def test_metrics_absorb_manifest(self, tmp_path, clean_obs):
        execute(["abl-interval"], profile="tiny", jobs=1,
                cache_dir=str(tmp_path))
        snap = get_metrics().snapshot()
        assert snap["executor.runs"] == 1
        assert snap["executor.experiments"] == 1
        assert snap["executor.experiment_wall_s"]["count"] == 1
        assert any(name.startswith("cache.") for name in snap)


class TestEmptyRunRegression:
    def test_summary_reports_zero_experiments(self):
        manifest = RunManifest(profile="tiny", jobs=1)
        summary = manifest.summary()
        assert "0 experiments" in summary
        assert "hit rate" not in summary  # no degenerate 0/0 report

    def test_empty_execute(self, clean_obs):
        report = execute([], profile="tiny", disk_cache=False)
        assert report.results == {}
        assert report.manifest.cache_hit_rate == 0.0
        assert "0 experiments" in report.manifest.summary()
        payload = report.manifest.to_dict()
        assert payload["experiments"] == []

    def test_empty_session_through_runner(self, tmp_path):
        session = RunSession(RunRequest(
            experiment_id=(), profile="tiny", jobs=1,
            output_dir=str(tmp_path / "out"), use_disk_cache=False,
        ))
        assert session.run() == {}
        manifest = json.loads(
            (tmp_path / "out" / "manifest.json").read_text()
        )
        assert manifest["experiments"] == []
        assert manifest["cache_hit_rate"] == 0.0


class TestRunnerTracing:
    def test_trace_file_written(self, tmp_path, clean_obs):
        trace_path = tmp_path / "trace.json"
        session = RunSession(RunRequest(
            experiment_id="abl-interval", profile="tiny", jobs=1,
            use_disk_cache=False, trace_path=str(trace_path),
        ))
        session.run()
        payload = json.loads(trace_path.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert set(PHASE_NAMES) <= names
        assert "run" in names

    def test_trace_copy_lands_next_to_manifest(self, tmp_path, clean_obs):
        out = tmp_path / "reports"
        session = RunSession(RunRequest(
            experiment_id="abl-interval", profile="tiny", jobs=1,
            use_disk_cache=False, output_dir=str(out),
            trace_path=str(tmp_path / "elsewhere.json"),
        ))
        session.run()
        assert (out / "manifest.json").exists()
        assert (out / "trace.json").exists()

    def test_bad_trace_format_rejected(self):
        with pytest.raises(ConfigError):
            RunRequest(experiment_id="abl-interval", trace_format="xml")


class TestCLITracing:
    def test_run_all_trace_and_summary(self, tmp_path, capsys, clean_obs,
                                       monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        trace_path = str(tmp_path / "out.json")
        code = main([
            "run-all", "--profile", "tiny", "--only", "abl-interval",
            "--jobs", "1", "--trace", trace_path,
            "--trace-format", "chrome",
        ])
        assert code == 0
        capsys.readouterr()
        assert main(["trace-summary", trace_path]) == 0
        table = capsys.readouterr().out
        for name in PHASE_NAMES:
            assert name in table

    def test_trace_summary_missing_file_errors(self, tmp_path, capsys):
        assert main(["trace-summary", str(tmp_path / "nope.json")]) == 1
        assert "nope.json" in capsys.readouterr().err

    def test_log_level_flag_suppresses_info(self, tmp_path, capsys,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = main([
            "run", "abl-interval", "--profile", "tiny", "--jobs", "1",
            "--log-level", "warning",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "abl-interval" in captured.out
        assert "run.summary" not in captured.err
