"""Unit tests for the hardware event log."""

import numpy as np
import pytest

from repro.events import EventLog


class TestRecordMac:
    def test_scalar(self):
        log = EventLog()
        log.record_mac(5, cols=3)
        assert log.mac_ops == 1
        assert log.mac_rows_accumulated == 5
        assert log.mac_cell_ops == 15
        assert log.mac_rows_hist[5] == 1

    def test_array(self):
        log = EventLog()
        log.record_mac(np.array([1, 1, 16]), cols=2)
        assert log.mac_ops == 3
        assert log.mac_rows_accumulated == 18
        assert log.mac_rows_hist[1] == 2
        assert log.mac_rows_hist[16] == 1

    def test_empty_array_noop(self):
        log = EventLog()
        log.record_mac(np.array([], dtype=int))
        assert log.mac_ops == 0

    def test_hist_grows(self):
        log = EventLog()
        log.record_mac(100)
        assert log.mac_rows_hist.size == 101


class TestMerge:
    def test_merge_adds_all_counters(self):
        a = EventLog(cam_searches=1, sfu_ops=2, cell_writes=3)
        b = EventLog(cam_searches=10, sfu_ops=20, cell_writes=30)
        a.merge(b)
        assert a.cam_searches == 11
        assert a.sfu_ops == 22
        assert a.cell_writes == 33

    def test_merge_hist_different_sizes(self):
        a = EventLog()
        a.record_mac(3)
        b = EventLog()
        b.record_mac(50)
        a.merge(b)
        assert a.mac_rows_hist[3] == 1
        assert a.mac_rows_hist[50] == 1

    def test_iadd(self):
        a = EventLog(cam_searches=1)
        a += EventLog(cam_searches=2)
        assert a.cam_searches == 3

    def test_merge_returns_self(self):
        a = EventLog()
        assert a.merge(EventLog()) is a


class TestScaled:
    def test_scales_counters_and_hist(self):
        log = EventLog(cam_searches=2, buffer_reads=3)
        log.record_mac(4)
        s = log.scaled(5)
        assert s.cam_searches == 10
        assert s.buffer_reads == 15
        assert s.mac_rows_hist[4] == 5
        # Original untouched.
        assert log.cam_searches == 2

    def test_zero_scale(self):
        log = EventLog(cam_searches=2)
        assert log.scaled(0).cam_searches == 0

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            EventLog().scaled(-1)


class TestComparisons:
    def test_counters_equal(self):
        a = EventLog(cam_searches=1)
        a.record_mac(3)
        b = EventLog(cam_searches=1)
        b.record_mac(3)
        assert a.counters_equal(b)

    def test_counters_differ(self):
        assert not EventLog(cam_searches=1).counters_equal(EventLog())

    def test_hist_difference_detected(self):
        a = EventLog()
        a.record_mac(2)
        b = EventLog()
        b.record_mac(3)
        # Scalar counters match (1 op, but different rows) — rows differ
        assert not a.counters_equal(b)

    def test_hist_padding_equal(self):
        a = EventLog()
        a.record_mac(1)
        b = EventLog()
        b.record_mac(1)
        b._grow_hist(50)
        assert a.counters_equal(b)


class TestDerived:
    def test_rows_hist_cdf(self):
        log = EventLog()
        log.record_mac(np.array([1, 1, 2, 4]))
        cdf = log.rows_hist_cdf()
        assert cdf[1] == pytest.approx(0.5)
        assert cdf[2] == pytest.approx(0.75)
        assert cdf[4] == pytest.approx(1.0)

    def test_empty_cdf(self):
        assert EventLog().rows_hist_cdf().sum() == 0

    def test_as_dict_keys_match_fields(self):
        log = EventLog()
        d = log.as_dict()
        for key in d:
            assert hasattr(log, key)

    def test_repr_only_nonzero(self):
        log = EventLog(cam_searches=5)
        assert "cam_searches=5" in repr(log)
        assert "sfu_ops" not in repr(log)
