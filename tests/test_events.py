"""Unit tests for the hardware event log."""

import numpy as np
import pytest

from repro.events import EventLog


class TestRecordMac:
    def test_scalar(self):
        log = EventLog()
        log.record_mac(5, cols=3)
        assert log.mac_ops == 1
        assert log.mac_rows_accumulated == 5
        assert log.mac_cell_ops == 15
        assert log.mac_rows_hist[5] == 1

    def test_array(self):
        log = EventLog()
        log.record_mac(np.array([1, 1, 16]), cols=2)
        assert log.mac_ops == 3
        assert log.mac_rows_accumulated == 18
        assert log.mac_rows_hist[1] == 2
        assert log.mac_rows_hist[16] == 1

    def test_empty_array_noop(self):
        log = EventLog()
        log.record_mac(np.array([], dtype=int))
        assert log.mac_ops == 0

    def test_hist_grows(self):
        log = EventLog()
        log.record_mac(100)
        assert log.mac_rows_hist.size == 101


class TestMerge:
    def test_merge_adds_all_counters(self):
        a = EventLog(cam_searches=1, sfu_ops=2, cell_writes=3)
        b = EventLog(cam_searches=10, sfu_ops=20, cell_writes=30)
        a.merge(b)
        assert a.cam_searches == 11
        assert a.sfu_ops == 22
        assert a.cell_writes == 33

    def test_merge_hist_different_sizes(self):
        a = EventLog()
        a.record_mac(3)
        b = EventLog()
        b.record_mac(50)
        a.merge(b)
        assert a.mac_rows_hist[3] == 1
        assert a.mac_rows_hist[50] == 1

    def test_iadd(self):
        a = EventLog(cam_searches=1)
        a += EventLog(cam_searches=2)
        assert a.cam_searches == 3

    def test_merge_returns_self(self):
        a = EventLog()
        assert a.merge(EventLog()) is a


class TestScaled:
    def test_scales_counters_and_hist(self):
        log = EventLog(cam_searches=2, buffer_reads=3)
        log.record_mac(4)
        s = log.scaled(5)
        assert s.cam_searches == 10
        assert s.buffer_reads == 15
        assert s.mac_rows_hist[4] == 5
        # Original untouched.
        assert log.cam_searches == 2

    def test_zero_scale(self):
        log = EventLog(cam_searches=2)
        assert log.scaled(0).cam_searches == 0

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            EventLog().scaled(-1)


class TestComparisons:
    def test_counters_equal(self):
        a = EventLog(cam_searches=1)
        a.record_mac(3)
        b = EventLog(cam_searches=1)
        b.record_mac(3)
        assert a.counters_equal(b)

    def test_counters_differ(self):
        assert not EventLog(cam_searches=1).counters_equal(EventLog())

    def test_hist_difference_detected(self):
        a = EventLog()
        a.record_mac(2)
        b = EventLog()
        b.record_mac(3)
        # Scalar counters match (1 op, but different rows) — rows differ
        assert not a.counters_equal(b)

    def test_hist_padding_equal(self):
        a = EventLog()
        a.record_mac(1)
        b = EventLog()
        b.record_mac(1)
        b._grow_hist(50)
        assert a.counters_equal(b)


class TestDerived:
    def test_rows_hist_cdf(self):
        log = EventLog()
        log.record_mac(np.array([1, 1, 2, 4]))
        cdf = log.rows_hist_cdf()
        assert cdf[1] == pytest.approx(0.5)
        assert cdf[2] == pytest.approx(0.75)
        assert cdf[4] == pytest.approx(1.0)

    def test_empty_cdf(self):
        assert EventLog().rows_hist_cdf().sum() == 0

    def test_as_dict_keys_match_fields(self):
        log = EventLog()
        d = log.as_dict()
        for key in d:
            assert hasattr(log, key)

    def test_repr_only_nonzero(self):
        log = EventLog(cam_searches=5)
        assert "cam_searches=5" in repr(log)
        assert "sfu_ops" not in repr(log)


class TestEdgeCases:
    """Boundary behaviour the observability layer leans on."""

    def test_scaled_zero_zeroes_histogram(self):
        log = EventLog()
        log.record_mac(np.array([2, 7]))
        zero = log.scaled(0)
        assert zero.mac_ops == 0
        assert zero.mac_rows_accumulated == 0
        assert zero.mac_rows_hist.sum() == 0
        # Same shape, independent storage: mutating the copy must not
        # touch the original.
        assert zero.mac_rows_hist.size == log.mac_rows_hist.size
        zero.mac_rows_hist[2] = 99
        assert log.mac_rows_hist[2] == 1

    def test_scaled_zero_equals_fresh_log(self):
        log = EventLog(cam_searches=4, sfu_ops=9)
        log.record_mac(3)
        assert log.scaled(0).as_dict() == EventLog().as_dict()

    def test_empty_cdf_shape_and_values(self):
        log = EventLog()
        cdf = log.rows_hist_cdf()
        assert cdf.size == log.mac_rows_hist.size
        assert not np.isnan(cdf).any()  # no 0/0 division
        assert (cdf == 0).all()

    def test_empty_cdf_after_grow(self):
        log = EventLog()
        log._grow_hist(32)  # allocated but still no MAC ops recorded
        cdf = log.rows_hist_cdf()
        assert cdf.size == 32
        assert (cdf == 0).all()

    def test_merge_smaller_into_larger(self):
        small = EventLog()
        small.record_mac(2)
        large = EventLog()
        large.record_mac(40)
        large.merge(small)
        assert large.mac_rows_hist.size >= 41
        assert large.mac_rows_hist[2] == 1
        assert large.mac_rows_hist[40] == 1
        assert large.mac_ops == 2

    def test_merge_larger_into_smaller_grows(self):
        small = EventLog()
        small.record_mac(2)
        large = EventLog()
        large.record_mac(40)
        before = small.mac_rows_hist.size
        small.merge(large)
        assert before < small.mac_rows_hist.size
        assert small.mac_rows_hist[2] == 1
        assert small.mac_rows_hist[40] == 1

    def test_merge_mismatched_sizes_commutes(self):
        a1, a2 = EventLog(), EventLog()
        a1.record_mac(np.array([1, 5]))
        a2.record_mac(np.array([1, 5]))
        b1, b2 = EventLog(), EventLog()
        b1.record_mac(60)
        b2.record_mac(60)
        assert a1.merge(b1).counters_equal(b2.merge(a2))

    def test_counters_equal_symmetric_with_padding(self):
        a = EventLog()
        a.record_mac(3)
        b = EventLog()
        b.record_mac(3)
        b._grow_hist(100)
        # Histogram padding must not make equality direction-dependent.
        assert a.counters_equal(b)
        assert b.counters_equal(a)

    def test_counters_unequal_symmetric(self):
        a = EventLog()
        a.record_mac(3)
        b = EventLog()
        b.record_mac(np.array([3, 90]))
        assert not a.counters_equal(b)
        assert not b.counters_equal(a)

    def test_counters_equal_empty_vs_empty(self):
        assert EventLog().counters_equal(EventLog())


class TestRowsOccupancy:
    """Boundary coverage for the Figure 13 row-utilization stats."""

    LIMIT = 16  # the Table I ADC accumulation bound

    def test_all_zero_log(self):
        stats = EventLog().rows_occupancy(self.LIMIT)
        assert stats == {
            "mean_rows": 0.0, "occupancy": 0.0,
            "full_frac": 0.0, "cdf_at_limit": 0.0,
        }

    def test_cdf_of_empty_log_is_all_zero(self):
        cdf = EventLog().rows_hist_cdf()
        assert (cdf == 0).all()

    def test_exactly_full_accumulations(self):
        log = EventLog()
        log.record_mac(np.full(10, self.LIMIT))
        stats = log.rows_occupancy(self.LIMIT)
        assert stats["mean_rows"] == pytest.approx(self.LIMIT)
        assert stats["occupancy"] == pytest.approx(1.0)
        assert stats["full_frac"] == pytest.approx(1.0)
        assert stats["cdf_at_limit"] == pytest.approx(1.0)
        # The CDF is 0 strictly below the bound and jumps to 1 at it.
        cdf = log.rows_hist_cdf()
        assert cdf[self.LIMIT - 1] == pytest.approx(0.0)
        assert cdf[self.LIMIT] == pytest.approx(1.0)

    def test_mixed_occupancy(self):
        log = EventLog()
        log.record_mac(np.array([4, 8, 16, 16]))
        stats = log.rows_occupancy(self.LIMIT)
        assert stats["mean_rows"] == pytest.approx(11.0)
        assert stats["occupancy"] == pytest.approx(11.0 / 16.0)
        assert stats["full_frac"] == pytest.approx(0.5)
        assert stats["cdf_at_limit"] == pytest.approx(1.0)

    def test_limit_beyond_hist_size(self):
        log = EventLog()
        log.record_mac(np.array([1, 2]))
        stats = log.rows_occupancy(self.LIMIT)
        assert stats["full_frac"] == 0.0
        assert stats["cdf_at_limit"] == pytest.approx(1.0)

    def test_rows_above_limit_count_as_full(self):
        log = EventLog()
        log.record_mac(np.array([self.LIMIT + 4, 2]))
        stats = log.rows_occupancy(self.LIMIT)
        assert stats["full_frac"] == pytest.approx(0.5)
        assert stats["cdf_at_limit"] == pytest.approx(0.5)

    def test_post_merge_histogram_consistency(self):
        a = EventLog()
        a.record_mac(np.array([4, 4, 4]))
        b = EventLog()
        b.record_mac(np.array([16, 16]))
        merged = EventLog().merge(a).merge(b)
        stats = merged.rows_occupancy(self.LIMIT)
        assert stats["mean_rows"] == pytest.approx((3 * 4 + 2 * 16) / 5)
        assert stats["full_frac"] == pytest.approx(2 / 5)
        cdf = merged.rows_hist_cdf()
        assert cdf[-1] == pytest.approx(1.0)
        assert (np.diff(cdf) >= 0).all()

    def test_occupancy_mean_matches_scalar_counters(self):
        log = EventLog()
        log.record_mac(np.array([3, 9, 12]))
        stats = log.rows_occupancy(self.LIMIT)
        assert stats["mean_rows"] == pytest.approx(
            log.mac_rows_accumulated / log.mac_ops
        )

    def test_scaled_log_keeps_occupancy(self):
        log = EventLog()
        log.record_mac(np.array([2, 16]))
        assert log.scaled(3).rows_occupancy(self.LIMIT) == pytest.approx(
            log.rows_occupancy(self.LIMIT)
        )

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            EventLog().rows_occupancy(0)

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            EventLog().rows_occupancy(-3)

    def test_limit_one_all_ops_full(self):
        log = EventLog()
        log.record_mac(np.array([1, 1, 1]))
        stats = log.rows_occupancy(1)
        assert stats["occupancy"] == pytest.approx(1.0)
        assert stats["full_frac"] == pytest.approx(1.0)


class TestAdcSaturations:
    """The saturation counter rides every EventLog surface."""

    def test_merge_adds(self):
        a = EventLog(adc_saturations=2)
        a.merge(EventLog(adc_saturations=5))
        assert a.adc_saturations == 7

    def test_as_dict_carries_counter(self):
        assert EventLog(adc_saturations=3).as_dict()["adc_saturations"] == 3

    def test_scaled(self):
        assert EventLog(adc_saturations=2).scaled(4).adc_saturations == 8

    def test_counters_equal_sees_difference(self):
        assert not EventLog(adc_saturations=1).counters_equal(EventLog())
