"""Command-line interface: regenerate paper artifacts from a shell.

Usage::

    python -m repro list                       # registered experiments
    python -m repro run fig11 --profile tiny   # regenerate one figure
    python -m repro run-all --jobs 4 --out r/  # everything, in parallel
    python -m repro datasets                   # Table II registry

``run`` and ``run-all`` dispatch through the parallel cache-aware
executor: ``--jobs N`` sizes the worker pool (default: all cores),
repeated runs reuse the on-disk layout cache (``--no-cache`` opts out,
``$REPRO_CACHE_DIR`` relocates it), and a cache/timing summary goes to
stderr so stdout stays byte-identical across job counts.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .errors import ReproError
from .experiments.registry import EXPERIMENTS
from .experiments.runner import RunRequest, RunSession
from .graphs.datasets import DATASETS


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", default="bench", choices=("tiny", "bench", "full"),
        help="dataset scale (default: bench)",
    )
    parser.add_argument(
        "--out", default=None, help="directory for reports + manifest"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: all cores)",
    )
    parser.add_argument(
        "--format", default="text", choices=("text", "json"),
        help="stdout rendering (default: text)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk layout cache for this run",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "GaaS-X (ISCA 2020) reproduction: regenerate the paper's "
            "tables and figures"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id", choices=sorted(EXPERIMENTS))
    _add_run_options(run)

    run_all_p = sub.add_parser("run-all", help="run every experiment")
    _add_run_options(run_all_p)
    run_all_p.add_argument(
        "--only", action="append", default=None, metavar="ID",
        help="restrict to this experiment id (repeatable)",
    )

    sub.add_parser("datasets", help="show the Table II dataset registry")

    sub.add_parser(
        "validate",
        help="run the correctness cross-check battery",
    )
    return parser


def _run_session(args: argparse.Namespace, experiment_id) -> int:
    request = RunRequest(
        experiment_id=experiment_id,
        profile=args.profile,
        jobs=args.jobs,
        output_dir=args.out,
        format=args.format,
        use_disk_cache=not args.no_cache,
    )
    session = RunSession(request)
    results = session.run()
    for index, experiment_id_ in enumerate(results):
        print(session.rendered(experiment_id_))
        if index < len(results) - 1:
            print()
    print(f"[repro] {session.manifest.summary()}", file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            for spec in EXPERIMENTS.values():
                print(
                    f"{spec.experiment_id:<14} {spec.paper_artifact:<18} "
                    f"{spec.description}"
                )
        elif args.command == "run":
            return _run_session(args, args.experiment_id)
        elif args.command == "run-all":
            return _run_session(args, tuple(args.only) if args.only else None)
        elif args.command == "validate":
            from .validation import run_validation

            report = run_validation()
            print(report.render())
            return 0 if report.passed else 2
        elif args.command == "datasets":
            header = (
                f"{'key':<4} {'name':<12} {'vertices':>10} {'edges':>12}  "
                "description"
            )
            print(header)
            print("-" * len(header))
            for spec in DATASETS.values():
                print(
                    f"{spec.key:<4} {spec.full_name:<12} "
                    f"{spec.vertices:>10,} {spec.edges:>12,}  "
                    f"{spec.description}"
                )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
