"""Command-line interface: regenerate paper artifacts from a shell.

Usage::

    python -m repro list                      # registered experiments
    python -m repro run fig11 --profile tiny  # regenerate one figure
    python -m repro run-all --out reports/    # everything, persisted
    python -m repro datasets                  # Table II registry
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .errors import ReproError
from .experiments.registry import EXPERIMENTS
from .experiments.runner import run_experiment
from .graphs.datasets import DATASETS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "GaaS-X (ISCA 2020) reproduction: regenerate the paper's "
            "tables and figures"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id", choices=sorted(EXPERIMENTS))
    run.add_argument(
        "--profile", default="bench", choices=("tiny", "bench", "full"),
        help="dataset scale (default: bench)",
    )
    run.add_argument("--out", default=None, help="directory for the report")

    run_all_p = sub.add_parser("run-all", help="run every experiment")
    run_all_p.add_argument(
        "--profile", default="bench", choices=("tiny", "bench", "full"),
    )
    run_all_p.add_argument("--out", default=None)

    sub.add_parser("datasets", help="show the Table II dataset registry")

    sub.add_parser(
        "validate",
        help="run the correctness cross-check battery",
    )
    return parser


def _takes_profile(experiment_id: str) -> bool:
    # table1 and the pure-model ablation are profile-independent.
    return experiment_id not in ("table1", "abl-variation")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            for spec in EXPERIMENTS.values():
                print(
                    f"{spec.experiment_id:<14} {spec.paper_artifact:<18} "
                    f"{spec.description}"
                )
        elif args.command == "run":
            kwargs = (
                {"profile": args.profile}
                if _takes_profile(args.experiment_id)
                else {}
            )
            result = run_experiment(
                args.experiment_id, output_dir=args.out, **kwargs
            )
            print(result.render())
        elif args.command == "run-all":
            for experiment_id in EXPERIMENTS:
                kwargs = (
                    {"profile": args.profile}
                    if _takes_profile(experiment_id)
                    else {}
                )
                result = run_experiment(
                    experiment_id, output_dir=args.out, **kwargs
                )
                print(result.render())
                print()
        elif args.command == "validate":
            from .validation import run_validation

            report = run_validation()
            print(report.render())
            return 0 if report.passed else 2
        elif args.command == "datasets":
            header = (
                f"{'key':<4} {'name':<12} {'vertices':>10} {'edges':>12}  "
                "description"
            )
            print(header)
            print("-" * len(header))
            for spec in DATASETS.values():
                print(
                    f"{spec.key:<4} {spec.full_name:<12} "
                    f"{spec.vertices:>10,} {spec.edges:>12,}  "
                    f"{spec.description}"
                )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
