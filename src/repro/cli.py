"""Command-line interface: regenerate paper artifacts from a shell.

Usage::

    python -m repro list                       # registered experiments
    python -m repro run fig11 --profile tiny   # regenerate one figure
    python -m repro run-all --jobs 4 --out r/  # everything, in parallel
    python -m repro run-all --trace t.json     # … with a Perfetto trace
    python -m repro trace-summary t.json       # per-phase table
    python -m repro hw-report --dataset WV     # per-array counters
    python -m repro datasets                   # Table II registry
    python -m repro bench --quick              # perf record -> BENCH_*.json
    python -m repro bench-compare BENCH_quick.json   # regression gate
    python -m repro metrics-export r/metrics.json    # OpenMetrics text
    python -m repro serve --port 8100 --preload WV   # always-on daemon
    python -m repro slo-report                       # burn-rate table
    python -m repro trace-grep 4bf92f…               # one request's spans
    python -m repro store-convert LJ --profile full  # mmap CSR store
    python -m repro store-info                       # stored graphs

``run`` and ``run-all`` dispatch through the parallel cache-aware
executor: ``--jobs N`` sizes the worker pool (default: all cores),
repeated runs reuse the on-disk layout cache (``--no-cache`` opts out,
``$REPRO_CACHE_DIR`` relocates it). Operational output goes to stderr
as structured JSON lines (``--log-level`` / ``$REPRO_LOG_LEVEL``
control verbosity), so stdout stays byte-identical across job counts
and log levels. ``--trace PATH`` records spans for the whole run —
runs, shard groups, experiments, and the five controller phases — as
JSONL or Chrome trace-event JSON (``--trace-format``).

``bench`` runs a named workload suite and appends a schema-versioned,
git/host-stamped record to ``BENCH_<suite>.json``; ``bench-compare``
diffs two records with noise-aware thresholds and exits ``3`` on a
regression (the CI perf gate). ``--prof PATH`` on any run records a
cProfile pstats dump; ``repro trace-summary --pstats PATH`` renders its
top self-time table.

``serve`` runs the always-on analytics daemon (:mod:`repro.serve`):
queries over warm pre-loaded engines with request coalescing,
per-tenant quotas, and ``/metrics`` OpenMetrics exposition. Service
failures map to distinct exit codes through
:func:`repro.errors.exit_code_for` (4 over-quota, 5 deadline, 6
saturated; generic library errors stay 1).

``slo-report`` renders a running daemon's error-budget state (or a
saved ``/stats`` JSON file) as a per-window burn-rate table;
``trace-grep TRACE_ID`` reconstructs one request's span tree from the
daemon's ``/debug/flight`` ring (or a flight dump / trace file on
disk) and exits ``1`` when the trace is not found.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .errors import ReproError, exit_code_for
from .experiments.registry import EXPERIMENTS
from .experiments.runner import RunRequest, RunSession
from .graphs.datasets import DATASETS
from .obs.log import LEVELS, configure_logging, get_logger
from .obs.trace import TRACE_FORMATS

log = get_logger("repro.cli")


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", default="bench", choices=("tiny", "bench", "full"),
        help="dataset scale (default: bench)",
    )
    parser.add_argument(
        "--out", default=None, help="directory for reports + manifest"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: all cores)",
    )
    parser.add_argument(
        "--format", default="text", choices=("text", "json"),
        help="stdout rendering (default: text)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk layout cache for this run",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a span trace of the run to PATH",
    )
    parser.add_argument(
        "--trace-format", default="chrome", choices=TRACE_FORMATS,
        help="trace file format (default: chrome, Perfetto-loadable)",
    )
    parser.add_argument(
        "--log-level", default=None, choices=sorted(LEVELS),
        help="stderr log verbosity (default: $REPRO_LOG_LEVEL or info)",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="export the metrics registry as OpenMetrics text to PATH",
    )
    parser.add_argument(
        "--prof", default=None, metavar="PATH",
        help="profile the run with cProfile; write pstats dump to PATH",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "GaaS-X (ISCA 2020) reproduction: regenerate the paper's "
            "tables and figures"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id", choices=sorted(EXPERIMENTS))
    _add_run_options(run)

    everything = sub.add_parser("run-all", help="run every experiment")
    _add_run_options(everything)
    everything.add_argument(
        "--only", action="append", default=None, metavar="ID",
        help="restrict to this experiment id (repeatable)",
    )

    sub.add_parser("datasets", help="show the Table II dataset registry")

    sub.add_parser(
        "validate",
        help="run the correctness cross-check battery",
    )

    trace_summary = sub.add_parser(
        "trace-summary",
        help="per-phase time/event table from a recorded trace",
    )
    trace_summary.add_argument(
        "trace_path", metavar="PATH", help="trace file (jsonl or chrome)"
    )
    trace_summary.add_argument(
        "--pstats", default=None, metavar="PATH",
        help="also render the top self-time table of a --prof dump",
    )
    trace_summary.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="rows in the --pstats self-time table (default: 15)",
    )

    hw_report = sub.add_parser(
        "hw-report",
        help="per-array hardware counter report from an instrumented "
             "micro-engine run",
    )
    hw_report.add_argument(
        "--dataset", default="WV", metavar="KEY",
        choices=sorted(DATASETS),
        help="Table II dataset key (default: WV)",
    )
    hw_report.add_argument(
        "--profile", default="tiny", choices=("tiny", "bench", "full"),
        help="dataset scale (default: tiny; the micro engine is the "
             "slow, honest one)",
    )
    hw_report.add_argument(
        "--algorithm", default="pagerank",
        choices=("pagerank", "bfs", "sssp"),
        help="kernel to run (default: pagerank)",
    )
    hw_report.add_argument(
        "--iterations", type=int, default=2, metavar="N",
        help="PageRank iterations (default: 2)",
    )
    hw_report.add_argument(
        "--source", type=int, default=0, metavar="V",
        help="bfs/sssp source vertex (default: 0)",
    )
    hw_report.add_argument(
        "--format", default="text", choices=("text", "json"),
        help="stdout rendering (default: text)",
    )
    hw_report.add_argument(
        "--json", default=None, metavar="PATH", dest="json_path",
        help="also write the full JSON report to PATH (CI artifact)",
    )
    hw_report.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="export the per-bank-labelled counters as OpenMetrics "
             "text to PATH",
    )
    hw_report.add_argument(
        "--log-level", default=None, choices=sorted(LEVELS),
        help="stderr log verbosity",
    )

    bench = sub.add_parser(
        "bench",
        help="run a perf workload suite, append a BENCH_<suite>.json record",
    )
    bench.add_argument(
        "--suite", default=None,
        choices=("quick", "kernels", "experiments", "serve",
                 "dataplane", "full"),
        help="workload suite (default: quick)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="shorthand for --suite quick (tiny profile, few repeats)",
    )
    bench.add_argument(
        "--profile", default=None, choices=("tiny", "bench", "full"),
        help="dataset scale (default: the suite's own)",
    )
    bench.add_argument(
        "--repeats", type=int, default=None, metavar="N",
        help="timed repetitions per workload (default: the suite's own)",
    )
    bench.add_argument(
        "--out", default="benchmarks/out", metavar="DIR",
        help="directory for the BENCH_<suite>.json trajectory "
             "(default: benchmarks/out)",
    )
    bench.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="also export the metrics registry as OpenMetrics text",
    )
    bench.add_argument(
        "--prof", default=None, metavar="PATH",
        help="profile the suite with cProfile; write pstats dump to PATH",
    )
    bench.add_argument(
        "--log-level", default=None, choices=sorted(LEVELS),
        help="stderr log verbosity",
    )

    bench_compare = sub.add_parser(
        "bench-compare",
        help="noise-aware regression gate between two bench records",
    )
    bench_compare.add_argument(
        "current", metavar="CURRENT",
        help="BENCH_<suite>.json whose latest record is under test",
    )
    bench_compare.add_argument(
        "baseline", nargs="?", default=None, metavar="BASELINE",
        help="baseline BENCH file (default: the previous record "
             "of CURRENT)",
    )
    bench_compare.add_argument(
        "--threshold", type=float, default=None, metavar="FRAC",
        help="relative change that fails the gate (default: 0.25)",
    )
    bench_compare.add_argument(
        "--noise-k", type=float, default=None, metavar="K",
        help="wall-clock changes must exceed K MADs (default: 3)",
    )
    bench_compare.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but exit 0 (shared/noisy runners)",
    )
    bench_compare.add_argument(
        "--workload", action="append", default=None, metavar="NAME",
        help="restrict the gate to these workloads (repeatable); "
             "names absent from both records fail",
    )
    bench_compare.add_argument(
        "--log-level", default=None, choices=sorted(LEVELS),
        help="stderr log verbosity",
    )

    store_convert = sub.add_parser(
        "store-convert",
        help="convert a dataset into the mmap CSR store (one-time cost)",
    )
    store_convert.add_argument(
        "dataset", metavar="KEY", choices=sorted(DATASETS),
        help="Table II dataset key",
    )
    store_convert.add_argument(
        "--profile", default="bench", choices=("tiny", "bench", "full"),
        help="dataset scale (default: bench)",
    )
    store_convert.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="store root (default: $REPRO_STORE_DIR or "
             "~/.cache/repro/store)",
    )
    store_convert.add_argument(
        "--log-level", default=None, choices=sorted(LEVELS),
        help="stderr log verbosity",
    )

    store_info = sub.add_parser(
        "store-info",
        help="list the stored graphs under the store root",
    )
    store_info.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="store root (default: $REPRO_STORE_DIR or "
             "~/.cache/repro/store)",
    )

    metrics_export = sub.add_parser(
        "metrics-export",
        help="render a metrics snapshot as OpenMetrics/Prometheus text",
    )
    metrics_export.add_argument(
        "snapshot", nargs="?", default=None, metavar="PATH",
        help="metrics.json snapshot (e.g. from --out DIR); omitted: "
             "the live in-process registry",
    )

    serve = sub.add_parser(
        "serve",
        help="always-on analytics daemon: queries over warm sessions",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8100,
        help="bind port; 0 picks an ephemeral port (default: 8100)",
    )
    serve.add_argument(
        "--preload", action="append", default=None, metavar="KEY",
        choices=sorted(DATASETS), dest="preload",
        help="warm a session for this dataset before accepting traffic "
             "(repeatable)",
    )
    serve.add_argument(
        "--profile", default="bench", choices=("tiny", "bench", "full"),
        help="dataset scale for preloaded sessions (default: bench)",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=8, metavar="N",
        help="warm-session pool capacity (default: 8)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=64, metavar="N",
        help="distinct in-flight queries before shedding (default: 64)",
    )
    serve.add_argument(
        "--quota-rate", type=float, default=None, metavar="QPS",
        help="per-tenant sustained queries/second (default: unlimited)",
    )
    serve.add_argument(
        "--quota-burst", type=int, default=64, metavar="N",
        help="per-tenant burst allowance (default: 64)",
    )
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="engine executor threads (default: asyncio's own sizing)",
    )
    serve.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="default per-query deadline (default: 60)",
    )
    serve.add_argument(
        "--log-level", default=None, choices=sorted(LEVELS),
        help="stderr log verbosity",
    )
    serve.add_argument(
        "--flight-capacity", type=int, default=256, metavar="N",
        help="completed traces kept in the flight recorder "
             "(default: 256)",
    )
    serve.add_argument(
        "--slo-availability", type=float, default=0.999, metavar="FRAC",
        help="availability objective in (0, 1) (default: 0.999)",
    )
    serve.add_argument(
        "--slo-latency", type=float, default=1.0, metavar="SECONDS",
        help="p99 latency objective in seconds (default: 1.0)",
    )

    slo_report = sub.add_parser(
        "slo-report",
        help="error-budget burn-rate table from a running daemon",
    )
    slo_report.add_argument(
        "source", nargs="?", default=None, metavar="SOURCE",
        help="a /stats URL or saved /stats JSON file "
             "(default: http://127.0.0.1:8100/stats)",
    )

    trace_grep = sub.add_parser(
        "trace-grep",
        help="reconstruct one request's span tree by trace id",
    )
    trace_grep.add_argument(
        "trace_id", metavar="TRACE_ID",
        help="full trace id, or an unambiguous prefix",
    )
    trace_grep.add_argument(
        "source", nargs="?", default=None, metavar="SOURCE",
        help="a /debug/flight URL, a saved flight dump, or a trace "
             "file (default: http://127.0.0.1:8100/debug/flight)",
    )
    return parser


def _run_session(args: argparse.Namespace, experiment_id) -> int:
    request = RunRequest(
        experiment_id=experiment_id,
        profile=args.profile,
        jobs=args.jobs,
        output_dir=args.out,
        format=args.format,
        use_disk_cache=not args.no_cache,
        trace_path=args.trace,
        trace_format=args.trace_format,
        metrics_path=args.metrics,
        profile_stats_path=args.prof,
    )
    session = RunSession(request)
    results = session.run()
    for index, experiment_id_ in enumerate(results):
        print(session.rendered(experiment_id_))
        if index < len(results) - 1:
            print()
    log.info("run.summary", summary=session.manifest.summary())
    return 0


def _run_hw_report(args: argparse.Namespace) -> int:
    """Run the micro engine under an :class:`HwMonitor`, render the
    per-array report, and fail (exit 1) if attribution does not sum
    back to the run's global :class:`EventLog`."""
    import json as json_module

    from .config import ArchConfig
    from .core.micro import MicroGaaSX
    from .graphs.datasets import load_dataset
    from .graphs.graph import Graph
    from .obs.export import write_openmetrics
    from .obs.hw import (
        HwMonitor,
        build_report,
        publish_counters,
        render_report,
    )
    from .obs.metrics import get_metrics

    graph = load_dataset(args.dataset, args.profile)
    if not isinstance(graph, Graph):
        raise ReproError(
            f"dataset {args.dataset!r} is bipartite; hw-report drives "
            f"the micro traversal/PageRank kernels, which need a plain "
            f"graph"
        )
    config = ArchConfig()
    monitor = HwMonitor(config.mac_accumulate_limit)
    engine = MicroGaaSX(graph, config=config, hw=monitor)
    if args.algorithm == "pagerank":
        _, events = engine.pagerank(iterations=args.iterations)
    elif args.algorithm == "bfs":
        _, events = engine.bfs(args.source)
    else:
        _, events = engine.sssp(args.source)
    report = build_report(monitor, events, config.tech)
    report["dataset"] = args.dataset
    report["profile"] = args.profile
    report["algorithm"] = args.algorithm
    if args.format == "json":
        print(json_module.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            f"{args.algorithm} on {args.dataset}-{args.profile}: "
            f"{graph.num_vertices:,} vertices, "
            f"{graph.num_edges:,} edges"
        )
        print(render_report(report))
    if args.json_path is not None:
        import os

        parent = os.path.dirname(os.path.abspath(args.json_path))
        os.makedirs(parent, exist_ok=True)
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json_module.dump(report, handle, indent=2, sort_keys=True)
        log.info("hw_report.written", path=args.json_path)
    publish_counters(monitor, get_metrics())
    if args.metrics is not None:
        written = write_openmetrics(get_metrics(), args.metrics)
        log.info("metrics.written", path=written)
    if not report["parity"]["ok"]:
        log.error(
            "hw_report.parity_failed",
            mismatches=sorted(report["parity"]["mismatches"]),
        )
        return 1
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    from .obs import bench
    from .obs.export import write_openmetrics
    from .obs.metrics import get_metrics
    from .obs.perf import profiled

    suite = "quick" if args.quick else (args.suite or "quick")
    with profiled(args.prof):
        record, path = bench.run_suite(
            suite=suite,
            profile=args.profile,
            repeats=args.repeats,
            out_dir=args.out,
        )
    header = f"{'workload':<20} {'median':>12} {'mad':>12} {'metrics':>8}"
    print(header)
    print("-" * len(header))
    for name, entry in record["workloads"].items():
        wall = entry["wall_s"]
        print(
            f"{name:<20} {wall['median_s']:>11.4f}s "
            f"{wall['mad_s']:>11.4f}s {len(entry['metrics']):>8}"
        )
    print(
        f"\nrecord appended to {path} "
        f"(suite={record['suite']}, profile={record['profile']}, "
        f"git={record['git_sha']})"
    )
    if args.metrics is not None:
        written = write_openmetrics(get_metrics(), args.metrics)
        log.info("metrics.written", path=written)
    return 0


def _require_bench_file(path: str, role: str) -> None:
    """Fail fast — and legibly — on a missing or empty bench file.

    CI jobs routinely point the gate at a committed baseline that a
    branch hasn't created yet; the message must name the exact path and
    the command that produces it, not a JSON parse error.
    """
    import os

    if not os.path.exists(path):
        raise ReproError(
            f"{role} bench file {path!r} does not exist; record one "
            f"with: repro bench --suite <suite> --out "
            f"{os.path.dirname(path) or '.'}"
        )
    if os.path.getsize(path) == 0:
        raise ReproError(
            f"{role} bench file {path!r} is empty (zero bytes) — likely "
            f"a truncated write; re-record it with: repro bench "
            f"--suite <suite> --out {os.path.dirname(path) or '.'}"
        )


def _run_bench_compare(args: argparse.Namespace) -> int:
    from .obs import bench

    _require_bench_file(args.current, "current")
    if args.baseline is not None:
        _require_bench_file(args.baseline, "baseline")
    current_trajectory = bench.load_trajectory(args.current)
    current = bench.latest_record(current_trajectory)
    if args.baseline is not None:
        baseline = bench.latest_record(
            bench.load_trajectory(args.baseline)
        )
    else:
        records = current_trajectory["records"]
        if len(records) < 2:
            raise ReproError(
                f"{args.current} holds only one record; pass an explicit "
                f"BASELINE file or record a second run first"
            )
        baseline = records[-2]
    threshold = (
        args.threshold if args.threshold is not None
        else bench.DEFAULT_THRESHOLD
    )
    noise_k = (
        args.noise_k if args.noise_k is not None else bench.DEFAULT_NOISE_K
    )
    deltas = bench.compare_records(
        baseline, current, threshold=threshold, noise_k=noise_k
    )
    if args.workload:
        wanted = set(args.workload)
        missing = sorted(wanted - {d.workload for d in deltas})
        if missing:
            raise ReproError(
                "workload(s) absent from both records: "
                + ", ".join(missing)
            )
        deltas = [d for d in deltas if d.workload in wanted]
    print(
        f"baseline: git={baseline['git_sha']} "
        f"t={baseline['created_unix']}  "
        f"current: git={current['git_sha']} t={current['created_unix']}"
    )
    print(bench.render_comparison(deltas, threshold))
    if bench.has_regressions(deltas):
        log.warning(
            "bench.regression",
            regressions=sum(
                1 for d in deltas if d.verdict == "regression"
            ),
            warn_only=args.warn_only,
        )
        return 0 if args.warn_only else 3
    return 0


def _run_store_convert(args: argparse.Namespace) -> int:
    from .storage.mmap_store import get_store

    store = get_store(args.store_dir)
    stored = store.dataset(args.dataset, args.profile)
    import os

    print(
        f"{args.dataset}-{args.profile}: digest={stored.digest} "
        f"vertices={stored.num_vertices:,} edges={stored.num_edges:,} "
        f"shards={len(stored.shards)} "
        f"bytes={os.path.getsize(stored.path):,}"
    )
    print(f"path: {stored.path}")
    return 0


def _run_store_info(args: argparse.Namespace) -> int:
    from .storage.mmap_store import get_store

    store = get_store(args.store_dir)
    entries = store.entries()
    header = (
        f"{'digest':<34} {'name':<16} {'vertices':>10} {'edges':>12} "
        f"{'shards':>6} {'bytes':>14}"
    )
    print(header)
    print("-" * len(header))
    for entry in entries:
        print(
            f"{entry['digest']:<34} {str(entry['name']):<16.16} "
            f"{entry['vertices']:>10,} {entry['edges']:>12,} "
            f"{entry['shards']:>6} {entry['bytes']:>14,}"
        )
    print(f"\n{len(entries)} stored graph(s) under {store.root}")
    return 0


def _run_metrics_export(args: argparse.Namespace) -> int:
    import json as json_module

    from .obs.export import render_openmetrics
    from .obs.metrics import get_metrics

    if args.snapshot is None:
        print(render_openmetrics(get_metrics()), end="")
        return 0
    try:
        with open(args.snapshot, "r", encoding="utf-8") as handle:
            snapshot = json_module.load(handle)
    except OSError as exc:
        raise ReproError(
            f"cannot read metrics snapshot {args.snapshot!r}: {exc}"
        ) from exc
    except json_module.JSONDecodeError as exc:
        raise ReproError(
            f"metrics snapshot {args.snapshot!r} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(snapshot, dict):
        raise ReproError(
            f"metrics snapshot {args.snapshot!r} must be a JSON object"
        )
    print(render_openmetrics(snapshot), end="")
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .obs.slo import SLOConfig
    from .serve.http import serve_forever
    from .serve.server import AnalyticsService

    try:
        slo = SLOConfig(
            availability_target=args.slo_availability,
            latency_target_s=args.slo_latency,
        )
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    service = AnalyticsService(
        max_sessions=args.max_sessions,
        max_pending=args.max_pending,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        workers=args.workers,
        default_timeout_s=args.timeout,
        flight_capacity=args.flight_capacity,
        slo=slo,
    )
    if args.preload:
        service.preload(args.preload, args.profile)
        log.info(
            "serve.preloaded",
            datasets=list(args.preload),
            profile=args.profile,
        )
    try:
        asyncio.run(serve_forever(service, args.host, args.port))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        log.info("serve.stopped")
    return 0


#: Default daemon endpoints the observability commands read from.
DEFAULT_STATS_URL = "http://127.0.0.1:8100/stats"
DEFAULT_FLIGHT_URL = "http://127.0.0.1:8100/debug/flight"


def _read_json_source(source: str):
    """JSON from a URL (a running daemon) or a file on disk."""
    import json as json_module

    if source.startswith(("http://", "https://")):
        import urllib.error
        import urllib.request

        try:
            with urllib.request.urlopen(source, timeout=10) as response:
                return json_module.loads(
                    response.read().decode("utf-8")
                )
        except (urllib.error.URLError, OSError, ValueError) as exc:
            raise ReproError(
                f"cannot fetch {source!r}: {exc} — is the daemon "
                f"running? (repro serve)"
            ) from exc
    try:
        with open(source, "r", encoding="utf-8") as handle:
            return json_module.load(handle)
    except OSError as exc:
        raise ReproError(
            f"cannot read {source!r}: {exc}"
        ) from exc
    except json_module.JSONDecodeError as exc:
        raise ReproError(
            f"{source!r} is not valid JSON: {exc}"
        ) from exc


def _run_slo_report(args: argparse.Namespace) -> int:
    from .obs.slo import render_slo_report

    source = args.source or DEFAULT_STATS_URL
    payload = _read_json_source(source)
    # Accept the whole /stats payload or a bare tracker snapshot.
    snapshot = (
        payload.get("slo", payload) if isinstance(payload, dict) else None
    )
    if not isinstance(snapshot, dict) or "windows" not in snapshot:
        raise ReproError(
            f"{source!r} holds no SLO snapshot (expected a /stats "
            f"payload with an 'slo' key, or the snapshot itself)"
        )
    print(f"source: {source}")
    print(render_slo_report(snapshot))
    return 0


def _run_trace_grep(args: argparse.Namespace) -> int:
    from .obs.summary import filter_trace, load_trace, render_span_tree

    source = args.source or DEFAULT_FLIGHT_URL
    is_url = source.startswith(("http://", "https://"))
    payload = None
    if is_url:
        payload = _read_json_source(source)
    else:
        import json as json_module

        # A file may be a flight dump (one JSON object with "entries")
        # or a recorded trace (JSONL / Chrome); sniff, then fall back.
        try:
            with open(source, "r", encoding="utf-8") as handle:
                payload = json_module.load(handle)
        except OSError as exc:
            raise ReproError(f"cannot read {source!r}: {exc}") from exc
        except json_module.JSONDecodeError:
            payload = None
        if not (isinstance(payload, dict) and "entries" in payload):
            spans = filter_trace(load_trace(source), args.trace_id)
            if not spans:
                print(
                    f"trace {args.trace_id} not found in {source}",
                    file=sys.stderr,
                )
                return 1
            print(f"trace {args.trace_id} ({len(spans)} spans)")
            print(render_span_tree(spans))
            return 0
    entries = payload.get("entries", []) if isinstance(payload, dict) else []
    matches = [
        e for e in entries if e.get("trace_id") == args.trace_id
    ] or [
        e
        for e in entries
        if str(e.get("trace_id", "")).startswith(args.trace_id)
    ]
    if not matches:
        print(
            f"trace {args.trace_id} not found in {source} "
            f"({len(entries)} kept traces; errored and slow requests "
            f"are always kept, fast successes are sampled)",
            file=sys.stderr,
        )
        return 1
    if len(matches) > 1:
        raise ReproError(
            f"trace id prefix {args.trace_id!r} is ambiguous: "
            + ", ".join(str(e.get("trace_id")) for e in matches)
        )
    entry = matches[0]
    spans = entry.get("spans", [])
    fields = " ".join(
        f"{key}={entry[key]}"
        for key in (
            "status", "latency_s", "kept_because", "dataset",
            "algorithm", "tenant", "leader_trace_id",
        )
        if key in entry
    )
    print(f"trace {entry.get('trace_id')} {fields}")
    if "error" in entry:
        print(f"error: {entry['error']}")
    print(render_span_tree(spans))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    configure_logging(getattr(args, "log_level", None))
    try:
        if args.command == "list":
            for spec in EXPERIMENTS.values():
                print(
                    f"{spec.experiment_id:<14} {spec.paper_artifact:<18} "
                    f"{spec.description}"
                )
        elif args.command == "run":
            return _run_session(args, args.experiment_id)
        elif args.command == "run-all":
            return _run_session(args, tuple(args.only) if args.only else None)
        elif args.command == "validate":
            from .validation import run_validation

            report = run_validation()
            print(report.render())
            return 0 if report.passed else 2
        elif args.command == "trace-summary":
            from .obs.perf import render_profile_table, top_self_time
            from .obs.summary import load_trace, render_summary

            print(render_summary(load_trace(args.trace_path)))
            if args.pstats is not None:
                try:
                    rows = top_self_time(args.pstats, args.top)
                except ValueError as exc:
                    log.error("command.failed", command="trace-summary",
                              error=str(exc))
                    return 1
                print()
                print(render_profile_table(rows))
            return 0
        elif args.command == "hw-report":
            return _run_hw_report(args)
        elif args.command == "bench":
            return _run_bench(args)
        elif args.command == "bench-compare":
            return _run_bench_compare(args)
        elif args.command == "store-convert":
            return _run_store_convert(args)
        elif args.command == "store-info":
            return _run_store_info(args)
        elif args.command == "metrics-export":
            return _run_metrics_export(args)
        elif args.command == "serve":
            return _run_serve(args)
        elif args.command == "slo-report":
            return _run_slo_report(args)
        elif args.command == "trace-grep":
            return _run_trace_grep(args)
        elif args.command == "datasets":
            header = (
                f"{'key':<4} {'name':<12} {'vertices':>10} {'edges':>12}  "
                "description"
            )
            print(header)
            print("-" * len(header))
            for spec in DATASETS.values():
                print(
                    f"{spec.key:<4} {spec.full_name:<12} "
                    f"{spec.vertices:>10,} {spec.edges:>12,}  "
                    f"{spec.description}"
                )
    except ReproError as exc:
        log.error("command.failed", command=args.command, error=str(exc))
        return exit_code_for(exc)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
