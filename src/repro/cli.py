"""Command-line interface: regenerate paper artifacts from a shell.

Usage::

    python -m repro list                       # registered experiments
    python -m repro run fig11 --profile tiny   # regenerate one figure
    python -m repro run-all --jobs 4 --out r/  # everything, in parallel
    python -m repro run-all --trace t.json     # … with a Perfetto trace
    python -m repro trace-summary t.json       # per-phase table
    python -m repro datasets                   # Table II registry

``run`` and ``run-all`` dispatch through the parallel cache-aware
executor: ``--jobs N`` sizes the worker pool (default: all cores),
repeated runs reuse the on-disk layout cache (``--no-cache`` opts out,
``$REPRO_CACHE_DIR`` relocates it). Operational output goes to stderr
as structured JSON lines (``--log-level`` / ``$REPRO_LOG_LEVEL``
control verbosity), so stdout stays byte-identical across job counts
and log levels. ``--trace PATH`` records spans for the whole run —
runs, shard groups, experiments, and the five controller phases — as
JSONL or Chrome trace-event JSON (``--trace-format``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .errors import ReproError
from .experiments.registry import EXPERIMENTS
from .experiments.runner import RunRequest, RunSession
from .graphs.datasets import DATASETS
from .obs.log import LEVELS, configure_logging, get_logger
from .obs.trace import TRACE_FORMATS

log = get_logger("repro.cli")


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", default="bench", choices=("tiny", "bench", "full"),
        help="dataset scale (default: bench)",
    )
    parser.add_argument(
        "--out", default=None, help="directory for reports + manifest"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: all cores)",
    )
    parser.add_argument(
        "--format", default="text", choices=("text", "json"),
        help="stdout rendering (default: text)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk layout cache for this run",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a span trace of the run to PATH",
    )
    parser.add_argument(
        "--trace-format", default="chrome", choices=TRACE_FORMATS,
        help="trace file format (default: chrome, Perfetto-loadable)",
    )
    parser.add_argument(
        "--log-level", default=None, choices=sorted(LEVELS),
        help="stderr log verbosity (default: $REPRO_LOG_LEVEL or info)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "GaaS-X (ISCA 2020) reproduction: regenerate the paper's "
            "tables and figures"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id", choices=sorted(EXPERIMENTS))
    _add_run_options(run)

    run_all_p = sub.add_parser("run-all", help="run every experiment")
    _add_run_options(run_all_p)
    run_all_p.add_argument(
        "--only", action="append", default=None, metavar="ID",
        help="restrict to this experiment id (repeatable)",
    )

    sub.add_parser("datasets", help="show the Table II dataset registry")

    sub.add_parser(
        "validate",
        help="run the correctness cross-check battery",
    )

    trace_summary = sub.add_parser(
        "trace-summary",
        help="per-phase time/event table from a recorded trace",
    )
    trace_summary.add_argument(
        "trace_path", metavar="PATH", help="trace file (jsonl or chrome)"
    )
    return parser


def _run_session(args: argparse.Namespace, experiment_id) -> int:
    request = RunRequest(
        experiment_id=experiment_id,
        profile=args.profile,
        jobs=args.jobs,
        output_dir=args.out,
        format=args.format,
        use_disk_cache=not args.no_cache,
        trace_path=args.trace,
        trace_format=args.trace_format,
    )
    session = RunSession(request)
    results = session.run()
    for index, experiment_id_ in enumerate(results):
        print(session.rendered(experiment_id_))
        if index < len(results) - 1:
            print()
    log.info("run.summary", summary=session.manifest.summary())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    configure_logging(getattr(args, "log_level", None))
    try:
        if args.command == "list":
            for spec in EXPERIMENTS.values():
                print(
                    f"{spec.experiment_id:<14} {spec.paper_artifact:<18} "
                    f"{spec.description}"
                )
        elif args.command == "run":
            return _run_session(args, args.experiment_id)
        elif args.command == "run-all":
            return _run_session(args, tuple(args.only) if args.only else None)
        elif args.command == "validate":
            from .validation import run_validation

            report = run_validation()
            print(report.render())
            return 0 if report.passed else 2
        elif args.command == "trace-summary":
            from .obs.summary import load_trace, render_summary

            print(render_summary(load_trace(args.trace_path)))
            return 0
        elif args.command == "datasets":
            header = (
                f"{'key':<4} {'name':<12} {'vertices':>10} {'edges':>12}  "
                "description"
            )
            print(header)
            print("-" * len(header))
            for spec in DATASETS.values():
                print(
                    f"{spec.key:<4} {spec.full_name:<12} "
                    f"{spec.vertices:>10,} {spec.edges:>12,}  "
                    f"{spec.description}"
                )
    except ReproError as exc:
        log.error("command.failed", command=args.command, error=str(exc))
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
