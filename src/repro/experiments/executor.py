"""Parallel, cache-aware execution engine for the experiment layer.

``run-all`` used to replay ~20 experiments strictly serially, rebuilding
identical partition grids and crossbar layouts dozens of times. This
module turns the sweep into a scheduled batch job:

* experiments are **grouped by cache affinity** — specs declaring the
  same dataset needs (:attr:`ExperimentSpec.cache_group`) land on the
  same worker, where the process-wide layout cache and the shared
  comparison matrix serve every member after the first;
* groups run **across a process pool** (``jobs`` workers, default
  ``os.cpu_count()``); ``jobs=1`` (or a single group) degrades to
  in-process execution with identical results;
* every worker reads/writes the **on-disk layout cache**, so a repeated
  sweep — or a worker joining mid-run — starts warm;
* each experiment contributes a **manifest entry** (wall time, cache
  hit/miss deltas, worker id, config fingerprint) so the bench
  trajectory can track where the time went.

Results are returned in registry order and are exactly what the serial
path produces: the same driver call with the same keywords, so report
payloads are byte-identical regardless of ``jobs``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import ArchConfig
from ..core import cache as layout_cache
from ..errors import ConfigError
from ..obs.log import get_logger
from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from .registry import EXPERIMENTS, ExperimentSpec, get_experiment
from .reporting import ExperimentResult

log = get_logger("repro.executor")


@dataclass(frozen=True)
class ManifestEntry:
    """Execution record of one experiment."""

    experiment_id: str
    wall_time_s: float
    worker: int  # pid of the process that ran the driver
    group: Tuple[str, ...]  # cache-affinity group (dataset keys)
    config_fingerprint: str
    cache: Dict[str, int]  # CacheStats delta attributable to this run

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "experiment_id": self.experiment_id,
            "wall_time_s": self.wall_time_s,
            "worker": self.worker,
            "group": list(self.group),
            "config_fingerprint": self.config_fingerprint,
            "cache": dict(self.cache),
        }


@dataclass
class RunManifest:
    """Per-run execution manifest emitted next to the JSON reports."""

    profile: str
    jobs: int
    cache_version: int = layout_cache.CACHE_VERSION
    cache_dir: Optional[str] = None
    wall_time_s: float = 0.0
    entries: List[ManifestEntry] = field(default_factory=list)
    schedule: Dict[str, object] = field(default_factory=dict)

    @property
    def cache_totals(self) -> Dict[str, int]:
        """Summed cache counters across all entries."""
        totals: Dict[str, int] = {}
        for entry in self.entries:
            for key, value in entry.cache.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of grid/layout lookups served from either tier."""
        t = self.cache_totals
        hits = (
            t.get("grid_hits", 0)
            + t.get("grid_disk_hits", 0)
            + t.get("layout_hits", 0)
            + t.get("layout_disk_hits", 0)
        )
        lookups = hits + t.get("grid_misses", 0) + t.get("layout_misses", 0)
        return hits / lookups if lookups else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable form (written as ``manifest.json``)."""
        return {
            "profile": self.profile,
            "jobs": self.jobs,
            "cache_version": self.cache_version,
            "cache_dir": self.cache_dir,
            "wall_time_s": self.wall_time_s,
            "cache_totals": self.cache_totals,
            "cache_hit_rate": self.cache_hit_rate,
            "schedule": self.schedule,
            "experiments": [e.to_dict() for e in self.entries],
        }

    def summary(self) -> str:
        """One-line human summary for the CLI."""
        if not self.entries:
            # An empty run (e.g. ``--only`` matching nothing) has no
            # cache lookups; reporting a hit rate would be nonsense.
            return (
                f"0 experiments (nothing matched the request); "
                f"{self.wall_time_s:.2f}s elapsed"
            )
        t = self.cache_totals
        hits = (
            t.get("grid_hits", 0)
            + t.get("grid_disk_hits", 0)
            + t.get("layout_hits", 0)
            + t.get("layout_disk_hits", 0)
        )
        misses = t.get("grid_misses", 0) + t.get("layout_misses", 0)
        return (
            f"{len(self.entries)} experiments in {self.wall_time_s:.2f}s "
            f"({self.jobs} worker{'s' if self.jobs != 1 else ''}); "
            f"layout/grid cache: {hits} hits / {misses} misses "
            f"({self.cache_hit_rate:.0%} hit rate)"
        )


@dataclass
class ExecutionReport:
    """Everything one executor invocation produced."""

    results: Dict[str, ExperimentResult]
    manifest: RunManifest


def resolve_jobs(jobs: Optional[int]) -> int:
    """Worker-count default: ``os.cpu_count()`` when unspecified."""
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    return jobs


def group_weight(
    group: Tuple[str, ...], profile: str = "bench"
) -> int:
    """Estimated edge workload of one cache-affinity group.

    The sum of every member dataset's profile-scaled edge count (from
    the Table II registry). Edge count is the honest proxy for a
    group's cost: partitioning, layout packing, and every per-edge
    hardware event scale with it, while experiment *count* (the old
    scheduling key) says nothing — one LiveJournal experiment outweighs
    a dozen WikiVote ones. Dataset-free groups (tables, parameter
    sweeps) weigh a nominal 1 so they sort last.
    """
    from ..graphs.datasets import DATASETS

    total = 0
    for key in group:
        spec = DATASETS.get(key)
        if spec is not None:
            total += spec.sizes(profile)[1]
    return max(total, 1)


def plan_groups(
    specs: Sequence[ExperimentSpec],
    profile: str = "bench",
) -> List[Tuple[ExperimentSpec, ...]]:
    """Partition specs into degree-sorted cache-affinity groups.

    Specs with equal :attr:`ExperimentSpec.cache_group` (the datasets
    their drivers load) share partition grids, layouts, and — for the
    figure experiments — the whole comparison matrix, so scheduling
    them on one worker converts recomputation into in-process cache
    hits. Groups come back **heaviest-first by estimated edge count**
    (:func:`group_weight`): with a pool pulling groups in submission
    order this is the LPT heuristic, so the big-graph groups start
    immediately and no worker is left grinding LiveJournal alone while
    the rest sit idle behind a tail of tiny groups.
    """
    by_group: Dict[Tuple[str, ...], List[ExperimentSpec]] = {}
    for spec in specs:
        by_group.setdefault(spec.cache_group, []).append(spec)
    groups = [tuple(members) for members in by_group.values()]
    groups.sort(
        key=lambda g: (group_weight(g[0].cache_group, profile), len(g)),
        reverse=True,
    )
    return groups


def schedule_summary(
    groups: Sequence[Tuple[ExperimentSpec, ...]],
    jobs: int,
    profile: str = "bench",
) -> Dict[str, object]:
    """Manifest accounting of the planned edge-count balance.

    Simulates the pool's greedy pull (groups in planned order, each to
    the lightest worker) and reports the per-worker edge loads plus a
    ``balance`` ratio (mean/max; 1.0 is perfect). Purely an estimate —
    the live pool assigns by completion order — but it is exactly the
    quantity the degree-sorted ordering optimizes, so regressions in
    the planner surface here.
    """
    weights = [group_weight(g[0].cache_group, profile) for g in groups]
    loads = [0] * max(jobs, 1)
    for weight in weights:
        loads[loads.index(min(loads))] += weight
    peak = max(loads) if loads else 0
    mean = sum(loads) / len(loads) if loads else 0.0
    return {
        "groups": [
            {"datasets": list(g[0].cache_group), "weight": w, "members": len(g)}
            for g, w in zip(groups, weights)
        ],
        "worker_edge_loads": loads,
        "balance": (mean / peak) if peak else 1.0,
    }


def _run_group(
    experiment_ids: Tuple[str, ...],
    profile: str,
    disk_cache_dir: Optional[str],
    trace: bool = False,
) -> Tuple[List[Tuple[str, ExperimentResult, dict]], List[dict]]:
    """Run one affinity group serially (in a worker or in-process).

    Returns ``(experiment_id, result, manifest_fields)`` triples plus
    the spans this group recorded; the cache counters are deltas
    against the group-local snapshot so each experiment's manifest
    entry reflects only its own lookups.

    ``trace=True`` is the *pool-worker* protocol: it enables the
    worker-local tracer and drains its buffer into the second return
    element for the parent to merge. In-process callers leave it False
    — their spans land directly in the calling process's tracer.
    """
    tracer = get_tracer()
    if trace:
        tracer.enabled = True
    if disk_cache_dir is not None:
        layout_cache.enable_disk_cache(disk_cache_dir)
    fingerprint = layout_cache.config_fingerprint(ArchConfig())
    out: List[Tuple[str, ExperimentResult, dict]] = []
    with tracer.span(
        "shard", category="shard",
        experiments=list(experiment_ids), worker=os.getpid(),
    ):
        for experiment_id in experiment_ids:
            spec = get_experiment(experiment_id)
            before = layout_cache.stats_snapshot()
            start = time.perf_counter()
            with tracer.span(
                experiment_id, category="experiment", profile=profile
            ):
                result = spec.driver(**spec.profile_kwargs(profile))
            wall = time.perf_counter() - start
            after = layout_cache.stats_snapshot()
            log.debug(
                "experiment.complete", experiment_id=experiment_id,
                wall_time_s=round(wall, 4), worker=os.getpid(),
            )
            out.append(
                (
                    experiment_id,
                    result,
                    {
                        "wall_time_s": wall,
                        "worker": os.getpid(),
                        "group": spec.cache_group,
                        "config_fingerprint": fingerprint,
                        "cache": layout_cache.CacheStats.delta(
                            before, after
                        ),
                    },
                )
            )
    # Only drain for pool workers; the in-process path's spans stay in
    # (and are exported from) the caller's own tracer.
    return out, (tracer.drain() if trace else [])


def execute(
    experiment_ids: Optional[Sequence[str]] = None,
    profile: str = "bench",
    jobs: Optional[int] = None,
    disk_cache: bool = True,
    cache_dir: Optional[str] = None,
) -> ExecutionReport:
    """Run experiments across the pool and return results + manifest.

    Parameters
    ----------
    experiment_ids:
        Subset to run, in any order; ``None`` means every registered
        experiment. Results always come back in registry order.
    profile:
        Dataset scale passed to every driver that accepts it.
    jobs:
        Worker processes; ``None`` uses ``os.cpu_count()``. With one
        effective worker everything runs in-process (no pool).
    disk_cache:
        Attach the persistent layout cache (``cache_dir``,
        ``$REPRO_CACHE_DIR``, or ``~/.cache/repro``) so repeated runs
        and pool workers start warm.

    When the calling process's tracer is enabled, the whole invocation
    is one ``run`` span with ``shard`` (affinity group) and
    ``experiment`` spans nested beneath; pool workers trace into their
    own buffers, which are merged back here, so one trace file covers
    every process.
    """
    if experiment_ids is None:
        specs = list(EXPERIMENTS.values())
    else:
        specs = [get_experiment(i) for i in experiment_ids]
    jobs = resolve_jobs(jobs)
    resolved_dir: Optional[str] = None
    if disk_cache:
        resolved_dir = layout_cache.enable_disk_cache(cache_dir)
    groups = plan_groups(specs, profile)
    id_groups = [
        tuple(spec.experiment_id for spec in group) for group in groups
    ]
    manifest = RunManifest(
        profile=profile, jobs=min(jobs, max(len(groups), 1)),
        cache_dir=resolved_dir,
    )
    manifest.schedule = schedule_summary(groups, manifest.jobs, profile)
    tracer = get_tracer()
    log.info(
        "run.start", profile=profile, experiments=len(specs),
        groups=len(id_groups), jobs=manifest.jobs,
        cache_dir=resolved_dir,
    )
    start = time.perf_counter()
    raw: Dict[str, Tuple[ExperimentResult, dict]] = {}
    with tracer.span(
        "execute", category="run", profile=profile,
        experiments=len(specs), jobs=manifest.jobs,
    ):
        if manifest.jobs <= 1:
            for ids in id_groups:
                triples, _ = _run_group(ids, profile, resolved_dir)
                for experiment_id, result, meta in triples:
                    raw[experiment_id] = (result, meta)
        else:
            with ProcessPoolExecutor(max_workers=manifest.jobs) as pool:
                futures = [
                    pool.submit(
                        _run_group, ids, profile, resolved_dir,
                        tracer.enabled,
                    )
                    for ids in id_groups
                ]
                for future in futures:
                    triples, worker_spans = future.result()
                    tracer.ingest(worker_spans)
                    for experiment_id, result, meta in triples:
                        raw[experiment_id] = (result, meta)
    manifest.wall_time_s = time.perf_counter() - start
    ordered = [
        spec.experiment_id
        for spec in EXPERIMENTS.values()
        if spec.experiment_id in raw
    ]
    results: Dict[str, ExperimentResult] = {}
    for experiment_id in ordered:
        result, meta = raw[experiment_id]
        results[experiment_id] = result
        manifest.entries.append(
            ManifestEntry(experiment_id=experiment_id, **meta)
        )
    _publish_metrics(manifest)
    log.info(
        "run.complete", experiments=len(manifest.entries),
        wall_time_s=round(manifest.wall_time_s, 4),
        cache_hit_rate=round(manifest.cache_hit_rate, 4),
    )
    return ExecutionReport(results=results, manifest=manifest)


def _publish_metrics(manifest: RunManifest) -> None:
    """Fold one run's manifest into the process metrics registry.

    Cache counters come from the manifest's per-experiment deltas (not
    ``stats_snapshot()``), so lookups performed inside pool workers are
    counted too.
    """
    registry = get_metrics()
    registry.counter("executor.runs").inc()
    registry.counter("executor.experiments").inc(len(manifest.entries))
    groups = {entry.group for entry in manifest.entries}
    registry.counter("executor.groups").inc(len(groups))
    registry.gauge("executor.jobs").set(manifest.jobs)
    registry.counter("executor.wall_s").inc(manifest.wall_time_s)
    wall_hist = registry.histogram("executor.experiment_wall_s")
    for entry in manifest.entries:
        wall_hist.observe(entry.wall_time_s)
    for name, value in manifest.cache_totals.items():
        if value:
            registry.counter(f"cache.{name}").inc(value)
    if manifest.entries:
        registry.gauge("cache.hit_rate").set(manifest.cache_hit_rate)
    balance = manifest.schedule.get("balance")
    if balance is not None:
        registry.gauge("executor.schedule_balance").set(float(balance))
