"""Experiment runner: dispatch, render, optionally persist."""

from __future__ import annotations

import json
import os
from typing import Optional

from .registry import get_experiment
from .reporting import ExperimentResult


def run_experiment(
    experiment_id: str,
    output_dir: Optional[str] = None,
    **kwargs: object,
) -> ExperimentResult:
    """Run one registered experiment and optionally save its report.

    ``kwargs`` pass through to the driver (e.g. ``profile="tiny"``).
    When ``output_dir`` is given, the rendered report is written to
    ``<output_dir>/<experiment_id>.txt``.
    """
    spec = get_experiment(experiment_id)
    result = spec.driver(**kwargs)
    if output_dir is not None:
        os.makedirs(output_dir, exist_ok=True)
        path = os.path.join(output_dir, f"{experiment_id}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(result.render() + "\n")
        json_path = os.path.join(output_dir, f"{experiment_id}.json")
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2)
            handle.write("\n")
    return result


def run_all(output_dir: Optional[str] = None, **kwargs: object) -> dict:
    """Run every registered experiment; returns id -> result."""
    from .registry import EXPERIMENTS

    results = {}
    for experiment_id in EXPERIMENTS:
        results[experiment_id] = run_experiment(
            experiment_id, output_dir=output_dir, **kwargs
        )
    return results
