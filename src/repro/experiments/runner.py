"""Experiment runner: the typed run API over the parallel executor.

The public surface is :class:`RunRequest` (what to run) plus
:class:`RunSession` (owns execution, output persistence, and the run
manifest). A session dispatches through
:mod:`repro.experiments.executor`, so one request transparently gets
cache-affinity grouping, the process pool, and the layout cache.

::

    from repro.experiments import RunRequest, RunSession

    session = RunSession(RunRequest(profile="tiny", jobs=4,
                                    output_dir="reports/"))
    results = session.run()           # id -> ExperimentResult
    print(session.manifest.summary())

This is the *batch* half of the public surface; the query-level
counterpart (one algorithm over a warm session, served concurrently)
lives in :mod:`repro.serve`. The pre-``RunRequest`` ad-hoc shims were
removed once their deprecation cycle ended.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from ..errors import ConfigError
from ..graphs.datasets import PROFILES
from ..obs.export import write_openmetrics
from ..obs.log import get_logger
from ..obs.metrics import get_metrics
from ..obs.perf import profiled
from ..obs.trace import TRACE_FORMATS, get_tracer
from .executor import RunManifest, execute
from .registry import EXPERIMENTS, get_experiment
from .reporting import ExperimentResult

log = get_logger("repro.runner")

#: Output formats a request may ask for.
FORMATS = ("text", "json")


@dataclass(frozen=True)
class RunRequest:
    """A validated, typed description of one experiment run.

    Parameters
    ----------
    experiment_id:
        A single registered id, a sequence of ids, or ``None`` to run
        every experiment.
    profile:
        Dataset scale (``tiny``/``bench``/``full``), forwarded to every
        driver whose spec declares ``accepts_profile``.
    jobs:
        Worker processes; ``None`` defaults to ``os.cpu_count()``.
    output_dir:
        When set, rendered reports, JSON payloads, and the run manifest
        are persisted there.
    format:
        Rendering used for display output: ``"text"`` (ASCII tables) or
        ``"json"``.
    use_disk_cache:
        Attach the persistent layout cache for this run.
    cache_dir:
        Explicit cache directory (overrides ``$REPRO_CACHE_DIR``).
    trace_path:
        When set, tracing is enabled for the run and the merged trace
        (all pool workers included) is written here. A copy also lands
        in ``output_dir`` alongside ``manifest.json`` when both are
        given.
    trace_format:
        ``"chrome"`` (Perfetto / ``chrome://tracing`` JSON, default)
        or ``"jsonl"`` (one span object per line).
    metrics_path:
        When set, the process metrics registry is exported there as
        OpenMetrics/Prometheus text after the run. A JSON snapshot
        (``metrics.json``) also lands in ``output_dir`` when one is
        given, whether or not ``metrics_path`` is set.
    profile_stats_path:
        When set, the run executes under :mod:`cProfile` and the
        binary pstats dump is written here (inspect with
        ``repro trace-summary --pstats``). Only the calling process is
        profiled; pool workers appear as time waiting on futures.
    """

    experiment_id: Union[str, Sequence[str], None] = None
    profile: str = "bench"
    jobs: Optional[int] = None
    output_dir: Optional[str] = None
    format: str = "text"
    use_disk_cache: bool = True
    cache_dir: Optional[str] = None
    trace_path: Optional[str] = None
    trace_format: str = "chrome"
    metrics_path: Optional[str] = None
    profile_stats_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.experiment_id is not None and not isinstance(
            self.experiment_id, str
        ):
            object.__setattr__(
                self, "experiment_id", tuple(self.experiment_id)
            )
        for experiment_id in self.experiment_ids:
            get_experiment(experiment_id)  # raises on unknown ids
        if self.profile not in PROFILES:
            raise ConfigError(
                f"unknown profile {self.profile!r}; expected one of "
                f"{PROFILES}"
            )
        if self.format not in FORMATS:
            raise ConfigError(
                f"unknown format {self.format!r}; expected one of {FORMATS}"
            )
        if self.jobs is not None and self.jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {self.jobs}")
        if self.trace_format not in TRACE_FORMATS:
            raise ConfigError(
                f"unknown trace format {self.trace_format!r}; expected "
                f"one of {TRACE_FORMATS}"
            )

    @property
    def experiment_ids(self) -> Tuple[str, ...]:
        """The concrete ids this request resolves to."""
        if self.experiment_id is None:
            return tuple(EXPERIMENTS)
        if isinstance(self.experiment_id, str):
            return (self.experiment_id,)
        return tuple(self.experiment_id)


class RunSession:
    """Executes a :class:`RunRequest` and owns its outputs.

    ``run()`` returns the results (registry order) and, when the
    request names an ``output_dir``, persists ``<id>.txt``,
    ``<id>.json``, and a ``manifest.json`` describing wall time and
    cache behaviour per experiment.
    """

    def __init__(self, request: RunRequest) -> None:
        self.request = request
        self._results: Optional[Dict[str, ExperimentResult]] = None
        self._manifest: Optional[RunManifest] = None

    # ------------------------------------------------------------------
    @property
    def results(self) -> Dict[str, ExperimentResult]:
        """Results of the completed run (raises before ``run()``)."""
        if self._results is None:
            raise ConfigError("session has not run yet")
        return self._results

    @property
    def manifest(self) -> RunManifest:
        """Execution manifest of the completed run."""
        if self._manifest is None:
            raise ConfigError("session has not run yet")
        return self._manifest

    # ------------------------------------------------------------------
    def run(self) -> Dict[str, ExperimentResult]:
        """Execute the request; returns id -> :class:`ExperimentResult`."""
        request = self.request
        tracing = request.trace_path is not None
        tracer = get_tracer()
        was_enabled = tracer.enabled
        if tracing:
            tracer.enabled = True
            tracer.clear()
        try:
            with profiled(request.profile_stats_path) as profiler:
                with tracer.span(
                    "run", category="run", profile=request.profile,
                    experiments=len(request.experiment_ids),
                ):
                    report = execute(
                        experiment_ids=request.experiment_ids,
                        profile=request.profile,
                        jobs=request.jobs,
                        disk_cache=request.use_disk_cache,
                        cache_dir=request.cache_dir,
                    )
        finally:
            if tracing:
                tracer.enabled = was_enabled
        if profiler is not None:
            log.info(
                "profile.written", path=request.profile_stats_path,
            )
        self._results = report.results
        self._manifest = report.manifest
        if request.output_dir is not None:
            for result in report.results.values():
                persist_result(result, request.output_dir)
            self._write_manifest(request.output_dir)
            self._write_metrics_snapshot(request.output_dir)
        if request.metrics_path is not None:
            written = write_openmetrics(get_metrics(), request.metrics_path)
            log.info("metrics.written", path=written)
        if tracing:
            self._write_trace(tracer)
        return report.results

    def rendered(self, experiment_id: str) -> str:
        """One result rendered in the request's format."""
        result = self.results[experiment_id]
        if self.request.format == "json":
            return json.dumps(result.to_dict(), indent=2)
        return result.render()

    # ------------------------------------------------------------------
    def _write_manifest(self, output_dir: str) -> None:
        os.makedirs(output_dir, exist_ok=True)
        path = os.path.join(output_dir, "manifest.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.manifest.to_dict(), handle, indent=2)
            handle.write("\n")

    def _write_metrics_snapshot(self, output_dir: str) -> None:
        """Persist the registry snapshot next to ``manifest.json``.

        The JSON form is what ``repro metrics-export`` converts to
        OpenMetrics text after the fact.
        """
        path = os.path.join(output_dir, "metrics.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(get_metrics().snapshot(), handle, indent=2)
            handle.write("\n")

    def _write_trace(self, tracer) -> None:
        """Export the merged span buffer to the requested path(s)."""
        request = self.request
        written = tracer.write(request.trace_path, request.trace_format)
        log.info(
            "trace.written", path=written, format=request.trace_format,
            spans=len(tracer.records()),
        )
        if request.output_dir is not None:
            ext = "json" if request.trace_format == "chrome" else "jsonl"
            archived = os.path.join(request.output_dir, f"trace.{ext}")
            if os.path.abspath(archived) != os.path.abspath(written):
                tracer.write(archived, request.trace_format)


def persist_result(result: ExperimentResult, output_dir: str) -> None:
    """Write one result's text and JSON reports under ``output_dir``.

    The on-disk format is unchanged from the original serial runner, so
    payloads are byte-identical however the run was executed.
    """
    os.makedirs(output_dir, exist_ok=True)
    path = os.path.join(output_dir, f"{result.experiment_id}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(result.render() + "\n")
    json_path = os.path.join(output_dir, f"{result.experiment_id}.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(result.to_dict(), handle, indent=2)
        handle.write("\n")
