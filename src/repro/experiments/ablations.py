"""Ablation studies of the design choices DESIGN.md calls out.

Three sweeps beyond the paper's published figures:

* **MAC accumulation limit** (Section III-A fixes 16 to bound the ADC
  at 6 bits) — sweep the limit and measure PageRank time/energy plus
  the ADC resolution each limit would require.
* **GraphR tile size** (Section II-C uses 16x16) — how the dense
  mapping's redundancy scales with the tile.
* **Crossbar count** — GaaS-X compute-parallelism scaling.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..baselines.graphr import GraphREngine
from ..config import ArchConfig, GraphRConfig
from ..core.engine import GaaSXEngine
from ..graphs.datasets import load_dataset
from ..graphs.stats import tile_profile
from .reporting import ExperimentResult, Series


def mac_limit_sweep(
    dataset: str = "WV",
    profile: str = "bench",
    limits: Tuple[int, ...] = (4, 8, 16, 32, 128),
    iterations: int = 5,
) -> ExperimentResult:
    """Sweep the rows-accumulated-per-MAC limit on PageRank."""
    graph = load_dataset(dataset, profile)
    labels = [str(l) for l in limits]
    times = []
    energies = []
    adc_bits = []
    for limit in limits:
        config = ArchConfig(mac_accumulate_limit=limit)
        result = GaaSXEngine(graph, config=config).pagerank(
            iterations=iterations
        )
        times.append(result.stats.total_time_s)
        energies.append(result.stats.total_energy_j)
        # Worst-case per-phase bit-line sum: limit x (2^cell_bits - 1).
        adc_bits.append(float(int(np.ceil(np.log2(limit * 3 + 1)))))
    result = ExperimentResult(
        "abl-maclimit",
        f"MAC accumulation-limit sweep (PageRank on {dataset})",
        series=[
            Series("Time (s)", labels, times),
            Series("Energy (J)", labels, energies),
            Series("Required ADC bits", labels, adc_bits),
        ],
    )
    result.notes["paper design point"] = "limit 16 -> 6-bit ADC"
    return result


def tile_size_sweep(
    profile: str = "bench",
    datasets: Tuple[str, ...] = ("WV", "SD", "AZ"),
    tile_sizes: Tuple[int, ...] = (8, 16, 32),
) -> ExperimentResult:
    """GraphR dense-tile size vs redundant writes and PageRank time."""
    series = []
    for t in tile_sizes:
        ratios = []
        times = []
        for key in datasets:
            graph = load_dataset(key, profile)
            ratios.append(tile_profile(graph, t).redundant_write_ratio)
            config = GraphRConfig(tile_size=t)
            run = GraphREngine(graph, config=config).pagerank(iterations=3)
            times.append(run.stats.total_time_s)
        series.append(Series(f"Write ratio (tile {t})", list(datasets), ratios))
        series.append(Series(f"GraphR PR time (tile {t})", list(datasets), times))
    result = ExperimentResult(
        "abl-tile", "GraphR tile-size sweep", series
    )
    result.notes["observation"] = (
        "larger tiles amplify dense-mapping write redundancy on sparse "
        "sub-blocks"
    )
    return result


def crossbar_count_sweep(
    dataset: str = "SD",
    profile: str = "bench",
    counts: Tuple[int, ...] = (256, 512, 1024, 2048, 4096),
    iterations: int = 5,
) -> ExperimentResult:
    """GaaS-X parallel-crossbar scaling on PageRank."""
    graph = load_dataset(dataset, profile)
    labels = [str(c) for c in counts]
    times = []
    speedups = []
    for count in counts:
        config = ArchConfig(num_crossbars=count)
        run = GaaSXEngine(graph, config=config).pagerank(
            iterations=iterations
        )
        times.append(run.stats.total_time_s)
    base = times[labels.index("2048")] if "2048" in labels else times[-1]
    speedups = [base / t for t in times]
    result = ExperimentResult(
        "abl-xbar",
        f"Crossbar-count scaling (PageRank on {dataset})",
        series=[
            Series("Time (s)", labels, times),
            Series("Speedup vs 2048", labels, speedups),
        ],
    )
    result.notes["paper design point"] = "2048 parallel compute elements"
    return result


def residency_ablation(
    dataset: str = "SD",
    profile: str = "bench",
    iterations: int = 10,
) -> ExperimentResult:
    """Resident (in-place PIM storage) vs streaming GaaS-X.

    Quantifies DESIGN.md's residency-model decision: how much of the
    GaaS-X advantage comes from writing the sparse graph into the
    unified memory/compute arrays once, instead of re-streaming it
    every pass like a scratchpad accelerator would.
    """
    graph = load_dataset(dataset, profile)
    resident = GaaSXEngine(graph)
    streaming = GaaSXEngine(graph, streaming=True)
    labels = []
    time_ratio = []
    energy_ratio = []
    for algo in ("pagerank", "sssp"):
        if algo == "pagerank":
            a = resident.pagerank(iterations=iterations)
            b = streaming.pagerank(iterations=iterations)
        else:
            a = resident.sssp(0)
            b = streaming.sssp(0)
        labels.append(algo)
        time_ratio.append(b.stats.total_time_s / a.stats.total_time_s)
        energy_ratio.append(
            b.stats.total_energy_j / a.stats.total_energy_j
        )
    result = ExperimentResult(
        "abl-residency",
        f"Streaming-over-resident cost ratio ({dataset})",
        series=[
            Series("Time ratio", labels, time_ratio),
            Series("Energy ratio", labels, energy_ratio),
        ],
    )
    result.notes["reading"] = (
        ">1 means the in-place residency model is load-bearing for the "
        "paper's speedups"
    )
    return result


def variation_ablation(
    sigmas: Tuple[float, ...] = (0.02, 0.05, 0.1),
    row_counts: Tuple[int, ...] = (1, 4, 16, 64),
) -> ExperimentResult:
    """Analog device variation vs rows accumulated per MAC.

    Extension study: RMS relative output error of a selective MAC under
    log-normal conductance variation, as a function of how many rows
    one operation sums — showing the 16-row limit also bounds analog
    error accumulation.
    """
    from ..xbar.noise import mac_error_vs_rows

    series = []
    for sigma in sigmas:
        errors = [
            mac_error_vs_rows(sigma, rows) for rows in row_counts
        ]
        series.append(
            Series(
                f"RMS rel. error (sigma={sigma})",
                [str(r) for r in row_counts],
                errors,
            )
        )
    result = ExperimentResult(
        "abl-variation",
        "Selective-MAC error under ReRAM conductance variation",
        series,
    )
    result.notes["observation"] = (
        "per-output error stays near the per-device sigma regardless of "
        "row count (zero-mean variation averages out), so the 16-row "
        "limit is set by the ADC, not by noise"
    )
    return result


def interval_size_ablation(
    dataset: str = "WV",
    profile: str = "bench",
    interval_sizes: Tuple[int, ...] = (32, 128, 512, 2048),
    iterations: int = 3,
) -> ExperimentResult:
    """Shard interval size vs GaaS-X cost and hit-group shape.

    The interval size trades shard metadata and crossbar fragmentation
    against search-group concentration: small intervals scatter a hub's
    in-edges across many crossbars (more single-row MACs, more loaded
    crossbars), large intervals concentrate them (fewer searches,
    bigger hit groups). Reported: PageRank time/energy and the
    fraction of MAC ops accumulating one row (the Figure 13 statistic).
    """
    graph = load_dataset(dataset, profile)
    labels = [str(q) for q in interval_sizes]
    times = []
    energies = []
    one_row_frac = []
    for q in interval_sizes:
        engine = GaaSXEngine(graph, interval_size=q)
        run = engine.pagerank(iterations=iterations)
        times.append(run.stats.total_time_s)
        energies.append(run.stats.total_energy_j)
        hist = run.stats.events.mac_rows_hist
        total = hist.sum()
        one_row_frac.append(float(hist[1] / total) if total else 0.0)
    result = ExperimentResult(
        "abl-interval",
        f"Shard interval-size sweep (PageRank on {dataset})",
        series=[
            Series("Time (s)", labels, times),
            Series("Energy (J)", labels, energies),
            Series("Fraction 1-row MACs", labels, one_row_frac),
        ],
    )
    result.notes["default"] = "max(128, |V| / 64)"
    return result


def precision_ablation(
    value_bits: Tuple[int, ...] = (8, 12, 16, 20),
    num_vertices: int = 96,
    num_edges: int = 420,
    iterations: int = 3,
    seed: int = 5,
) -> ExperimentResult:
    """Fixed-point precision vs PageRank accuracy (design choice).

    The paper stores 16-bit values as eight 2-bit cells; this sweep
    runs the *quantized* array-level pipeline at several value widths
    and reports the worst-case relative rank error against the exact
    engine — quantifying what the 16-bit choice buys.
    """
    from ..core.micro import MicroGaaSX
    from ..graphs.generators import rmat

    graph = rmat(num_vertices, num_edges, seed=seed)
    exact, _ = MicroGaaSX(graph).pagerank(iterations=iterations)
    labels = [str(b) for b in value_bits]
    max_err = []
    cells = []
    for bits in value_bits:
        config = ArchConfig(value_bits=bits)
        quant, _ = MicroGaaSX(
            graph, config=config, quantized=True
        ).pagerank(iterations=iterations)
        err = np.abs(quant - exact) / np.maximum(np.abs(exact), 1e-12)
        max_err.append(float(err.max()))
        cells.append(float(config.bit_slices))
    result = ExperimentResult(
        "abl-precision",
        "Value precision vs PageRank error (quantized pipeline)",
        series=[
            Series("Max relative error", labels, max_err),
            Series("Cells per value", labels, cells),
        ],
    )
    result.notes["paper design point"] = "16-bit values (8 x 2-bit cells)"
    return result


def disk_bandwidth_ablation(
    dataset: str = "SD",
    profile: str = "bench",
    bandwidths_gbs: Tuple[float, ...] = (0.1, 0.5, 1.0, 3.0, 6.0),
    iterations: int = 10,
) -> ExperimentResult:
    """When does shard fetching become the loading bottleneck?

    The paper (and the accelerator literature it compares with)
    excludes host storage I/O; this sweep adds a disk model and finds
    the bandwidth below which GaaS-X's one-time load turns I/O-bound.
    """
    from ..storage.disk import DiskModel

    graph = load_dataset(dataset, profile)
    baseline = GaaSXEngine(graph).pagerank(iterations=iterations)
    labels = [f"{bw:g}" for bw in bandwidths_gbs]
    load_times = []
    total_ratio = []
    for bw in bandwidths_gbs:
        engine = GaaSXEngine(
            graph, disk=DiskModel(sequential_bandwidth_gbs=bw)
        )
        run = engine.pagerank(iterations=iterations)
        load_times.append(run.stats.load_time_s)
        total_ratio.append(
            run.stats.total_time_s / baseline.stats.total_time_s
        )
    result = ExperimentResult(
        "abl-disk",
        f"Shard-fetch bandwidth sweep (PageRank on {dataset})",
        series=[
            Series("Load time (s)", labels, load_times),
            Series("Total time vs no-I/O model", labels, total_ratio),
        ],
    )
    result.notes["reading"] = (
        "the paper's no-host-I/O assumption is benign once the load is "
        "amortized over iterations, but a slow disk makes the one-time "
        "load dominate"
    )
    return result


def locality_ablation(
    profile: str = "bench",
    datasets: Tuple[str, ...] = ("WV", "SD"),
) -> ExperimentResult:
    """Effect of vertex-id locality on the dense-mapping overhead.

    Compares the tile write-redundancy of the SNAP-like (clustered)
    stand-ins against the same graphs with randomly shuffled vertex
    ids — quantifying how much of GraphR's overhead is intrinsic
    sparsity vs id-space locality.
    """
    from ..graphs.coo import COOMatrix
    from ..graphs.graph import Graph

    rng = np.random.default_rng(7)
    clustered = []
    shuffled = []
    for key in datasets:
        graph = load_dataset(key, profile)
        clustered.append(tile_profile(graph, 16).redundant_write_ratio)
        perm = rng.permutation(graph.num_vertices)
        coo = COOMatrix(
            perm[graph.edges.rows],
            perm[graph.edges.cols],
            graph.edges.data,
            graph.edges.shape,
        )
        shuffled.append(
            tile_profile(Graph(coo, name=f"{key}-shuffled"), 16)
            .redundant_write_ratio
        )
    return ExperimentResult(
        "abl-locality",
        "Tile write redundancy: clustered vs shuffled vertex ids",
        series=[
            Series("Clustered (SNAP-like)", list(datasets), clustered),
            Series("Shuffled ids", list(datasets), shuffled),
        ],
    )
