"""Result containers and ASCII rendering for experiments.

Every experiment driver returns an :class:`ExperimentResult`: named
series of labelled values plus free-form notes (paper reference values,
geometric means). ``render()`` prints the same rows/series the paper's
figure reports, as text tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..errors import ConfigError


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; the paper's summary statistic for every figure."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ConfigError("geometric mean of an empty sequence")
    if np.any(arr <= 0):
        raise ConfigError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


@dataclass
class Series:
    """One labelled row/curve of a figure."""

    name: str
    labels: List[str]
    values: List[float]

    def __post_init__(self) -> None:
        if len(self.labels) != len(self.values):
            raise ConfigError("labels and values must align")

    @property
    def geomean(self) -> float:
        """Geometric mean over the series values."""
        return geometric_mean(self.values)


@dataclass
class ExperimentResult:
    """A regenerated table/figure: series plus notes."""

    experiment_id: str
    title: str
    series: List[Series] = field(default_factory=list)
    notes: Dict[str, str] = field(default_factory=dict)

    def series_by_name(self, name: str) -> Series:
        """Look up a series; raises if absent."""
        for s in self.series:
            if s.name == name:
                return s
        raise ConfigError(f"no series named {name!r} in {self.experiment_id}")

    def render(self) -> str:
        """ASCII rendering in the paper's rows/series layout."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.series:
            labels = self.series[0].labels
            name_w = max(len(s.name) for s in self.series) + 2
            aligned = [s for s in self.series if s.labels == labels]
            cell_w = max(
                [len(_fmt(v)) for s in aligned for v in s.values]
                + [len(l) for l in labels]
                + [8]
            )
            col_w = cell_w + 2
            header = " " * name_w + "".join(f"{l:>{col_w}}" for l in labels)
            lines.append(header)
            for s in self.series:
                if s.labels != labels:
                    lines.append(f"{s.name}:")
                    for l, v in zip(s.labels, s.values):
                        lines.append(f"    {l:<20} {_fmt(v):>12}")
                else:
                    row = f"{s.name:<{name_w}}" + "".join(
                        f"{_fmt(v):>{col_w}}" for v in s.values
                    )
                    lines.append(row)
        for key, value in self.notes.items():
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable representation (for tooling/CI diffing)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "series": [
                {
                    "name": s.name,
                    "labels": list(s.labels),
                    "values": [float(v) for v in s.values],
                }
                for s in self.series
            ],
            "notes": dict(self.notes),
        }

    def render_chart(self, width: int = 48, log_scale: bool = False) -> str:
        """Render every series as an ASCII bar chart (figure-style)."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for s in self.series:
            lines.append(bar_chart(s, width=width, log_scale=log_scale))
        for key, value in self.notes.items():
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)


def bar_chart(
    series: Series, width: int = 48, log_scale: bool = False
) -> str:
    """Horizontal ASCII bar chart of one series.

    ``log_scale`` plots bar lengths on log10 — the scale the paper's
    CPU/GPU comparison figures use.
    """
    values = np.asarray(series.values, dtype=np.float64)
    if values.size == 0:
        return f"{series.name}: (empty)"
    if log_scale:
        if np.any(values <= 0):
            raise ConfigError("log-scale chart requires positive values")
        magnitudes = np.log10(values)
        magnitudes = magnitudes - min(0.0, magnitudes.min())
    else:
        magnitudes = np.maximum(values, 0.0)
    top = magnitudes.max()
    lines = [f"{series.name}:"]
    label_w = max(len(l) for l in series.labels)
    for label, value, magnitude in zip(series.labels, values, magnitudes):
        length = int(round(width * magnitude / top)) if top > 0 else 0
        bar = "#" * max(length, 1 if value > 0 else 0)
        lines.append(f"  {label:<{label_w}} |{bar:<{width}} {_fmt(value)}")
    return "\n".join(lines)


def _fmt(value: float) -> str:
    """Compact numeric formatting for table cells."""
    if value == 0:
        return "0"
    if abs(value) >= 1e5 or abs(value) < 1e-3:
        return f"{value:.2e}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.2f}"
    return f"{value:.3f}"
