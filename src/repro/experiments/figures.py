"""Drivers regenerating each figure of the paper's evaluation.

Each function returns an :class:`ExperimentResult` whose series are the
same rows/curves the figure plots; ``notes`` carries our geometric
means next to the paper's published ones so EXPERIMENTS.md can quote
both.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..baselines import (
    CuMFModel,
    GAPBSModel,
    GraphChiModel,
    GraphREngine,
    GridGraphModel,
    GunrockModel,
    trace_cf,
)
from ..baselines.gram import GRAM_DATASETS, GRAMModel
from ..core.engine import GaaSXEngine
from ..graphs.datasets import FIGURE_ORDER, load_dataset
from ..graphs.stats import tile_profile
from .harness import ALGORITHMS, ComparisonMatrix, comparison_matrix
from .reporting import ExperimentResult, Series, geometric_mean

_ALGO_TITLES = {"pagerank": "PageRank", "bfs": "BFS", "sssp": "SSSP"}


def _matrix(profile: str, matrix: Optional[ComparisonMatrix]) -> ComparisonMatrix:
    return matrix if matrix is not None else comparison_matrix(profile)


def fig5(
    profile: str = "bench",
    datasets: Tuple[str, ...] = FIGURE_ORDER,
    tile_size: int = 16,
    matrix: Optional[ComparisonMatrix] = None,
) -> ExperimentResult:
    """Figure 5: redundant writes/computations, dense over sparse.

    Writes: cells a dense 16x16-tile mapping programs per graph load,
    normalized to one cell per edge (sparse mapping). Computations:
    cell-level MAC work GraphR performs per pass over the work GaaS-X
    performs, for PageRank and SSSP.
    """
    m = _matrix(profile, matrix)
    write_ratios = []
    pr_ratios = []
    sssp_ratios = []
    for key in datasets:
        graph = load_dataset(key, profile)
        write_ratios.append(
            tile_profile(graph, tile_size).redundant_write_ratio
        )
        pr = m.cell(key, "pagerank")
        pr_ratios.append(
            pr.graphr.events.mac_cell_ops / pr.gaasx.events.mac_cell_ops
        )
        ss = m.cell(key, "sssp")
        sssp_ratios.append(
            ss.graphr.events.mac_cell_ops / ss.gaasx.events.mac_cell_ops
        )
    labels = list(datasets)
    result = ExperimentResult(
        "fig5",
        "Redundant operations: dense mapping over sparse mapping",
        series=[
            Series("Writes", labels, write_ratios),
            Series("Computations (PageRank)", labels, pr_ratios),
            Series("Computations (SSSP)", labels, sssp_ratios),
        ],
    )
    result.notes["mean write ratio (paper ~34x)"] = (
        f"{np.mean(write_ratios):.1f}x"
    )
    result.notes["mean compute ratio (paper ~23x)"] = (
        f"{np.mean(pr_ratios + sssp_ratios):.1f}x"
    )
    return result


def fig11(
    profile: str = "bench",
    matrix: Optional[ComparisonMatrix] = None,
) -> ExperimentResult:
    """Figure 11: execution-time speedup over GraphR per dataset/algo."""
    m = _matrix(profile, matrix)
    series = []
    everything = []
    for algo in ALGORITHMS:
        cells = m.cells(algo)
        values = [c.speedup_vs_graphr for c in cells]
        everything.extend(values)
        series.append(Series(_ALGO_TITLES[algo], list(m.datasets), values))
    result = ExperimentResult(
        "fig11", "Speedup in execution time compared to GraphR", series
    )
    result.notes["geomean (paper 7.7x)"] = f"{geometric_mean(everything):.2f}x"
    return result


def fig12(
    profile: str = "bench",
    matrix: Optional[ComparisonMatrix] = None,
) -> ExperimentResult:
    """Figure 12: energy savings over GraphR per dataset/algo."""
    m = _matrix(profile, matrix)
    series = []
    everything = []
    for algo in ALGORITHMS:
        cells = m.cells(algo)
        values = [c.energy_savings_vs_graphr for c in cells]
        everything.extend(values)
        series.append(Series(_ALGO_TITLES[algo], list(m.datasets), values))
    result = ExperimentResult(
        "fig12", "Energy savings compared to GraphR", series
    )
    result.notes["geomean (paper 22x)"] = f"{geometric_mean(everything):.2f}x"
    return result


def fig13(
    profile: str = "bench",
    matrix: Optional[ComparisonMatrix] = None,
) -> ExperimentResult:
    """Figure 13: CDF of rows accumulated per GaaS-X MAC operation."""
    m = _matrix(profile, matrix)
    hist = np.zeros(17, dtype=np.int64)
    for cell in m.all_cells():
        h = cell.gaasx.events.mac_rows_hist
        k = min(h.size, hist.size)
        hist[:k] += h[:k]
    total = hist.sum()
    cdf = np.cumsum(hist) / total if total else np.zeros(17)
    labels = [str(i) for i in range(1, 17)]
    result = ExperimentResult(
        "fig13",
        "Cumulative distribution of rows accumulated per MAC operation",
        series=[Series("Cumulative fraction", labels, list(cdf[1:]))],
    )
    frac_one = hist[1] / total if total else 0.0
    frac_gt6 = hist[7:].sum() / total if total else 0.0
    result.notes["fraction accumulating 1 row (paper ~75%)"] = f"{frac_one:.0%}"
    result.notes["fraction accumulating >6 rows (paper ~3%)"] = f"{frac_gt6:.0%}"
    return result


def fig14(
    profile: str = "bench",
    matrix: Optional[ComparisonMatrix] = None,
) -> ExperimentResult:
    """Figure 14: speedup and energy savings vs GRAM (AZ, WV, LJ only)."""
    m = _matrix(profile, matrix)
    gram = GRAMModel()
    speedups = []
    energies = []
    labels = []
    for algo in ALGORITHMS:
        sp = []
        en = []
        for key in GRAM_DATASETS:
            cell = m.cell(key, algo)
            modelled = gram.from_graphr(algo, cell.graphr)
            sp.append(modelled.time_s / cell.gaasx.total_time_s)
            en.append(modelled.energy_j / cell.gaasx.total_energy_j)
        labels.append(_ALGO_TITLES[algo])
        speedups.append(geometric_mean(sp))
        energies.append(geometric_mean(en))
    result = ExperimentResult(
        "fig14",
        "Speedup and energy savings compared to GRAM",
        series=[
            Series("Execution time", labels, speedups),
            Series("Energy", labels, energies),
        ],
    )
    result.notes["geomean speedup (paper 2.5x)"] = (
        f"{geometric_mean(speedups):.2f}x"
    )
    result.notes["geomean energy (paper 5.2x)"] = (
        f"{geometric_mean(energies):.2f}x"
    )
    return result


def _software_comparison(
    metric: str,
    profile: str,
    matrix: Optional[ComparisonMatrix],
) -> ExperimentResult:
    m = _matrix(profile, matrix)
    gpu_model = GunrockModel()
    cpu_model = GridGraphModel()
    series = []
    gpu_all = []
    cpu_all = []
    for algo in ALGORITHMS:
        gpu_vals = []
        cpu_vals = []
        for cell in m.cells(algo):
            gpu = gpu_model.run(cell.trace)
            cpu = cpu_model.run(cell.trace)
            if metric == "time":
                gpu_vals.append(gpu.time_s / cell.gaasx.total_time_s)
                cpu_vals.append(cpu.time_s / cell.gaasx.total_time_s)
            else:
                gpu_vals.append(gpu.energy_j / cell.gaasx.total_energy_j)
                cpu_vals.append(cpu.energy_j / cell.gaasx.total_energy_j)
        gpu_all.extend(gpu_vals)
        cpu_all.extend(cpu_vals)
        series.append(
            Series(f"Gunrock (GPU) {_ALGO_TITLES[algo]}", list(m.datasets), gpu_vals)
        )
        series.append(
            Series(f"GridGraph (CPU) {_ALGO_TITLES[algo]}", list(m.datasets), cpu_vals)
        )
    if metric == "time":
        result = ExperimentResult(
            "fig15", "Speedup in execution time compared to CPU and GPU", series
        )
        result.notes["Gunrock geomean (paper 12.3x)"] = (
            f"{geometric_mean(gpu_all):.1f}x"
        )
        result.notes["GridGraph geomean (paper 805x)"] = (
            f"{geometric_mean(cpu_all):.0f}x"
        )
    else:
        result = ExperimentResult(
            "fig16", "Energy savings compared to CPU and GPU", series
        )
        result.notes["Gunrock geomean (paper 252x)"] = (
            f"{geometric_mean(gpu_all):.0f}x"
        )
        result.notes["GridGraph geomean (paper 5357x)"] = (
            f"{geometric_mean(cpu_all):.0f}x"
        )
    return result


def fig15(
    profile: str = "bench",
    matrix: Optional[ComparisonMatrix] = None,
) -> ExperimentResult:
    """Figure 15: speedup vs Gunrock (GPU) and GridGraph (CPU)."""
    return _software_comparison("time", profile, matrix)


def fig16(
    profile: str = "bench",
    matrix: Optional[ComparisonMatrix] = None,
) -> ExperimentResult:
    """Figure 16: energy savings vs Gunrock (GPU) and GridGraph (CPU)."""
    return _software_comparison("energy", profile, matrix)


def gapbs_comparison(
    profile: str = "bench",
    matrix: Optional[ComparisonMatrix] = None,
) -> ExperimentResult:
    """Section V-B text: geomean speedup/energy vs GAPBS."""
    m = _matrix(profile, matrix)
    model = GAPBSModel()
    sp_series = []
    en_series = []
    sp_all = []
    en_all = []
    for algo in ALGORITHMS:
        sp = []
        en = []
        for cell in m.cells(algo):
            r = model.run(cell.trace)
            sp.append(r.time_s / cell.gaasx.total_time_s)
            en.append(r.energy_j / cell.gaasx.total_energy_j)
        sp_all.extend(sp)
        en_all.extend(en)
        sp_series.append(Series(f"Speedup {_ALGO_TITLES[algo]}", list(m.datasets), sp))
        en_series.append(Series(f"Energy {_ALGO_TITLES[algo]}", list(m.datasets), en))
    result = ExperimentResult(
        "gapbs", "Comparison with GAPBS", sp_series + en_series
    )
    result.notes["geomean speedup (paper ~155x)"] = (
        f"{geometric_mean(sp_all):.0f}x"
    )
    result.notes["geomean energy (paper ~1500x)"] = (
        f"{geometric_mean(en_all):.0f}x"
    )
    return result


def fig17(
    profile: str = "bench",
    num_features: int = 32,
    epochs: int = 3,
) -> ExperimentResult:
    """Figure 17: collaborative filtering vs GraphChi, cuMF, GraphR."""
    bipartite = load_dataset("NF", profile)
    gaasx = GaaSXEngine(bipartite).collaborative_filtering(
        num_features=num_features, epochs=epochs
    )
    graphr = GraphREngine(bipartite).collaborative_filtering(
        num_features=num_features, epochs=epochs
    )
    trace = trace_cf(bipartite, epochs=epochs)
    chi = GraphChiModel().run(trace, num_features=num_features)
    cumf = CuMFModel().run(trace, num_features=num_features)
    labels = ["GraphChi", "cuMF", "GraphR"]
    speedups = [
        chi.time_s / gaasx.stats.total_time_s,
        cumf.time_s / gaasx.stats.total_time_s,
        graphr.stats.total_time_s / gaasx.stats.total_time_s,
    ]
    energies = [
        chi.energy_j / gaasx.stats.total_energy_j,
        cumf.energy_j / gaasx.stats.total_energy_j,
        graphr.stats.total_energy_j / gaasx.stats.total_energy_j,
    ]
    result = ExperimentResult(
        "fig17",
        "Collaborative filtering: speedup and energy vs CPU, GPU, GraphR",
        series=[
            Series("Execution time", labels, speedups),
            Series("Energy", labels, energies),
        ],
    )
    result.notes["paper speedups"] = "GraphChi 196x, cuMF 2x, GraphR 4x"
    result.notes["paper energy"] = "GraphChi 2962x, cuMF 86x, GraphR 24x"
    return result
