"""Shared run matrix: one GaaS-X + GraphR + trace evaluation per cell.

Figures 11/12/13/14/15/16 all consume the same (dataset x algorithm)
runs; this module computes each cell once and caches the matrix per
(profile, iterations, source) so a benchmark session never repeats a
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Tuple

from ..baselines import (
    GraphREngine,
    trace_pagerank,
    trace_traversal,
)
from ..baselines.workload import WorkloadTrace
from ..core.engine import GaaSXEngine
from ..core.stats import RunStats
from ..errors import ConfigError
from ..graphs.datasets import FIGURE_ORDER, load_dataset

ALGORITHMS = ("pagerank", "bfs", "sssp")

#: PageRank iteration count used throughout the evaluation harness.
DEFAULT_ITERATIONS = 10

#: Traversal source vertex. Vertex 0 is the highest-degree vertex under
#: the degree-sorted relabeling, giving every dataset a well-connected
#: root (the paper does not state its choice of roots).
DEFAULT_SOURCE = 0


@dataclass
class CellResult:
    """One (dataset, algorithm) evaluation."""

    dataset: str
    algorithm: str
    gaasx: RunStats
    graphr: RunStats
    trace: WorkloadTrace

    @property
    def speedup_vs_graphr(self) -> float:
        """GraphR time over GaaS-X time."""
        return self.graphr.total_time_s / self.gaasx.total_time_s

    @property
    def energy_savings_vs_graphr(self) -> float:
        """GraphR energy over GaaS-X energy."""
        return self.graphr.total_energy_j / self.gaasx.total_energy_j


class ComparisonMatrix:
    """Lazy (dataset x algorithm) grid of accelerator evaluations."""

    def __init__(
        self,
        profile: str = "bench",
        datasets: Tuple[str, ...] = FIGURE_ORDER,
        iterations: int = DEFAULT_ITERATIONS,
        source: int = DEFAULT_SOURCE,
    ) -> None:
        self.profile = profile
        self.datasets = tuple(datasets)
        self.iterations = iterations
        self.source = source
        self._cells: Dict[Tuple[str, str], CellResult] = {}
        self._engines: Dict[str, Tuple[GaaSXEngine, GraphREngine]] = {}

    def _engines_for(self, dataset: str) -> Tuple[GaaSXEngine, GraphREngine]:
        if dataset not in self._engines:
            graph = load_dataset(dataset, self.profile)
            self._engines[dataset] = (
                GaaSXEngine(graph),
                GraphREngine(graph),
            )
        return self._engines[dataset]

    def cell(self, dataset: str, algorithm: str) -> CellResult:
        """Evaluate (and cache) one dataset/algorithm pair."""
        if algorithm not in ALGORITHMS:
            raise ConfigError(f"unknown algorithm {algorithm!r}")
        key = (dataset, algorithm)
        if key in self._cells:
            return self._cells[key]
        gaasx_engine, graphr_engine = self._engines_for(dataset)
        graph = gaasx_engine.graph
        if algorithm == "pagerank":
            a = gaasx_engine.pagerank(iterations=self.iterations)
            b = graphr_engine.pagerank(iterations=self.iterations)
            trace = trace_pagerank(graph, self.iterations)
        elif algorithm == "bfs":
            a = gaasx_engine.bfs(self.source)
            b = graphr_engine.bfs(self.source)
            trace = trace_traversal(graph, self.source, weighted=False)
        else:
            a = gaasx_engine.sssp(self.source)
            b = graphr_engine.sssp(self.source)
            trace = trace_traversal(graph, self.source, weighted=True)
        result = CellResult(
            dataset=dataset,
            algorithm=algorithm,
            gaasx=a.stats,
            graphr=b.stats,
            trace=trace,
        )
        self._cells[key] = result
        return result

    def cells(self, algorithm: str) -> Tuple[CellResult, ...]:
        """All datasets for one algorithm, in figure order."""
        return tuple(self.cell(d, algorithm) for d in self.datasets)

    def all_cells(self) -> Tuple[CellResult, ...]:
        """Every (dataset, algorithm) cell, algorithms outermost."""
        return tuple(
            self.cell(d, a) for a in ALGORITHMS for d in self.datasets
        )


@lru_cache(maxsize=8)
def comparison_matrix(
    profile: str = "bench",
    datasets: Optional[Tuple[str, ...]] = None,
    iterations: int = DEFAULT_ITERATIONS,
) -> ComparisonMatrix:
    """Process-wide cached matrix (figures within one session share it)."""
    if datasets is None:
        datasets = FIGURE_ORDER
    return ComparisonMatrix(
        profile=profile, datasets=datasets, iterations=iterations
    )
