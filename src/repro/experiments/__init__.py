"""Experiment harness: regenerates every table and figure of the paper."""

from .executor import ExecutionReport, ManifestEntry, RunManifest, execute
from .harness import CellResult, ComparisonMatrix, comparison_matrix
from .registry import EXPERIMENTS, ExperimentSpec
from .reporting import ExperimentResult, Series, geometric_mean
from .runner import RunRequest, RunSession, persist_result

__all__ = [
    "ComparisonMatrix",
    "CellResult",
    "comparison_matrix",
    "EXPERIMENTS",
    "ExperimentSpec",
    "ExperimentResult",
    "ExecutionReport",
    "ManifestEntry",
    "RunManifest",
    "RunRequest",
    "RunSession",
    "Series",
    "execute",
    "geometric_mean",
    "persist_result",
]
