"""Experiment harness: regenerates every table and figure of the paper."""

from .harness import CellResult, ComparisonMatrix, comparison_matrix
from .registry import EXPERIMENTS, ExperimentSpec
from .reporting import ExperimentResult, Series, geometric_mean
from .runner import run_experiment

__all__ = [
    "ComparisonMatrix",
    "CellResult",
    "comparison_matrix",
    "EXPERIMENTS",
    "ExperimentSpec",
    "ExperimentResult",
    "Series",
    "geometric_mean",
    "run_experiment",
]
