"""Drivers regenerating the paper's tables."""

from __future__ import annotations

from typing import Tuple

from ..config import ArchConfig, TABLE_I_TOTAL_AREA_MM2, TABLE_I_TOTAL_POWER_W
from ..energy.report import component_rows, totals
from ..graphs.datasets import DATASETS
from ..graphs.stats import summarize
from ..graphs.datasets import load_dataset
from .reporting import ExperimentResult, Series


def table1(config: ArchConfig | None = None) -> ExperimentResult:
    """Table I: component configuration, area and power."""
    config = config if config is not None else ArchConfig()
    rows = component_rows(config)
    area, power = totals(config)
    result = ExperimentResult(
        "table1", "GaaS-X architecture parameters",
        series=[
            Series("Area (mm^2)", [r[0] for r in rows], [r[2] for r in rows]),
            Series("Power (mW)", [r[0] for r in rows], [r[3] for r in rows]),
        ],
    )
    result.notes["total area"] = (
        f"{area:.2f} mm^2 (paper {TABLE_I_TOTAL_AREA_MM2:.2f})"
    )
    result.notes["total power"] = (
        f"{power:.2f} W (paper {TABLE_I_TOTAL_POWER_W:.2f})"
    )
    return result


def table2(
    profile: str = "bench",
    datasets: Tuple[str, ...] = ("WV", "SD", "AZ", "WG", "LJ", "OR", "NF"),
) -> ExperimentResult:
    """Table II: dataset characteristics (synthetic stand-ins).

    Reports both the generated size at the selected profile and the
    paper's published full-scale size, with the scale divisor applied.
    """
    labels = []
    vertices = []
    edges = []
    paper_vertices = []
    paper_edges = []
    for key in datasets:
        spec = DATASETS[key]
        data = load_dataset(key, profile)
        labels.append(key)
        if spec.bipartite:
            vertices.append(float(data.num_users + data.num_items))
            edges.append(float(data.num_ratings))
            paper_vertices.append(float(spec.vertices + spec.items))
        else:
            vertices.append(float(data.num_vertices))
            edges.append(float(data.num_edges))
            paper_vertices.append(float(spec.vertices))
        paper_edges.append(float(spec.edges))
    result = ExperimentResult(
        "table2", f"Graph datasets and characteristics (profile={profile})",
        series=[
            Series("Vertices", labels, vertices),
            Series("Edges", labels, edges),
            Series("Paper vertices", labels, paper_vertices),
            Series("Paper edges", labels, paper_edges),
        ],
    )
    result.notes["note"] = (
        "synthetic R-MAT / Zipf-bipartite stand-ins; see DESIGN.md "
        "substitutions"
    )
    return result


def dataset_structure(profile: str = "bench") -> ExperimentResult:
    """Supplementary: structural summaries of each stand-in graph."""
    labels = []
    skews = []
    max_deg = []
    density = []
    for key in ("WV", "SD", "AZ", "WG", "LJ", "OR"):
        graph = load_dataset(key, profile)
        info = summarize(graph)
        labels.append(key)
        skews.append(info["out_degree_skew"])
        max_deg.append(float(info["max_out_degree"]))
        density.append(info["density"])
    return ExperimentResult(
        "dataset-structure",
        "Structural properties of the synthetic stand-ins",
        series=[
            Series("Out-degree skew (max/mean)", labels, skews),
            Series("Max out-degree", labels, max_deg),
            Series("Adjacency density", labels, density),
        ],
    )
