"""Registry mapping experiment ids to their drivers.

The ids follow DESIGN.md's per-experiment index; ``run_experiment``
dispatches through this table, and the benchmark suite contains one
target per entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from ..errors import ConfigError
from . import ablations, extensions, figures, tables
from .reporting import ExperimentResult


@dataclass(frozen=True)
class ExperimentSpec:
    """One regenerable paper artifact."""

    experiment_id: str
    paper_artifact: str
    description: str
    driver: Callable[..., ExperimentResult]


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec(
            "table1", "Table I",
            "Architecture parameters: component area and power",
            lambda **kw: tables.table1(),
        ),
        ExperimentSpec(
            "table2", "Table II",
            "Graph datasets and characteristics",
            tables.table2,
        ),
        ExperimentSpec(
            "fig5", "Figure 5",
            "Redundant writes/computations of dense vs sparse mapping",
            figures.fig5,
        ),
        ExperimentSpec(
            "fig11", "Figure 11",
            "Speedup in execution time compared to GraphR",
            figures.fig11,
        ),
        ExperimentSpec(
            "fig12", "Figure 12",
            "Energy savings compared to GraphR",
            figures.fig12,
        ),
        ExperimentSpec(
            "fig13", "Figure 13",
            "CDF of rows accumulated per MAC operation",
            figures.fig13,
        ),
        ExperimentSpec(
            "fig14", "Figure 14",
            "Speedup and energy savings compared to GRAM",
            figures.fig14,
        ),
        ExperimentSpec(
            "fig15", "Figure 15",
            "Speedup compared to CPU (GridGraph) and GPU (Gunrock)",
            figures.fig15,
        ),
        ExperimentSpec(
            "fig16", "Figure 16",
            "Energy savings compared to CPU and GPU",
            figures.fig16,
        ),
        ExperimentSpec(
            "gapbs", "Section V-B text",
            "Speedup and energy savings compared to GAPBS",
            figures.gapbs_comparison,
        ),
        ExperimentSpec(
            "fig17", "Figure 17",
            "Collaborative filtering vs GraphChi, cuMF and GraphR",
            figures.fig17,
        ),
        ExperimentSpec(
            "abl-maclimit", "Ablation",
            "MAC accumulation-limit sweep",
            ablations.mac_limit_sweep,
        ),
        ExperimentSpec(
            "abl-tile", "Ablation",
            "GraphR tile-size sweep",
            ablations.tile_size_sweep,
        ),
        ExperimentSpec(
            "abl-xbar", "Ablation",
            "Crossbar-count scaling",
            ablations.crossbar_count_sweep,
        ),
        ExperimentSpec(
            "abl-locality", "Ablation",
            "Vertex-id locality vs dense-mapping overhead",
            ablations.locality_ablation,
        ),
        ExperimentSpec(
            "abl-residency", "Ablation",
            "Resident vs streaming GaaS-X storage model",
            ablations.residency_ablation,
        ),
        ExperimentSpec(
            "abl-interval", "Ablation",
            "Shard interval size vs cost and hit-group shape",
            ablations.interval_size_ablation,
        ),
        ExperimentSpec(
            "abl-precision", "Ablation",
            "Fixed-point value precision vs accuracy",
            # Device/pipeline study on a fixed synthetic graph.
            lambda profile="bench", **kw: ablations.precision_ablation(**kw),
        ),
        ExperimentSpec(
            "abl-disk", "Ablation",
            "Shard-fetch bandwidth vs load time",
            ablations.disk_bandwidth_ablation,
        ),
        ExperimentSpec(
            "abl-variation", "Ablation",
            "Analog device variation vs rows per MAC",
            # Pure device-model study; dataset profile does not apply.
            lambda profile="bench", **kw: ablations.variation_ablation(**kw),
        ),
        ExperimentSpec(
            "ext-wcc", "Extension",
            "Weakly connected components kernel characterization",
            extensions.wcc_characterization,
        ),
        ExperimentSpec(
            "ext-gnn", "Extension",
            "GCN forward pass (the paper's deferred workload)",
            extensions.gnn_characterization,
        ),
        ExperimentSpec(
            "ext-energy", "Extension",
            "Per-component energy breakdown of each kernel",
            extensions.energy_breakdown,
        ),
        ExperimentSpec(
            "ext-scaling", "Extension",
            "Accelerator advantage vs graph scale",
            # Synthetic size sweep; dataset profile does not apply.
            lambda profile="bench", **kw: extensions.scaling_study(**kw),
        ),
    )
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment spec; raises on unknown ids."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(EXPERIMENTS)}"
        ) from None
