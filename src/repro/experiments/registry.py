"""Registry mapping experiment ids to their drivers.

The ids follow DESIGN.md's per-experiment index; the runner and the
parallel executor dispatch through this table, and the benchmark suite
contains one target per entry.

Each :class:`ExperimentSpec` declares what its driver needs:

* ``accepts_profile`` — whether the driver takes the dataset-scale
  ``profile`` keyword. Pure device-model studies (``table1``,
  ``abl-variation``, ``abl-precision``, ``ext-scaling``) do not; the
  runner uses this flag instead of a hard-coded id list.
* ``datasets`` — the Table II dataset keys the driver loads at its
  defaults. Experiments with equal dataset needs share partition grids
  and crossbar layouts, so the executor groups them onto the same
  worker where the in-process cache serves all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..errors import ConfigError
from ..graphs.datasets import FIGURE_ORDER
from . import ablations, extensions, figures, tables
from .reporting import ExperimentResult

#: Datasets behind the shared (dataset x algorithm) comparison matrix.
_MATRIX_DATASETS: Tuple[str, ...] = FIGURE_ORDER


@dataclass(frozen=True)
class ExperimentSpec:
    """One regenerable paper artifact."""

    experiment_id: str
    paper_artifact: str
    description: str
    driver: Callable[..., ExperimentResult]
    #: Whether the driver accepts the ``profile`` keyword.
    accepts_profile: bool = True
    #: Dataset keys the driver loads at its default arguments (the
    #: executor's cache-affinity hint; empty for synthetic-only studies).
    datasets: Tuple[str, ...] = ()

    @property
    def cache_group(self) -> Tuple[str, ...]:
        """Grouping key: experiments sharing it reuse cached grids and
        layouts, so the executor schedules them on one worker."""
        return self.datasets

    def profile_kwargs(self, profile: str) -> Dict[str, str]:
        """The profile keyword to pass the driver, if it takes one."""
        return {"profile": profile} if self.accepts_profile else {}


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec(
            "table1", "Table I",
            "Architecture parameters: component area and power",
            tables.table1,
            accepts_profile=False,
        ),
        ExperimentSpec(
            "table2", "Table II",
            "Graph datasets and characteristics",
            tables.table2,
            datasets=("WV", "SD", "AZ", "WG", "LJ", "OR", "NF"),
        ),
        ExperimentSpec(
            "fig5", "Figure 5",
            "Redundant writes/computations of dense vs sparse mapping",
            figures.fig5,
            datasets=_MATRIX_DATASETS,
        ),
        ExperimentSpec(
            "fig11", "Figure 11",
            "Speedup in execution time compared to GraphR",
            figures.fig11,
            datasets=_MATRIX_DATASETS,
        ),
        ExperimentSpec(
            "fig12", "Figure 12",
            "Energy savings compared to GraphR",
            figures.fig12,
            datasets=_MATRIX_DATASETS,
        ),
        ExperimentSpec(
            "fig13", "Figure 13",
            "CDF of rows accumulated per MAC operation",
            figures.fig13,
            datasets=_MATRIX_DATASETS,
        ),
        ExperimentSpec(
            "fig14", "Figure 14",
            "Speedup and energy savings compared to GRAM",
            figures.fig14,
            datasets=("AZ", "WV", "LJ"),
        ),
        ExperimentSpec(
            "fig15", "Figure 15",
            "Speedup compared to CPU (GridGraph) and GPU (Gunrock)",
            figures.fig15,
            datasets=_MATRIX_DATASETS,
        ),
        ExperimentSpec(
            "fig16", "Figure 16",
            "Energy savings compared to CPU and GPU",
            figures.fig16,
            datasets=_MATRIX_DATASETS,
        ),
        ExperimentSpec(
            "gapbs", "Section V-B text",
            "Speedup and energy savings compared to GAPBS",
            figures.gapbs_comparison,
            datasets=_MATRIX_DATASETS,
        ),
        ExperimentSpec(
            "fig17", "Figure 17",
            "Collaborative filtering vs GraphChi, cuMF and GraphR",
            figures.fig17,
            datasets=("NF",),
        ),
        ExperimentSpec(
            "abl-maclimit", "Ablation",
            "MAC accumulation-limit sweep",
            ablations.mac_limit_sweep,
            datasets=("WV",),
        ),
        ExperimentSpec(
            "abl-tile", "Ablation",
            "GraphR tile-size sweep",
            ablations.tile_size_sweep,
            datasets=("WV", "SD", "AZ"),
        ),
        ExperimentSpec(
            "abl-xbar", "Ablation",
            "Crossbar-count scaling",
            ablations.crossbar_count_sweep,
            datasets=("SD",),
        ),
        ExperimentSpec(
            "abl-locality", "Ablation",
            "Vertex-id locality vs dense-mapping overhead",
            ablations.locality_ablation,
            datasets=("WV", "SD"),
        ),
        ExperimentSpec(
            "abl-residency", "Ablation",
            "Resident vs streaming GaaS-X storage model",
            ablations.residency_ablation,
            datasets=("SD",),
        ),
        ExperimentSpec(
            "abl-interval", "Ablation",
            "Shard interval size vs cost and hit-group shape",
            ablations.interval_size_ablation,
            datasets=("WV",),
        ),
        ExperimentSpec(
            "abl-precision", "Ablation",
            "Fixed-point value precision vs accuracy",
            # Device/pipeline study on a fixed synthetic graph.
            ablations.precision_ablation,
            accepts_profile=False,
        ),
        ExperimentSpec(
            "abl-disk", "Ablation",
            "Shard-fetch bandwidth vs load time",
            ablations.disk_bandwidth_ablation,
            datasets=("SD",),
        ),
        ExperimentSpec(
            "abl-variation", "Ablation",
            "Analog device variation vs rows per MAC",
            # Pure device-model study; dataset profile does not apply.
            ablations.variation_ablation,
            accepts_profile=False,
        ),
        ExperimentSpec(
            "ext-wcc", "Extension",
            "Weakly connected components kernel characterization",
            extensions.wcc_characterization,
            datasets=("WV", "SD", "AZ"),
        ),
        ExperimentSpec(
            "ext-gnn", "Extension",
            "GCN forward pass (the paper's deferred workload)",
            extensions.gnn_characterization,
            datasets=("WV",),
        ),
        ExperimentSpec(
            "ext-energy", "Extension",
            "Per-component energy breakdown of each kernel",
            extensions.energy_breakdown,
            datasets=("SD",),
        ),
        ExperimentSpec(
            "ext-scaling", "Extension",
            "Accelerator advantage vs graph scale",
            # Synthetic size sweep; dataset profile does not apply.
            extensions.scaling_study,
            accepts_profile=False,
        ),
    )
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment spec; raises on unknown ids."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(EXPERIMENTS)}"
        ) from None
