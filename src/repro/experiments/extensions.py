"""Extension experiments: kernels beyond the paper's evaluation.

The paper names graph neural networks as the workload class it defers
("these emerging algorithms can be mapped to GaaS-X ... we refrain from
this analysis", Section V-B) and positions the architecture as
versatile across the SpMV family. These drivers characterize the two
extension kernels this reproduction adds — WCC and GCN forward
inference — on the standard datasets.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.engine import GaaSXEngine
from ..graphs.datasets import load_dataset
from .reporting import ExperimentResult, Series


def wcc_characterization(
    profile: str = "bench",
    datasets: Tuple[str, ...] = ("WV", "SD", "AZ"),
) -> ExperimentResult:
    """WCC on GaaS-X: components found, supersteps, modelled cost."""
    from ..baselines.cpu import GAPBSModel
    from ..baselines.workload import trace_wcc

    labels = []
    components = []
    supersteps = []
    times = []
    energies = []
    vs_gapbs = []
    gapbs = GAPBSModel()
    for key in datasets:
        graph = load_dataset(key, profile)
        result = GaaSXEngine(graph).wcc()
        labels.append(key)
        components.append(float(result.num_components))
        supersteps.append(float(result.supersteps))
        times.append(result.stats.total_time_s)
        energies.append(result.stats.total_energy_j)
        cc = gapbs.run(trace_wcc(graph))
        vs_gapbs.append(cc.time_s / result.stats.total_time_s)
    out = ExperimentResult(
        "ext-wcc",
        "Weakly connected components on GaaS-X (extension kernel)",
        series=[
            Series("Components", labels, components),
            Series("Supersteps", labels, supersteps),
            Series("Time (s)", labels, times),
            Series("Energy (J)", labels, energies),
            Series("Speedup vs GAPBS CC", labels, vs_gapbs),
        ],
    )
    out.notes["note"] = (
        "both CAM fields are searched per superstep, so no transposed "
        "graph copy is needed"
    )
    return out


def scaling_study(
    sizes: Tuple[Tuple[int, int], ...] = (
        (4_000, 32_000),
        (16_000, 128_000),
        (64_000, 512_000),
        (256_000, 2_048_000),
    ),
    iterations: int = 5,
    seed: int = 41,
) -> ExperimentResult:
    """GaaS-X-over-GraphR advantage as the graph grows.

    Sweeps R-MAT graphs of increasing size (fixed mean degree 8) and
    reports the PageRank speedup and energy ratio at each scale —
    checking that the sparse-mapping advantage is not an artifact of
    one dataset size.
    """
    from ..baselines.graphr import GraphREngine
    from ..core.cache import get_cache
    from ..graphs.generators import degree_sorted_relabel, rmat

    labels = []
    speedups = []
    energy_ratios = []
    gaasx_times = []
    for n, e in sizes:
        graph = get_cache().cached_graph(
            f"rmat-degsorted|{n}|{e}|0.8|0.08|0.08|{seed}",
            lambda: degree_sorted_relabel(
                rmat(n, e, a=0.8, b=0.08, c=0.08, seed=seed)
            ),
        )
        a = GaaSXEngine(graph).pagerank(iterations=iterations)
        b = GraphREngine(graph).pagerank(iterations=iterations)
        labels.append(f"{e // 1000}k")
        speedups.append(b.stats.total_time_s / a.stats.total_time_s)
        energy_ratios.append(
            b.stats.total_energy_j / a.stats.total_energy_j
        )
        gaasx_times.append(a.stats.total_time_s)
    out = ExperimentResult(
        "ext-scaling",
        "PageRank advantage vs graph scale (edges, R-MAT deg 8)",
        series=[
            Series("Speedup vs GraphR", labels, speedups),
            Series("Energy ratio vs GraphR", labels, energy_ratios),
            Series("GaaS-X time (s)", labels, gaasx_times),
        ],
    )
    out.notes["note"] = (
        "the advantage persists (and grows with batch amortization) "
        "across two orders of magnitude of graph size"
    )
    return out


def energy_breakdown(
    dataset: str = "SD",
    profile: str = "bench",
    iterations: int = 10,
) -> ExperimentResult:
    """Where GaaS-X's energy goes, per kernel.

    Supplements Figure 12's aggregate savings with the per-category
    split (CAM searches, MAC ops, programming, converters, SFU,
    buffers, static) — the data behind the paper's Section V-B claim
    that "the additional energy spent in CAM operations is less than
    the energy consumed in extra writes and unnecessary computations".
    """
    graph = load_dataset(dataset, profile)
    engine = GaaSXEngine(graph)
    runs = {
        "PageRank": engine.pagerank(iterations=iterations),
        "BFS": engine.bfs(0),
        "SSSP": engine.sssp(0),
        "WCC": engine.wcc(),
    }
    categories = ["cam", "mac", "write", "adc", "dac", "sfu", "buffer",
                  "static"]
    series = []
    for name, run in runs.items():
        breakdown = run.stats.energy.as_dict()
        total = run.stats.energy.total_j
        series.append(
            Series(
                name, categories,
                [breakdown[c] / total for c in categories],
            )
        )
    out = ExperimentResult(
        "ext-energy",
        f"GaaS-X energy breakdown by component ({dataset})",
        series,
    )
    cam_fracs = [s.values[0] for s in series]
    out.notes["max CAM share"] = f"{max(cam_fracs):.1%}"
    return out


def gnn_characterization(
    profile: str = "bench",
    dataset: str = "WV",
    feature_widths: Tuple[int, ...] = (16, 32, 64, 128),
    seed: int = 0,
) -> ExperimentResult:
    """Two-layer GCN forward cost vs feature width."""
    graph = load_dataset(dataset, profile)
    rng = np.random.default_rng(seed)
    labels = [str(f) for f in feature_widths]
    times = []
    energies = []
    macs = []
    engine = GaaSXEngine(graph)
    for width in feature_widths:
        features = rng.uniform(0, 1, size=(graph.num_vertices, width))
        weights = [
            rng.normal(size=(width, width)) * (1.0 / np.sqrt(width)),
            rng.normal(size=(width, width // 2)) * (1.0 / np.sqrt(width)),
        ]
        result = engine.gnn_forward(features, weights)
        times.append(result.stats.total_time_s)
        energies.append(result.stats.total_energy_j)
        macs.append(float(result.stats.events.mac_ops))
    out = ExperimentResult(
        "ext-gnn",
        f"Two-layer GCN forward pass on GaaS-X ({dataset})",
        series=[
            Series("Time (s)", labels, times),
            Series("Energy (J)", labels, energies),
            Series("MAC ops", labels, macs),
        ],
    )
    out.notes["note"] = (
        "the paper's deferred workload: aggregation reuses the CF "
        "gather dataflow, the dense transform is weight-stationary"
    )
    return out
