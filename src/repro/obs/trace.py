"""Span-based tracing for the simulation stack.

A :class:`Tracer` owns one per-process buffer of completed spans. Code
opens spans with::

    from repro.obs.trace import get_tracer

    with get_tracer().span("fig11", category="experiment", jobs=4):
        ...

and the buffer later exports as JSONL (one span object per line) or as
Chrome trace-event JSON — the ``{"traceEvents": [...]}`` envelope that
Perfetto and ``chrome://tracing`` load directly.

Design constraints, in order:

* **Zero cost when disabled.** ``Tracer.span`` returns a shared no-op
  context manager when tracing is off: no allocation beyond the kwargs
  dict at the call site, no string formatting, no clock reads. Span
  names are static strings or pre-existing values — never f-strings —
  so the disabled path does no formatting work.
* **Worker-safe.** Each process has its own tracer (module-global,
  created on first use). Pool workers trace into their local buffer,
  :meth:`Tracer.drain` hands the completed records back as picklable
  dicts, and the parent :meth:`Tracer.ingest`\\ s them. Records carry
  ``pid``/``tid`` so merged traces keep one timeline row per worker.
* **Nesting without plumbing.** A thread-local stack links each span
  to its parent; engines deep in the call tree emit phase spans that
  land under whatever experiment span is open.

Timestamps are wall-clock microseconds (``time.time_ns() // 1000``) so
records from different processes merge onto one timeline; durations are
measured with ``perf_counter_ns`` for resolution. Modelled spans (the
controller phases, whose durations are *simulated* hardware time, not
wall time) are injected with :meth:`Tracer.add_span` and flagged
``"modelled": true`` in their args.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional

from .context import current_trace_id

#: Trace-file formats :meth:`Tracer.write` accepts.
TRACE_FORMATS = ("jsonl", "chrome")

#: Category used for the five modelled controller phases.
PHASE_CATEGORY = "phase"


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **args: Any) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """A live span: context manager that records itself on exit."""

    __slots__ = (
        "_tracer", "name", "category", "args",
        "span_id", "parent_id", "_ts_us", "_start_ns",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        args: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self.span_id = tracer._next_id()
        self.parent_id: Optional[int] = None
        self._ts_us = 0
        self._start_ns = 0

    def set(self, **args: Any) -> "_ActiveSpan":
        """Attach or update span attributes mid-flight."""
        self.args.update(args)
        return self

    def __enter__(self) -> "_ActiveSpan":
        stack = self._tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        self._ts_us = time.time_ns() // 1_000
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: object) -> bool:
        dur_us = (time.perf_counter_ns() - self._start_ns) // 1_000
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        record = {
            "name": self.name,
            "cat": self.category,
            "ts": self._ts_us,
            "dur": int(dur_us),
            "pid": os.getpid(),
            "tid": threading.get_ident() & 0xFFFFFFFF,
            "id": self.span_id,
            "parent": self.parent_id,
            "args": self.args,
        }
        # Request-scoped spans carry the ambient trace id so one query
        # is greppable across threads and processes; spans outside any
        # request (batch runs) stay key-compatible with old traces.
        trace_id = current_trace_id()
        if trace_id is not None:
            record["trace"] = trace_id
        self._tracer._append(record)
        return False


class Tracer:
    """Per-process span buffer with JSONL / Chrome export.

    Disabled by default; flip :attr:`enabled` (or call
    :func:`get_tracer` and set it) to start recording. All methods are
    thread-safe.
    """

    def __init__(self) -> None:
        self.enabled = False
        #: When set, the buffer is trimmed to (roughly) this many most
        #: recent records — the always-on service sets it so a week of
        #: traffic cannot exhaust memory; batch runs leave it ``None``.
        self.max_records: Optional[int] = None
        self._records: List[Dict[str, Any]] = []
        self._sinks: tuple = ()
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._counter = itertools.count(1)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "task", **args: Any):
        """Open a span; use as a context manager.

        Returns the shared no-op span when tracing is disabled, so the
        call site pays only the kwargs dict.
        """
        if not self.enabled:
            return _NOOP_SPAN
        return _ActiveSpan(self, name, category, args)

    def add_span(
        self,
        name: str,
        category: str,
        ts_us: int,
        dur_us: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Inject an already-timed span (modelled phases, replays).

        The span is parented under the innermost live span of the
        calling thread, if any.
        """
        if not self.enabled:
            return
        stack = self._stack()
        record = {
            "name": name,
            "cat": category,
            "ts": int(ts_us),
            "dur": int(dur_us),
            "pid": os.getpid(),
            "tid": threading.get_ident() & 0xFFFFFFFF,
            "id": self._next_id(),
            "parent": stack[-1].span_id if stack else None,
            "args": dict(args) if args else {},
        }
        trace_id = current_trace_id()
        if trace_id is not None:
            record["trace"] = trace_id
        self._append(record)

    def _next_id(self) -> int:
        return next(self._counter)

    def _stack(self) -> List[_ActiveSpan]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _append(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)
            if (
                self.max_records is not None
                and len(self._records) > 2 * self.max_records
            ):
                # Amortized O(1) trim: cut back to max_records only
                # when the buffer has doubled past the bound.
                del self._records[: len(self._records) - self.max_records]
        for sink in self._sinks:
            # Sinks (the flight recorder) must never break recording;
            # a faulty one loses its own data, not the span buffer's.
            try:
                sink(record)
            except Exception:  # pragma: no cover - defensive
                pass

    # ------------------------------------------------------------------
    # Sinks (request-scoped consumers, e.g. the flight recorder)
    # ------------------------------------------------------------------
    def add_sink(self, sink: Callable[[Dict[str, Any]], None]) -> None:
        """Deliver every completed span record to ``sink`` as well."""
        with self._lock:
            if sink not in self._sinks:
                self._sinks = self._sinks + (sink,)

    def remove_sink(self, sink: Callable[[Dict[str, Any]], None]) -> None:
        """Detach a sink added with :meth:`add_sink` (idempotent).

        Equality, not identity: each ``obj.method`` access builds a new
        bound-method object, so ``is`` would never match the object
        :meth:`add_sink` stored — bound methods compare equal when the
        instance and function agree.
        """
        with self._lock:
            self._sinks = tuple(s for s in self._sinks if s != sink)

    # ------------------------------------------------------------------
    # Buffer access and cross-process merging
    # ------------------------------------------------------------------
    def records(self) -> List[Dict[str, Any]]:
        """Snapshot of the completed-span buffer (picklable dicts)."""
        with self._lock:
            return list(self._records)

    def drain(self) -> List[Dict[str, Any]]:
        """Return and clear the buffer (pool workers hand these back)."""
        with self._lock:
            records, self._records = self._records, []
        return records

    def ingest(self, records: Iterable[Dict[str, Any]]) -> None:
        """Merge records drained from another process's tracer."""
        with self._lock:
            self._records.extend(records)

    def clear(self) -> None:
        """Drop all buffered spans."""
        with self._lock:
            self._records.clear()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_jsonl(self) -> str:
        """One JSON object per line, in completion order."""
        return "\n".join(json.dumps(r, default=str) for r in self.records())

    def export_chrome(self) -> str:
        """Chrome trace-event JSON (complete-event ``"ph": "X"`` form)."""
        events = [
            {
                "name": r["name"],
                "cat": r["cat"],
                "ph": "X",
                "ts": r["ts"],
                "dur": r["dur"],
                "pid": r["pid"],
                "tid": r["tid"],
                "args": r["args"],
            }
            for r in self.records()
        ]
        return json.dumps(
            {"traceEvents": events, "displayTimeUnit": "ms"}, default=str
        )

    def write(self, path: str, format: str = "chrome") -> str:
        """Write the buffer to ``path`` in the given format."""
        if format not in TRACE_FORMATS:
            raise ValueError(
                f"unknown trace format {format!r}; expected one of "
                f"{TRACE_FORMATS}"
            )
        payload = (
            self.export_chrome() if format == "chrome"
            else self.export_jsonl()
        )
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.write("\n")
        return path


# ----------------------------------------------------------------------
# Process-global tracer
# ----------------------------------------------------------------------
_global_tracer: Optional[Tracer] = None
_global_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer (created disabled on first use)."""
    global _global_tracer
    with _global_lock:
        if _global_tracer is None:
            _global_tracer = Tracer()
        return _global_tracer


def reset_tracer() -> None:
    """Replace the global tracer (tests and pool hygiene)."""
    global _global_tracer
    with _global_lock:
        _global_tracer = None
