"""Process-wide metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` per process (see :func:`get_metrics`)
absorbs operational statistics from across the stack:

* ``cache.*`` — hit/miss/write counters from
  :mod:`repro.core.cache` (the executor publishes each run's manifest
  deltas, so pool workers' lookups are included);
* ``executor.*`` — runs, affinity groups, experiments, worker count,
  and the per-experiment wall-time histogram from
  :mod:`repro.experiments.executor`;
* ``phase.*`` — per-phase operation counts and modelled seconds from
  the five-phase controller summary
  (:func:`repro.core.controller.record_plan`);
* ``events.*`` — raw :class:`~repro.events.EventLog` counter deltas
  via :func:`observe_event_counts`.

Metric names are dotted lowercase paths. All instruments are
thread-safe and accept ints or floats; :meth:`MetricsRegistry.snapshot`
returns a plain nested dict for manifests, tests, and ad-hoc dumps.
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

Number = Union[int, float]

#: Default bucket bounds (seconds) for serve-latency histograms —
#: the Prometheus client-library defaults, a good fit for a service
#: whose p50 is tens of milliseconds.
DEFAULT_LATENCY_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _nearest_rank(samples: List[Number], q: float) -> float:
    """Nearest-rank quantile of an already-sorted sample list."""
    if not samples:
        return 0.0
    index = max(0, math.ceil(q * len(samples)) - 1)
    return float(samples[index])


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Number = 0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        return self._value


class LabeledCounter:
    """A counter family: one monotonic series per label-value tuple.

    The shape the per-array hardware counters need — one family
    (``hw.cam_searches``) fanned out over ``(bank, array)`` label sets
    — without growing the registry's flat namespace one name per
    array. Label names are fixed at creation; every ``inc`` must bind
    exactly those names.
    """

    __slots__ = ("name", "labelnames", "_series", "_lock")

    def __init__(self, name: str, labelnames: Tuple[str, ...]) -> None:
        if not labelnames:
            raise ValueError(
                f"labeled counter {name!r} needs at least one label"
            )
        self.name = name
        self.labelnames = tuple(labelnames)
        self._series: Dict[Tuple[str, ...], Number] = {}
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1, **labels: Any) -> None:
        """Add ``amount`` to the series selected by ``labels``."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"counter {self.name!r} takes labels "
                f"{self.labelnames}, got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def series(self) -> Dict[Tuple[str, ...], Number]:
        """Point-in-time copy: label-value tuple -> count."""
        with self._lock:
            return dict(self._series)

    @property
    def value(self) -> Number:
        """Sum over every series (the family total)."""
        with self._lock:
            return sum(self._series.values())


class Gauge:
    """Last-written value (worker counts, cache sizes, rates)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Number = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> Number:
        return self._value


class Histogram:
    """Streaming summary of observed values (count/sum/min/max) plus
    a bounded sample reservoir for quantile estimation.

    The reservoir is a ring of the most recent
    :data:`RESERVOIR_SIZE` observations — O(1) per observe, bounded
    memory however many queries a long-lived service absorbs — so
    :meth:`quantile` reports *recent* latency percentiles, which is
    what a serving dashboard wants anyway.
    """

    #: Ring-buffer capacity backing :meth:`quantile`.
    RESERVOIR_SIZE = 512

    __slots__ = (
        "name", "count", "total", "min", "max", "buckets",
        "_bucket_counts", "_exemplars", "_samples", "_lock"
    )

    def __init__(
        self,
        name: str,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        if buckets is not None:
            bounds = tuple(float(b) for b in buckets)
            if not bounds or list(bounds) != sorted(set(bounds)):
                raise ValueError(
                    f"histogram {name!r} buckets must be strictly "
                    f"increasing and non-empty, got {buckets!r}"
                )
            self.buckets: Optional[Tuple[float, ...]] = bounds
            # One slot per finite bound plus the +Inf overflow slot.
            self._bucket_counts: Optional[List[int]] = (
                [0] * (len(bounds) + 1)
            )
        else:
            self.buckets = None
            self._bucket_counts = None
        #: bucket index -> (trace_id, value, unix_ts); the freshest
        #: observation wins, which is what an exemplar is for.
        self._exemplars: Dict[int, Tuple[str, float, float]] = {}
        self._samples: list = []
        self._lock = threading.Lock()

    def observe(
        self, value: Number, exemplar: Optional[str] = None
    ) -> None:
        """Record one observation.

        ``exemplar`` (a trace id) is attached to the bucket the value
        lands in, so the OpenMetrics exposition can link latency
        buckets back to concrete request traces. It is ignored on
        bucket-less histograms.
        """
        with self._lock:
            if len(self._samples) < self.RESERVOIR_SIZE:
                self._samples.append(value)
            else:
                self._samples[self.count % self.RESERVOIR_SIZE] = value
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if self._bucket_counts is not None:
                index = bisect.bisect_left(self.buckets, value)
                self._bucket_counts[index] += 1
                if exemplar is not None:
                    self._exemplars[index] = (
                        str(exemplar), float(value), time.time()
                    )

    def bucket_snapshot(
        self,
    ) -> List[Tuple[float, int, Optional[Tuple[str, float, float]]]]:
        """Cumulative ``(le, count, exemplar)`` rows, +Inf last.

        Empty when the histogram was created without buckets.
        """
        with self._lock:
            if self._bucket_counts is None:
                return []
            rows = []
            cumulative = 0
            bounds = list(self.buckets) + [math.inf]  # type: ignore[arg-type]
            for index, bound in enumerate(bounds):
                cumulative += self._bucket_counts[index]
                rows.append(
                    (bound, cumulative, self._exemplars.get(index))
                )
            return rows

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of the recent-sample reservoir.

        Nearest-rank on a sorted copy; 0.0 when nothing was observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            samples = sorted(self._samples)
        return _nearest_rank(samples, q)

    def summary(self) -> Dict[str, Number]:
        # Taken under the lock so a concurrent observe() cannot tear
        # the summary (count updated but sum not yet, mean off).
        with self._lock:
            samples = sorted(self._samples)
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.min if self.min is not None else 0,
                "max": self.max if self.max is not None else 0,
                "mean": self.total / self.count if self.count else 0.0,
                "p50": _nearest_rank(samples, 0.5),
                "p99": _nearest_rank(samples, 0.99),
            }


class MetricsRegistry:
    """Get-or-create store of named instruments.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for the same name as a different kind raises ``TypeError``.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type, **kwargs: Any):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind(name, **kwargs)
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} is a "
                    f"{type(instrument).__name__}, not a {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def labeled_counter(
        self, name: str, labelnames: Tuple[str, ...]
    ) -> LabeledCounter:
        """Get-or-create; ``labelnames`` applies only at first creation
        (re-requesting with different names raises)."""
        family = self._get(name, LabeledCounter, labelnames=labelnames)
        if family.labelnames != tuple(labelnames):
            raise TypeError(
                f"metric {name!r} has labels {family.labelnames}, "
                f"not {tuple(labelnames)}"
            )
        return family

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self,
        name: str,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> Histogram:
        """Get-or-create; ``buckets`` applies only at first creation
        (an existing instrument keeps whatever shape it was born with).
        """
        if buckets is not None:
            return self._get(name, Histogram, buckets=buckets)
        return self._get(name, Histogram)

    # ------------------------------------------------------------------
    def instruments(self) -> Dict[str, object]:
        """A point-in-time copy of the name -> instrument mapping.

        The instruments themselves are live (their values keep moving);
        the mapping copy is what makes kind-aware consumers such as the
        OpenMetrics exporter safe against concurrent registration.
        """
        with self._lock:
            return dict(self._instruments)

    def snapshot(self) -> Dict[str, Any]:
        """All instruments as a plain dict (histograms as summaries)."""
        with self._lock:
            instruments = dict(self._instruments)
        out: Dict[str, Any] = {}
        for name, instrument in sorted(instruments.items()):
            if isinstance(instrument, Histogram):
                out[name] = instrument.summary()
            else:
                out[name] = instrument.value  # type: ignore[union-attr]
        return out

    def reset(self) -> None:
        """Drop every instrument."""
        with self._lock:
            self._instruments.clear()


# ----------------------------------------------------------------------
# Process-global registry
# ----------------------------------------------------------------------
_global_registry: Optional[MetricsRegistry] = None
_global_lock = threading.Lock()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry (created on first use)."""
    global _global_registry
    with _global_lock:
        if _global_registry is None:
            _global_registry = MetricsRegistry()
        return _global_registry


def reset_metrics() -> None:
    """Replace the global registry (tests and pool hygiene)."""
    global _global_registry
    with _global_lock:
        _global_registry = None


def observe_event_counts(
    counts: Mapping[str, Number],
    prefix: str = "events",
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Fold a counter mapping (e.g. ``EventLog.as_dict()``) into
    ``<prefix>.<name>`` counters."""
    registry = registry if registry is not None else get_metrics()
    for name, value in counts.items():
        if value:
            registry.counter(f"{prefix}.{name}").inc(value)
