"""Request-scoped trace context: W3C ``traceparent`` over contextvars.

One query entering the serve stack must be followable through the HTTP
frontend, service coalescing, the warm pool, and the engine's five
modelled phases. This module carries that identity — a
:class:`TraceContext` of ``trace_id``/``span_id`` hex strings in the
W3C Trace Context wire shape — in a :class:`contextvars.ContextVar`,
so every layer (spans in :mod:`repro.obs.trace`, log lines in
:mod:`repro.obs.log`, flight-recorder entries in
:mod:`repro.obs.flight`) can stamp the current trace id without any
argument plumbing.

``contextvars`` propagate automatically into ``asyncio`` tasks (each
task copies the context it was created in), but **not** into
``run_in_executor`` threads; code handing work to a thread pool wraps
the callable with :func:`wrap` so the worker thread sees the same
context the event loop did.

This module is dependency-free (stdlib only) so anything in the
package may import it without cycles.
"""

from __future__ import annotations

import contextvars
import os
import re
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

#: ``traceparent`` version this module emits (the only W3C version).
TRACEPARENT_VERSION = "00"

#: Inbound/outbound HTTP header carrying the trace context.
TRACEPARENT_HEADER = "traceparent"

_TRACEPARENT = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})-"
    r"(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)


@dataclass(frozen=True)
class TraceContext:
    """One request's tracing identity.

    ``trace_id`` names the whole request (32 lowercase hex chars);
    ``span_id`` names the current operation within it (16 hex chars);
    ``parent_span_id`` is the caller's span (the remote span id when
    the context was adopted from an inbound ``traceparent`` header).
    ``sampled`` mirrors the W3C ``01`` flag bit.
    """

    trace_id: str
    span_id: str
    parent_span_id: Optional[str] = None
    sampled: bool = True

    def child(self) -> "TraceContext":
        """A new context for a sub-operation of this one: same trace,
        fresh span id, parented here."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=new_span_id(),
            parent_span_id=self.span_id,
            sampled=self.sampled,
        )

    def to_traceparent(self) -> str:
        """The W3C ``traceparent`` header value for this context."""
        flags = "01" if self.sampled else "00"
        return (
            f"{TRACEPARENT_VERSION}-{self.trace_id}-"
            f"{self.span_id}-{flags}"
        )


_CURRENT: "contextvars.ContextVar[Optional[TraceContext]]" = (
    contextvars.ContextVar("repro_trace_context", default=None)
)


def new_trace_id() -> str:
    """A random 128-bit trace id (32 hex chars, never all-zero)."""
    while True:
        trace_id = os.urandom(16).hex()
        if trace_id != "0" * 32:  # pragma: no branch - astronomically rare
            return trace_id


def new_span_id() -> str:
    """A random 64-bit span id (16 hex chars, never all-zero)."""
    while True:
        span_id = os.urandom(8).hex()
        if span_id != "0" * 16:  # pragma: no branch - astronomically rare
            return span_id


def new_root(sampled: bool = True) -> TraceContext:
    """Mint a fresh root context (no inbound ``traceparent``)."""
    return TraceContext(
        trace_id=new_trace_id(), span_id=new_span_id(), sampled=sampled
    )


def parse_traceparent(value: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``traceparent`` header into the *remote* context.

    Returns ``None`` on anything malformed — unknown length, non-hex
    digits, all-zero trace or span ids, or the reserved ``ff``
    version — per the W3C spec's "restart the trace" guidance. The
    returned context's ``span_id`` is the remote caller's span.
    """
    if not value or not isinstance(value, str):
        return None
    match = _TRACEPARENT.match(value.strip().lower())
    if match is None:
        return None
    if match["version"] == "ff":
        return None
    if match["trace_id"] == "0" * 32 or match["span_id"] == "0" * 16:
        return None
    try:
        flags = int(match["flags"], 16)
    except ValueError:  # pragma: no cover - regex already guarantees hex
        return None
    return TraceContext(
        trace_id=match["trace_id"],
        span_id=match["span_id"],
        sampled=bool(flags & 0x01),
    )


def from_traceparent(value: Optional[str]) -> TraceContext:
    """The server-side context for an inbound request.

    A valid ``traceparent`` continues the remote trace (same trace id,
    new span id, remote span as parent); a missing or malformed header
    starts a fresh root trace.
    """
    remote = parse_traceparent(value)
    if remote is None:
        return new_root()
    return remote.child()


# ----------------------------------------------------------------------
# Current-context accessors
# ----------------------------------------------------------------------
def current() -> Optional[TraceContext]:
    """The active context, or ``None`` outside any traced request."""
    return _CURRENT.get()


def current_trace_id() -> Optional[str]:
    """The active trace id, or ``None`` (the hot-path accessor)."""
    ctx = _CURRENT.get()
    return ctx.trace_id if ctx is not None else None


def activate(ctx: TraceContext) -> "contextvars.Token":
    """Install ``ctx`` as the current context; returns a reset token."""
    return _CURRENT.set(ctx)


def restore(token: "contextvars.Token") -> None:
    """Undo a matching :func:`activate`."""
    _CURRENT.reset(token)


@contextmanager
def active(ctx: TraceContext) -> Iterator[TraceContext]:
    """``with active(ctx):`` — scope-bound :func:`activate`."""
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


def wrap(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Bind ``fn`` to the *caller's* context for thread-pool hand-off.

    ``loop.run_in_executor`` does not propagate contextvars; pass
    ``wrap(fn)`` instead of ``fn`` so the worker thread runs under a
    copy of the submitting task's context (trace ids included).
    """
    captured = contextvars.copy_context()

    def bound(*args: Any, **kwargs: Any) -> Any:
        return captured.run(fn, *args, **kwargs)

    return bound
