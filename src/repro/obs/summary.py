"""Trace-file inspection: the ``repro trace-summary`` backend.

Loads a trace written by :meth:`repro.obs.trace.Tracer.write` — either
format — and renders a per-phase time/event table::

    phase                        spans      operations   modelled time    share
    Initialization                  12              36          0.00us     0.0%
    Data loading                    12          41,924        912.11us    31.4%
    ...

Phase rows follow the controller's canonical five-phase order; spans of
other categories are summarised underneath (count and wall time) so a
trace of a whole ``run-all`` reads top-down: run → shards →
experiments → phases.

Also home to the span-tree tools behind ``repro trace-grep``:
:func:`filter_trace` selects the spans of one distributed trace id and
:func:`render_span_tree` reconstructs their nesting from start/end
times (spans are recorded flat, at exit).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from ..core.controller import PHASE_NAMES
from ..errors import ConfigError
from .trace import PHASE_CATEGORY


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Read a trace file in either supported format.

    Returns normalised span dicts (``name``/``cat``/``ts``/``dur``/
    ``pid``/``tid``/``args``). Chrome files are detected by their
    ``{"traceEvents": ...}`` envelope; anything else is parsed as
    JSONL. Raises :class:`~repro.errors.ConfigError` on unreadable or
    malformed input.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ConfigError(f"cannot read trace file {path!r}: {exc}") from exc
    stripped = text.lstrip()
    if not stripped:
        raise ConfigError(f"trace file {path!r} is empty")
    # Chrome files are one JSON document; JSONL lines are each their
    # own document (and also start with "{"), so try whole-file parse
    # first and fall back to per-line.
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        try:
            spans = [
                json.loads(line)
                for line in text.splitlines()
                if line.strip()
            ]
        except json.JSONDecodeError as exc:
            raise ConfigError(
                f"trace file {path!r} is not valid JSON: {exc}"
            ) from exc
    else:
        if isinstance(payload, dict) and isinstance(
            payload.get("traceEvents"), list
        ):
            spans = [
                e for e in payload["traceEvents"]
                # Keep non-dict junk: the validation loop below turns
                # it into a ConfigError instead of an AttributeError.
                if not isinstance(e, dict) or e.get("ph", "X") == "X"
            ]
        elif isinstance(payload, dict) and "name" in payload:
            spans = [payload]  # a one-line JSONL trace
        else:
            raise ConfigError(
                f"trace file {path!r} has no traceEvents array"
            )
    for span in spans:
        # A parseable file can still hold non-span JSON (bare numbers
        # in a JSONL file, string entries in a traceEvents array);
        # reject those here so the renderer never sees them.
        if not isinstance(span, dict) or "name" not in span:
            raise ConfigError(
                f"trace file {path!r} contains an entry that is not a "
                f"span object: {span!r}"
            )
        span.setdefault("cat", "task")
        span.setdefault("args", {})
        span.setdefault("dur", 0)
        try:
            span["dur"] = float(span["dur"])
        except (TypeError, ValueError):
            raise ConfigError(
                f"trace file {path!r} span {span['name']!r} has a "
                f"non-numeric duration: {span['dur']!r}"
            ) from None
    return spans


def summarize_phases(
    spans: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Aggregate phase-category spans by phase name.

    Returns one row per phase (canonical order first, then any extra
    names alphabetically) with span count, summed operations, summed
    modelled duration in microseconds, summed ADC saturations, and the
    operations-weighted mean occupancy (spans recorded before those
    args existed contribute zeros, keeping old trace files readable).
    """
    rows: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        if span.get("cat") != PHASE_CATEGORY:
            continue
        row = rows.setdefault(
            span["name"],
            {"phase": span["name"], "spans": 0, "operations": 0,
             "dur_us": 0.0, "energy_j": 0.0, "adc_saturations": 0,
             "_occ_weight": 0.0},
        )
        row["spans"] += 1
        row["dur_us"] += float(span.get("dur", 0))
        args = span.get("args") or {}
        operations = int(args.get("operations", 0))
        row["operations"] += operations
        row["energy_j"] += float(args.get("energy_j", 0.0))
        row["adc_saturations"] += int(args.get("adc_saturations", 0))
        row["_occ_weight"] += operations * float(
            args.get("occupancy", 0.0)
        )
    for row in rows.values():
        row["occupancy"] = (
            row.pop("_occ_weight") / row["operations"]
            if row["operations"]
            else row.pop("_occ_weight") * 0.0
        )
    ordered = [rows[name] for name in PHASE_NAMES if name in rows]
    ordered.extend(
        rows[name] for name in sorted(rows) if name not in PHASE_NAMES
    )
    return ordered


def summarize_categories(
    spans: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Span count and wall time per non-phase category."""
    rows: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        category = span.get("cat", "task")
        if category == PHASE_CATEGORY:
            continue
        row = rows.setdefault(
            category, {"category": category, "spans": 0, "dur_us": 0.0}
        )
        row["spans"] += 1
        row["dur_us"] += float(span.get("dur", 0))
    return [rows[name] for name in sorted(rows)]


def filter_trace(
    spans: Sequence[Dict[str, Any]], trace_id: str
) -> List[Dict[str, Any]]:
    """The spans belonging to one distributed trace id.

    Matches the top-level ``trace`` field the tracer stamps when a
    request context is active (Chrome exports carry it inside
    ``args``, so both spots are checked).
    """
    out = []
    for span in spans:
        recorded = span.get("trace") or (span.get("args") or {}).get(
            "trace"
        )
        if recorded == trace_id:
            out.append(span)
    return out


def render_span_tree(spans: Sequence[Dict[str, Any]]) -> str:
    """An indented start-time-ordered tree of flat span records.

    Spans are recorded at exit with their start timestamp (``ts``, µs)
    and duration (``dur``, µs); nesting is reconstructed per thread by
    interval containment — a span starting before the previous one
    ended is its child. Zero-duration marker spans (e.g.
    ``serve.coalesced``) render as leaves where they fired.
    """
    lines: List[str] = []
    by_tid: Dict[Any, List[Dict[str, Any]]] = {}
    for span in spans:
        by_tid.setdefault(span.get("tid", 0), []).append(span)
    for tid in sorted(by_tid, key=str):
        ordered = sorted(
            by_tid[tid],
            key=lambda s: (
                float(s.get("ts", 0)), -float(s.get("dur", 0))
            ),
        )
        stack: List[float] = []  # open ancestors' end timestamps
        for span in ordered:
            ts = float(span.get("ts", 0))
            dur = float(span.get("dur", 0))
            while stack and ts >= stack[-1]:
                stack.pop()
            depth = len(stack)
            stack.append(ts + dur)
            args = span.get("args") or {}
            detail = " ".join(
                f"{key}={args[key]}"
                for key in sorted(args)
                if key != "trace" and not isinstance(args[key], dict)
            )
            lines.append(
                f"{'  ' * depth}- {span.get('name', '?')} "
                f"[{span.get('cat', 'task')}] {_format_us(dur)}"
                + (f"  {detail}" if detail else "")
            )
    return "\n".join(lines) if lines else "(no spans)"


def _format_us(us: float) -> str:
    if us >= 1e6:
        return f"{us / 1e6:.3f}s"
    if us >= 1e3:
        return f"{us / 1e3:.2f}ms"
    return f"{us:.2f}us"


def render_summary(spans: Sequence[Dict[str, Any]]) -> str:
    """The ``trace-summary`` table as a string."""
    phase_rows = summarize_phases(spans)
    lines: List[str] = []
    header = (
        f"{'phase':<26} {'spans':>7} {'operations':>14} "
        f"{'modelled time':>14} {'share':>7} {'occup':>7} "
        f"{'adc sat':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    if phase_rows:
        total_dur = sum(r["dur_us"] for r in phase_rows)
        for row in phase_rows:
            share = row["dur_us"] / total_dur if total_dur else 0.0
            lines.append(
                f"{row['phase']:<26} {row['spans']:>7,} "
                f"{row['operations']:>14,} "
                f"{_format_us(row['dur_us']):>14} {share:>6.1%} "
                f"{row['occupancy']:>7.1%} "
                f"{row['adc_saturations']:>8,}"
            )
    else:
        lines.append("(no phase spans in this trace)")
    category_rows = summarize_categories(spans)
    if category_rows:
        lines.append("")
        sub = f"{'category':<26} {'spans':>7} {'wall time':>14}"
        lines.append(sub)
        lines.append("-" * len(sub))
        for row in category_rows:
            lines.append(
                f"{row['category']:<26} {row['spans']:>7,} "
                f"{_format_us(row['dur_us']):>14}"
            )
    return "\n".join(lines)
