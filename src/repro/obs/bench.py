"""Continuous performance telemetry: benchmark store + regression gate.

This module turns the instrumentation of :mod:`repro.obs` into an
ongoing perf-trajectory system. It has three layers:

* **Workloads** — named, repeatable measurement units. The ``kernel``
  workloads time the simulator's own hot paths (engine iterations,
  layout construction, CAM search, MAC accumulation, shard scans); the
  ``experiment`` workloads run registered paper artifacts through the
  executor under the tracer, so each record also carries the modelled
  per-phase seconds/energy (:data:`~repro.core.controller.PHASE_NAMES`),
  the layout-cache hit rate, and crossbar-utilization statistics
  derived from :meth:`repro.events.EventLog.rows_occupancy`.
* **The store** — schema-versioned records appended to
  ``BENCH_<suite>.json`` trajectory files. Every record is stamped with
  the git SHA, a UNIX timestamp, and a host fingerprint
  (:mod:`repro.obs.perf`), so trajectories remain comparable across
  machines and commits.
* **The comparator** — a noise-aware diff between two records.
  Wall-clock medians carry a median-absolute-deviation noise bound; a
  metric only counts as a regression when it moves past the relative
  threshold *and* (for wall times) beyond ``noise_k`` MADs. Modelled
  metrics are deterministic and compare on the threshold alone.

The CLI surface is ``repro bench`` / ``repro bench-compare``; the
module is equally usable programmatically::

    from repro.obs import bench

    record, path = bench.run_suite("quick", out_dir="benchmarks/out")
    trajectory = bench.load_trajectory(path)
    deltas = bench.compare_records(trajectory["records"][-2],
                                   trajectory["records"][-1])
    assert not bench.has_regressions(deltas)

Unlike its siblings this module sits *above* the rest of the package
(workloads import engines and the executor); all such imports are
deferred into the workload bodies so importing :mod:`repro.obs` stays
cycle-free.
"""

from __future__ import annotations

import json
import math
import os
import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ConfigError
from .log import get_logger
from .perf import git_sha, host_fingerprint

log = get_logger("repro.bench")

#: Version stamp of the record layout below. Bump on breaking changes;
#: the comparator refuses to diff records of different schemas.
SCHEMA_VERSION = 1

#: Default relative change that counts as a regression (25%).
DEFAULT_THRESHOLD = 0.25

#: Wall-clock changes must also exceed this many MADs to count.
DEFAULT_NOISE_K = 3.0

#: Dataset used by the kernel workloads (small, always available).
_KERNEL_DATASET = "WV"


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Workload:
    """One named, repeatable measurement unit.

    ``setup(profile)`` builds whatever state should be excluded from
    the timing (graphs, layouts); ``run(state)`` is the timed body and
    returns a payload; ``collect(state, payload)`` extracts the
    record's flat metric mapping from the final payload.
    """

    name: str
    kind: str  # "kernel" | "experiment"
    setup: Callable[[str], Any]
    run: Callable[[Any], Any]
    collect: Callable[[Any, Any], Dict[str, float]]


def _stats_metrics(stats) -> Dict[str, float]:
    """Flatten a :class:`~repro.core.stats.RunStats` into bench metrics.

    Carries the modelled totals, the five-phase decomposition, the
    non-zero raw event counters, and the MAC row-occupancy statistics
    against the configured ADC accumulation bound (16 rows in Table I).
    """
    from ..config import ArchConfig
    from ..core.controller import _phase_slug, build_plan

    metrics: Dict[str, float] = {
        "modelled.total_s": float(stats.total_time_s),
        "modelled.load_s": float(stats.load_time_s),
        "modelled.compute_s": float(stats.compute_time_s),
        "modelled.energy_j": float(stats.total_energy_j),
    }
    for phase in build_plan(stats).phases:
        slug = _phase_slug(phase.name)
        metrics[f"phase.{slug}.operations"] = float(phase.operations)
        metrics[f"phase.{slug}.modelled_s"] = float(phase.time_s)
        metrics[f"phase.{slug}.energy_j"] = float(phase.energy_j)
    for name, value in stats.events.as_dict().items():
        if value:
            metrics[f"events.{name}"] = float(value)
    limit = ArchConfig().mac_accumulate_limit
    for name, value in stats.events.rows_occupancy(limit).items():
        metrics[f"xbar.{name}"] = float(value)
    return metrics


def _engine_workload(name: str, orientation: str, kernel) -> Workload:
    def setup(profile: str):
        from ..core.engine import GaaSXEngine
        from ..graphs.datasets import load_dataset

        engine = GaaSXEngine(load_dataset(_KERNEL_DATASET, profile))
        engine.layout(orientation)
        return engine

    def collect(_state, payload) -> Dict[str, float]:
        return _stats_metrics(payload.stats)

    return Workload(name, "kernel", setup, kernel, collect)


def _layout_workload() -> Workload:
    def setup(profile: str):
        from ..graphs import partition_graph
        from ..graphs.datasets import load_dataset

        return partition_graph(load_dataset(_KERNEL_DATASET, profile), 128)

    def run(grid):
        from ..config import ArchConfig
        from ..core.loader import build_layout

        return build_layout(grid, "col", ArchConfig())

    def collect(_grid, layout) -> Dict[str, float]:
        return {"layout.num_edges": float(layout.num_edges)}

    return Workload("layout.build", "kernel", setup, run, collect)


def _shard_scan_workload() -> Workload:
    def setup(profile: str):
        import numpy as np

        from ..graphs import partition_graph
        from ..graphs.datasets import load_dataset
        from ..storage.shards import ShardStore

        store = ShardStore(
            partition_graph(load_dataset(_KERNEL_DATASET, profile), 128)
        )
        intervals = store.grid.partition.num_intervals
        return store, np.arange(0, intervals, 2)

    def run(state):
        store, wanted = state
        return {
            "model.selective_scan_s": store.selective_scan_time_s(wanted),
            "model.full_scan_s": store.full_scan_time_s("col"),
        }

    def collect(_state, payload) -> Dict[str, float]:
        return {k: float(v) for k, v in payload.items()}

    return Workload("shard.scan", "kernel", setup, run, collect)


def _cam_search_workload() -> Workload:
    def setup(_profile: str):
        import numpy as np

        rng = np.random.default_rng(0)
        return {
            "src": rng.integers(0, 1000, size=128),
            "dst": rng.integers(0, 1000, size=128),
            "queries": rng.integers(0, 1000, size=256),
        }

    def run(state):
        from ..xbar import EdgeCam

        cam = EdgeCam(rows=state["src"].size, vertex_bits=32)
        cam.load_edges(state["src"], state["dst"])
        for query in state["queries"]:
            cam.search_dst(int(query))
        return cam

    def collect(_state, cam) -> Dict[str, float]:
        return {
            f"events.{name}": float(value)
            for name, value in cam.events.as_dict().items()
            if value
        }

    return Workload("cam.search", "kernel", setup, run, collect)


def _mac_accumulate_workload() -> Workload:
    def setup(_profile: str):
        import numpy as np

        rng = np.random.default_rng(1)
        rows, cols, ops = 128, 16, 32
        masks = np.zeros((ops, rows), dtype=bool)
        for i in range(ops):
            engaged = int(rng.integers(1, 17))
            masks[i, rng.choice(rows, size=engaged, replace=False)] = True
        return {
            "values": rng.uniform(0, 4, size=(rows, cols)),
            "inputs": rng.uniform(0, 2, size=rows),
            "masks": masks,
        }

    def run(state):
        import numpy as np

        from ..xbar import MacCrossbar

        rows = state["inputs"].size
        mac = MacCrossbar(rows=rows, cols=state["values"].shape[1])
        mac.write_rows(np.arange(rows), state["values"])
        for mask in state["masks"]:
            mac.mac(state["inputs"], row_mask=mask)
        return mac

    def collect(_state, mac) -> Dict[str, float]:
        from ..config import ArchConfig

        limit = ArchConfig().mac_accumulate_limit
        metrics = {
            f"xbar.{name}": float(value)
            for name, value in mac.events.rows_occupancy(limit).items()
        }
        metrics["events.mac_ops"] = float(mac.events.mac_ops)
        return metrics

    return Workload("mac.accumulate", "kernel", setup, run, collect)


def _traversal_superstep_workload() -> Workload:
    """High-diameter SSSP: thousands of thin-frontier supersteps.

    A tall 4 x 8192 grid (road-network shape) with uniform weights
    gives a ~8200-superstep Bellman-Ford wavefront whose frontier is a
    handful of vertices — the shape that punishes any per-superstep
    cost proportional to the whole graph instead of the active set.
    (Uniform weights keep the wavefront thin: with high-variance
    weights the frontier fattens with re-relaxations and the run
    measures raw relaxation throughput instead of superstep overhead.)
    The graph is fixed-size (profile-independent) so trajectories stay
    comparable.
    """

    def setup(_profile: str):
        from ..core.engine import GaaSXEngine
        from ..graphs.generators import grid_2d

        engine = GaaSXEngine(
            grid_2d(
                4, 8192, seed=3, name="tall-grid",
                weight_range=(1.0, 1.0),
            )
        )
        engine.layout("row").groups_by("src")
        return engine

    def run(engine):
        return engine.sssp(0)

    def collect(_engine, payload) -> Dict[str, float]:
        metrics = _stats_metrics(payload.stats)
        metrics["traversal.supersteps"] = float(payload.supersteps)
        return metrics

    return Workload("traversal.superstep", "kernel", setup, run, collect)


def _micro_traversal_workload() -> Workload:
    """Array-level simulator end to end: crossbar load + CAM/MAC SSSP.

    Times :class:`~repro.core.micro.MicroGaaSX` building every
    CAM/MAC pair (``EdgeCam.load_edges`` programming) and running a
    full SSSP through the real search / selective-MAC path. Fixed-size
    graph, profile-independent.
    """

    def setup(_profile: str):
        from ..graphs.generators import rmat

        return rmat(256, 2000, seed=5, name="micro-bench")

    def run(graph):
        from ..core.micro import MicroGaaSX

        return MicroGaaSX(graph).sssp(0)

    def collect(_graph, payload) -> Dict[str, float]:
        _dist, events = payload
        return {
            f"events.{name}": float(value)
            for name, value in events.as_dict().items()
            if value
        }

    return Workload("micro.traversal", "kernel", setup, run, collect)


def _hw_pagerank_workload() -> Workload:
    """Micro-engine PageRank under the per-array hardware monitor.

    Times the instrumented run (so the monitor's overhead itself is on
    the perf trajectory) and records the per-array load-balance figures
    — occupancy, imbalance, active fraction — plus the
    counter-vs-EventLog parity verdict as a gated 1.0/0.0 metric.
    Fixed-size graph, profile-independent, like the other micro
    workloads.
    """

    def setup(_profile: str):
        from ..graphs.generators import rmat

        return rmat(256, 2000, seed=5, name="hw-bench")

    def run(graph):
        from ..config import ArchConfig
        from ..core.micro import MicroGaaSX
        from .hw import HwMonitor

        monitor = HwMonitor(ArchConfig().mac_accumulate_limit)
        _ranks, events = MicroGaaSX(graph, hw=monitor).pagerank(
            iterations=2
        )
        return monitor, events

    def collect(_graph, payload) -> Dict[str, float]:
        from .hw import check_parity, utilization_summary

        monitor, events = payload
        util = utilization_summary(monitor)
        metrics = {
            "hw.arrays": float(util["arrays"]),
            "hw.imbalance": float(util["imbalance"]),
            "hw.active_frac": float(util["active_frac"]),
            "hw.parity_ok": 1.0 if check_parity(monitor, events)["ok"]
            else 0.0,
        }
        limit = monitor.accumulate_limit
        for name, value in events.rows_occupancy(limit).items():
            metrics[f"xbar.{name}"] = float(value)
        return metrics

    return Workload("hw.pagerank", "kernel", setup, run, collect)


def _incremental_pagerank_workload() -> Workload:
    """Warm re-query: full recompute vs incremental restart.

    The cross-iteration-reuse acceptance number. Setup converges
    PageRank once on a fixed r-MAT graph; each timed run then answers
    the same query twice — a full recompute with the reuse layer
    forced off (the pre-reuse serving path), and an incremental
    restart from the converged ranks with memoization on. The
    ``incremental.speedup`` ratio is the gated metric; both runs
    execute in the same process seconds apart, so the ratio is robust
    to host noise in a way the raw wall times are not. Under
    ``REPRO_REUSE=0`` the incremental call falls back to the full
    kernel, which is what a "before" record captures.
    """

    def setup(_profile: str):
        from ..core.engine import GaaSXEngine
        from ..graphs.generators import rmat

        engine = GaaSXEngine(
            rmat(20000, 300000, seed=11, name="inc-bench")
        )
        engine.layout("col")
        warm = engine.pagerank(iterations=60, tolerance=1e-5).ranks
        return {"engine": engine, "warm": warm}

    def run(state):
        import numpy as np

        from ..core.reuse import set_reuse_enabled

        engine = state["engine"]
        t0 = time.perf_counter()
        set_reuse_enabled(False)
        try:
            full = engine.pagerank(iterations=60, tolerance=1e-5)
        finally:
            set_reuse_enabled(None)
        t1 = time.perf_counter()
        incremental = engine.pagerank(
            iterations=60, tolerance=1e-5, incremental=True,
            warm_ranks=state["warm"],
        )
        t2 = time.perf_counter()
        full_s, incremental_s = t1 - t0, t2 - t1
        return {
            "incremental.full_s": full_s,
            "incremental.incremental_s": incremental_s,
            "incremental.speedup": (
                full_s / incremental_s if incremental_s > 0 else 0.0
            ),
            "incremental.full_iterations": float(full.iterations),
            "incremental.iterations": float(incremental.iterations),
            "incremental.rank_err": float(
                np.max(np.abs(full.ranks - incremental.ranks))
            ),
        }

    def collect(_state, payload) -> Dict[str, float]:
        return {k: float(v) for k, v in payload.items()}

    return Workload(
        "incremental.pagerank", "kernel", setup, run, collect
    )


def _serve_burst_workload() -> Workload:
    """Serving latency: a mixed query burst against the warm service.

    Runs :class:`repro.serve.bench.ServeBench` — duplicate and
    distinct queries over all five servable algorithms against an
    in-process :class:`~repro.serve.server.AnalyticsService` with a
    pre-warmed pool — and records per-request latency percentiles plus
    the coalescing hit rate. This is the number every later speedup
    must move: what a client actually waits.
    """

    def setup(profile: str):
        from ..serve.bench import ServeBench

        return ServeBench(profile=profile)

    def run(bench):
        return bench.run()

    def collect(_bench, payload) -> Dict[str, float]:
        return {name: float(value) for name, value in payload.items()}

    return Workload("serve.burst", "serve", setup, run, collect)


def _serve_mutate_workload() -> Workload:
    """Mutable-graph serving: mutation batches plus incremental
    re-queries against a warm session (:class:`repro.serve.bench.
    MutateBench`). Records mutate/re-query latency percentiles, the
    reuse-cache migration tallies, and the per-query reuse hit rate.
    """

    def setup(profile: str):
        from ..serve.bench import MutateBench

        return MutateBench(profile=profile)

    def run(bench):
        return bench.run()

    def collect(_bench, payload) -> Dict[str, float]:
        return {name: float(value) for name, value in payload.items()}

    return Workload("serve.mutate", "serve", setup, run, collect)


def _dataplane_convert_workload() -> Workload:
    """Cold conversion: graph → canonical CSR store file on disk.

    The one-time cost every dataset pays before all later opens are
    zero-copy. Each timed run writes a fresh file (the store's
    idempotence would otherwise turn repeats into no-ops).
    """

    def setup(profile: str):
        import tempfile

        from ..graphs.datasets import load_dataset

        return {
            "graph": load_dataset(_KERNEL_DATASET, profile),
            # Held in state so the finalizer reclaims the files.
            "tmp": tempfile.TemporaryDirectory(prefix="repro-bench-dp-"),
            "serial": 0,
        }

    def run(state):
        import os

        from ..graphs.io import save_store

        state["serial"] += 1
        path = os.path.join(state["tmp"].name, f"g{state['serial']}.gsx")
        save_store(state["graph"], path)
        return path

    def collect(state, path) -> Dict[str, float]:
        import os

        graph = state["graph"]
        return {
            "dataplane.file_bytes": float(os.path.getsize(path)),
            "dataplane.edges": float(graph.num_edges),
        }

    return Workload("dataplane.convert", "dataplane", setup, run, collect)


def _dataplane_open_workload() -> Workload:
    """Warm open: store file → memmap-backed Graph, first page touched.

    The steady-state cost every engine/pool worker pays instead of a
    full in-memory rebuild — header parse, three memmap views, the
    O(V) source-column expansion, and one faulted page.
    """

    def setup(profile: str):
        import os
        import tempfile

        from ..graphs.datasets import load_dataset
        from ..graphs.io import save_store

        tmp = tempfile.TemporaryDirectory(prefix="repro-bench-dp-")
        path = os.path.join(tmp.name, "g.gsx")
        save_store(load_dataset(_KERNEL_DATASET, profile), path)
        return {"tmp": tmp, "path": path}

    def run(state):
        from ..graphs.io import load_store

        graph = load_store(state["path"])
        # Touch one edge so the timing includes a real page fault, not
        # just view bookkeeping.
        if graph.num_edges:
            float(graph.edges.cols[0])
        return graph

    def collect(_state, graph) -> Dict[str, float]:
        return {
            "dataplane.vertices": float(graph.num_vertices),
            "dataplane.edges": float(graph.num_edges),
        }

    return Workload("dataplane.open", "dataplane", setup, run, collect)


def _dataplane_stream_workload() -> Workload:
    """Out-of-core PageRank under a deliberately tight residency budget.

    Streams two Equation-3 iterations through 1 MiB chunks — the
    worst-case shape for the chunk iterator (many chunk crossings per
    pass) — and records the degree-sorted executor balance alongside,
    so the scheduling quality the refactor promises is a gated metric,
    not an assertion in one test.
    """

    def setup(profile: str):
        import os
        import tempfile

        from ..graphs.datasets import load_dataset
        from ..graphs.io import save_store
        from ..storage.mmap_store import StoredGraph

        tmp = tempfile.TemporaryDirectory(prefix="repro-bench-dp-")
        path = os.path.join(tmp.name, "g.gsx")
        save_store(load_dataset(_KERNEL_DATASET, profile), path)
        return {"tmp": tmp, "stored": StoredGraph(path)}

    def run(state):
        from ..storage.stream import streaming_pagerank

        return streaming_pagerank(
            state["stored"], iterations=2, max_resident_bytes=1 << 20
        )

    def collect(state, result) -> Dict[str, float]:
        stored = state["stored"]
        stats = result.stats
        return {
            "dataplane.chunks": float(stats.chunks),
            "dataplane.max_chunk_bytes": float(stats.max_chunk_bytes),
            "dataplane.budget_bytes": float(stats.budget_bytes),
            "dataplane.balance": float(
                stored.schedule_balance(4)["balance"]
            ),
        }

    return Workload("dataplane.stream", "dataplane", setup, run, collect)


def _experiment_workload(experiment_id: str) -> Workload:
    """A registered paper artifact run through the executor, traced."""

    def setup(profile: str) -> str:
        return profile

    def run(profile: str):
        from ..experiments.executor import execute
        from .trace import get_tracer

        tracer = get_tracer()
        was_enabled = tracer.enabled
        marker = len(tracer.records())
        tracer.enabled = True
        try:
            report = execute(
                [experiment_id], profile=profile, jobs=1, disk_cache=False
            )
        finally:
            tracer.enabled = was_enabled
        return report, tracer.records()[marker:]

    def collect(_profile, payload) -> Dict[str, float]:
        from .summary import summarize_phases

        report, spans = payload
        metrics: Dict[str, float] = {}
        for row in summarize_phases(spans):
            slug = row["phase"].lower().replace(" ", "_")
            metrics[f"phase.{slug}.modelled_s"] = row["dur_us"] / 1e6
            metrics[f"phase.{slug}.operations"] = float(row["operations"])
            metrics[f"phase.{slug}.energy_j"] = float(row["energy_j"])
        manifest = report.manifest
        if manifest.entries:
            metrics["cache.hit_rate"] = float(manifest.cache_hit_rate)
        return metrics

    return Workload(f"exp.{experiment_id}", "experiment", setup, run, collect)


def _build_workloads() -> Dict[str, Workload]:
    workloads = [
        _engine_workload(
            "engine.pagerank", "col",
            lambda engine: engine.pagerank(iterations=1),
        ),
        _engine_workload(
            "engine.sssp", "row", lambda engine: engine.sssp(0)
        ),
        _layout_workload(),
        _shard_scan_workload(),
        _cam_search_workload(),
        _mac_accumulate_workload(),
        _traversal_superstep_workload(),
        _micro_traversal_workload(),
        _hw_pagerank_workload(),
        _incremental_pagerank_workload(),
        _serve_burst_workload(),
        _serve_mutate_workload(),
        _dataplane_convert_workload(),
        _dataplane_open_workload(),
        _dataplane_stream_workload(),
        _experiment_workload("abl-interval"),
        _experiment_workload("abl-xbar"),
        _experiment_workload("fig13"),
        _experiment_workload("table1"),
    ]
    return {w.name: w for w in workloads}


#: Registry of all named workloads.
WORKLOADS: Dict[str, Workload] = _build_workloads()

#: Named suites: (workload names, default profile, default repeats).
SUITES: Dict[str, Tuple[Tuple[str, ...], str, int]] = {
    "quick": (
        ("engine.pagerank", "cam.search", "mac.accumulate",
         "traversal.superstep", "micro.traversal", "hw.pagerank",
         "incremental.pagerank", "exp.abl-interval"),
        "tiny", 3,
    ),
    "kernels": (
        ("engine.pagerank", "engine.sssp", "layout.build", "shard.scan",
         "cam.search", "mac.accumulate", "traversal.superstep",
         "micro.traversal", "hw.pagerank"),
        "bench", 5,
    ),
    "experiments": (
        ("exp.abl-interval", "exp.abl-xbar", "exp.fig13", "exp.table1"),
        "bench", 3,
    ),
    "serve": (("serve.burst", "serve.mutate"), "tiny", 3),
    "dataplane": (
        ("dataplane.convert", "dataplane.open", "dataplane.stream"),
        "tiny", 3,
    ),
    "full": (tuple(WORKLOADS), "bench", 5),
}


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
@dataclass
class WorkloadResult:
    """One workload's measured wall-clock summary and metrics."""

    name: str
    kind: str
    wall_s: Dict[str, Any]
    metrics: Dict[str, float] = field(default_factory=dict)


def _wall_summary(runs: List[float]) -> Dict[str, Any]:
    median = statistics.median(runs)
    mad = statistics.median([abs(r - median) for r in runs])
    return {
        "median_s": median,
        "mad_s": mad,
        "n": len(runs),
        "runs_s": [round(r, 6) for r in runs],
    }


def run_workload(
    workload: Workload,
    profile: str,
    repeats: int,
    warmup: int = 1,
) -> WorkloadResult:
    """Measure one workload: median-of-``repeats`` with MAD noise bound.

    ``warmup`` untimed runs precede the measured ones so one-time costs
    (lazy imports, in-process cache fills) do not pollute the median.
    Metrics are collected from the final timed payload.
    """
    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1, got {repeats}")
    state = workload.setup(profile)
    for _ in range(max(warmup, 0)):
        workload.run(state)
    runs: List[float] = []
    payload = None
    for _ in range(repeats):
        start = time.perf_counter()
        payload = workload.run(state)
        runs.append(time.perf_counter() - start)
    return WorkloadResult(
        name=workload.name,
        kind=workload.kind,
        wall_s=_wall_summary(runs),
        metrics=workload.collect(state, payload),
    )


def make_record(
    suite: str,
    profile: str,
    repeats: int,
    workloads: Dict[str, Dict[str, Any]],
) -> Dict[str, Any]:
    """Assemble one schema-versioned, provenance-stamped record."""
    return {
        "schema": SCHEMA_VERSION,
        "suite": suite,
        "profile": profile,
        "repeats": repeats,
        "created_unix": round(time.time(), 3),
        "git_sha": git_sha(),
        "host": host_fingerprint(),
        "workloads": workloads,
    }


def run_suite(
    suite: str = "quick",
    profile: Optional[str] = None,
    repeats: Optional[int] = None,
    warmup: int = 1,
    out_dir: Optional[str] = None,
) -> Tuple[Dict[str, Any], Optional[str]]:
    """Run a named suite; returns ``(record, path)``.

    When ``out_dir`` is given the record is appended to that
    directory's ``BENCH_<suite>.json`` trajectory (``path`` is then the
    file written; otherwise ``None``).
    """
    try:
        names, default_profile, default_repeats = SUITES[suite]
    except KeyError:
        raise ConfigError(
            f"unknown bench suite {suite!r}; known: {sorted(SUITES)}"
        ) from None
    profile = profile if profile is not None else default_profile
    repeats = repeats if repeats is not None else default_repeats
    log.info(
        "bench.start", suite=suite, profile=profile, repeats=repeats,
        workloads=len(names),
    )
    results: Dict[str, Dict[str, Any]] = {}
    for name in names:
        result = run_workload(WORKLOADS[name], profile, repeats, warmup)
        results[name] = {
            "kind": result.kind,
            "wall_s": result.wall_s,
            "metrics": result.metrics,
        }
        log.debug(
            "bench.workload", workload=name,
            median_s=round(result.wall_s["median_s"], 6),
            mad_s=round(result.wall_s["mad_s"], 6),
        )
    record = make_record(suite, profile, repeats, results)
    path = None
    if out_dir is not None:
        path = append_record(bench_path(out_dir, suite), record)
    log.info(
        "bench.complete", suite=suite, workloads=len(results), path=path,
    )
    return record, path


# ----------------------------------------------------------------------
# The trajectory store
# ----------------------------------------------------------------------
def bench_path(directory: str, suite: str) -> str:
    """The trajectory file for one suite under ``directory``."""
    return os.path.join(directory, f"BENCH_{suite}.json")


def validate_record(record: Any) -> Dict[str, Any]:
    """Check one record against the schema; returns it, raises
    :class:`~repro.errors.ConfigError` on any shape violation."""
    if not isinstance(record, dict):
        raise ConfigError(f"bench record must be an object, got {type(record).__name__}")
    if record.get("schema") != SCHEMA_VERSION:
        raise ConfigError(
            f"bench record schema {record.get('schema')!r} is not the "
            f"supported version {SCHEMA_VERSION}"
        )
    for key, kind in (
        ("suite", str), ("profile", str), ("git_sha", str),
        ("created_unix", (int, float)), ("repeats", int),
        ("host", dict), ("workloads", dict),
    ):
        if not isinstance(record.get(key), kind):
            raise ConfigError(f"bench record field {key!r} is missing or mistyped")
    for name, entry in record["workloads"].items():
        if not isinstance(entry, dict):
            raise ConfigError(f"workload {name!r} entry is not an object")
        wall = entry.get("wall_s")
        if not isinstance(wall, dict):
            raise ConfigError(f"workload {name!r} has no wall_s summary")
        for key in ("median_s", "mad_s", "n"):
            if not isinstance(wall.get(key), (int, float)):
                raise ConfigError(
                    f"workload {name!r} wall_s.{key} is missing or mistyped"
                )
        metrics = entry.get("metrics", {})
        if not isinstance(metrics, dict) or any(
            not isinstance(v, (int, float)) for v in metrics.values()
        ):
            raise ConfigError(
                f"workload {name!r} metrics must map names to numbers"
            )
    return record


def append_record(path: str, record: Dict[str, Any]) -> str:
    """Append one validated record to a trajectory file (created on
    first use); returns ``path``."""
    validate_record(record)
    if os.path.exists(path):
        trajectory = load_trajectory(path)
        if trajectory["suite"] != record["suite"]:
            raise ConfigError(
                f"trajectory {path!r} holds suite "
                f"{trajectory['suite']!r}, not {record['suite']!r}"
            )
    else:
        trajectory = {
            "schema": SCHEMA_VERSION,
            "suite": record["suite"],
            "records": [],
        }
    trajectory["records"].append(record)
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
    return path


def load_trajectory(path: str) -> Dict[str, Any]:
    """Read and validate a ``BENCH_*.json`` trajectory file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ConfigError(f"cannot read bench file {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(
            f"bench file {path!r} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict) or not isinstance(
        payload.get("records"), list
    ):
        raise ConfigError(f"bench file {path!r} has no records array")
    if payload.get("schema") != SCHEMA_VERSION:
        raise ConfigError(
            f"bench file {path!r} schema {payload.get('schema')!r} is not "
            f"the supported version {SCHEMA_VERSION}"
        )
    if not payload["records"]:
        raise ConfigError(f"bench file {path!r} holds no records")
    for record in payload["records"]:
        validate_record(record)
    payload.setdefault("suite", payload["records"][-1]["suite"])
    return payload


def latest_record(trajectory: Dict[str, Any]) -> Dict[str, Any]:
    """The most recent record of a loaded trajectory."""
    return trajectory["records"][-1]


# ----------------------------------------------------------------------
# The comparator
# ----------------------------------------------------------------------
def metric_direction(name: str) -> str:
    """Which way a metric is allowed to move.

    ``"lower"`` — times and energy: growth is a regression.
    ``"higher"`` — efficiency ratios: decay is a regression.
    ``"neutral"`` — raw counts: drift is reported but never fails.
    """
    if name == "wall_s":
        return "lower"
    head = name.split(".", 1)[0]
    if head in ("modelled", "model", "phase") and name.endswith(
        ("_s", "_j")
    ):
        return "lower"
    if name.startswith(("serve.latency_", "serve.engine_run_")):
        return "lower"
    if name in (
        "cache.hit_rate",
        "xbar.occupancy",
        "xbar.full_frac",
        "serve.coalesce_hit_rate",
        "dataplane.balance",
        "hw.active_frac",
        "hw.parity_ok",
        "incremental.speedup",
        "reuse.hit_rate",
    ):
        return "higher"
    if name in ("incremental.full_s", "incremental.incremental_s"):
        # Raw wall times inside the workload body: host-dependent and
        # unguarded by the MAD bound, so they inform but never gate —
        # the speedup ratio is the gated metric.
        return "neutral"
    if name == "hw.imbalance":
        return "lower"
    return "neutral"


@dataclass(frozen=True)
class Delta:
    """One compared metric between two records."""

    workload: str
    metric: str
    baseline: float
    current: float
    direction: str
    verdict: str  # ok | regression | improvement | changed | new | removed
    noise_s: float = 0.0

    @property
    def ratio(self) -> float:
        """current / baseline (inf when the baseline is zero)."""
        if self.baseline == 0:
            return math.inf if self.current else 1.0
        return self.current / self.baseline


def _judge(
    direction: str,
    baseline: float,
    current: float,
    threshold: float,
    noise: float = 0.0,
) -> str:
    if baseline <= 0:
        return "ok" if current == baseline else "changed"
    rel = (current - baseline) / baseline
    moved_up = rel > threshold and (current - baseline) > noise
    moved_down = rel < -threshold and (baseline - current) > noise
    if direction == "lower":
        return "regression" if moved_up else (
            "improvement" if moved_down else "ok"
        )
    if direction == "higher":
        return "regression" if moved_down else (
            "improvement" if moved_up else "ok"
        )
    return "changed" if (moved_up or moved_down) else "ok"


def compare_records(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    noise_k: float = DEFAULT_NOISE_K,
) -> List[Delta]:
    """Noise-aware diff of two records; one :class:`Delta` per metric.

    Wall-clock medians only regress when they move beyond ``threshold``
    relative *and* ``noise_k`` times the larger of the two MADs —
    a jittery machine cannot fail the gate on noise alone. Modelled
    metrics (deterministic) use the threshold alone.
    """
    validate_record(baseline)
    validate_record(current)
    deltas: List[Delta] = []
    base_workloads = baseline["workloads"]
    cur_workloads = current["workloads"]
    for name in sorted(set(base_workloads) | set(cur_workloads)):
        if name not in cur_workloads:
            deltas.append(
                Delta(name, "wall_s", 0.0, 0.0, "neutral", "removed")
            )
            continue
        if name not in base_workloads:
            deltas.append(Delta(name, "wall_s", 0.0, 0.0, "neutral", "new"))
            continue
        base_entry, cur_entry = base_workloads[name], cur_workloads[name]
        base_wall, cur_wall = base_entry["wall_s"], cur_entry["wall_s"]
        noise = noise_k * max(
            float(base_wall["mad_s"]), float(cur_wall["mad_s"])
        )
        deltas.append(
            Delta(
                workload=name,
                metric="wall_s",
                baseline=float(base_wall["median_s"]),
                current=float(cur_wall["median_s"]),
                direction="lower",
                verdict=_judge(
                    "lower", float(base_wall["median_s"]),
                    float(cur_wall["median_s"]), threshold, noise,
                ),
                noise_s=noise,
            )
        )
        base_metrics = base_entry.get("metrics", {})
        cur_metrics = cur_entry.get("metrics", {})
        for metric in sorted(set(base_metrics) & set(cur_metrics)):
            direction = metric_direction(metric)
            base_value = float(base_metrics[metric])
            cur_value = float(cur_metrics[metric])
            deltas.append(
                Delta(
                    workload=name,
                    metric=metric,
                    baseline=base_value,
                    current=cur_value,
                    direction=direction,
                    verdict=_judge(
                        direction, base_value, cur_value, threshold
                    ),
                )
            )
    return deltas


def has_regressions(deltas: List[Delta]) -> bool:
    """True when any compared metric regressed."""
    return any(d.verdict == "regression" for d in deltas)


def render_comparison(
    deltas: List[Delta], threshold: float = DEFAULT_THRESHOLD
) -> str:
    """Human-readable comparison: noteworthy rows plus a tally line."""
    noteworthy = [d for d in deltas if d.verdict != "ok"]
    lines: List[str] = []
    header = (
        f"{'workload':<20} {'metric':<30} {'baseline':>12} "
        f"{'current':>12} {'ratio':>8}  verdict"
    )
    lines.append(header)
    lines.append("-" * len(header))
    if not noteworthy:
        lines.append(
            f"(no metric moved beyond the {threshold:.0%} threshold)"
        )
    for delta in noteworthy:
        ratio = delta.ratio
        ratio_text = "inf" if math.isinf(ratio) else f"{ratio:.2f}x"
        lines.append(
            f"{delta.workload:<20.20} {delta.metric:<30.30} "
            f"{delta.baseline:>12.6g} {delta.current:>12.6g} "
            f"{ratio_text:>8}  {delta.verdict}"
        )
    counts: Dict[str, int] = {}
    for delta in deltas:
        counts[delta.verdict] = counts.get(delta.verdict, 0) + 1
    tally = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
    lines.append("")
    lines.append(f"{len(deltas)} metrics compared: {tally}")
    return "\n".join(lines)
