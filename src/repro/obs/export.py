"""OpenMetrics text exposition of the metrics registry.

Turns a :class:`~repro.obs.metrics.MetricsRegistry` (or a plain
``snapshot()`` mapping persisted to JSON) into the Prometheus /
OpenMetrics text format, so a scrape target or a ``node_exporter``
textfile collector can ingest the reproduction's counters::

    # TYPE repro_executor_runs counter
    repro_executor_runs_total 3
    # TYPE repro_cache_hit_rate gauge
    repro_cache_hit_rate 0.87
    # TYPE repro_executor_experiment_wall_s summary
    repro_executor_experiment_wall_s_count 24
    repro_executor_experiment_wall_s_sum 3.21
    # EOF

Mapping rules: dotted metric names become underscore-separated and get
the ``repro_`` namespace prefix; counters gain the mandated ``_total``
suffix; histograms export as a ``summary`` family (``_count``/``_sum``)
plus companion ``_min``/``_max`` gauges. When rendering from a plain
snapshot the instrument kinds are gone, so scalars export as gauges and
histogram summaries are recognised by their ``count``/``sum`` keys.
"""

from __future__ import annotations

import math
import re
from typing import Any, List, Mapping, Optional, Tuple, Union

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LabeledCounter,
    MetricsRegistry,
)

#: Namespace every exported metric family lives under.
NAMESPACE = "repro"

_INVALID = re.compile(r"[^a-zA-Z0-9_]")

#: OpenMetrics label-value escapes, applied in this order (backslash
#: first so the escapes themselves survive).
_LABEL_ESCAPES = (("\\", "\\\\"), ('"', '\\"'), ("\n", "\\n"))


def escape_label_value(value: Any) -> str:
    """A string safe to place between double quotes in a label.

    The OpenMetrics text format requires backslash, double-quote, and
    line-feed escaped; everything else passes through verbatim.
    """
    text = str(value)
    for raw, escaped in _LABEL_ESCAPES:
        text = text.replace(raw, escaped)
    return text


def metric_name(dotted: str) -> str:
    """An OpenMetrics-legal family name for a dotted registry name."""
    flat = _INVALID.sub("_", dotted.replace(".", "_"))
    if not flat or not (flat[0].isalpha() or flat[0] == "_"):
        flat = f"_{flat}"
    return f"{NAMESPACE}_{flat}"


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, bool):  # bools are ints; refuse the footgun
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _le_label(bound: float) -> str:
    """The ``le`` label value for a bucket bound (``+Inf`` for inf)."""
    if math.isinf(bound):
        return "+Inf"
    return _format_value(bound)


def _exemplar_suffix(
    exemplar: Optional[Tuple[str, float, float]]
) -> str:
    """The ``# {trace_id="..."} value timestamp`` exemplar clause."""
    if exemplar is None:
        return ""
    trace_id, value, ts = exemplar
    return (
        f' # {{trace_id="{escape_label_value(trace_id)}"}} '
        f"{_format_value(value)} {_format_value(round(ts, 3))}"
    )


def _histogram_lines(name: str, histogram: Histogram) -> List[str]:
    """A bucketed histogram family with exemplars.

    Emitted for histograms created with explicit buckets (the serve
    latency family): cumulative ``_bucket`` samples — each carrying the
    freshest exemplar observed in that bucket, which links the bucket
    to a concrete request trace id — then ``_count``/``_sum`` and the
    companion quantile/min/max samples the summary form also exports.
    """
    summary = histogram.summary()
    lines = [
        f"# TYPE {name} histogram",
    ]
    for bound, cumulative, exemplar in histogram.bucket_snapshot():
        lines.append(
            f'{name}_bucket{{le="{_le_label(bound)}"}} '
            f"{_format_value(cumulative)}{_exemplar_suffix(exemplar)}"
        )
    lines.append(
        f"{name}_count {_format_value(int(summary.get('count', 0)))}"
    )
    lines.append(f"{name}_sum {_format_value(summary.get('sum', 0))}")
    for label, key in (("0.5", "p50"), ("0.99", "p99")):
        if key in summary:
            lines.append(
                f'{name}{{quantile="{label}"}} '
                f"{_format_value(summary[key])}"
            )
    for bound_key in ("min", "max"):
        if bound_key in summary:
            lines.append(f"# TYPE {name}_{bound_key} gauge")
            lines.append(
                f"{name}_{bound_key} {_format_value(summary[bound_key])}"
            )
    return lines


def _summary_lines(name: str, summary: Mapping[str, Any]) -> List[str]:
    lines = [
        f"# TYPE {name} summary",
        f"{name}_count {_format_value(int(summary.get('count', 0)))}",
        f"{name}_sum {_format_value(summary.get('sum', 0))}",
    ]
    # Reservoir quantiles ride the summary family as labelled samples
    # (the OpenMetrics summary form Prometheus understands natively);
    # they must stay contiguous with the family's _count/_sum samples.
    for label, key in (("0.5", "p50"), ("0.99", "p99")):
        if key in summary:
            lines.append(
                f'{name}{{quantile="{label}"}} '
                f"{_format_value(summary[key])}"
            )
    for bound in ("min", "max"):
        if bound in summary:
            lines.append(f"# TYPE {name}_{bound} gauge")
            lines.append(
                f"{name}_{bound} {_format_value(summary[bound])}"
            )
    return lines


def render_openmetrics(
    source: Union[MetricsRegistry, Mapping[str, Any]]
) -> str:
    """The registry (or a snapshot mapping) as OpenMetrics text.

    The output always ends with the ``# EOF`` terminator and a trailing
    newline, as the OpenMetrics specification requires.
    """
    lines: List[str] = []
    if isinstance(source, MetricsRegistry):
        for dotted, instrument in sorted(source.instruments().items()):
            name = metric_name(dotted)
            if isinstance(instrument, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(
                    f"{name}_total {_format_value(instrument.value)}"
                )
            elif isinstance(instrument, LabeledCounter):
                lines.append(f"# TYPE {name} counter")
                for key, count in sorted(instrument.series().items()):
                    labels = ",".join(
                        f'{label}="{escape_label_value(value)}"'
                        for label, value in zip(
                            instrument.labelnames, key
                        )
                    )
                    lines.append(
                        f"{name}_total{{{labels}}} "
                        f"{_format_value(count)}"
                    )
            elif isinstance(instrument, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_format_value(instrument.value)}")
            elif isinstance(instrument, Histogram):
                if instrument.buckets is not None:
                    lines.extend(_histogram_lines(name, instrument))
                else:
                    lines.extend(
                        _summary_lines(name, instrument.summary())
                    )
    else:
        for dotted in sorted(source):
            name = metric_name(dotted)
            value = source[dotted]
            if isinstance(value, Mapping) and "count" in value:
                lines.extend(_summary_lines(name, value))
            elif isinstance(value, (int, float)):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_format_value(value)}")
            # Non-numeric snapshot entries (provenance strings) are
            # silently skipped: they are labels, not samples.
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(
    source: Union[MetricsRegistry, Mapping[str, Any]], path: str
) -> str:
    """Render ``source`` and write it to ``path`` (returned)."""
    import os

    payload = render_openmetrics(source)
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
    return path
