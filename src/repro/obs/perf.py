"""Run provenance and profiling: fingerprints, git SHA, cProfile hooks.

Two small facilities the perf-telemetry layer builds on:

* **Provenance** — :func:`host_fingerprint` and :func:`git_sha` stamp a
  benchmark record with enough context to decide whether two records
  are comparable (same interpreter, same numpy, same machine class) and
  which commit produced them. Both degrade gracefully: a missing git
  binary or a non-repo checkout yields ``"unknown"``, never an error.
* **Profiling** — :func:`profiled` wraps a block in :mod:`cProfile` and
  dumps a binary pstats file; :func:`top_self_time` /
  :func:`render_profile_table` turn such a dump into the top-N
  self-time table that ``repro trace-summary --pstats`` appends.

Like the rest of :mod:`repro.obs`, this module imports nothing from the
rest of the package.
"""

from __future__ import annotations

import cProfile
import os
import platform
import pstats
import subprocess
import sys
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

#: Rows shown by default in the self-time table.
DEFAULT_TOP = 15


def host_fingerprint() -> Dict[str, Any]:
    """Machine/interpreter identity for benchmark records.

    Deliberately coarse: enough to tell "same class of machine" apart,
    without anything secret (no hostnames, no MAC addresses).
    """
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep
        numpy_version = "unknown"
    return {
        "platform": platform.system().lower() or "unknown",
        "machine": platform.machine() or "unknown",
        "python": platform.python_version(),
        "implementation": platform.python_implementation().lower(),
        "numpy": numpy_version,
        "cpu_count": os.cpu_count() or 1,
    }


def git_sha(cwd: Optional[str] = None) -> str:
    """The current commit's short SHA, or ``"unknown"``.

    Never raises: benchmark records must be writable from tarball
    checkouts and environments without git.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


# ----------------------------------------------------------------------
# cProfile hooks
# ----------------------------------------------------------------------
@contextmanager
def profiled(path: Optional[str]) -> Iterator[Optional[cProfile.Profile]]:
    """Profile the enclosed block into a binary pstats file at ``path``.

    ``path=None`` is the disabled form: the block runs unprofiled and
    the context yields ``None``, so call sites need no branching. The
    dump directory is created on demand. Note that :mod:`cProfile`
    observes only the calling process — pool workers show up as the
    time spent waiting on their futures.
    """
    if path is None:
        yield None
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        profiler.dump_stats(path)


def top_self_time(
    stats_path: str, top: int = DEFAULT_TOP
) -> List[Dict[str, Any]]:
    """The ``top`` functions by self time from a pstats dump.

    Each row carries ``function`` (``file:line(name)``), ``calls``,
    ``self_s``, and ``cumulative_s``. Raises ``ValueError`` on an
    unreadable or malformed dump (the CLI maps that to a clean exit).
    """
    try:
        stats = pstats.Stats(stats_path)
    except Exception as exc:
        raise ValueError(
            f"cannot read profile stats {stats_path!r}: {exc}"
        ) from exc
    rows: List[Dict[str, Any]] = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        filename, line, name = func
        rows.append(
            {
                "function": f"{os.path.basename(filename)}:{line}({name})",
                "calls": int(nc),
                "self_s": float(tt),
                "cumulative_s": float(ct),
            }
        )
    rows.sort(key=lambda r: r["self_s"], reverse=True)
    return rows[: max(top, 0)]


def render_profile_table(rows: List[Dict[str, Any]]) -> str:
    """The self-time rows as the text table trace-summary appends."""
    header = (
        f"{'function':<48} {'calls':>10} {'self time':>12} "
        f"{'cumulative':>12}"
    )
    lines = [header, "-" * len(header)]
    if not rows:
        lines.append("(no profile samples)")
        return "\n".join(lines)
    for row in rows:
        lines.append(
            f"{row['function']:<48.48} {row['calls']:>10,} "
            f"{row['self_s']:>11.4f}s {row['cumulative_s']:>11.4f}s"
        )
    return "\n".join(lines)


def self_version() -> str:
    """Interpreter tag used in log lines (``cpython-3.11``)."""
    return (
        f"{platform.python_implementation().lower()}-"
        f"{sys.version_info.major}.{sys.version_info.minor}"
    )
