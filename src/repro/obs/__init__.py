"""Observability: tracing, metrics, and structured logging.

Three small, dependency-free facilities the rest of the package hooks
into:

* :mod:`repro.obs.trace` — a span-based tracer. Runs, experiments,
  shard groups, and the five controller phases become nested spans;
  a finished buffer exports as JSONL or Chrome trace-event JSON
  (loadable in Perfetto / ``chrome://tracing``). Disabled by default
  and zero-cost when disabled.
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges, and histograms. The layout cache, the experiment executor,
  and the engines publish into it.
* :mod:`repro.obs.log` — a structured (JSON lines on stderr) logger
  with ``$REPRO_LOG_LEVEL`` / ``--log-level`` control, replacing the
  ad-hoc ``print(..., file=sys.stderr)`` calls.

Import convention: everything in this package imports nothing from the
rest of ``repro``, so any module — engines, cache, CLI — may import it
without cycles. The one exception is :mod:`repro.obs.summary`, which
reads phase names from :mod:`repro.core.controller` (a leaf module).
"""

from .log import configure_logging, get_logger, set_level
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    observe_event_counts,
    reset_metrics,
)
from .trace import (
    PHASE_CATEGORY,
    TRACE_FORMATS,
    Tracer,
    get_tracer,
    reset_tracer,
)

__all__ = [
    "configure_logging",
    "get_logger",
    "set_level",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "observe_event_counts",
    "reset_metrics",
    "PHASE_CATEGORY",
    "TRACE_FORMATS",
    "Tracer",
    "get_tracer",
    "reset_tracer",
]
