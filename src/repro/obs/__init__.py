"""Observability: tracing, metrics, and structured logging.

Three small, dependency-free facilities the rest of the package hooks
into:

* :mod:`repro.obs.trace` — a span-based tracer. Runs, experiments,
  shard groups, and the five controller phases become nested spans;
  a finished buffer exports as JSONL or Chrome trace-event JSON
  (loadable in Perfetto / ``chrome://tracing``). Disabled by default
  and zero-cost when disabled.
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges, and histograms. The layout cache, the experiment executor,
  and the engines publish into it.
* :mod:`repro.obs.log` — a structured (JSON lines on stderr) logger
  with ``$REPRO_LOG_LEVEL`` / ``--log-level`` control, replacing the
  ad-hoc ``print(..., file=sys.stderr)`` calls.

Request-scoped observability for the serve stack builds on the same
base:

* :mod:`repro.obs.context` — W3C ``traceparent`` trace/span ids in a
  ``contextvars`` variable, so spans and log lines stamp the current
  request's trace id without argument plumbing;
* :mod:`repro.obs.flight` — a tail-sampled flight recorder: spans of
  every in-flight request accumulate per trace, and errored / slow /
  sampled traces enter a bounded keep ring (``/debug/flight``,
  ``repro trace-grep``);
* :mod:`repro.obs.slo` — availability and p99-latency error budgets
  with multi-window burn rates, exported as gauges at scrape time
  (``repro slo-report``).

On top of those sit the perf-telemetry layers:

* :mod:`repro.obs.perf` — host fingerprints, git SHAs, and cProfile
  hooks (``--prof`` / ``trace-summary --pstats``);
* :mod:`repro.obs.export` — OpenMetrics/Prometheus text exposition of
  the metrics registry (``repro metrics-export``);
* :mod:`repro.obs.bench` — the benchmark harness, the
  ``BENCH_<suite>.json`` trajectory store, and the noise-aware
  regression comparator (``repro bench`` / ``bench-compare``).

Import convention: the three base facilities import nothing from the
rest of ``repro``, so any module — engines, cache, CLI — may import
them without cycles. :mod:`repro.obs.summary` reads phase names from
:mod:`repro.core.controller` (a leaf module), and
:mod:`repro.obs.bench` sits *above* the whole stack — its workloads
import engines and the executor lazily, inside their bodies.
"""

from .context import (
    TRACEPARENT_HEADER,
    TraceContext,
    current_trace_id,
    from_traceparent,
    new_root,
    parse_traceparent,
)
from .export import render_openmetrics, write_openmetrics
from .flight import FlightRecorder
from .hw import (
    HW_COUNTERS,
    ArrayCounters,
    HwMonitor,
    build_report,
    check_parity,
    publish_counters,
    render_report,
    utilization_summary,
)
from .log import configure_logging, get_logger, set_level
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LabeledCounter,
    MetricsRegistry,
    get_metrics,
    observe_event_counts,
    reset_metrics,
)
from .perf import git_sha, host_fingerprint
from .slo import SLOConfig, SLOTracker, render_slo_report
from .trace import (
    PHASE_CATEGORY,
    TRACE_FORMATS,
    Tracer,
    get_tracer,
    reset_tracer,
)

__all__ = [
    "TRACEPARENT_HEADER",
    "TraceContext",
    "current_trace_id",
    "from_traceparent",
    "new_root",
    "parse_traceparent",
    "FlightRecorder",
    "SLOConfig",
    "SLOTracker",
    "render_slo_report",
    "render_openmetrics",
    "write_openmetrics",
    "git_sha",
    "host_fingerprint",
    "configure_logging",
    "get_logger",
    "set_level",
    "HW_COUNTERS",
    "ArrayCounters",
    "HwMonitor",
    "build_report",
    "check_parity",
    "publish_counters",
    "render_report",
    "utilization_summary",
    "Counter",
    "Gauge",
    "Histogram",
    "LabeledCounter",
    "MetricsRegistry",
    "get_metrics",
    "observe_event_counts",
    "reset_metrics",
    "PHASE_CATEGORY",
    "TRACE_FORMATS",
    "Tracer",
    "get_tracer",
    "reset_tracer",
]
