"""SLO accounting: availability and latency error budgets, burn rates.

The serve stack's health signal is phrased the SRE way. Two objectives:

* **Availability** — at most ``1 - availability_target`` of requests
  may fail server-side (timeouts, shed load, internal errors; client
  rejections such as over-quota do not spend the budget).
* **Latency** — at most ``1 - latency_quantile`` of requests may run
  longer than ``latency_target_s`` (i.e. "p99 below the target").

For each configured window the tracker reports a **burn rate**: the
ratio of the observed bad fraction to the budgeted bad fraction. Burn
rate 1.0 means the budget is being consumed exactly as fast as it
accrues; 10 means ten times too fast — the classic multi-window
multi-burn-rate alerting inputs. The shortest window reacts to an
active incident, the longest smooths it into budget-remaining terms.

The tracker is its own small reservoir — a bounded deque of
``(timestamp, ok, latency)`` samples pruned past the longest window —
because the registry's :class:`~repro.obs.metrics.Histogram`
reservoirs are count-bounded, not time-bounded, and a burn rate is
meaningless without a time denominator. The per-window p99 reported
here uses the same nearest-rank rule as the histogram reservoirs.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from .metrics import MetricsRegistry, _nearest_rank

#: Hard cap on retained samples however long the windows are.
MAX_SAMPLES = 65536


@dataclass(frozen=True)
class SLOConfig:
    """The service-level objectives the tracker measures against."""

    #: Fraction of requests that must succeed (server-side).
    availability_target: float = 0.999
    #: Latency objective: ``latency_quantile`` of requests complete
    #: within this many seconds.
    latency_target_s: float = 1.0
    #: The quantile the latency objective is stated at (0.99 == p99).
    latency_quantile: float = 0.99
    #: ``(seconds, label)`` windows, shortest first.
    windows: Tuple[Tuple[int, str], ...] = field(
        default=((60, "1m"), (300, "5m"), (3600, "1h"))
    )

    def __post_init__(self) -> None:
        if not 0.0 < self.availability_target < 1.0:
            raise ValueError(
                f"availability_target must be in (0, 1), got "
                f"{self.availability_target}"
            )
        if self.latency_target_s <= 0:
            raise ValueError(
                f"latency_target_s must be > 0, got "
                f"{self.latency_target_s}"
            )
        if not 0.0 < self.latency_quantile < 1.0:
            raise ValueError(
                f"latency_quantile must be in (0, 1), got "
                f"{self.latency_quantile}"
            )
        if not self.windows:
            raise ValueError("at least one window is required")

    @property
    def availability_budget(self) -> float:
        """Budgeted bad fraction for availability."""
        return 1.0 - self.availability_target

    @property
    def latency_budget(self) -> float:
        """Budgeted slow fraction for latency."""
        return 1.0 - self.latency_quantile


class SLOTracker:
    """Sliding-window error-budget accounting over request outcomes.

    ``record`` is O(1) amortized; ``snapshot``/``export_to`` scan the
    retained samples (bounded by the longest window and
    :data:`MAX_SAMPLES`) and are meant for scrape/report time, not the
    per-request hot path.
    """

    def __init__(self, config: Optional[SLOConfig] = None) -> None:
        self.config = config if config is not None else SLOConfig()
        self._samples: "deque[Tuple[float, bool, float]]" = deque(
            maxlen=MAX_SAMPLES
        )
        self._lock = threading.Lock()
        self._longest_s = max(s for s, _ in self.config.windows)

    # ------------------------------------------------------------------
    def record(
        self, ok: bool, latency_s: float, now: Optional[float] = None
    ) -> None:
        """Account one finished request."""
        now = time.time() if now is None else now
        with self._lock:
            self._samples.append((now, bool(ok), float(latency_s)))
            # Amortized prune: drop samples past the longest window.
            horizon = now - self._longest_s
            while self._samples and self._samples[0][0] < horizon:
                self._samples.popleft()

    # ------------------------------------------------------------------
    def window_stats(
        self, seconds: float, now: Optional[float] = None
    ) -> Dict[str, Any]:
        """Outcome statistics over the trailing ``seconds`` window."""
        now = time.time() if now is None else now
        horizon = now - seconds
        cfg = self.config
        with self._lock:
            window = [s for s in self._samples if s[0] >= horizon]
        total = len(window)
        errors = sum(1 for _, ok, _ in window if not ok)
        slow = sum(
            1
            for _, _, latency in window
            if latency > cfg.latency_target_s
        )
        latencies = sorted(latency for _, _, latency in window)
        error_rate = errors / total if total else 0.0
        slow_rate = slow / total if total else 0.0
        return {
            "window_s": seconds,
            "total": total,
            "errors": errors,
            "slow": slow,
            "availability": 1.0 - error_rate,
            "p99_s": _nearest_rank(latencies, 0.99),
            # Burn rate: observed bad fraction / budgeted bad fraction.
            "availability_burn_rate": error_rate
            / cfg.availability_budget,
            "latency_burn_rate": slow_rate / cfg.latency_budget,
        }

    def snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Per-window stats plus budget-remaining over the longest
        window (the ``/stats`` payload and ``repro slo-report`` input).
        """
        now = time.time() if now is None else now
        cfg = self.config
        windows = {
            label: self.window_stats(seconds, now)
            for seconds, label in cfg.windows
        }
        longest_label = max(cfg.windows)[1]
        longest = windows[longest_label]
        return {
            "objectives": {
                "availability_target": cfg.availability_target,
                "latency_target_s": cfg.latency_target_s,
                "latency_quantile": cfg.latency_quantile,
            },
            "windows": windows,
            # Budget remaining over the longest window: 1 - burn.
            # Negative means the budget for that period is blown.
            "availability_budget_remaining": 1.0
            - longest["availability_burn_rate"],
            "latency_budget_remaining": 1.0
            - longest["latency_burn_rate"],
        }

    def export_to(
        self, registry: MetricsRegistry, now: Optional[float] = None
    ) -> None:
        """Publish burn-rate and budget gauges into a registry.

        Gauge names are stable (``slo.availability.burn_rate.<label>``
        etc.), so repeated exports overwrite in place — call this at
        scrape time to keep ``/metrics`` fresh.
        """
        snapshot = self.snapshot(now)
        for label, stats in snapshot["windows"].items():
            registry.gauge(f"slo.availability.burn_rate.{label}").set(
                round(stats["availability_burn_rate"], 6)
            )
            registry.gauge(f"slo.latency.burn_rate.{label}").set(
                round(stats["latency_burn_rate"], 6)
            )
            registry.gauge(f"slo.requests.{label}").set(stats["total"])
        registry.gauge("slo.availability.budget_remaining").set(
            round(snapshot["availability_budget_remaining"], 6)
        )
        registry.gauge("slo.latency.budget_remaining").set(
            round(snapshot["latency_budget_remaining"], 6)
        )


def render_slo_report(snapshot: Dict[str, Any]) -> str:
    """Text table for ``repro slo-report`` from a tracker snapshot."""
    objectives = snapshot.get("objectives", {})
    lines = [
        "objectives: availability >= "
        f"{objectives.get('availability_target', 0):.4%}  "
        f"p{100 * objectives.get('latency_quantile', 0.99):g} latency "
        f"<= {objectives.get('latency_target_s', 0)}s",
        "",
    ]
    header = (
        f"{'window':<8} {'requests':>9} {'errors':>7} {'slow':>6} "
        f"{'avail':>9} {'p99':>9} {'avail burn':>11} {'lat burn':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, stats in snapshot.get("windows", {}).items():
        lines.append(
            f"{label:<8} {stats['total']:>9,} {stats['errors']:>7,} "
            f"{stats['slow']:>6,} {stats['availability']:>9.4%} "
            f"{stats['p99_s']:>8.3f}s "
            f"{stats['availability_burn_rate']:>11.2f} "
            f"{stats['latency_burn_rate']:>9.2f}"
        )
    lines.append("")
    lines.append(
        "budget remaining (longest window): availability "
        f"{snapshot.get('availability_budget_remaining', 0.0):+.2%}, "
        f"latency {snapshot.get('latency_budget_remaining', 0.0):+.2%}"
    )
    return "\n".join(lines)
