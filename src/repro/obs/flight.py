"""Flight recorder: a bounded ring of recently completed request traces.

A long-lived serving process cannot keep every span it ever emitted,
but the traces worth keeping — the error, the p99.9 straggler, the
request that was in flight when something crashed — are exactly the
ones a full-buffer export would have aged out. The
:class:`FlightRecorder` solves this with **tail-based sampling**: spans
for every in-flight request are accumulated per trace id (fed from the
tracer through a sink, see :meth:`Tracer.add_sink
<repro.obs.trace.Tracer.add_sink>`), and only when the request
*finishes* — when its status and latency are known — does the recorder
decide whether the trace enters the bounded keep ring:

* every errored request is kept (``keep-on-error``);
* every request slower than ``slow_threshold_s`` is kept
  (``keep-on-slow``);
* one in ``keep_every`` ordinary requests is kept as a baseline
  (``sampled``), so the ring always holds healthy traces to compare
  against.

The ring is a ``deque(maxlen=capacity)`` — O(1) per finished request,
bounded memory forever. :meth:`dump` (the ``/debug/flight`` endpoint
payload) and :meth:`find` (``repro trace-grep``) read it back.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

#: Per-trace span cap: a runaway kernel cannot balloon one entry.
MAX_SPANS_PER_TRACE = 512


class FlightRecorder:
    """Tail-sampled ring buffer of completed request traces.

    Thread-safe: spans arrive from engine worker threads while
    begin/finish run on the event loop.

    Parameters
    ----------
    capacity:
        Keep-ring size (completed traces retained).
    slow_threshold_s:
        Latency at or above which a finished trace is always kept.
    keep_every:
        Keep every Nth ordinary (fast, successful) trace; ``0``
        disables baseline sampling entirely.
    """

    def __init__(
        self,
        capacity: int = 256,
        slow_threshold_s: float = 1.0,
        keep_every: int = 16,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.slow_threshold_s = slow_threshold_s
        self.keep_every = keep_every
        self._ring: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self._active: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.Lock()
        self.started = 0
        self.finished = 0
        self.kept = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def begin(self, trace_id: Optional[str], **fields: Any) -> None:
        """Open span accumulation for one request."""
        if not trace_id:
            return
        entry = {
            "trace_id": trace_id,
            "started_unix": round(time.time(), 6),
            "spans": [],
            **fields,
        }
        with self._lock:
            self._active[trace_id] = entry
            self.started += 1

    def annotate(self, trace_id: Optional[str], **fields: Any) -> None:
        """Attach fields (e.g. a coalescing leader link) mid-flight."""
        if not trace_id:
            return
        with self._lock:
            entry = self._active.get(trace_id)
            if entry is not None:
                entry.update(fields)

    def observe_span(self, record: Dict[str, Any]) -> None:
        """Tracer sink: route a completed span to its active trace.

        Spans without a ``trace`` field, or for traces the recorder is
        not accumulating, are ignored — the recorder never grows state
        for requests it was not told about.
        """
        trace_id = record.get("trace")
        if not trace_id:
            return
        with self._lock:
            entry = self._active.get(trace_id)
            if entry is None:
                return
            if len(entry["spans"]) < MAX_SPANS_PER_TRACE:
                entry["spans"].append(record)

    def finish(
        self,
        trace_id: Optional[str],
        status: str = "ok",
        error: Optional[str] = None,
        latency_s: float = 0.0,
        **fields: Any,
    ) -> bool:
        """Close a request and apply the tail-sampling keep decision.

        Returns whether the trace entered the keep ring. Unknown trace
        ids (a request that errored before :meth:`begin`, e.g. in the
        HTTP layer) get a synthetic zero-span entry so the failure is
        still on record.
        """
        if not trace_id:
            return False
        with self._lock:
            entry = self._active.pop(trace_id, None)
            if entry is None:
                entry = {
                    "trace_id": trace_id,
                    "started_unix": round(time.time(), 6),
                    "spans": [],
                }
            entry.update(fields)
            entry["status"] = status
            if error is not None:
                entry["error"] = error
            entry["latency_s"] = round(float(latency_s), 6)
            entry["finished_unix"] = round(time.time(), 6)
            self.finished += 1
            reason = self._keep_reason(status, latency_s)
            if reason is None:
                self.dropped += 1
                return False
            entry["kept_because"] = reason
            self._ring.append(entry)
            self.kept += 1
            return True

    def _keep_reason(
        self, status: str, latency_s: float
    ) -> Optional[str]:
        """Why a finished trace stays, or ``None`` to drop it."""
        if status != "ok":
            return "error"
        if latency_s >= self.slow_threshold_s:
            return "slow"
        if self.keep_every and (self.finished - 1) % self.keep_every == 0:
            # The 1st, (N+1)th, ... finished request is the baseline
            # sample (finished was already incremented above).
            return "sampled"
        return None

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def find(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """The kept (or still-active) entry for a trace id, if any."""
        with self._lock:
            for entry in reversed(self._ring):
                if entry["trace_id"] == trace_id:
                    return dict(entry)
            active = self._active.get(trace_id)
            return dict(active) if active is not None else None

    def entries(self) -> List[Dict[str, Any]]:
        """Kept traces, oldest first (shallow copies)."""
        with self._lock:
            return [dict(entry) for entry in self._ring]

    def dump(self) -> Dict[str, Any]:
        """The full ``/debug/flight`` payload."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "slow_threshold_s": self.slow_threshold_s,
                "keep_every": self.keep_every,
                "started": self.started,
                "finished": self.finished,
                "kept": self.kept,
                "dropped": self.dropped,
                "active": sorted(self._active),
                "entries": [dict(entry) for entry in self._ring],
            }

    def describe(self) -> Dict[str, Any]:
        """Small stats payload for ``/stats`` (no trace bodies)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "kept": self.kept,
                "dropped": self.dropped,
                "active": len(self._active),
                "resident": len(self._ring),
            }

    def clear(self) -> None:
        """Drop every kept and active trace (tests, shutdown)."""
        with self._lock:
            self._ring.clear()
            self._active.clear()
