"""Per-array hardware performance counters and energy attribution.

:class:`~repro.events.EventLog` aggregates one global total per event
kind, which is exactly right for validating engines against each other
— and exactly wrong for asking *which* crossbar was hot, which arrays
sat idle through a superstep, and where ADC saturation concentrated.
This module adds that second axis: an :class:`HwMonitor` is a counter
board with one slot per physical array; the array models
(:mod:`repro.xbar`) mirror every event-log increment into their slot
when a handle is attached, so per-array counters sum back to the global
totals *by construction* (:func:`check_parity` proves it per run).

Design constraints, in order:

* **Near-zero overhead when disabled.** Arrays carry a single ``hw``
  attribute, ``None`` by default; every instrumentation site is one
  ``if ... is not None`` guard. No monitor, no cost.
* **Vectorized attribution on the gang paths.** The
  :class:`~repro.xbar.cam_array.CamBank` /
  :class:`~repro.xbar.mac_array.MacBank` fast paths resolve a whole
  superstep in one call; their per-member attribution is a
  ``np.add.at`` scatter, not a Python loop per query.
* **The same event vocabulary.** Counter names are the
  :class:`~repro.events.EventLog` field names (the array-attributable
  subset in :data:`HW_COUNTERS`), so joining with the
  :class:`~repro.energy.ledger.EnergyLedger` constants and the
  five-phase controller mapping needs no translation table.

On top of the board sit the reporting joins: per-array occupancy
histograms at the MAC accumulation bound (the 16-row / 6-bit-ADC limit
of Table I), superstep-binned utilization timelines
(:meth:`HwMonitor.end_step`, driven by
:class:`~repro.core.micro.MicroGaaSX`), per-array/per-phase energy
attribution priced with :class:`~repro.config.TechnologyParams`, and
publication as per-bank-labelled OpenMetrics counters
(:func:`publish_counters` → ``repro_hw_<counter>_total{bank=...,
array=...}``). The ``repro hw-report`` CLI renders all of it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import ConfigError
from .context import current_trace_id

#: Array-attributable event counters, in :class:`~repro.events.EventLog`
#: vocabulary. SFU ops and buffer accesses are deliberately absent: the
#: scalar pipeline and SRAM buffers are shared units, not per-array
#: hardware, so they stay global-only.
HW_COUNTERS = (
    "cam_searches",
    "cam_row_writes",
    "cam_cell_writes",
    "mac_ops",
    "mac_rows_accumulated",
    "mac_cell_ops",
    "row_writes",
    "cell_writes",
    "adc_conversions",
    "adc_saturations",
    "dac_conversions",
)

#: The five-phase mapping used for per-array energy attribution —
#: mirrors :func:`repro.core.controller.build_plan`: loading owns the
#: programming energy, CAM search the search energy, MAC the analog
#: compute plus both converters. Initialization and the (shared) SFU
#: phase carry no array-attributable energy.
PHASE_ENERGY_CATEGORIES = {
    "Data loading": ("write_j",),
    "CAM search": ("cam_j",),
    "MAC operation": ("mac_j", "adc_j", "dac_j"),
}


class ArrayCounters:
    """One array's handle onto the monitor: a slot id plus helpers.

    Attached to a :class:`~repro.xbar.cam_array.CamCrossbar`,
    :class:`~repro.xbar.mac_array.MacCrossbar`, or
    :class:`~repro.xbar.adc.ADC` as its ``hw`` attribute; every method
    forwards to the owning monitor with the slot pre-bound.
    """

    __slots__ = ("monitor", "slot", "bank", "index")

    def __init__(
        self, monitor: "HwMonitor", slot: int, bank: str, index: int
    ) -> None:
        self.monitor = monitor
        self.slot = slot
        self.bank = bank
        self.index = index

    def add(self, name: str, amount: int) -> None:
        """Mirror one event-log increment into this array's slot."""
        self.monitor._add(self.slot, name, amount)

    def record_chunk(self, rows: int, cols: int) -> None:
        """One MAC accumulation chunk: ``rows`` word lines, ``cols``
        engaged bit lines (the per-chunk site of
        :meth:`~repro.xbar.mac_array.MacCrossbar.mac`)."""
        self.monitor._record_chunk(self.slot, rows, cols)

    def record_batch(self, hit_counts: np.ndarray, num_cols: int) -> None:
        """The batched-MAC site: one selective MAC per hit-count entry,
        chunked at the accumulate limit — same totals as
        :meth:`~repro.xbar.mac_array.MacCrossbar._record_batch_macs`."""
        self.monitor.record_batch_many(
            np.full(np.asarray(hit_counts).shape, self.slot, dtype=np.int64),
            hit_counts,
            num_cols,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayCounters({self.bank}/{self.index}, slot={self.slot})"


class HwMonitor:
    """A per-array hardware counter board.

    Parameters
    ----------
    accumulate_limit:
        The MAC accumulation bound occupancy histograms are binned
        against (16 rows in Table I — the 6-bit ADC sizing argument).
        Chunk sizes larger than the bound grow the histogram rather
        than fail, so a monitor survives non-default geometries.

    One monitor observes **one run**: create it, hand it to the engine
    (``MicroGaaSX(graph, hw=monitor)``), run, then read reports. The
    run's global :class:`~repro.events.EventLog` is the parity
    reference (:func:`check_parity`). The monitor stamps the ambient
    :func:`repro.obs.context.current_trace_id` at creation so a report
    generated inside a traced request carries the request's identity.
    """

    def __init__(self, accumulate_limit: int = 16) -> None:
        if accumulate_limit < 1:
            raise ConfigError(
                f"accumulate_limit must be >= 1, got {accumulate_limit}"
            )
        self.accumulate_limit = int(accumulate_limit)
        self.trace_id: Optional[str] = current_trace_id()
        self._n = 0
        capacity = 8
        self._banks: List[str] = []
        self._indices: List[int] = []
        self._counts: Dict[str, np.ndarray] = {
            name: np.zeros(capacity, dtype=np.int64) for name in HW_COUNTERS
        }
        #: per-slot occupancy histogram: column r = MAC ops engaging
        #: exactly r rows.
        self._hist = np.zeros(
            (capacity, self.accumulate_limit + 1), dtype=np.int64
        )
        #: superstep timeline: per-step per-slot operation deltas.
        self._steps: List[Dict[str, Any]] = []
        self._step_base = np.zeros(capacity, dtype=np.int64)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, bank: str, index: Optional[int] = None) -> ArrayCounters:
        """Allocate a slot; returns the handle to attach to the array.

        ``bank`` labels the gang the array belongs to (``"cam"`` /
        ``"mac"`` in the micro engine); ``index`` its position within
        the bank (defaults to the per-bank registration order).
        """
        if index is None:
            index = sum(1 for b in self._banks if b == bank)
        slot = self._n
        if slot >= self._counts[HW_COUNTERS[0]].size:
            self._grow_slots()
        self._banks.append(str(bank))
        self._indices.append(int(index))
        self._n += 1
        return ArrayCounters(self, slot, str(bank), int(index))

    def _grow_slots(self) -> None:
        capacity = max(8, 2 * self._counts[HW_COUNTERS[0]].size)
        for name, arr in self._counts.items():
            grown = np.zeros(capacity, dtype=np.int64)
            grown[: arr.size] = arr
            self._counts[name] = grown
        grown_hist = np.zeros((capacity, self._hist.shape[1]), dtype=np.int64)
        grown_hist[: self._hist.shape[0]] = self._hist
        self._hist = grown_hist
        grown_base = np.zeros(capacity, dtype=np.int64)
        grown_base[: self._step_base.size] = self._step_base
        self._step_base = grown_base

    def _grow_hist_width(self, width: int) -> None:
        if width > self._hist.shape[1]:
            grown = np.zeros((self._hist.shape[0], width), dtype=np.int64)
            grown[:, : self._hist.shape[1]] = self._hist
            self._hist = grown

    @property
    def num_arrays(self) -> int:
        """Registered array count."""
        return self._n

    # ------------------------------------------------------------------
    # Recording (called from the array models' instrumentation sites)
    # ------------------------------------------------------------------
    def _add(self, slot: int, name: str, amount: int) -> None:
        self._counts[name][slot] += amount

    def _record_chunk(self, slot: int, rows: int, cols: int) -> None:
        c = self._counts
        c["mac_ops"][slot] += 1
        c["mac_rows_accumulated"][slot] += rows
        c["mac_cell_ops"][slot] += rows * cols
        c["dac_conversions"][slot] += rows
        c["adc_conversions"][slot] += cols
        self._grow_hist_width(rows + 1)
        self._hist[slot, rows] += 1

    def add_many(self, slots: np.ndarray, name: str, amounts) -> None:
        """Scatter-add per-query amounts onto per-query slots.

        The gang-bank attribution primitive: ``slots`` may repeat
        (several queries routed to one member) and ``amounts`` may be a
        scalar broadcast over them.
        """
        slots = np.asarray(slots, dtype=np.int64)
        np.add.at(
            self._counts[name],
            slots,
            np.broadcast_to(
                np.asarray(amounts, dtype=np.int64), slots.shape
            ),
        )

    def record_batch_many(
        self,
        slots: np.ndarray,
        hit_counts: np.ndarray,
        num_cols: int,
    ) -> None:
        """Attribute a batch of selective MACs, one per hit-count entry,
        each running on ``slots[i]``.

        Chunking semantics match
        :meth:`repro.xbar.mac_array.MacCrossbar._record_batch_macs`: a
        query with ``k`` hits splits into ``k // limit`` full chunks
        plus a remainder chunk; each chunk is one MAC op charging its
        row count of DAC activations and one ADC sample per engaged
        column. All scatters are vectorized.
        """
        slots = np.asarray(slots, dtype=np.int64)
        hits = np.asarray(hit_counts, dtype=np.int64)
        if slots.shape != hits.shape:
            raise ConfigError("need exactly one slot per hit count")
        if hits.size == 0:
            return
        limit = self.accumulate_limit
        full = hits // limit
        rem = hits % limit
        ops = full + (rem > 0)
        c = self._counts
        np.add.at(c["mac_ops"], slots, ops)
        np.add.at(c["mac_rows_accumulated"], slots, hits)
        np.add.at(c["mac_cell_ops"], slots, hits * int(num_cols))
        np.add.at(c["dac_conversions"], slots, hits)
        np.add.at(c["adc_conversions"], slots, ops * int(num_cols))
        self._grow_hist_width(limit + 1)
        np.add.at(self._hist[:, limit], slots, full)
        partial = rem > 0
        if partial.any():
            np.add.at(self._hist, (slots[partial], rem[partial]), 1)

    # ------------------------------------------------------------------
    # Superstep timeline
    # ------------------------------------------------------------------
    def _ops_cursor(self) -> np.ndarray:
        n = self._n
        return (
            self._counts["cam_searches"][:n] + self._counts["mac_ops"][:n]
        )

    def end_step(self, label: Optional[str] = None) -> Dict[str, Any]:
        """Close one superstep bin; returns (and records) its row.

        The engine calls this at each superstep / iteration boundary;
        the row holds the per-array operation deltas (CAM searches +
        MAC ops) since the previous boundary, plus the fraction of
        arrays that did any work at all — the utilization-timeline
        signal a mapping optimizer trains against.
        """
        cursor = self._ops_cursor()
        delta = cursor - self._step_base[: self._n]
        self._step_base[: self._n] = cursor
        row = {
            "step": len(self._steps),
            "label": label if label is not None else str(len(self._steps)),
            "ops": delta.tolist(),
            "total_ops": int(delta.sum()),
            "active_arrays": int((delta > 0).sum()),
            "active_frac": (
                float((delta > 0).mean()) if delta.size else 0.0
            ),
        }
        self._steps.append(row)
        return row

    @property
    def timeline(self) -> List[Dict[str, Any]]:
        """The recorded superstep bins, in order."""
        return list(self._steps)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def counts(self, name: str) -> np.ndarray:
        """Per-array values of one counter (copy, length
        :attr:`num_arrays`)."""
        if name not in self._counts:
            raise ConfigError(
                f"unknown hw counter {name!r}; known: {list(HW_COUNTERS)}"
            )
        return self._counts[name][: self._n].copy()

    def totals(self) -> Dict[str, int]:
        """Each counter summed over every array."""
        return {
            name: int(self._counts[name][: self._n].sum())
            for name in HW_COUNTERS
        }

    def rows_hist(self) -> np.ndarray:
        """Occupancy histograms, shape ``(num_arrays, width)``."""
        return self._hist[: self._n].copy()

    def occupancy(self) -> List[Dict[str, float]]:
        """Per-array row-utilization stats at the accumulation bound.

        Same definitions as
        :meth:`repro.events.EventLog.rows_occupancy`: mean engaged rows,
        the fraction of the window used, and the fraction of full
        (at-limit) operations. Arrays with no MAC ops report zeros.
        """
        limit = self.accumulate_limit
        hist = self._hist[: self._n]
        totals = hist.sum(axis=1)
        weights = np.arange(hist.shape[1], dtype=np.int64)
        rows = (hist * weights).sum(axis=1)
        out = []
        for i in range(self._n):
            total = int(totals[i])
            mean_rows = rows[i] / total if total else 0.0
            full = int(hist[i, limit:].sum()) if limit < hist.shape[1] else 0
            out.append(
                {
                    "mean_rows": float(mean_rows),
                    "occupancy": float(mean_rows / limit),
                    "full_frac": float(full / total) if total else 0.0,
                }
            )
        return out

    def labels(self) -> List[Dict[str, str]]:
        """Per-slot ``{"bank": ..., "array": ...}`` label sets."""
        return [
            {"bank": self._banks[i], "array": str(self._indices[i])}
            for i in range(self._n)
        ]

    # ------------------------------------------------------------------
    # Energy attribution
    # ------------------------------------------------------------------
    def energy(self, tech=None) -> List[Dict[str, float]]:
        """Per-array energy attribution in joules.

        Prices each array's counters with the same
        :class:`~repro.config.TechnologyParams` constants the
        :class:`~repro.energy.ledger.EnergyLedger` uses, split into the
        ledger's dynamic categories plus the five-phase roll-up of
        :data:`PHASE_ENERGY_CATEGORIES`. Static power and the shared
        SFU/buffer energies are whole-chip costs and excluded; summing
        any category over all arrays reproduces the ledger's figure for
        that category exactly.
        """
        if tech is None:
            from ..config import TechnologyParams

            tech = TechnologyParams()
        n = self._n
        c = {name: self._counts[name][:n] for name in HW_COUNTERS}
        cam_j = c["cam_searches"] * tech.cam_search_energy_j
        mac_j = c["mac_ops"] * tech.mac_energy_j
        write_j = (
            c["cell_writes"] * tech.write_cell_energy_j
            + c["cam_cell_writes"] * tech.cam_cell_write_energy_j
        )
        adc_j = c["adc_conversions"] * tech.adc_energy_j
        dac_j = c["dac_conversions"] * tech.dac_energy_j
        out = []
        for i in range(n):
            categories = {
                "cam_j": float(cam_j[i]),
                "mac_j": float(mac_j[i]),
                "write_j": float(write_j[i]),
                "adc_j": float(adc_j[i]),
                "dac_j": float(dac_j[i]),
            }
            phases = {
                phase: float(
                    sum(categories[cat] for cat in cats)
                )
                for phase, cats in PHASE_ENERGY_CATEGORIES.items()
            }
            categories["total_j"] = float(sum(phases.values()))
            categories["phases"] = phases
            out.append(categories)
        return out


# ----------------------------------------------------------------------
# Parity: per-array sums vs the run's global EventLog
# ----------------------------------------------------------------------
def check_parity(monitor: HwMonitor, events) -> Dict[str, Any]:
    """Prove the attribution sums back to the global totals.

    Compares every :data:`HW_COUNTERS` sum — and the occupancy
    histogram — against the run's :class:`~repro.events.EventLog`.
    Returns ``{"ok": bool, "mismatches": {counter: {"hw": ...,
    "events": ...}}}``; an empty mismatch map means every array-side
    increment was mirrored and nothing was double-counted.
    """
    totals = monitor.totals()
    mismatches: Dict[str, Any] = {}
    event_counts = events.as_dict()
    for name in HW_COUNTERS:
        if totals[name] != int(event_counts.get(name, 0)):
            mismatches[name] = {
                "hw": totals[name],
                "events": int(event_counts.get(name, 0)),
            }
    hw_hist = monitor.rows_hist().sum(axis=0)
    ev_hist = events.mac_rows_hist
    width = max(hw_hist.size, ev_hist.size)
    a = np.zeros(width, dtype=np.int64)
    b = np.zeros(width, dtype=np.int64)
    a[: hw_hist.size] = hw_hist
    b[: ev_hist.size] = ev_hist
    if not np.array_equal(a, b):
        mismatches["mac_rows_hist"] = {
            "hw": hw_hist.tolist(),
            "events": ev_hist.tolist(),
        }
    return {"ok": not mismatches, "mismatches": mismatches}


# ----------------------------------------------------------------------
# Report assembly
# ----------------------------------------------------------------------
def utilization_summary(monitor: HwMonitor) -> Dict[str, Any]:
    """Load-balance statistics over the per-array operation counts.

    ``imbalance`` is max-over-mean of per-array operations (1.0 =
    perfectly balanced; the AutoGMap-style objective), ``active_frac``
    the fraction of arrays that did any work, ``cv`` the coefficient of
    variation.
    """
    n = monitor.num_arrays
    ops = (
        monitor.counts("cam_searches") + monitor.counts("mac_ops")
        if n
        else np.zeros(0, dtype=np.int64)
    )
    total = int(ops.sum())
    if n == 0 or total == 0:
        return {
            "arrays": n,
            "total_ops": total,
            "imbalance": 0.0,
            "active_frac": 0.0,
            "cv": 0.0,
            "busiest": None,
        }
    mean = total / n
    return {
        "arrays": n,
        "total_ops": total,
        "imbalance": float(ops.max() / mean),
        "active_frac": float((ops > 0).mean()),
        "cv": float(ops.std() / mean),
        "busiest": int(ops.argmax()),
    }


def build_report(
    monitor: HwMonitor, events=None, tech=None
) -> Dict[str, Any]:
    """The full hw-counter report as one JSON-serializable dict.

    Per-array rows (labels, counters, occupancy, energy), the
    utilization summary, the superstep timeline, the counter totals,
    and — when the run's ``events`` log is supplied — the parity
    verdict.
    """
    labels = monitor.labels()
    occupancy = monitor.occupancy()
    energy = monitor.energy(tech)
    arrays = []
    for i in range(monitor.num_arrays):
        arrays.append(
            {
                **labels[i],
                "counters": {
                    name: int(monitor.counts(name)[i])
                    for name in HW_COUNTERS
                },
                "occupancy": occupancy[i],
                "energy": energy[i],
                "rows_hist": monitor.rows_hist()[i].tolist(),
            }
        )
    report: Dict[str, Any] = {
        "accumulate_limit": monitor.accumulate_limit,
        "trace_id": monitor.trace_id,
        "arrays": arrays,
        "totals": monitor.totals(),
        "utilization": utilization_summary(monitor),
        "timeline": monitor.timeline,
    }
    if events is not None:
        report["parity"] = check_parity(monitor, events)
    return report


#: Shade ramp for the occupancy heatmap, sparse to dense.
_HEAT = " .:-=+*#%@"


def _heat_char(value: float) -> str:
    index = min(int(value * len(_HEAT)), len(_HEAT) - 1)
    return _HEAT[index]


def render_report(report: Dict[str, Any]) -> str:
    """The ``repro hw-report`` text rendering.

    An occupancy heatmap (one row per array, one column per
    rows-engaged bin, shaded by that bin's share of the array's MAC
    ops), the per-array utilization/energy table, the imbalance
    summary, and the parity verdict.
    """
    limit = int(report["accumulate_limit"])
    arrays = report["arrays"]
    lines: List[str] = []
    lines.append(
        f"occupancy heatmap (rows engaged per MAC op, bound={limit}; "
        f"shade = share of the array's ops)"
    )
    lines.append(f"{'array':<10} 1{'':{max(limit - 2, 0)}}{limit}")
    for entry in arrays:
        hist = np.asarray(entry["rows_hist"], dtype=np.float64)
        total = hist.sum()
        width = max(hist.size, limit + 1)
        padded = np.zeros(width)
        padded[: hist.size] = hist
        shares = padded / total if total else padded
        cells = "".join(_heat_char(s) for s in shares[1 : limit + 1])
        label = f"{entry['bank']}/{entry['array']}"
        lines.append(f"{label:<10} {cells}")
    lines.append("")
    header = (
        f"{'array':<10} {'searches':>10} {'mac ops':>9} {'rows':>9} "
        f"{'adc':>9} {'sat':>6} {'occup':>7} {'full':>6} {'energy':>11}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for entry in arrays:
        c = entry["counters"]
        occ = entry["occupancy"]
        label = f"{entry['bank']}/{entry['array']}"
        lines.append(
            f"{label:<10} {c['cam_searches']:>10,} {c['mac_ops']:>9,} "
            f"{c['mac_rows_accumulated']:>9,} {c['adc_conversions']:>9,} "
            f"{c['adc_saturations']:>6,} {occ['occupancy']:>7.1%} "
            f"{occ['full_frac']:>6.1%} "
            f"{entry['energy']['total_j'] * 1e9:>9.2f}nJ"
        )
    util = report["utilization"]
    lines.append("")
    lines.append(
        f"{util['arrays']} arrays, {util['total_ops']:,} ops: "
        f"imbalance={util['imbalance']:.2f}x (max/mean), "
        f"active={util['active_frac']:.1%}, cv={util['cv']:.2f}"
    )
    timeline = report.get("timeline") or []
    if timeline:
        active = [row["active_frac"] for row in timeline]
        lines.append(
            f"timeline: {len(timeline)} steps, mean active "
            f"{sum(active) / len(active):.1%}, "
            f"sparkline |{''.join(_heat_char(a) for a in active)}|"
        )
    parity = report.get("parity")
    if parity is not None:
        if parity["ok"]:
            lines.append(
                "parity: ok (per-array sums equal the global EventLog)"
            )
        else:
            lines.append(
                f"parity: FAILED on {sorted(parity['mismatches'])}"
            )
    if report.get("trace_id"):
        lines.append(f"trace: {report['trace_id']}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Metrics publication
# ----------------------------------------------------------------------
def publish_counters(monitor: HwMonitor, registry=None) -> None:
    """Fold the board into per-bank-labelled ``hw.*`` counters.

    Each :data:`HW_COUNTERS` name becomes one labelled counter family
    ``hw.<name>`` with ``(bank, array)`` label sets, rendered by
    :mod:`repro.obs.export` as
    ``repro_hw_<name>_total{bank="...",array="..."}``. Counters are
    cumulative: publish a monitor once, at end of run.
    """
    if registry is None:
        from .metrics import get_metrics

        registry = get_metrics()
    labels = monitor.labels()
    for name in HW_COUNTERS:
        values = monitor.counts(name)
        if not values.any():
            continue
        family = registry.labeled_counter(
            f"hw.{name}", labelnames=("bank", "array")
        )
        for i, value in enumerate(values):
            if value:
                family.inc(int(value), **labels[i])
