"""Structured logging: key=value JSON lines on stderr.

Every operational message in the package goes through a
:class:`StructuredLogger`::

    from repro.obs.log import get_logger

    log = get_logger("repro.executor")
    log.info("run.complete", experiments=24, wall_time_s=3.2)

which emits one JSON object per line to ``sys.stderr``::

    {"ts": 1754500000.123456, "level": "info", "logger":
     "repro.executor", "event": "run.complete", "experiments": 24,
     "wall_time_s": 3.2}

stdout is never touched, so report payloads stay byte-stable however
verbose the run is. The threshold comes from ``$REPRO_LOG_LEVEL`` at
import (default ``info``) and can be changed at runtime with
:func:`set_level` (the CLI's ``--log-level`` does exactly that).
Messages below the threshold return before any formatting or timestamp
work — a ``debug`` call in a hot loop costs one dict lookup and one
integer compare.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, Optional, TextIO

from .context import current_trace_id

#: Recognised level names, least to most severe.
LEVELS: Dict[str, int] = {
    "debug": 10,
    "info": 20,
    "warning": 30,
    "error": 40,
}

#: Environment variable holding the default threshold.
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

_DEFAULT_LEVEL = "info"

_threshold = LEVELS[_DEFAULT_LEVEL]
_threshold_name = _DEFAULT_LEVEL


def _resolve(level: str) -> int:
    try:
        return LEVELS[level.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; expected one of "
            f"{sorted(LEVELS)}"
        ) from None


def set_level(level: str) -> None:
    """Set the process-wide threshold (``debug``..``error``)."""
    global _threshold, _threshold_name
    _threshold = _resolve(level)
    _threshold_name = level.lower()


def get_level() -> str:
    """The current threshold name."""
    return _threshold_name


def configure_logging(level: Optional[str] = None) -> str:
    """Apply ``level``, else ``$REPRO_LOG_LEVEL``, else ``info``.

    Returns the threshold name that ended up in effect. Called by the
    CLI before any work; safe to call repeatedly.
    """
    if level is None:
        level = os.environ.get(LOG_LEVEL_ENV) or _DEFAULT_LEVEL
    set_level(level)
    return get_level()


class StructuredLogger:
    """Named emitter of JSON-line records.

    ``stream`` defaults to ``sys.stderr`` resolved at emit time, so
    pytest's capture and shell redirection both see the records.
    """

    __slots__ = ("name", "_stream")

    def __init__(self, name: str, stream: Optional[TextIO] = None) -> None:
        self.name = name
        self._stream = stream

    def _emit(self, level: str, event: str, fields: Dict[str, Any]) -> None:
        record: Dict[str, Any] = {
            "ts": round(time.time(), 6),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        # Every line emitted while serving a traced request carries its
        # trace id, so `repro trace-grep` and log search line up.
        trace_id = current_trace_id()
        if trace_id is not None:
            record["trace_id"] = trace_id
        record.update(fields)
        stream = self._stream if self._stream is not None else sys.stderr
        print(json.dumps(record, default=str), file=stream)

    # ------------------------------------------------------------------
    def debug(self, event: str, **fields: Any) -> None:
        if _threshold <= LEVELS["debug"]:
            self._emit("debug", event, fields)

    def info(self, event: str, **fields: Any) -> None:
        if _threshold <= LEVELS["info"]:
            self._emit("info", event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        if _threshold <= LEVELS["warning"]:
            self._emit("warning", event, fields)

    def error(self, event: str, **fields: Any) -> None:
        if _threshold <= LEVELS["error"]:
            self._emit("error", event, fields)

    def is_enabled_for(self, level: str) -> bool:
        """Whether records at ``level`` currently pass the threshold."""
        return _threshold <= _resolve(level)


_loggers: Dict[str, StructuredLogger] = {}


def get_logger(name: str) -> StructuredLogger:
    """Get (or create) the named logger."""
    logger = _loggers.get(name)
    if logger is None:
        logger = StructuredLogger(name)
        _loggers[name] = logger
    return logger


# Pick up $REPRO_LOG_LEVEL once at import; a bad value falls back to
# the default rather than breaking import.
try:
    configure_logging()
except ValueError:
    set_level(_DEFAULT_LEVEL)
