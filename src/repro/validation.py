"""Programmatic validation battery.

Runs the repository's core correctness cross-checks in one call — the
same properties the test suite asserts, packaged so an adopter (or a CI
smoke job) can validate an installation or a modified configuration:

1. engine-vs-golden-reference numerics for every kernel,
2. engine-vs-array-level-micro event equality (GaaS-X *and* GraphR),
3. GaaS-X-vs-GraphR functional agreement,
4. Table I totals against the paper.

Use from code (:func:`run_validation`) or the CLI
(``python -m repro validate``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .baselines import reference
from .baselines.graphr import GraphREngine
from .baselines.graphr.micro import MicroGraphR
from .config import (
    ArchConfig,
    GraphRConfig,
    TABLE_I_TOTAL_AREA_MM2,
    TABLE_I_TOTAL_POWER_W,
)
from .core.engine import GaaSXEngine
from .core.micro import MicroGaaSX
from .energy.report import totals
from .graphs.generators import rmat


@dataclass
class Check:
    """One validation check's outcome."""

    name: str
    passed: bool
    detail: str = ""


@dataclass
class ValidationReport:
    """All check outcomes plus a summary."""

    checks: List[Check] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every check passed."""
        return all(c.passed for c in self.checks)

    def render(self) -> str:
        """Human-readable report."""
        lines = []
        for check in self.checks:
            mark = "PASS" if check.passed else "FAIL"
            suffix = f"  ({check.detail})" if check.detail else ""
            lines.append(f"[{mark}] {check.name}{suffix}")
        verdict = "all checks passed" if self.passed else "FAILURES PRESENT"
        lines.append(f"-- {verdict} ({len(self.checks)} checks)")
        return "\n".join(lines)


def _dist_equal(a: np.ndarray, b: np.ndarray) -> bool:
    return bool(
        np.array_equal(
            np.nan_to_num(a, posinf=-1.0), np.nan_to_num(b, posinf=-1.0)
        )
    )


def run_validation(
    num_vertices: int = 96,
    num_edges: int = 420,
    seed: int = 5,
    progress: Optional[Callable[[str], None]] = None,
) -> ValidationReport:
    """Execute the full battery on a seeded random graph."""
    report = ValidationReport()

    def check(name: str, condition: bool, detail: str = "") -> None:
        report.checks.append(Check(name, bool(condition), detail))
        if progress is not None:
            progress(f"{name}: {'ok' if condition else 'FAILED'}")

    graph = rmat(num_vertices, num_edges, seed=seed)
    engine = GaaSXEngine(graph)
    graphr = GraphREngine(graph)

    # 1. Engine vs golden references.
    pr = engine.pagerank(iterations=8)
    check(
        "pagerank matches reference",
        np.allclose(pr.ranks, reference.pagerank(graph, iterations=8)),
    )
    bfs = engine.bfs(0)
    check(
        "bfs matches reference",
        _dist_equal(bfs.distances, reference.bfs(graph, 0)),
    )
    sssp = engine.sssp(0)
    check(
        "sssp matches Dijkstra reference",
        _dist_equal(sssp.distances, reference.sssp(graph, 0)),
    )

    # 2. Event-level equality against the array-level simulators.
    small_config = ArchConfig(num_crossbars=3)
    fast = GaaSXEngine(graph, config=small_config).pagerank(iterations=2)
    micro_ranks, micro_events = MicroGaaSX(
        graph, config=small_config
    ).pagerank(iterations=2)
    check(
        "GaaS-X engine/micro event equality",
        fast.stats.events.counters_equal(micro_events),
    )
    check(
        "GaaS-X engine/micro numeric equality",
        np.allclose(fast.ranks, micro_ranks),
    )
    graphr_config = GraphRConfig(num_crossbars=2, tile_size=8)
    graphr_fast = GraphREngine(graph, config=graphr_config).pagerank(
        iterations=2
    )
    _, graphr_micro_events = MicroGraphR(
        graph, config=graphr_config
    ).pagerank(iterations=2)
    check(
        "GraphR engine/micro event equality",
        graphr_fast.stats.events.counters_equal(graphr_micro_events),
    )

    # 3. Cross-engine functional agreement.
    check(
        "GaaS-X and GraphR agree on pagerank",
        np.allclose(pr.ranks, graphr.pagerank(iterations=8).ranks),
    )
    check(
        "GaaS-X and GraphR agree on sssp",
        _dist_equal(sssp.distances, graphr.sssp(0).distances),
    )

    # 4. The headline direction and the Table I totals.
    graphr_pr = graphr.pagerank(iterations=8)
    check(
        "GaaS-X faster and greener than GraphR",
        graphr_pr.stats.total_time_s > pr.stats.total_time_s
        and graphr_pr.stats.total_energy_j > pr.stats.total_energy_j,
        detail=(
            f"speedup {graphr_pr.stats.total_time_s / pr.stats.total_time_s:.1f}x"
        ),
    )
    area, power = totals()
    check(
        "Table I totals reproduce",
        abs(area - TABLE_I_TOTAL_AREA_MM2) / TABLE_I_TOTAL_AREA_MM2 < 0.02
        and abs(power - TABLE_I_TOTAL_POWER_W) / TABLE_I_TOTAL_POWER_W < 0.02,
        detail=f"{area:.2f} mm^2 / {power:.2f} W",
    )
    return report
