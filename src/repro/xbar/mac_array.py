"""MAC crossbar: selective analog multiply-accumulate.

One :class:`MacCrossbar` models a single ReRAM array from Table I
(128 rows x 16 value columns, 2 bits/cell, so 8 bit-slices per value).
Its defining operation here is the *selective* MAC of Section III: the
hit vector from a CAM search enables a subset of word lines and the
bit-line currents sum only those rows. At most ``accumulate_limit``
rows are summed per operation (the paper fixes 16 so a 6-bit ADC
suffices); larger hit sets are split into multiple operations, each
counted in the event log.

Two numeric modes:

* ``exact`` (default) — float64 arithmetic. Used when validating the
  engine against golden references; all events are still counted.
* quantized — the honest ISAAC-style pipeline: weights in fixed point
  across 2-bit cells, inputs streamed one bit per phase, every per-phase
  per-slice bit-line sum pushed through the 6-bit ADC, partial sums
  recombined by shift-and-add.

Event conventions (shared with the vectorized engine): one MAC op with
``k`` enabled rows and ``m`` engaged columns records ``k`` DAC
activations, ``m`` ADC samples and ``k * m`` cell-level multiplies.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import CapacityError, ConfigError
from ..events import EventLog
from .adc import ADC
from .cells import FixedPointFormat, slice_values


class MacCrossbar:
    """A single MAC-capable crossbar array."""

    def __init__(
        self,
        rows: int = 128,
        cols: int = 16,
        value_format: Optional[FixedPointFormat] = None,
        cell_bits: int = 2,
        accumulate_limit: int = 16,
        adc_bits: int = 6,
        exact: bool = True,
        events: Optional[EventLog] = None,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise ConfigError("crossbar dimensions must be positive")
        if accumulate_limit <= 0:
            raise ConfigError("accumulate_limit must be positive")
        self.rows = rows
        self.cols = cols
        self.fmt = value_format if value_format is not None else FixedPointFormat()
        if self.fmt.total_bits % cell_bits != 0:
            raise ConfigError("value bits must be a multiple of cell_bits")
        self.cell_bits = cell_bits
        self.accumulate_limit = accumulate_limit
        self.exact = exact
        self.events = events if events is not None else EventLog()
        self._adc = ADC(adc_bits, events=self.events)
        self._hw = None
        self._weights = np.zeros((rows, cols), dtype=np.float64)
        self._codes = np.zeros((rows, cols), dtype=np.int64)

    @property
    def hw(self):
        """Optional per-array counter handle
        (:class:`repro.obs.hw.ArrayCounters`); ``None`` keeps the model
        monitor-free. Every event-log increment in this class has a
        guarded mirror so per-array sums match the global log by
        construction. Assigning also attaches the internal ADC, so
        quantized-mode conversions (and saturations) land on the same
        array slot.
        """
        return self._hw

    @hw.setter
    def hw(self, handle) -> None:
        self._hw = handle
        self._adc.hw = handle

    @property
    def bit_slices(self) -> int:
        """Physical cells per stored value."""
        return self.fmt.total_bits // self.cell_bits

    # ------------------------------------------------------------------
    # Programming
    # ------------------------------------------------------------------
    def write(
        self,
        row_indices: np.ndarray,
        col_indices: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Program individual cells (scattered write).

        Counts one row-level write pulse per distinct row touched and
        ``bit_slices`` programmed cells per value.
        """
        row_indices = np.asarray(row_indices, dtype=np.int64)
        col_indices = np.asarray(col_indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if not (row_indices.shape == col_indices.shape == values.shape):
            raise ConfigError("write arrays must have matching shapes")
        if row_indices.size and (
            row_indices.max() >= self.rows or col_indices.max() >= self.cols
        ):
            raise CapacityError("write outside crossbar bounds")
        codes = self.fmt.quantize(values)
        self._codes[row_indices, col_indices] = codes
        stored = self.fmt.dequantize(codes) if not self.exact else values
        self._weights[row_indices, col_indices] = stored
        self.events.row_writes += int(np.unique(row_indices).size)
        self.events.cell_writes += int(values.size) * self.bit_slices
        if self._hw is not None:
            self._hw.add("row_writes", int(np.unique(row_indices).size))
            self._hw.add("cell_writes", int(values.size) * self.bit_slices)

    def write_rows(self, row_indices: np.ndarray, values: np.ndarray) -> None:
        """Program whole rows: ``values`` has shape ``(len(rows), cols)``."""
        row_indices = np.asarray(row_indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (row_indices.size, self.cols):
            raise ConfigError(
                f"expected values of shape ({row_indices.size}, {self.cols})"
            )
        if row_indices.size and row_indices.max() >= self.rows:
            raise CapacityError("row index outside crossbar bounds")
        codes = self.fmt.quantize(values)
        self._codes[row_indices] = codes
        self._weights[row_indices] = (
            values if self.exact else self.fmt.dequantize(codes)
        )
        self.events.row_writes += int(row_indices.size)
        self.events.cell_writes += int(values.size) * self.bit_slices
        if self._hw is not None:
            self._hw.add("row_writes", int(row_indices.size))
            self._hw.add("cell_writes", int(values.size) * self.bit_slices)

    def stored_values(self) -> np.ndarray:
        """Copy of the stored value matrix (as the array would compute)."""
        return self._weights.copy()

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    def _normalize_mask(self, mask: Optional[np.ndarray], size: int) -> np.ndarray:
        """Accept boolean masks or index arrays; return sorted indices."""
        if mask is None:
            return np.arange(size)
        mask = np.asarray(mask)
        if mask.dtype == bool:
            if mask.shape != (size,):
                raise ConfigError("boolean mask has the wrong length")
            return np.flatnonzero(mask)
        indices = mask.astype(np.int64, copy=False)
        if indices.size > 1:
            indices = np.sort(indices)
            keep = np.empty(indices.size, dtype=bool)
            keep[0] = True
            np.not_equal(indices[1:], indices[:-1], out=keep[1:])
            indices = indices[keep]
        if indices.size and (indices[0] < 0 or indices[-1] >= size):
            raise ConfigError("mask index outside crossbar bounds")
        return indices

    def mac(
        self,
        inputs: np.ndarray,
        row_mask: Optional[np.ndarray] = None,
        col_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Selective MAC: ``out[c] = sum_{r in mask} inputs[r] * W[r, c]``.

        ``inputs`` has one entry per crossbar row (entries outside the
        mask are ignored). Returns a dense vector of length ``cols``
        with zeros in unengaged columns. Hit sets larger than the
        accumulate limit are split into multiple operations whose
        partial sums the SFU adds digitally (counted as ADC samples per
        op, not extra SFU ops — the shift-and-add units handle it).
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.shape != (self.rows,):
            raise ConfigError(f"inputs must have length {self.rows}")
        rows = self._normalize_mask(row_mask, self.rows)
        cols = self._normalize_mask(col_mask, self.cols)
        out = np.zeros(self.cols, dtype=np.float64)
        if rows.size == 0 or cols.size == 0:
            return out
        for start in range(0, rows.size, self.accumulate_limit):
            chunk = rows[start : start + self.accumulate_limit]
            self.events.record_mac(chunk.size, cols.size)
            self.events.dac_conversions += int(chunk.size)
            self.events.adc_conversions += int(cols.size)
            if self._hw is not None:
                self._hw.record_chunk(int(chunk.size), int(cols.size))
            if self.exact:
                partial = inputs[chunk] @ self._weights[np.ix_(chunk, cols)]
            else:
                partial = self._quantized_mac(inputs, chunk, cols)
            out[cols] += partial
        return out

    def _record_batch_macs(
        self,
        hit_counts: np.ndarray,
        num_cols: int,
        attribute: bool = True,
    ) -> None:
        """Log the events of one selective MAC per hit-count entry.

        Identical totals (including the Figure 13 histogram) to running
        the queries one at a time: each query with ``k`` hits splits
        into ``k // limit`` full chunks plus a remainder chunk, each
        chunk one MAC op charging its row count of DAC activations and
        one ADC sample per engaged column.

        ``attribute=False`` skips the per-array hw mirror: the gang
        bank charges the shared event log through its reference member
        but attributes per-array work itself (the queries ran on many
        members, not on the reference).
        """
        if attribute and self._hw is not None:
            self._hw.record_batch(hit_counts, num_cols)
        limit = self.accumulate_limit
        full = hit_counts // limit
        rem = hit_counts % limit
        full_total = int(full.sum())
        if full_total:
            op_rows = np.concatenate(
                [np.full(full_total, limit, dtype=np.int64), rem[rem > 0]]
            )
        else:
            op_rows = rem[rem > 0]
        if op_rows.size == 0:
            return
        self.events.record_mac(op_rows, num_cols)
        self.events.dac_conversions += int(hit_counts.sum())
        self.events.adc_conversions += int(op_rows.size) * num_cols

    def mac_many(
        self,
        inputs: np.ndarray,
        hit_rows: np.ndarray,
        col_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batched selective MAC: one :meth:`mac` per hit-matrix row.

        ``hit_rows`` has shape ``(q, rows)`` (CAM hit vectors, e.g.
        from :meth:`~repro.xbar.cam_array.CamCrossbar.search_many`);
        the result has shape ``(q, cols)`` with row ``i`` equal to
        ``mac(inputs, row_mask=hit_rows[i], col_mask)`` up to partial-
        sum association order. Event totals are identical to the
        sequential calls. Quantized mode falls back to the per-query
        bit-serial pipeline.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.shape != (self.rows,):
            raise ConfigError(f"inputs must have length {self.rows}")
        hit_rows = np.asarray(hit_rows, dtype=bool)
        if hit_rows.ndim != 2 or hit_rows.shape[1] != self.rows:
            raise ConfigError(f"hit matrix must have {self.rows} columns")
        if not self.exact:
            if hit_rows.shape[0] == 0:
                return np.zeros((0, self.cols), dtype=np.float64)
            return np.stack(
                [
                    self.mac(inputs, row_mask=hits, col_mask=col_mask)
                    for hits in hit_rows
                ]
            )
        cols = self._normalize_mask(col_mask, self.cols)
        out = np.zeros((hit_rows.shape[0], self.cols), dtype=np.float64)
        if hit_rows.shape[0] == 0 or cols.size == 0:
            return out
        out[:, cols] = hit_rows @ (inputs[:, None] * self._weights[:, cols])
        self._record_batch_macs(hit_rows.sum(axis=1), int(cols.size))
        return out

    def mac_rowwise_many(
        self,
        inputs: np.ndarray,
        hit_rows: np.ndarray,
        col_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batched per-row MAC: one :meth:`mac_rowwise` per query.

        ``inputs`` has shape ``(q, cols)`` (each query drives its own
        column inputs — e.g. its source vertex's distance) and
        ``hit_rows`` shape ``(q, rows)``; the result has shape
        ``(q, rows)``, row ``i`` equal to ``mac_rowwise(inputs[i],
        row_mask=hit_rows[i], col_mask)``. Like :meth:`mac_rowwise`,
        the two-operand SpMV-add runs at full precision in both modes
        (weights are read at their stored values), so no quantized
        fallback is needed.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        hit_rows = np.asarray(hit_rows, dtype=bool)
        if hit_rows.ndim != 2 or hit_rows.shape[1] != self.rows:
            raise ConfigError(f"hit matrix must have {self.rows} columns")
        if inputs.shape != (hit_rows.shape[0], self.cols):
            raise ConfigError(
                f"inputs must have shape ({hit_rows.shape[0]}, {self.cols})"
            )
        cols = self._normalize_mask(col_mask, self.cols)
        if hit_rows.shape[0] == 0 or cols.size == 0:
            return np.zeros((hit_rows.shape[0], self.rows), dtype=np.float64)
        candidates = inputs[:, cols] @ self._weights[:, cols].T
        self._record_batch_macs(hit_rows.sum(axis=1), int(cols.size))
        return np.where(hit_rows, candidates, 0.0)

    def mac_transposed(
        self,
        inputs: np.ndarray,
        col_mask: Optional[np.ndarray] = None,
        row_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Column-direction MAC on a transposable crossbar.

        ``out[r] = sum_{c in mask} inputs[c] * W[r, c]`` — used when the
        accumulation runs over vertex-attribute columns (collaborative
        filtering's feature vectors, Section III-A's "transposable
        crossbars"). Accumulation chunks apply to columns here.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.shape != (self.cols,):
            raise ConfigError(f"inputs must have length {self.cols}")
        cols = self._normalize_mask(col_mask, self.cols)
        rows = self._normalize_mask(row_mask, self.rows)
        out = np.zeros(self.rows, dtype=np.float64)
        if rows.size == 0 or cols.size == 0:
            return out
        for start in range(0, cols.size, self.accumulate_limit):
            chunk = cols[start : start + self.accumulate_limit]
            self.events.record_mac(chunk.size, rows.size)
            self.events.dac_conversions += int(chunk.size)
            self.events.adc_conversions += int(rows.size)
            if self._hw is not None:
                self._hw.record_chunk(int(chunk.size), int(rows.size))
            if self.exact:
                partial = self._weights[np.ix_(rows, chunk)] @ inputs[chunk]
            else:
                partial = self._quantized_mac_t(inputs, rows, chunk)
            out[rows] += partial
        return out

    def preset(self, values: np.ndarray) -> None:
        """Initialize the whole array without programming events.

        Models factory/initialization-time constants such as the
        all-ones column BFS multiplies distances against (Section IV:
        BFS runs "without the overhead of loading edge weights into MAC
        crossbars but setting the edge weight columns to a fixed value
        of 1").
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.rows, self.cols):
            raise ConfigError(
                f"preset expects shape ({self.rows}, {self.cols})"
            )
        codes = self.fmt.quantize(values)
        self._codes[:] = codes
        self._weights[:] = values if self.exact else self.fmt.dequantize(codes)

    def mac_rowwise(
        self,
        inputs: np.ndarray,
        row_mask: Optional[np.ndarray] = None,
        col_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-row MAC: ``out[r] = sum_{c in mask} inputs[c] * W[r, c]``
        for each enabled row — the SpMV-add shape of SSSP/BFS
        (Figure 9b: every enabled edge row yields its own candidate
        ``alpha x weight + dist(u) x 1``).

        Event convention matches the engine's op-level abstraction: one
        MAC op per ``accumulate_limit`` rows enabled, recording the
        enabled-row count in the Figure 13 histogram and charging one
        ADC sample per engaged column per op.

        In quantized mode the weights are read at their stored
        fixed-point values; the two-operand SpMV-add itself is computed
        at full precision (its operands — a distance and a weight — are
        digital inputs, not bit-line sums needing an ADC).
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.shape != (self.cols,):
            raise ConfigError(f"inputs must have length {self.cols}")
        rows = self._normalize_mask(row_mask, self.rows)
        cols = self._normalize_mask(col_mask, self.cols)
        out = np.zeros(self.rows, dtype=np.float64)
        if rows.size == 0 or cols.size == 0:
            return out
        for start in range(0, rows.size, self.accumulate_limit):
            chunk = rows[start : start + self.accumulate_limit]
            self.events.record_mac(chunk.size, cols.size)
            self.events.dac_conversions += int(chunk.size)
            self.events.adc_conversions += int(cols.size)
            if self._hw is not None:
                self._hw.record_chunk(int(chunk.size), int(cols.size))
            out[chunk] = self._weights[np.ix_(chunk, cols)] @ inputs[cols]
        return out

    # ------------------------------------------------------------------
    # Quantized pipeline
    # ------------------------------------------------------------------
    def _quantized_mac(
        self, inputs: np.ndarray, rows: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        """Bit-serial, bit-sliced MAC through the real ADC path."""
        in_codes = self.fmt.quantize(inputs[rows])  # (k,)
        w_slices = slice_values(
            self._codes[np.ix_(rows, cols)], self.cell_bits, self.bit_slices
        )  # (k, m, slices) most-significant first
        total = np.zeros(cols.size, dtype=np.int64)
        for phase in range(self.fmt.total_bits - 1, -1, -1):
            bits = (in_codes >> phase) & 1  # (k,)
            if not bits.any():
                continue
            for s in range(self.bit_slices):
                analog = bits @ w_slices[:, :, s]  # per-column sums
                digital = self._adc.convert(analog)
                shift = phase + (self.bit_slices - 1 - s) * self.cell_bits
                total += digital.astype(np.int64) << shift
        # Combined scale: input frac bits + weight frac bits.
        return total / (self.fmt.scale * self.fmt.scale)

    def _quantized_mac_t(
        self, inputs: np.ndarray, rows: np.ndarray, cols: np.ndarray
    ) -> np.ndarray:
        """Transposed-direction quantized MAC."""
        in_codes = self.fmt.quantize(inputs[cols])  # (k,)
        w_slices = slice_values(
            self._codes[np.ix_(rows, cols)], self.cell_bits, self.bit_slices
        )  # (r, k, slices)
        total = np.zeros(rows.size, dtype=np.int64)
        for phase in range(self.fmt.total_bits - 1, -1, -1):
            bits = (in_codes >> phase) & 1
            if not bits.any():
                continue
            for s in range(self.bit_slices):
                analog = w_slices[:, :, s] @ bits
                digital = self._adc.convert(analog)
                shift = phase + (self.bit_slices - 1 - s) * self.cell_bits
                total += digital.astype(np.int64) << shift
        return total / (self.fmt.scale * self.fmt.scale)


class MacBank:
    """Lockstep gang view over same-geometry MAC crossbars.

    The row-wise companion of :class:`~repro.xbar.cam_array.CamBank`:
    it snapshots its members' stored weights so one
    :meth:`mac_rowwise_many` call resolves a batch of per-row MACs
    routed to *different* member arrays without a Python loop per
    crossbar. Members must share one event log; event totals are
    identical to issuing the same queries member by member. The
    snapshot is taken at construction — rebuild the bank after
    reprogramming any member.
    """

    def __init__(self, macs: Sequence[MacCrossbar]) -> None:
        macs = list(macs)
        if not macs:
            raise ConfigError("a MAC bank needs at least one member")
        first = macs[0]
        for mac in macs:
            if (
                mac.rows != first.rows
                or mac.cols != first.cols
                or mac.accumulate_limit != first.accumulate_limit
            ):
                raise ConfigError("bank members must share one geometry")
            if mac.events is not first.events:
                raise ConfigError("bank members must share one event log")
        self._ref = first
        self.events = first.events
        self._weights = np.stack([mac._weights for mac in macs])
        # Mirror of the CamBank arrangement: when every member holds a
        # handle onto one monitor, gang queries scatter per-member
        # attribution instead of charging the reference member's slot.
        handles = [mac.hw for mac in macs]
        if all(h is not None for h in handles) and len(
            {id(h.monitor) for h in handles}
        ) == 1:
            self._hw_monitor = handles[0].monitor
            self._hw_slots = np.array(
                [h.slot for h in handles], dtype=np.int64
            )
        else:
            self._hw_monitor = None
            self._hw_slots = None

    def mac_rowwise_many(
        self,
        member_ids: np.ndarray,
        inputs: np.ndarray,
        hit_rows: np.ndarray,
        col_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Gang per-row MAC: query ``i`` runs on ``member_ids[i]``.

        Shapes and semantics match
        :meth:`MacCrossbar.mac_rowwise_many`, except each query reads
        the weights of its own member array. Like the single-array
        method, the two-operand SpMV-add runs at full precision in
        both numeric modes.
        """
        ref = self._ref
        member_ids = np.asarray(member_ids, dtype=np.int64)
        inputs = np.asarray(inputs, dtype=np.float64)
        hit_rows = np.asarray(hit_rows, dtype=bool)
        if hit_rows.ndim != 2 or hit_rows.shape[1] != ref.rows:
            raise ConfigError(f"hit matrix must have {ref.rows} columns")
        if member_ids.shape != (hit_rows.shape[0],):
            raise ConfigError("need exactly one member id per query")
        if inputs.shape != (hit_rows.shape[0], ref.cols):
            raise ConfigError(
                f"inputs must have shape ({hit_rows.shape[0]}, {ref.cols})"
            )
        cols = ref._normalize_mask(col_mask, ref.cols)
        if hit_rows.shape[0] == 0 or cols.size == 0:
            return np.zeros((hit_rows.shape[0], ref.rows), dtype=np.float64)
        # Slice the engaged columns before gathering per query: the
        # (members, rows, k) sub-tensor is tiny, the (q, rows, cols)
        # full gather is not.
        weights = self._weights[:, :, cols][member_ids]
        candidates = np.einsum("qrk,qk->qr", weights, inputs[:, cols])
        hit_counts = hit_rows.sum(axis=1)
        if self._hw_monitor is not None:
            ref._record_batch_macs(
                hit_counts, int(cols.size), attribute=False
            )
            self._hw_monitor.record_batch_many(
                self._hw_slots[member_ids], hit_counts, int(cols.size)
            )
        else:
            ref._record_batch_macs(hit_counts, int(cols.size))
        return np.where(hit_rows, candidates, 0.0)
