"""Digital-to-analog converter model.

Each crossbar row input is driven through a small DAC (2-bit in
Table I). Full-precision inputs are streamed over multiple phases; the
MAC array shift-and-adds the per-phase partial sums. The model performs
the (lossless) code-to-level mapping and counts conversion events.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..events import EventLog


class DAC:
    """An n-bit DAC bank driving crossbar word lines."""

    def __init__(self, bits: int = 2, events: Optional[EventLog] = None) -> None:
        if bits <= 0:
            raise ConfigError("DAC resolution must be positive")
        self.bits = bits
        self.events = events if events is not None else EventLog()

    @property
    def levels(self) -> int:
        """Number of distinct output levels."""
        return 1 << self.bits

    def convert(self, codes: np.ndarray) -> np.ndarray:
        """Convert integer codes (one per driven row) to analog levels.

        Codes must already fit the DAC resolution; feeding wider values
        is a pipeline bug, so it raises instead of clipping silently.
        """
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size and (codes.min() < 0 or codes.max() >= self.levels):
            raise ConfigError(
                f"DAC codes must be in [0, {self.levels}); stream wider "
                "inputs over multiple phases"
            )
        self.events.dac_conversions += int(codes.size)
        return codes.astype(np.float64)

    def phases_for(self, input_bits: int) -> int:
        """Phases needed to stream an ``input_bits``-wide input."""
        return -(-input_bits // self.bits)
