"""CAM crossbar: ternary content-addressable search.

A :class:`CamCrossbar` stores one bit pattern per row (128 x 128 bits in
Table I, one bit per complementary ReRAM cell pair, Figure 3b). A
search broadcasts a key with a ternary mask; every unmasked bit is
XNOR-compared in parallel and a row's sense amplifier raises a hit when
all unmasked bits match. :class:`EdgeCam` layers the paper's edge
layout on top: each row holds a ``(src, dst)`` vertex-id pair and
searches target either field, producing the hit vector that drives the
MAC crossbar's word lines.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import CapacityError, ConfigError
from ..events import EventLog


class CamCrossbar:
    """A ternary CAM array of ``rows`` x ``width_bits`` bit cells."""

    def __init__(
        self,
        rows: int = 128,
        width_bits: int = 128,
        events: Optional[EventLog] = None,
    ) -> None:
        if rows <= 0 or width_bits <= 0:
            raise ConfigError("CAM dimensions must be positive")
        self.rows = rows
        self.width_bits = width_bits
        self.events = events if events is not None else EventLog()
        self._bits = np.zeros((rows, width_bits), dtype=bool)
        self._valid = np.zeros(rows, dtype=bool)

    def _encode(self, value: int, bits: int) -> np.ndarray:
        if value < 0 or value >= (1 << bits):
            raise ConfigError(f"value {value} does not fit in {bits} bits")
        return np.array(
            [(value >> (bits - 1 - i)) & 1 for i in range(bits)], dtype=bool
        )

    def write_row(self, row: int, pattern: np.ndarray) -> None:
        """Program one row with a boolean bit pattern (MSB first)."""
        if not 0 <= row < self.rows:
            raise CapacityError(f"row {row} outside CAM bounds")
        pattern = np.asarray(pattern, dtype=bool)
        if pattern.shape != (self.width_bits,):
            raise ConfigError(f"pattern must have {self.width_bits} bits")
        self._bits[row] = pattern
        self._valid[row] = True
        self.events.cam_row_writes += 1
        # Each TCAM bit uses two complementary cells.
        self.events.cam_cell_writes += 2 * self.width_bits

    def invalidate(self) -> None:
        """Mark every row empty (no write cost; rows are overwritten)."""
        self._valid[:] = False

    def search(
        self, key: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Parallel ternary search; returns the boolean hit vector.

        ``key`` is a full-width bit pattern; ``mask`` selects the bits
        that must match (None = all bits). Invalid (never written) rows
        never hit. Counts one CAM search event.
        """
        key = np.asarray(key, dtype=bool)
        if key.shape != (self.width_bits,):
            raise ConfigError(f"key must have {self.width_bits} bits")
        if mask is None:
            mask = np.ones(self.width_bits, dtype=bool)
        else:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != (self.width_bits,):
                raise ConfigError(f"mask must have {self.width_bits} bits")
        self.events.cam_searches += 1
        # XNOR per cell, AND along the match line.
        matches = ~np.logical_xor(self._bits, key)
        hit = np.all(matches | ~mask, axis=1)
        return hit & self._valid


class EdgeCam:
    """A CAM crossbar storing (src, dst) vertex-id pairs, one per row.

    The source id occupies the high bit field, the destination the low
    field; ternary masking restricts a search to either field, exactly
    how GaaS-X finds "all edges with destination v" (Figure 7b).
    """

    def __init__(
        self,
        rows: int = 128,
        vertex_bits: int = 32,
        events: Optional[EventLog] = None,
    ) -> None:
        if 2 * vertex_bits > 128:
            raise ConfigError("two vertex ids must fit the 128-bit CAM row")
        self.vertex_bits = vertex_bits
        self.cam = CamCrossbar(rows, 2 * vertex_bits, events=events)
        self._src = np.full(rows, -1, dtype=np.int64)
        self._dst = np.full(rows, -1, dtype=np.int64)

    @property
    def rows(self) -> int:
        """Row capacity."""
        return self.cam.rows

    @property
    def events(self) -> EventLog:
        """The underlying event log."""
        return self.cam.events

    def load_edges(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Load edge endpoint pairs starting at row 0.

        Replaces previous contents; at most ``rows`` edges fit.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ConfigError("src and dst must have the same length")
        if src.size > self.rows:
            raise CapacityError(
                f"{src.size} edges exceed CAM capacity {self.rows}"
            )
        self.cam.invalidate()
        self._src[:] = -1
        self._dst[:] = -1
        vb = self.vertex_bits
        for row in range(src.size):
            pattern = np.concatenate(
                [
                    self.cam._encode(int(src[row]), vb),
                    self.cam._encode(int(dst[row]), vb),
                ]
            )
            self.cam.write_row(row, pattern)
        self._src[: src.size] = src
        self._dst[: dst.size] = dst

    def _field_mask(self, field: str) -> np.ndarray:
        mask = np.zeros(2 * self.vertex_bits, dtype=bool)
        if field == "src":
            mask[: self.vertex_bits] = True
        elif field == "dst":
            mask[self.vertex_bits :] = True
        else:
            raise ConfigError(f"unknown CAM field {field!r}")
        return mask

    def search_src(self, vertex: int) -> np.ndarray:
        """Hit vector of rows whose source id equals ``vertex``."""
        key = np.concatenate(
            [
                self.cam._encode(int(vertex), self.vertex_bits),
                np.zeros(self.vertex_bits, dtype=bool),
            ]
        )
        return self.cam.search(key, self._field_mask("src"))

    def search_dst(self, vertex: int) -> np.ndarray:
        """Hit vector of rows whose destination id equals ``vertex``."""
        key = np.concatenate(
            [
                np.zeros(self.vertex_bits, dtype=bool),
                self.cam._encode(int(vertex), self.vertex_bits),
            ]
        )
        return self.cam.search(key, self._field_mask("dst"))

    def stored_src(self) -> np.ndarray:
        """Loaded source ids (-1 where empty)."""
        return self._src.copy()

    def stored_dst(self) -> np.ndarray:
        """Loaded destination ids (-1 where empty)."""
        return self._dst.copy()
