"""CAM crossbar: ternary content-addressable search.

A :class:`CamCrossbar` stores one bit pattern per row (128 x 128 bits in
Table I, one bit per complementary ReRAM cell pair, Figure 3b). A
search broadcasts a key with a ternary mask; every unmasked bit is
XNOR-compared in parallel and a row's sense amplifier raises a hit when
all unmasked bits match. :class:`EdgeCam` layers the paper's edge
layout on top: each row holds a ``(src, dst)`` vertex-id pair and
searches target either field, producing the hit vector that drives the
MAC crossbar's word lines.

Rows are mirrored into packed 64-bit words so a search is a handful of
word-wide XOR/AND reductions instead of a boolean matrix sweep, and
:meth:`CamCrossbar.search_many` broadcasts a whole batch of keys in one
call — the searched-field values of every active vertex of a superstep
— which is what lets :class:`~repro.core.micro.MicroGaaSX` stay
array-faithful without a Python loop per vertex.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import CapacityError, ConfigError
from ..events import EventLog


def encode_ids(values: np.ndarray, bits: int) -> np.ndarray:
    """Encode non-negative ids as MSB-first bit matrices.

    Returns a boolean array of shape ``(len(values), bits)``. The
    vectorized replacement for encoding one value at a time, one bit
    at a time.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size:
        low = int(values.min())
        high = int(values.max())
        if low < 0 or (bits < 64 and high >= (1 << bits)):
            bad = low if low < 0 else high
            raise ConfigError(f"value {bad} does not fit in {bits} bits")
    shifts = np.arange(bits - 1, -1, -1, dtype=np.int64)
    return ((values[:, None] >> shifts) & 1).astype(bool)


def _pack_words(bits: np.ndarray) -> np.ndarray:
    """Pack boolean bit rows into 64-bit words (shape ``(k, words)``).

    The mapping from bit position to word lane only has to be
    consistent between stored rows and search keys — equality survives
    any fixed permutation — so the byte order ``view`` imposes is
    irrelevant.
    """
    k, width = bits.shape
    words = -(-width // 64)
    padded = np.zeros((k, words * 64), dtype=bool)
    padded[:, :width] = bits
    return np.packbits(padded, axis=1).view(np.uint64)


def pack_edge_keys(
    values: np.ndarray, field: str, vertex_bits: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Packed ``(key_words, mask_words)`` for an edge-CAM field search.

    Identical to :meth:`EdgeCam.pack_keys` but computable without an
    array instance — the packed-key cache in :mod:`repro.core.reuse`
    rebuilds entries for crossbars that have not been constructed yet.
    """
    if field not in ("src", "dst"):
        raise ConfigError(f"unknown CAM field {field!r}")
    mask = np.zeros(2 * vertex_bits, dtype=bool)
    encoded = encode_ids(np.asarray(values, dtype=np.int64), vertex_bits)
    blank = np.zeros_like(encoded)
    if field == "src":
        mask[:vertex_bits] = True
        keys = np.concatenate([encoded, blank], axis=1)
    else:
        mask[vertex_bits:] = True
        keys = np.concatenate([blank, encoded], axis=1)
    return _pack_words(keys), _pack_words(mask[None, :])[0]


class CamCrossbar:
    """A ternary CAM array of ``rows`` x ``width_bits`` bit cells."""

    def __init__(
        self,
        rows: int = 128,
        width_bits: int = 128,
        events: Optional[EventLog] = None,
    ) -> None:
        if rows <= 0 or width_bits <= 0:
            raise ConfigError("CAM dimensions must be positive")
        self.rows = rows
        self.width_bits = width_bits
        self.events = events if events is not None else EventLog()
        #: optional per-array counter handle
        #: (:class:`repro.obs.hw.ArrayCounters`); ``None`` keeps the
        #: model monitor-free. Every event-log increment below has a
        #: guarded mirror so per-array sums match the global log by
        #: construction.
        self.hw = None
        self._bits = np.zeros((rows, width_bits), dtype=bool)
        self._valid = np.zeros(rows, dtype=bool)
        self._words = _pack_words(self._bits)

    def _encode(self, value: int, bits: int) -> np.ndarray:
        if value < 0 or value >= (1 << bits):
            raise ConfigError(f"value {value} does not fit in {bits} bits")
        return encode_ids(np.array([value], dtype=np.int64), bits)[0]

    def write_row(self, row: int, pattern: np.ndarray) -> None:
        """Program one row with a boolean bit pattern (MSB first)."""
        if not 0 <= row < self.rows:
            raise CapacityError(f"row {row} outside CAM bounds")
        pattern = np.asarray(pattern, dtype=bool)
        if pattern.shape != (self.width_bits,):
            raise ConfigError(f"pattern must have {self.width_bits} bits")
        self._bits[row] = pattern
        self._words[row] = _pack_words(pattern[None, :])[0]
        self._valid[row] = True
        self.events.cam_row_writes += 1
        # Each TCAM bit uses two complementary cells.
        self.events.cam_cell_writes += 2 * self.width_bits
        if self.hw is not None:
            self.hw.add("cam_row_writes", 1)
            self.hw.add("cam_cell_writes", 2 * self.width_bits)

    def write_rows(self, first_row: int, patterns: np.ndarray) -> None:
        """Program a contiguous row block in one operation.

        Equivalent (in contents and event counts) to calling
        :meth:`write_row` once per pattern, without the per-row Python
        and packing overhead.
        """
        patterns = np.asarray(patterns, dtype=bool)
        if patterns.ndim != 2 or patterns.shape[1] != self.width_bits:
            raise ConfigError(f"patterns must have {self.width_bits} bits")
        count = patterns.shape[0]
        if first_row < 0 or first_row + count > self.rows:
            raise CapacityError("row block outside CAM bounds")
        block = slice(first_row, first_row + count)
        self._bits[block] = patterns
        self._words[block] = _pack_words(patterns)
        self._valid[block] = True
        self.events.cam_row_writes += count
        self.events.cam_cell_writes += 2 * self.width_bits * count
        if self.hw is not None:
            self.hw.add("cam_row_writes", count)
            self.hw.add("cam_cell_writes", 2 * self.width_bits * count)

    def invalidate(self) -> None:
        """Mark every row empty (no write cost; rows are overwritten)."""
        self._valid[:] = False

    def search(
        self, key: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Parallel ternary search; returns the boolean hit vector.

        ``key`` is a full-width bit pattern; ``mask`` selects the bits
        that must match (None = all bits). Invalid (never written) rows
        never hit. Counts one CAM search event.
        """
        key = np.asarray(key, dtype=bool)
        if key.shape != (self.width_bits,):
            raise ConfigError(f"key must have {self.width_bits} bits")
        return self.search_many(key[None, :], mask)[0]

    def search_many(
        self, keys: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Broadcast a batch of keys; returns the hit matrix.

        ``keys`` has shape ``(q, width_bits)``; the result has shape
        ``(q, rows)``, row ``i`` being exactly what ``search(keys[i],
        mask)`` returns. Counts ``q`` CAM search events (the hardware
        still performs one broadcast per key; batching is a simulation
        speedup, not a hardware semantic change).
        """
        keys = np.asarray(keys, dtype=bool)
        if keys.ndim != 2 or keys.shape[1] != self.width_bits:
            raise ConfigError(f"keys must have {self.width_bits} bits")
        if mask is None:
            mask_words = None
            # Bits past width_bits are zero in rows and keys alike, so
            # leaving them enabled in the mask cannot produce a mismatch.
        else:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != (self.width_bits,):
                raise ConfigError(f"mask must have {self.width_bits} bits")
            mask_words = _pack_words(mask[None, :])[0]
        return self.search_packed(_pack_words(keys), mask_words)

    def charge_search(self, queries: int) -> None:
        """Charge the events of ``queries`` searches without running them.

        The memoized path in :mod:`repro.core.reuse` calls this when a
        cached hit matrix answers a search: the hardware would still
        perform one broadcast per key, so the event log and the
        per-array counters must advance exactly as if the fold had run.
        """
        self.events.cam_searches += int(queries)
        if self.hw is not None:
            self.hw.add("cam_searches", int(queries))

    def search_packed(
        self,
        key_words: np.ndarray,
        mask_words: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Search pre-packed key words; the re-encoding-free fast path.

        ``key_words`` has shape ``(q, words)`` as produced by packing
        full-width keys; ``mask_words`` is one packed mask row (None =
        every bit must match). Hit semantics and event counts are
        exactly those of :meth:`search_many` on the unpacked
        equivalents. Batched drivers cache the packed keys once — the
        CAM contents change between supersteps, the key encodings
        never do.
        """
        key_words = np.asarray(key_words, dtype=np.uint64)
        if key_words.ndim != 2 or key_words.shape[1] != self._words.shape[1]:
            raise ConfigError("key words do not match the CAM word count")
        if mask_words is None:
            mask_words = np.full(
                self._words.shape[1], ~np.uint64(0), dtype=np.uint64
            )
        self.charge_search(key_words.shape[0])
        # XNOR per cell, AND along the match line — on packed words:
        # a row hits when no unmasked bit differs in any word. Lanes
        # whose mask word is zero cannot mismatch, so a field search
        # (mask = one vertex-id field) touches a single 64-bit lane;
        # the fold is an explicit | chain over 2D slices, never a 3D
        # intermediate.
        lanes = np.flatnonzero(mask_words != 0)
        if lanes.size == 0:
            return np.tile(self._valid, (key_words.shape[0], 1))
        folded = (
            self._words[None, :, lanes[0]] ^ key_words[:, None, lanes[0]]
        ) & mask_words[lanes[0]]
        for lane in lanes[1:]:
            folded = folded | (
                (self._words[None, :, lane] ^ key_words[:, None, lane])
                & mask_words[lane]
            )
        return (folded == 0) & self._valid


class CamBank:
    """Lockstep gang view over same-geometry CAM crossbars.

    GaaS-X broadcasts a superstep's searches to every crossbar in
    parallel (Figure 7); a bank snapshots its members' packed words so
    one :meth:`search_packed` call resolves a batch of searches routed
    to *different* members without a Python loop per crossbar. Members
    must share one :class:`~repro.events.EventLog`, and counts are
    identical to issuing the same searches member by member. The
    snapshot is taken at construction — rebuild the bank after
    reloading any member.
    """

    def __init__(self, cams: Sequence[CamCrossbar]) -> None:
        cams = list(cams)
        if not cams:
            raise ConfigError("a CAM bank needs at least one member")
        first = cams[0]
        for cam in cams:
            if cam.rows != first.rows or cam.width_bits != first.width_bits:
                raise ConfigError("bank members must share one geometry")
            if cam.events is not first.events:
                raise ConfigError("bank members must share one event log")
        self.events = first.events
        self._words = np.stack([cam._words for cam in cams])
        self._valid = np.stack([cam._valid for cam in cams])
        # Per-array attribution survives the gang path when every
        # member carries a handle onto one monitor: gang searches then
        # scatter per-member counts instead of charging the ref.
        handles = [cam.hw for cam in cams]
        if all(h is not None for h in handles) and len(
            {id(h.monitor) for h in handles}
        ) == 1:
            self._hw_monitor = handles[0].monitor
            self._hw_slots = np.array(
                [h.slot for h in handles], dtype=np.int64
            )
        else:
            self._hw_monitor = None
            self._hw_slots = None

    def charge_search(self, member_ids: np.ndarray) -> None:
        """Charge the events of one gang search without running it.

        ``member_ids`` routes query ``i`` to member ``member_ids[i]``;
        the global log gains one search per query and — when per-array
        attribution is live — each member's counter gains its share,
        exactly as :meth:`search_packed` would have charged. Used by
        the memoized traversal path in :mod:`repro.core.reuse`.
        """
        member_ids = np.asarray(member_ids, dtype=np.int64)
        self.events.cam_searches += int(member_ids.size)
        if self._hw_monitor is not None:
            self._hw_monitor.add_many(
                self._hw_slots[member_ids], "cam_searches", 1
            )

    def search_packed(
        self,
        member_ids: np.ndarray,
        key_words: np.ndarray,
        mask_words: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Gang search: query ``i`` runs on member ``member_ids[i]``.

        ``key_words`` has shape ``(q, words)``; returns the ``(q,
        rows)`` hit matrix, row ``i`` exactly what member
        ``member_ids[i]``'s :meth:`CamCrossbar.search_packed` returns
        for ``key_words[i]``. Counts ``q`` CAM search events.
        """
        member_ids = np.asarray(member_ids, dtype=np.int64)
        key_words = np.asarray(key_words, dtype=np.uint64)
        if key_words.ndim != 2 or key_words.shape[1] != self._words.shape[2]:
            raise ConfigError("key words do not match the CAM word count")
        if member_ids.shape != (key_words.shape[0],):
            raise ConfigError("need exactly one member id per key")
        if mask_words is None:
            mask_words = np.full(
                self._words.shape[2], ~np.uint64(0), dtype=np.uint64
            )
        self.charge_search(member_ids)
        # Same lane-skipping fold as the single-array fast path: only
        # lanes with a nonzero mask word can mismatch, and each lane is
        # gathered per query as a 2D slice.
        lanes = np.flatnonzero(mask_words != 0)
        if lanes.size == 0:
            return self._valid[member_ids]
        folded = (
            self._words[:, :, lanes[0]][member_ids]
            ^ key_words[:, lanes[0], None]
        ) & mask_words[lanes[0]]
        for lane in lanes[1:]:
            folded = folded | (
                (self._words[:, :, lane][member_ids] ^ key_words[:, lane, None])
                & mask_words[lane]
            )
        return (folded == 0) & self._valid[member_ids]


class EdgeCam:
    """A CAM crossbar storing (src, dst) vertex-id pairs, one per row.

    The source id occupies the high bit field, the destination the low
    field; ternary masking restricts a search to either field, exactly
    how GaaS-X finds "all edges with destination v" (Figure 7b).
    """

    def __init__(
        self,
        rows: int = 128,
        vertex_bits: int = 32,
        events: Optional[EventLog] = None,
    ) -> None:
        if 2 * vertex_bits > 128:
            raise ConfigError("two vertex ids must fit the 128-bit CAM row")
        self.vertex_bits = vertex_bits
        self.cam = CamCrossbar(rows, 2 * vertex_bits, events=events)
        self._src = np.full(rows, -1, dtype=np.int64)
        self._dst = np.full(rows, -1, dtype=np.int64)

    @property
    def rows(self) -> int:
        """Row capacity."""
        return self.cam.rows

    @property
    def events(self) -> EventLog:
        """The underlying event log."""
        return self.cam.events

    def load_edges(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Load edge endpoint pairs starting at row 0.

        Replaces previous contents; at most ``rows`` edges fit.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ConfigError("src and dst must have the same length")
        if src.size > self.rows:
            raise CapacityError(
                f"{src.size} edges exceed CAM capacity {self.rows}"
            )
        self.cam.invalidate()
        self._src[:] = -1
        self._dst[:] = -1
        vb = self.vertex_bits
        if src.size:
            patterns = np.concatenate(
                [encode_ids(src, vb), encode_ids(dst, vb)], axis=1
            )
            self.cam.write_rows(0, patterns)
        self._src[: src.size] = src
        self._dst[: dst.size] = dst

    def _field_mask(self, field: str) -> np.ndarray:
        mask = np.zeros(2 * self.vertex_bits, dtype=bool)
        if field == "src":
            mask[: self.vertex_bits] = True
        elif field == "dst":
            mask[self.vertex_bits :] = True
        else:
            raise ConfigError(f"unknown CAM field {field!r}")
        return mask

    def _keys(self, vertices: np.ndarray, field: str) -> np.ndarray:
        encoded = encode_ids(vertices, self.vertex_bits)
        blank = np.zeros_like(encoded)
        parts = [encoded, blank] if field == "src" else [blank, encoded]
        return np.concatenate(parts, axis=1)

    def pack_keys(
        self, vertices: np.ndarray, field: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pre-packed ``(key_words, mask_words)`` for one searched field.

        Row subsets of ``key_words`` feed :meth:`search_packed`
        directly, so a driver that searches varying subsets of a fixed
        vertex set every superstep encodes each key exactly once.
        """
        return pack_edge_keys(vertices, field, self.vertex_bits)

    def charge_search(self, queries: int) -> None:
        """Charge ``queries`` searches without running them (memo path)."""
        self.cam.charge_search(queries)

    def search_packed(
        self, key_words: np.ndarray, mask_words: np.ndarray
    ) -> np.ndarray:
        """Search pre-packed keys from :meth:`pack_keys`."""
        return self.cam.search_packed(key_words, mask_words)

    def search_many(self, vertices: np.ndarray, field: str) -> np.ndarray:
        """Hit matrix ``(len(vertices), rows)`` for one searched field.

        Row ``i`` equals ``search_src(vertices[i])`` (or ``_dst``);
        counts one CAM search per vertex.
        """
        return self.search_packed(*self.pack_keys(vertices, field))

    def search_src(self, vertex: int) -> np.ndarray:
        """Hit vector of rows whose source id equals ``vertex``."""
        return self.search_many(np.array([vertex]), "src")[0]

    def search_dst(self, vertex: int) -> np.ndarray:
        """Hit vector of rows whose destination id equals ``vertex``."""
        return self.search_many(np.array([vertex]), "dst")[0]

    def stored_src(self) -> np.ndarray:
        """Loaded source ids (-1 where empty)."""
        return self._src.copy()

    def stored_dst(self) -> np.ndarray:
        """Loaded destination ids (-1 where empty)."""
        return self._dst.copy()
