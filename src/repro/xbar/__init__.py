"""Array-level crossbar hardware models.

These classes really perform the operations GaaS-X builds on — ternary
CAM searches over stored bit patterns, selective analog multiply-
accumulate with bit-sliced ReRAM cells, DAC/ADC conversion — one array
at a time, while counting every hardware event. They are the ground
truth the vectorized engine (:mod:`repro.core`) is validated against.
"""

from .adc import ADC
from .cam_array import CamCrossbar, EdgeCam
from .cells import FixedPointFormat, slice_values, unslice_values
from .dac import DAC
from .mac_array import MacCrossbar
from .sfu import SpecialFunctionUnit

__all__ = [
    "ADC",
    "DAC",
    "CamCrossbar",
    "EdgeCam",
    "MacCrossbar",
    "SpecialFunctionUnit",
    "FixedPointFormat",
    "slice_values",
    "unslice_values",
]
