"""Analog non-ideality: ReRAM device variation.

The paper's SPICE-level evaluation assumes nominal devices; real
crossbars suffer cycle-to-cycle and device-to-device conductance
variation. This module injects a standard log-normal conductance error
into a :class:`~repro.xbar.mac_array.MacCrossbar`, enabling robustness
studies of the selective-MAC datapath (an extension beyond the paper,
flagged as such in DESIGN.md's ablation list).

The 16-row accumulation limit turns out to be a variation-robustness
feature too: the fewer rows summed per operation, the smaller the
accumulated analog error relative to the ADC step.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .mac_array import MacCrossbar


class VariationModel:
    """Log-normal multiplicative conductance variation.

    ``sigma`` is the standard deviation of ``ln(G_actual / G_nominal)``;
    published 32 nm ReRAM arrays land around 0.02-0.1 after
    program-and-verify.
    """

    def __init__(self, sigma: float, seed: int = 0) -> None:
        if sigma < 0:
            raise ConfigError("variation sigma must be non-negative")
        self.sigma = sigma
        self.seed = seed

    def perturb(self, values: np.ndarray) -> np.ndarray:
        """Return the values with multiplicative log-normal error."""
        if self.sigma == 0:
            return np.asarray(values, dtype=np.float64).copy()
        rng = np.random.default_rng(self.seed)
        factors = rng.lognormal(mean=0.0, sigma=self.sigma,
                                size=np.shape(values))
        return np.asarray(values, dtype=np.float64) * factors

    def apply_to(self, crossbar: MacCrossbar) -> MacCrossbar:
        """Perturb a crossbar's stored conductances in place.

        Uses the public ``stored_values``/``preset`` interface, so no
        programming events are charged (variation is not a write).
        Returns the crossbar for chaining.
        """
        crossbar.preset(self.perturb(crossbar.stored_values()))
        return crossbar


def mac_error_vs_rows(
    sigma: float,
    rows_accumulated: int,
    trials: int = 200,
    seed: int = 1,
    weight_scale: float = 4.0,
) -> float:
    """Monte-Carlo relative RMS error of a selective MAC under variation.

    Builds ``trials`` random single-column accumulations of
    ``rows_accumulated`` rows, perturbs the weights, and returns the
    RMS of the relative output error. Used by the variation ablation to
    show error growth with rows-per-op.
    """
    if rows_accumulated <= 0:
        raise ConfigError("rows_accumulated must be positive")
    rng = np.random.default_rng(seed)
    errors = []
    model = VariationModel(sigma, seed=seed + 1)
    for trial in range(trials):
        weights = rng.uniform(0.5, weight_scale, size=rows_accumulated)
        inputs = rng.uniform(0.5, 2.0, size=rows_accumulated)
        exact = float(inputs @ weights)
        noisy = float(inputs @ model.perturb(weights))
        errors.append((noisy - exact) / exact)
        model = VariationModel(sigma, seed=seed + 2 + trial)
    return float(np.sqrt(np.mean(np.square(errors))))
