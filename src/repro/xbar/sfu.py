"""Special function unit: the scalar epilogue of every kernel.

Section III-B: after the MAC phase, SFUs (shift-and-add plus a scalar
ALU with adders, comparators and multipliers) finish the vertex update —
the running ``min`` of SSSP/BFS distance candidates, PageRank's damping
affine, collaborative filtering's error/learning-rate arithmetic. The
model executes the math in numpy while charging one SFU event per
scalar operation per element.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..events import EventLog


class SpecialFunctionUnit:
    """Scalar ALU bank with event accounting."""

    def __init__(self, events: Optional[EventLog] = None) -> None:
        self.events = events if events is not None else EventLog()

    def _charge(self, *arrays: np.ndarray) -> None:
        size = max(np.asarray(a).size for a in arrays)
        self.events.sfu_ops += int(size)

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise add (one op per output element)."""
        self._charge(a, b)
        return np.asarray(a, dtype=np.float64) + np.asarray(b, dtype=np.float64)

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise multiply."""
        self._charge(a, b)
        return np.asarray(a, dtype=np.float64) * np.asarray(b, dtype=np.float64)

    def minimum(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise minimum (comparator bank)."""
        self._charge(a, b)
        return np.minimum(
            np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64)
        )

    def compare_less(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise ``a < b`` comparison."""
        self._charge(a, b)
        return np.asarray(a, dtype=np.float64) < np.asarray(b, dtype=np.float64)

    def affine(self, x: np.ndarray, scale: float, offset: float) -> np.ndarray:
        """``scale * x + offset`` — two ops per element (mul + add)."""
        x = np.asarray(x, dtype=np.float64)
        self.events.sfu_ops += 2 * int(x.size)
        return scale * x + offset
