"""Fault injection: stuck ReRAM cells and dead crossbar rows.

Endurance-limited ReRAM cells fail stuck-at-SET or stuck-at-RESET; a
stuck match-line transistor kills a whole TCAM row. This module injects
such faults into the array-level models so reliability studies can
measure the *algorithmic* blast radius of device failures — a dead CAM
row silently drops its edge, a stuck MAC cell corrupts one attribute.

Extension beyond the paper (which assumes fault-free arrays); the test
suite uses it for failure-injection coverage of the kernels.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .cam_array import EdgeCam
from .mac_array import MacCrossbar


class FaultModel:
    """Random stuck-row / stuck-cell fault injector.

    ``dead_row_fraction`` disables that fraction of CAM rows (their
    match line never fires); ``stuck_cell_fraction`` pins that fraction
    of MAC value cells to a random representable level.
    """

    def __init__(
        self,
        dead_row_fraction: float = 0.0,
        stuck_cell_fraction: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= dead_row_fraction <= 1.0:
            raise ConfigError("dead_row_fraction must be in [0, 1]")
        if not 0.0 <= stuck_cell_fraction <= 1.0:
            raise ConfigError("stuck_cell_fraction must be in [0, 1]")
        self.dead_row_fraction = dead_row_fraction
        self.stuck_cell_fraction = stuck_cell_fraction
        self.seed = seed

    def kill_cam_rows(self, cam: EdgeCam) -> np.ndarray:
        """Disable random CAM rows; returns the dead-row index array.

        Uses the valid-bit plane: a dead match line behaves exactly
        like an unwritten row (it can never hit).
        """
        rng = np.random.default_rng(self.seed)
        count = int(round(cam.rows * self.dead_row_fraction))
        dead = rng.choice(cam.rows, size=count, replace=False)
        cam.cam._valid[dead] = False
        return np.sort(dead)

    def stick_mac_cells(self, mac: MacCrossbar) -> int:
        """Pin random MAC cells at random levels; returns the count.

        Applied through ``preset`` (faults are not programming events).
        """
        rng = np.random.default_rng(self.seed + 1)
        values = mac.stored_values()
        count = int(round(values.size * self.stuck_cell_fraction))
        if count:
            flat = rng.choice(values.size, size=count, replace=False)
            rows, cols = np.unravel_index(flat, values.shape)
            values[rows, cols] = rng.uniform(
                0.0, mac.fmt.max_value, size=count
            )
            mac.preset(values)
        return count


def edges_lost_to_dead_rows(
    cam: EdgeCam, dead_rows: np.ndarray
) -> np.ndarray:
    """(src, dst) pairs silently dropped by the given dead rows."""
    src = cam.stored_src()[dead_rows]
    dst = cam.stored_dst()[dead_rows]
    present = src >= 0
    return np.stack([src[present], dst[present]], axis=1)
