"""ReRAM cell value encoding: fixed point and bit slicing.

A crossbar cell stores ``cell_bits`` of a value's binary representation
as one of ``2**cell_bits`` conductance levels; a ``value_bits`` number
therefore occupies ``value_bits / cell_bits`` adjacent cells ("bit
slices", Table I: 128x16x8 at 2 bits per cell = 16-bit values). This
module provides the numeric plumbing: fixed-point quantization and
slicing/unslicing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class FixedPointFormat:
    """Unsigned fixed-point format with ``total_bits`` and ``frac_bits``.

    Values are clipped to the representable range ``[0, 2**int_bits -
    2**-frac_bits]``. Graph attributes in the paper's kernels (edge
    weights, reciprocal out-degrees, ranks, distances) are non-negative,
    so an unsigned format suffices; signed quantities in collaborative
    filtering are handled at the SFU, not in the crossbar.
    """

    total_bits: int = 16
    frac_bits: int = 8

    def __post_init__(self) -> None:
        if self.total_bits <= 0:
            raise ConfigError("total_bits must be positive")
        if not 0 <= self.frac_bits <= self.total_bits:
            raise ConfigError("frac_bits must be within [0, total_bits]")

    @property
    def scale(self) -> float:
        """Multiplier mapping real values to integer codes."""
        return float(1 << self.frac_bits)

    @property
    def max_code(self) -> int:
        """Largest representable integer code."""
        return (1 << self.total_bits) - 1

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_code / self.scale

    @property
    def resolution(self) -> float:
        """Smallest representable non-zero magnitude."""
        return 1.0 / self.scale

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Real values -> integer codes (round-to-nearest, clipped)."""
        codes = np.rint(np.asarray(values, dtype=np.float64) * self.scale)
        return np.clip(codes, 0, self.max_code).astype(np.int64)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Integer codes -> real values."""
        return np.asarray(codes, dtype=np.float64) / self.scale


def slice_values(codes: np.ndarray, cell_bits: int, num_slices: int) -> np.ndarray:
    """Split integer codes into per-cell slices, most significant first.

    Returns an array with one extra trailing axis of length
    ``num_slices``; each slice holds ``cell_bits`` bits of the code.
    """
    if cell_bits <= 0 or num_slices <= 0:
        raise ConfigError("cell_bits and num_slices must be positive")
    codes = np.asarray(codes, dtype=np.int64)
    if codes.size and codes.min() < 0:
        raise ConfigError("codes must be non-negative")
    mask = (1 << cell_bits) - 1
    shifts = [(num_slices - 1 - i) * cell_bits for i in range(num_slices)]
    return np.stack([(codes >> s) & mask for s in shifts], axis=-1)


def unslice_values(slices: np.ndarray, cell_bits: int) -> np.ndarray:
    """Inverse of :func:`slice_values` (shift-and-add reduction)."""
    slices = np.asarray(slices, dtype=np.int64)
    num_slices = slices.shape[-1]
    result = np.zeros(slices.shape[:-1], dtype=np.int64)
    for i in range(num_slices):
        result = (result << cell_bits) + slices[..., i]
    return result
