"""Analog-to-digital converter model.

The bit-line current of a MAC operation is sampled-and-held, then
digitized by a shared ADC (6-bit, 1.2 GSps in Table I). Restricting
each MAC to 16 accumulated rows is exactly what lets a 6-bit converter
cover the worst-case per-phase sum (16 rows x 3 max cell level x 1
input bit = 48 < 64), which the paper calls out in Section V-A.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..events import EventLog


class ADC:
    """An n-bit ADC digitizing sampled bit-line sums."""

    def __init__(
        self,
        bits: int = 6,
        max_input: Optional[float] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        if bits <= 0:
            raise ConfigError("ADC resolution must be positive")
        self.bits = bits
        #: full-scale analog input mapped to the top code; defaults to
        #: the code range itself (integer-sum convention).
        self.max_input = float(max_input) if max_input is not None else float(self.max_code)
        if self.max_input <= 0:
            raise ConfigError("ADC full-scale input must be positive")
        self.events = events if events is not None else EventLog()
        #: optional per-array counter handle
        #: (:class:`repro.obs.hw.ArrayCounters`); ``None`` keeps the
        #: model monitor-free.
        self.hw = None

    @property
    def max_code(self) -> int:
        """Largest output code."""
        return (1 << self.bits) - 1

    def convert(self, analog: np.ndarray) -> np.ndarray:
        """Digitize analog values: scale to codes, round, clip.

        Samples landing above full scale clip to :attr:`max_code` and
        count as ``adc_saturations`` — the signal the 16-row MAC bound
        exists to keep at zero (Section V-A).
        """
        analog = np.asarray(analog, dtype=np.float64)
        self.events.adc_conversions += int(analog.size)
        codes = np.rint(analog * (self.max_code / self.max_input))
        clipped = int(np.count_nonzero(codes > self.max_code))
        self.events.adc_saturations += clipped
        if self.hw is not None:
            self.hw.add("adc_conversions", int(analog.size))
            if clipped:
                self.hw.add("adc_saturations", clipped)
        return np.clip(codes, 0, self.max_code).astype(np.int64)

    def saturates(self, analog_value: float) -> bool:
        """True when the value exceeds the converter's full scale."""
        return analog_value > self.max_input
