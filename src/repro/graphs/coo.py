"""Coordinate-list (COO) sparse matrix.

COO is the paper's on-disk and in-crossbar representation: one
``(src, dst, weight)`` triple per edge (Figure 7a). The class is a thin,
validated wrapper over three parallel numpy arrays, with the conversions
and orderings the rest of the system needs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import GraphFormatError


class COOMatrix:
    """A sparse matrix in coordinate-list form.

    Parameters
    ----------
    rows, cols:
        Integer arrays of equal length holding the row (source) and
        column (destination) index of each non-zero entry.
    data:
        Values; defaults to all ones (an unweighted graph).
    shape:
        ``(num_rows, num_cols)``. Inferred from the maxima when omitted.
    """

    def __init__(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        data: Optional[np.ndarray] = None,
        shape: Optional[Tuple[int, int]] = None,
    ) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.ndim != 1 or cols.ndim != 1:
            raise GraphFormatError("rows and cols must be 1-D arrays")
        if rows.shape != cols.shape:
            raise GraphFormatError(
                "rows and cols must have the same length "
                f"({rows.size} != {cols.size})"
            )
        if data is None:
            data = np.ones(rows.size, dtype=np.float64)
        else:
            data = np.asarray(data, dtype=np.float64)
            if data.shape != rows.shape:
                raise GraphFormatError("data must match rows/cols in length")
        if shape is None:
            num_rows = int(rows.max()) + 1 if rows.size else 0
            num_cols = int(cols.max()) + 1 if cols.size else 0
            shape = (num_rows, num_cols)
        num_rows, num_cols = int(shape[0]), int(shape[1])
        if rows.size:
            if rows.min() < 0 or cols.min() < 0:
                raise GraphFormatError("negative indices are not allowed")
            if rows.max() >= num_rows or cols.max() >= num_cols:
                raise GraphFormatError(
                    f"index out of bounds for shape ({num_rows}, {num_cols})"
                )
        self.rows = rows
        self.cols = cols
        self.data = data
        self.shape = (num_rows, num_cols)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.rows.size)

    @property
    def density(self) -> float:
        """Fraction of non-zero cells; 0.0 for an empty shape."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def __len__(self) -> int:
        return self.nnz

    def __repr__(self) -> str:
        return (
            f"COOMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.2e})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, COOMatrix):
            return NotImplemented
        if self.shape != other.shape or self.nnz != other.nnz:
            return False
        a, b = self.sorted_by("row"), other.sorted_by("row")
        return (
            bool(np.array_equal(a.rows, b.rows))
            and bool(np.array_equal(a.cols, b.cols))
            and bool(np.array_equal(a.data, b.data))
        )

    __hash__ = None  # mutable container semantics

    # ------------------------------------------------------------------
    # Orderings and normalization
    # ------------------------------------------------------------------
    def sorted_by(self, order: str) -> "COOMatrix":
        """Return a copy sorted by ``"row"`` or ``"col"`` major order.

        Row-major sorts by (row, col); column-major by (col, row). The
        paper's shards keep edges sorted by destination vertex, which is
        column-major order within the shard.
        """
        if order == "row":
            perm = np.lexsort((self.cols, self.rows))
        elif order == "col":
            perm = np.lexsort((self.rows, self.cols))
        else:
            raise GraphFormatError(f"unknown sort order: {order!r}")
        return COOMatrix(
            self.rows[perm], self.cols[perm], self.data[perm], self.shape
        )

    def deduplicated(self, combine: str = "sum") -> "COOMatrix":
        """Merge duplicate (row, col) entries.

        ``combine`` is ``"sum"``, ``"min"``, ``"max"`` or ``"last"``.
        """
        if self.nnz == 0:
            return COOMatrix(self.rows, self.cols, self.data, self.shape)
        perm = np.lexsort((self.cols, self.rows))
        rows, cols, data = self.rows[perm], self.cols[perm], self.data[perm]
        new_group = np.empty(rows.size, dtype=bool)
        new_group[0] = True
        new_group[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        group_ids = np.cumsum(new_group) - 1
        num_groups = int(group_ids[-1]) + 1
        if combine == "sum":
            merged = np.bincount(group_ids, weights=data, minlength=num_groups)
        elif combine == "min":
            merged = np.full(num_groups, np.inf)
            np.minimum.at(merged, group_ids, data)
        elif combine == "max":
            merged = np.full(num_groups, -np.inf)
            np.maximum.at(merged, group_ids, data)
        elif combine == "last":
            merged = np.empty(num_groups)
            merged[group_ids] = data  # later entries overwrite earlier
        else:
            raise GraphFormatError(f"unknown combine rule: {combine!r}")
        starts = np.flatnonzero(new_group)
        return COOMatrix(rows[starts], cols[starts], merged, self.shape)

    def without_self_loops(self) -> "COOMatrix":
        """Return a copy with diagonal entries removed."""
        keep = self.rows != self.cols
        return COOMatrix(
            self.rows[keep], self.cols[keep], self.data[keep], self.shape
        )

    def transpose(self) -> "COOMatrix":
        """Return the transposed matrix (edges reversed)."""
        return COOMatrix(
            self.cols.copy(),
            self.rows.copy(),
            self.data.copy(),
            (self.shape[1], self.shape[0]),
        )

    def has_duplicates(self) -> bool:
        """True when any (row, col) pair appears more than once."""
        if self.nnz < 2:
            return False
        perm = np.lexsort((self.cols, self.rows))
        rows, cols = self.rows[perm], self.cols[perm]
        return bool(
            np.any((rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1]))
        )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_csr(self) -> "CSRMatrix":
        """Convert to compressed sparse row form."""
        from .csr import CSRMatrix

        return CSRMatrix.from_coo(self)

    def to_csc(self) -> "CSCMatrix":
        """Convert to compressed sparse column form."""
        from .csr import CSCMatrix

        return CSCMatrix.from_coo(self)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (small matrices only).

        Duplicate entries accumulate, matching scipy semantics.
        """
        dense = np.zeros(self.shape, dtype=np.float64)
        np.add.at(dense, (self.rows, self.cols), self.data)
        return dense

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build from a dense 2-D array, keeping only non-zeros."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise GraphFormatError("from_dense expects a 2-D array")
        rows, cols = np.nonzero(dense)
        return cls(rows, cols, dense[rows, cols], dense.shape)

    # ------------------------------------------------------------------
    # Degree helpers
    # ------------------------------------------------------------------
    def row_degrees(self) -> np.ndarray:
        """Entries per row (out-degree when rows are sources)."""
        return np.bincount(self.rows, minlength=self.shape[0]).astype(np.int64)

    def col_degrees(self) -> np.ndarray:
        """Entries per column (in-degree when cols are destinations)."""
        return np.bincount(self.cols, minlength=self.shape[1]).astype(np.int64)
