"""Graph façade types.

A :class:`Graph` is a directed, optionally weighted graph whose edge set
lives in a :class:`~repro.graphs.coo.COOMatrix` (sources as rows,
destinations as columns). A :class:`BipartiteGraph` models the
user-item rating graphs collaborative filtering consumes.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from ..errors import GraphFormatError
from .coo import COOMatrix
from .csr import CSCMatrix, CSRMatrix


class Graph:
    """A directed graph over vertices ``0 .. num_vertices - 1``.

    Parameters
    ----------
    edges:
        COO matrix with sources as rows and destinations as columns. The
        matrix must be square.
    name:
        Optional label used in reports.
    """

    def __init__(self, edges: COOMatrix, name: str = "graph") -> None:
        if edges.shape[0] != edges.shape[1]:
            raise GraphFormatError(
                f"a Graph requires a square edge matrix, got {edges.shape}"
            )
        self.edges = edges
        self.name = name
        self._csr: Optional[CSRMatrix] = None
        self._csc: Optional[CSCMatrix] = None
        self._out_degrees: Optional[np.ndarray] = None
        self._in_degrees: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_list(
        cls,
        edge_list: Iterable[Tuple[int, int]] | np.ndarray,
        weights: Optional[Iterable[float]] = None,
        num_vertices: Optional[int] = None,
        name: str = "graph",
        deduplicate: bool = True,
    ) -> "Graph":
        """Build a graph from an iterable of ``(src, dst)`` pairs."""
        arr = np.asarray(list(edge_list) if not isinstance(edge_list, np.ndarray) else edge_list)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphFormatError("edge_list must be of shape (E, 2)")
        n = num_vertices
        if n is None:
            n = int(arr.max()) + 1 if arr.size else 0
        data = None if weights is None else np.asarray(list(weights), dtype=np.float64)
        coo = COOMatrix(arr[:, 0], arr[:, 1], data, (n, n))
        if deduplicate and coo.has_duplicates():
            coo = coo.deduplicated("last")
        return cls(coo, name=name)

    @classmethod
    def from_csr(cls, csr: CSRMatrix, name: str = "graph") -> "Graph":
        """Build a graph around an existing CSR without copying edges.

        The COO façade reuses the CSR's ``indices``/``data`` arrays
        directly (memmap views stay memmap views); only the source-id
        column is materialized, because CSR stores it implicitly. The
        CSR itself is pre-seeded into the cache slot, so ``csr()`` —
        the reference baselines' entry point — returns the original
        zero-copy object instead of rebuilding it from COO.
        """
        if csr.shape[0] != csr.shape[1]:
            raise GraphFormatError(
                f"a Graph requires a square matrix, got {csr.shape}"
            )
        rows = np.repeat(
            np.arange(csr.shape[0], dtype=np.int64), np.diff(csr.indptr)
        )
        coo = COOMatrix(rows, csr.indices, csr.data, csr.shape)
        graph = cls(coo, name=name)
        graph._csr = csr
        return graph

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self.edges.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self.edges.nnz

    @property
    def weights(self) -> np.ndarray:
        """Edge weight array, aligned with ``edges.rows``/``edges.cols``."""
        return self.edges.data

    def out_degrees(self) -> np.ndarray:
        """Out-degree of each vertex (cached; read-only array).

        The edge set is immutable after construction, so the degree
        vector is computed once and shared. The returned array is
        marked non-writeable — callers needing a mutable copy (or a
        float view) must copy, e.g. ``out_degrees().astype(float)``.
        """
        if self._out_degrees is None:
            degrees = self.edges.row_degrees()
            degrees.flags.writeable = False
            self._out_degrees = degrees
        return self._out_degrees

    def in_degrees(self) -> np.ndarray:
        """In-degree of each vertex (cached; read-only array)."""
        if self._in_degrees is None:
            degrees = self.edges.col_degrees()
            degrees.flags.writeable = False
            self._in_degrees = degrees
        return self._in_degrees

    def csr(self) -> CSRMatrix:
        """CSR view (cached)."""
        if self._csr is None:
            self._csr = self.edges.to_csr()
        return self._csr

    def csc(self) -> CSCMatrix:
        """CSC view (cached)."""
        if self._csc is None:
            self._csc = self.edges.to_csc()
        return self._csc

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def reversed(self) -> "Graph":
        """Graph with every edge direction flipped."""
        return Graph(self.edges.transpose(), name=f"{self.name}.rev")

    def with_unit_weights(self) -> "Graph":
        """Copy of the graph with every edge weight set to 1."""
        coo = COOMatrix(
            self.edges.rows.copy(),
            self.edges.cols.copy(),
            np.ones(self.num_edges),
            self.edges.shape,
        )
        return Graph(coo, name=self.name)

    def with_weights(self, weights: np.ndarray) -> "Graph":
        """Copy with the given per-edge weights (aligned to edge order)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.num_edges,):
            raise GraphFormatError("weights must have one entry per edge")
        coo = COOMatrix(
            self.edges.rows.copy(),
            self.edges.cols.copy(),
            weights,
            self.edges.shape,
        )
        return Graph(coo, name=self.name)

    def __repr__(self) -> str:
        return (
            f"Graph(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )


class BipartiteGraph:
    """A weighted bipartite graph between users and items.

    Edges run users → items; the weight of edge ``(u, i)`` is the rating
    user ``u`` gave item ``i``. Collaborative filtering (Section IV of
    the paper, Netflix workload) consumes this type.
    """

    def __init__(self, ratings: COOMatrix, name: str = "bipartite") -> None:
        self.ratings = ratings
        self.name = name

    @property
    def num_users(self) -> int:
        """Number of user vertices (rows)."""
        return self.ratings.shape[0]

    @property
    def num_items(self) -> int:
        """Number of item vertices (columns)."""
        return self.ratings.shape[1]

    @property
    def num_ratings(self) -> int:
        """Number of rating edges."""
        return self.ratings.nnz

    def user_degrees(self) -> np.ndarray:
        """Ratings given per user."""
        return self.ratings.row_degrees()

    def item_degrees(self) -> np.ndarray:
        """Ratings received per item."""
        return self.ratings.col_degrees()

    def as_unified_graph(self) -> Graph:
        """View as one directed graph with items renumbered after users.

        Useful for feeding the bipartite workload through machinery that
        expects a square adjacency structure (e.g. shard partitioning).
        """
        n = self.num_users + self.num_items
        coo = COOMatrix(
            self.ratings.rows,
            self.ratings.cols + self.num_users,
            self.ratings.data,
            (n, n),
        )
        return Graph(coo, name=self.name)

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(name={self.name!r}, users={self.num_users}, "
            f"items={self.num_items}, ratings={self.num_ratings})"
        )
