"""Graph façade types.

A :class:`Graph` is a directed, optionally weighted graph whose edge set
lives in a :class:`~repro.graphs.coo.COOMatrix` (sources as rows,
destinations as columns). A :class:`BipartiteGraph` models the
user-item rating graphs collaborative filtering consumes.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from ..errors import GraphFormatError
from .coo import COOMatrix
from .csr import CSCMatrix, CSRMatrix


def normalize_mutation(
    batch, num_vertices: int, weighted: bool = True
) -> np.ndarray:
    """Canonicalize one edge mutation batch.

    Accepts ``None``, an ``(k, 2)`` array of ``(src, dst)`` pairs, an
    ``(k, 3)`` array with weights, or any nested-sequence equivalent
    (e.g. the JSON bodies the serve mutate endpoint receives). Returns
    a ``(k, 3)`` float64 array ``[src, dst, weight]`` (weight defaults
    to 1.0), validated against the vertex range. Later entries win on
    duplicate pairs, matching COO "last" dedup semantics.
    """
    if batch is None:
        return np.empty((0, 3), dtype=np.float64)
    if not isinstance(batch, np.ndarray):
        # JSON rows may mix [src, dst] and [src, dst, weight]; pad the
        # pairs so the batch forms one rectangular array.
        rows = []
        for row in batch:
            row = list(row)
            if len(row) not in (2, 3):
                raise GraphFormatError(
                    "each mutation row must be [src, dst] or "
                    "[src, dst, weight]"
                )
            rows.append(row + [1.0] * (3 - len(row)))
        batch = np.asarray(rows, dtype=np.float64).reshape(-1, 3)
    try:
        arr = np.asarray(batch, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise GraphFormatError(f"malformed mutation batch: {exc}") from exc
    if arr.size == 0:
        return np.empty((0, 3), dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] not in (2, 3):
        raise GraphFormatError(
            "a mutation batch must be (k, 2) pairs or (k, 3) "
            "weighted triples"
        )
    if arr.shape[1] == 2:
        arr = np.concatenate(
            [arr, np.ones((arr.shape[0], 1), dtype=np.float64)], axis=1
        )
    elif not weighted:
        arr = arr.copy()
        arr[:, 2] = 1.0
    endpoints = arr[:, :2]
    if not np.array_equal(endpoints, np.floor(endpoints)):
        raise GraphFormatError("edge endpoints must be integers")
    lo = endpoints.min() if endpoints.size else 0
    hi = endpoints.max() if endpoints.size else 0
    if lo < 0 or hi >= num_vertices:
        raise GraphFormatError(
            f"edge endpoint out of range [0, {num_vertices})"
        )
    return arr


class Graph:
    """A directed graph over vertices ``0 .. num_vertices - 1``.

    Parameters
    ----------
    edges:
        COO matrix with sources as rows and destinations as columns. The
        matrix must be square.
    name:
        Optional label used in reports.
    """

    def __init__(self, edges: COOMatrix, name: str = "graph") -> None:
        if edges.shape[0] != edges.shape[1]:
            raise GraphFormatError(
                f"a Graph requires a square edge matrix, got {edges.shape}"
            )
        self.edges = edges
        self.name = name
        self._csr: Optional[CSRMatrix] = None
        self._csc: Optional[CSCMatrix] = None
        self._out_degrees: Optional[np.ndarray] = None
        self._in_degrees: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_list(
        cls,
        edge_list: Iterable[Tuple[int, int]] | np.ndarray,
        weights: Optional[Iterable[float]] = None,
        num_vertices: Optional[int] = None,
        name: str = "graph",
        deduplicate: bool = True,
    ) -> "Graph":
        """Build a graph from an iterable of ``(src, dst)`` pairs."""
        arr = np.asarray(list(edge_list) if not isinstance(edge_list, np.ndarray) else edge_list)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphFormatError("edge_list must be of shape (E, 2)")
        n = num_vertices
        if n is None:
            n = int(arr.max()) + 1 if arr.size else 0
        data = None if weights is None else np.asarray(list(weights), dtype=np.float64)
        coo = COOMatrix(arr[:, 0], arr[:, 1], data, (n, n))
        if deduplicate and coo.has_duplicates():
            coo = coo.deduplicated("last")
        return cls(coo, name=name)

    @classmethod
    def from_csr(cls, csr: CSRMatrix, name: str = "graph") -> "Graph":
        """Build a graph around an existing CSR without copying edges.

        The COO façade reuses the CSR's ``indices``/``data`` arrays
        directly (memmap views stay memmap views); only the source-id
        column is materialized, because CSR stores it implicitly. The
        CSR itself is pre-seeded into the cache slot, so ``csr()`` —
        the reference baselines' entry point — returns the original
        zero-copy object instead of rebuilding it from COO.
        """
        if csr.shape[0] != csr.shape[1]:
            raise GraphFormatError(
                f"a Graph requires a square matrix, got {csr.shape}"
            )
        rows = np.repeat(
            np.arange(csr.shape[0], dtype=np.int64), np.diff(csr.indptr)
        )
        coo = COOMatrix(rows, csr.indices, csr.data, csr.shape)
        graph = cls(coo, name=name)
        graph._csr = csr
        return graph

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def with_edges(
        self,
        inserts=None,
        deletes=None,
        name: Optional[str] = None,
    ) -> "Graph":
        """A new graph with an edge mutation batch applied.

        ``inserts`` and ``deletes`` are ``(k, 2)`` pairs or ``(k, 3)``
        weighted triples (see :func:`normalize_mutation`). Deletes
        remove matching ``(src, dst)`` edges (missing edges are
        ignored); inserts upsert — re-inserting an existing edge
        replaces its weight. The receiver is untouched: graphs stay
        immutable, mutation produces a fresh content identity, which
        is what keys every downstream cache.
        """
        n = self.num_vertices
        ins = normalize_mutation(inserts, n)
        dels = normalize_mutation(deletes, n)
        src = self.edges.rows
        dst = self.edges.cols
        weight = self.weights
        # Pair keys fit int64: the matrix is square, so n^2 bounds them.
        keys = src * np.int64(n) + dst
        remove = np.concatenate(
            [
                dels[:, 0].astype(np.int64) * n
                + dels[:, 1].astype(np.int64),
                ins[:, 0].astype(np.int64) * n
                + ins[:, 1].astype(np.int64),
            ]
        )
        keep = (
            ~np.isin(keys, remove) if remove.size else np.ones_like(keys, dtype=bool)
        )
        new_src = np.concatenate([src[keep], ins[:, 0].astype(np.int64)])
        new_dst = np.concatenate([dst[keep], ins[:, 1].astype(np.int64)])
        new_w = np.concatenate([weight[keep], ins[:, 2]])
        coo = COOMatrix(new_src, new_dst, new_w, (n, n))
        if ins.shape[0] and coo.has_duplicates():
            coo = coo.deduplicated("last")
        return Graph(coo, name=name if name is not None else self.name)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self.edges.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self.edges.nnz

    @property
    def weights(self) -> np.ndarray:
        """Edge weight array, aligned with ``edges.rows``/``edges.cols``."""
        return self.edges.data

    def out_degrees(self) -> np.ndarray:
        """Out-degree of each vertex (cached; read-only array).

        The edge set is immutable after construction, so the degree
        vector is computed once and shared. The returned array is
        marked non-writeable — callers needing a mutable copy (or a
        float view) must copy, e.g. ``out_degrees().astype(float)``.
        """
        if self._out_degrees is None:
            degrees = self.edges.row_degrees()
            degrees.flags.writeable = False
            self._out_degrees = degrees
        return self._out_degrees

    def in_degrees(self) -> np.ndarray:
        """In-degree of each vertex (cached; read-only array)."""
        if self._in_degrees is None:
            degrees = self.edges.col_degrees()
            degrees.flags.writeable = False
            self._in_degrees = degrees
        return self._in_degrees

    def csr(self) -> CSRMatrix:
        """CSR view (cached)."""
        if self._csr is None:
            self._csr = self.edges.to_csr()
        return self._csr

    def csc(self) -> CSCMatrix:
        """CSC view (cached)."""
        if self._csc is None:
            self._csc = self.edges.to_csc()
        return self._csc

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def reversed(self) -> "Graph":
        """Graph with every edge direction flipped."""
        return Graph(self.edges.transpose(), name=f"{self.name}.rev")

    def with_unit_weights(self) -> "Graph":
        """Copy of the graph with every edge weight set to 1."""
        coo = COOMatrix(
            self.edges.rows.copy(),
            self.edges.cols.copy(),
            np.ones(self.num_edges),
            self.edges.shape,
        )
        return Graph(coo, name=self.name)

    def with_weights(self, weights: np.ndarray) -> "Graph":
        """Copy with the given per-edge weights (aligned to edge order)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.num_edges,):
            raise GraphFormatError("weights must have one entry per edge")
        coo = COOMatrix(
            self.edges.rows.copy(),
            self.edges.cols.copy(),
            weights,
            self.edges.shape,
        )
        return Graph(coo, name=self.name)

    def __repr__(self) -> str:
        return (
            f"Graph(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )


class BipartiteGraph:
    """A weighted bipartite graph between users and items.

    Edges run users → items; the weight of edge ``(u, i)`` is the rating
    user ``u`` gave item ``i``. Collaborative filtering (Section IV of
    the paper, Netflix workload) consumes this type.
    """

    def __init__(self, ratings: COOMatrix, name: str = "bipartite") -> None:
        self.ratings = ratings
        self.name = name

    @property
    def num_users(self) -> int:
        """Number of user vertices (rows)."""
        return self.ratings.shape[0]

    @property
    def num_items(self) -> int:
        """Number of item vertices (columns)."""
        return self.ratings.shape[1]

    @property
    def num_ratings(self) -> int:
        """Number of rating edges."""
        return self.ratings.nnz

    def user_degrees(self) -> np.ndarray:
        """Ratings given per user."""
        return self.ratings.row_degrees()

    def item_degrees(self) -> np.ndarray:
        """Ratings received per item."""
        return self.ratings.col_degrees()

    def as_unified_graph(self) -> Graph:
        """View as one directed graph with items renumbered after users.

        Useful for feeding the bipartite workload through machinery that
        expects a square adjacency structure (e.g. shard partitioning).
        """
        n = self.num_users + self.num_items
        coo = COOMatrix(
            self.ratings.rows,
            self.ratings.cols + self.num_users,
            self.ratings.data,
            (n, n),
        )
        return Graph(coo, name=self.name)

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(name={self.name!r}, users={self.num_users}, "
            f"items={self.num_items}, ratings={self.num_ratings})"
        )
