"""Compressed sparse row/column matrices.

These are the formats the software baselines (GridGraph/GAPBS-style cost
models, golden references) operate on; the accelerator itself consumes
COO shards. Only the operations the repository needs are implemented —
SpMV, transposed SpMV, row slicing and degree queries — each in fully
vectorized numpy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

import numpy as np

from ..errors import GraphFormatError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .coo import COOMatrix


def _compress(
    major: np.ndarray,
    minor: np.ndarray,
    data: np.ndarray,
    num_major: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort by (major, minor) and build an indptr over the major axis."""
    perm = np.lexsort((minor, major))
    major = major[perm]
    counts = np.bincount(major, minlength=num_major)
    indptr = np.zeros(num_major + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, minor[perm], data[perm]


class CSRMatrix:
    """Compressed sparse row matrix."""

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        self._validate()

    def _validate(self) -> None:
        if self.indptr.ndim != 1 or self.indptr.size != self.shape[0] + 1:
            raise GraphFormatError("indptr must have shape[0] + 1 entries")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise GraphFormatError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphFormatError("indptr must be non-decreasing")
        if self.indices.size != self.data.size:
            raise GraphFormatError("indices and data must match in length")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[1]
        ):
            raise GraphFormatError("column index out of bounds")

    @classmethod
    def from_coo(cls, coo: "COOMatrix") -> "CSRMatrix":
        """Build from a COO matrix (duplicates preserved, sorted)."""
        indptr, indices, data = _compress(
            coo.rows, coo.cols, coo.data, coo.shape[0]
        )
        return cls(indptr, indices, data, coo.shape)

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indices.size)

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return (column indices, values) of row ``i``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def row_degrees(self) -> np.ndarray:
        """Entries per row."""
        return np.diff(self.indptr)

    def slice_rows(self, lo: int, hi: int) -> "CSRMatrix":
        """Rows ``[lo, hi)`` as a CSR over the same column space.

        ``indices``/``data`` are zero-copy views of this matrix (memmap
        slices stay memmap slices); the only allocation is the rebased
        ``hi - lo + 1``-element local indptr. This is what makes a
        stored sub-shard free to hand to a worker.
        """
        if not 0 <= lo <= hi <= self.shape[0]:
            raise GraphFormatError(
                f"row slice [{lo}, {hi}) out of bounds for "
                f"{self.shape[0]} rows"
            )
        edge_lo = int(self.indptr[lo])
        edge_hi = int(self.indptr[hi])
        local = np.asarray(
            self.indptr[lo : hi + 1], dtype=np.int64
        ) - edge_lo
        return CSRMatrix(
            local,
            self.indices[edge_lo:edge_hi],
            self.data[edge_lo:edge_hi],
            (hi - lo, self.shape[1]),
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix-vector product ``A @ x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise GraphFormatError(
                f"vector length {x.shape} does not match shape {self.shape}"
            )
        products = self.data * x[self.indices]
        row_ids = np.repeat(
            np.arange(self.shape[0]), np.diff(self.indptr)
        )
        return np.bincount(
            row_ids, weights=products, minlength=self.shape[0]
        )

    def spmv_transposed(self, x: np.ndarray) -> np.ndarray:
        """Product ``A.T @ x`` without materializing the transpose."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[0],):
            raise GraphFormatError(
                f"vector length {x.shape} does not match shape {self.shape}"
            )
        row_ids = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        products = self.data * x[row_ids]
        return np.bincount(
            self.indices, weights=products, minlength=self.shape[1]
        )

    def to_coo(self) -> "COOMatrix":
        """Convert back to coordinate form."""
        from .coo import COOMatrix

        row_ids = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        return COOMatrix(row_ids, self.indices.copy(), self.data.copy(), self.shape)

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"


class CSCMatrix:
    """Compressed sparse column matrix.

    Stored as the CSR of the transpose; ``indptr`` runs over columns and
    ``indices`` holds row ids.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        if self.indptr.size != self.shape[1] + 1:
            raise GraphFormatError("indptr must have shape[1] + 1 entries")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise GraphFormatError("indptr must start at 0 and end at nnz")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[0]
        ):
            raise GraphFormatError("row index out of bounds")

    @classmethod
    def from_coo(cls, coo: "COOMatrix") -> "CSCMatrix":
        """Build from a COO matrix."""
        indptr, indices, data = _compress(
            coo.cols, coo.rows, coo.data, coo.shape[1]
        )
        return cls(indptr, indices, data, coo.shape)

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indices.size)

    def col(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return (row indices, values) of column ``j``."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def col_degrees(self) -> np.ndarray:
        """Entries per column."""
        return np.diff(self.indptr)

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix-vector product ``A @ x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise GraphFormatError(
                f"vector length {x.shape} does not match shape {self.shape}"
            )
        col_ids = np.repeat(np.arange(self.shape[1]), np.diff(self.indptr))
        products = self.data * x[col_ids]
        return np.bincount(
            self.indices, weights=products, minlength=self.shape[0]
        )

    def to_coo(self) -> "COOMatrix":
        """Convert back to coordinate form."""
        from .coo import COOMatrix

        col_ids = np.repeat(np.arange(self.shape[1]), np.diff(self.indptr))
        return COOMatrix(self.indices.copy(), col_ids, self.data.copy(), self.shape)

    def __repr__(self) -> str:
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"
