"""Structural graph statistics.

These drive the paper's motivation analysis (Section II-C): real-world
graphs have heavy-tailed degrees and, when the adjacency matrix is cut
into small tiles, the non-empty tiles are themselves almost empty
("90 % of the non-zero sub-blocks have only 10 % density"), which is
what makes GraphR's dense-tile mapping wasteful (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import GraphFormatError
from .graph import Graph


def degree_histogram(degrees: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return (degree values, vertex counts), ascending, zeros included."""
    degrees = np.asarray(degrees)
    values, counts = np.unique(degrees, return_counts=True)
    return values, counts


def degree_skew(degrees: np.ndarray) -> float:
    """Max-degree over mean-degree; >> 1 signals a scale-free graph."""
    degrees = np.asarray(degrees, dtype=np.float64)
    mean = degrees.mean() if degrees.size else 0.0
    return float(degrees.max() / mean) if mean > 0 else 0.0


@dataclass(frozen=True)
class TileProfile:
    """Density profile of the adjacency matrix cut into square tiles."""

    tile_size: int
    num_tiles_total: int
    num_tiles_nonempty: int
    nnz: int
    tile_nnz: np.ndarray  # per non-empty tile, descending not guaranteed

    @property
    def nonempty_fraction(self) -> float:
        """Fraction of tiles holding at least one edge."""
        if self.num_tiles_total == 0:
            return 0.0
        return self.num_tiles_nonempty / self.num_tiles_total

    @property
    def densities(self) -> np.ndarray:
        """Per-non-empty-tile density (nnz / tile_size^2)."""
        return self.tile_nnz / float(self.tile_size * self.tile_size)

    @property
    def mean_nonempty_density(self) -> float:
        """Average density of the non-empty tiles."""
        d = self.densities
        return float(d.mean()) if d.size else 0.0

    def fraction_below_density(self, threshold: float) -> float:
        """Fraction of non-empty tiles with density <= ``threshold``.

        The paper's headline: ~90 % of non-empty tiles sit at <= 10 %
        density on real graphs.
        """
        d = self.densities
        return float(np.mean(d <= threshold)) if d.size else 0.0

    @property
    def dense_cells(self) -> int:
        """Cells materialized by a dense mapping of the non-empty tiles."""
        return self.num_tiles_nonempty * self.tile_size * self.tile_size

    @property
    def redundant_write_ratio(self) -> float:
        """Dense-mapping cell writes over sparse-mapping cell writes.

        A dense mapping must write every cell of every non-empty tile
        into the compute crossbars; a sparse mapping writes one cell per
        edge. This is the "Writes" group of Figure 5.
        """
        return self.dense_cells / self.nnz if self.nnz else 0.0


def tile_profile(graph: Graph, tile_size: int = 16) -> TileProfile:
    """Cut the adjacency matrix into ``tile_size`` squares and profile
    the per-tile occupancy (fully vectorized)."""
    if tile_size <= 0:
        raise GraphFormatError("tile_size must be positive")
    n = graph.num_vertices
    k = -(-n // tile_size)
    edges = graph.edges
    tile_ids = (edges.rows // tile_size) * k + (edges.cols // tile_size)
    _, counts = np.unique(tile_ids, return_counts=True)
    return TileProfile(
        tile_size=tile_size,
        num_tiles_total=k * k,
        num_tiles_nonempty=int(counts.size),
        nnz=graph.num_edges,
        tile_nnz=counts.astype(np.int64),
    )


def summarize(graph: Graph) -> dict:
    """One-stop structural summary used by reports and Table II."""
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    return {
        "name": graph.name,
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "density": graph.edges.density,
        "mean_out_degree": float(out_deg.mean()) if out_deg.size else 0.0,
        "max_out_degree": int(out_deg.max()) if out_deg.size else 0,
        "max_in_degree": int(in_deg.max()) if in_deg.size else 0,
        "out_degree_skew": degree_skew(out_deg),
        "isolated_vertices": int(np.sum((out_deg == 0) & (in_deg == 0))),
    }
