"""Graph transformations.

Utilities a downstream user needs around the core pipeline: making a
directed graph undirected (symmetrize), extracting subgraphs or the
largest weakly connected component, and compacting sparse vertex-id
spaces. All return new graphs; inputs are never mutated.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import GraphFormatError
from .coo import COOMatrix
from .graph import Graph


def symmetrize(graph: Graph, combine: str = "min") -> Graph:
    """Return the undirected closure: every edge gets its reverse.

    Duplicate (u, v) pairs arising from pre-existing reciprocal edges
    are merged with ``combine`` (default: keep the lighter weight).
    """
    edges = graph.edges
    src = np.concatenate([edges.rows, edges.cols])
    dst = np.concatenate([edges.cols, edges.rows])
    data = np.concatenate([edges.data, edges.data])
    coo = COOMatrix(src, dst, data, edges.shape).deduplicated(combine)
    return Graph(coo, name=f"{graph.name}.sym")


def subgraph(graph: Graph, vertices: np.ndarray) -> Tuple[Graph, np.ndarray]:
    """Induced subgraph on ``vertices``, with compacted ids.

    Returns ``(sub, mapping)`` where ``mapping[i]`` is the original id
    of the subgraph's vertex ``i``.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    if vertices.size and (
        vertices[0] < 0 or vertices[-1] >= graph.num_vertices
    ):
        raise GraphFormatError("subgraph vertices out of range")
    member = np.zeros(graph.num_vertices, dtype=bool)
    member[vertices] = True
    relabel = np.full(graph.num_vertices, -1, dtype=np.int64)
    relabel[vertices] = np.arange(vertices.size)
    edges = graph.edges
    keep = member[edges.rows] & member[edges.cols]
    coo = COOMatrix(
        relabel[edges.rows[keep]],
        relabel[edges.cols[keep]],
        edges.data[keep],
        (vertices.size, vertices.size),
    )
    return Graph(coo, name=f"{graph.name}.sub"), vertices


def largest_component(graph: Graph) -> Tuple[Graph, np.ndarray]:
    """Induced subgraph on the largest weakly connected component.

    Component discovery runs the same min-label propagation as the
    accelerator's WCC kernel, in plain numpy.
    """
    n = graph.num_vertices
    if n == 0:
        return graph, np.empty(0, dtype=np.int64)
    labels = np.arange(n, dtype=np.int64)
    src, dst = graph.edges.rows, graph.edges.cols
    while True:
        new_labels = labels.copy()
        np.minimum.at(new_labels, dst, labels[src])
        np.minimum.at(new_labels, src, labels[dst])
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    values, counts = np.unique(labels, return_counts=True)
    biggest = values[np.argmax(counts)]
    return subgraph(graph, np.flatnonzero(labels == biggest))


def compact_ids(graph: Graph) -> Tuple[Graph, np.ndarray]:
    """Drop isolated vertices, renumbering the rest contiguously.

    Returns ``(compacted, mapping)`` like :func:`subgraph`.
    """
    deg = graph.out_degrees() + graph.in_degrees()
    return subgraph(graph, np.flatnonzero(deg > 0))


def relabel(graph: Graph, permutation: np.ndarray) -> Graph:
    """Apply a vertex permutation: new id of vertex v is
    ``permutation[v]``."""
    permutation = np.asarray(permutation, dtype=np.int64)
    n = graph.num_vertices
    if permutation.shape != (n,) or not np.array_equal(
        np.sort(permutation), np.arange(n)
    ):
        raise GraphFormatError("permutation must be a bijection on 0..n-1")
    edges = graph.edges
    coo = COOMatrix(
        permutation[edges.rows],
        permutation[edges.cols],
        edges.data.copy(),
        edges.shape,
    )
    return Graph(coo.sorted_by("row"), name=graph.name)
