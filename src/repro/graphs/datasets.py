"""Synthetic stand-ins for the paper's evaluation datasets (Table II).

The paper evaluates on six SNAP graphs plus the Netflix rating matrix.
This environment has no network access, so each dataset is replaced by a
seeded R-MAT (or bipartite Zipf) graph with the same vertex/edge counts.
Three profiles control scale:

* ``tiny``   — a few hundred edges; unit tests.
* ``bench``  — default; full scale for the small graphs, the three
  largest scaled down so a laptop-class benchmark run stays in minutes
  (divisors recorded per dataset and reported by the harness).
* ``full``   — the paper's published sizes.

The R-MAT parameters (a=0.57, b=c=0.19) are the Graph500 defaults, which
give degree skew comparable to SNAP social graphs; every generator is
deterministic in the dataset's fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Tuple

from ..errors import DatasetError
from .generators import bipartite_ratings, degree_sorted_relabel, rmat
from .graph import BipartiteGraph, Graph

PROFILES = ("tiny", "bench", "full")


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry for one evaluation dataset."""

    key: str
    full_name: str
    description: str
    vertices: int
    edges: int
    seed: int
    #: scale divisor per profile (vertices and edges divided by this)
    profile_divisors: Dict[str, int]
    bipartite: bool = False
    items: int = 0  # only for bipartite datasets
    #: item-count divisor per profile (bipartite only). Items scale
    #: less aggressively than users so the rating-matrix density stays
    #: at the real dataset's (Netflix: ~1.16 %).
    item_divisors: Optional[Dict[str, int]] = None

    def sizes(self, profile: str) -> Tuple[int, int]:
        """(vertices, edges) after applying the profile divisor."""
        if profile not in PROFILES:
            raise DatasetError(
                f"unknown profile {profile!r}; expected one of {PROFILES}"
            )
        div = self.profile_divisors[profile]
        return max(self.vertices // div, 64), max(self.edges // div, 128)


def _spec(
    key: str,
    full_name: str,
    description: str,
    vertices: int,
    edges: int,
    seed: int,
    bench_divisor: int = 1,
    tiny_divisor: int = 512,
    bipartite: bool = False,
    items: int = 0,
) -> DatasetSpec:
    return DatasetSpec(
        key=key,
        full_name=full_name,
        description=description,
        vertices=vertices,
        edges=edges,
        seed=seed,
        profile_divisors={"tiny": tiny_divisor, "bench": bench_divisor, "full": 1},
        bipartite=bipartite,
        items=items,
    )


#: Table II of the paper, with per-profile scaling. Keys follow the
#: paper's dataset abbreviations.
DATASETS: Dict[str, DatasetSpec] = {
    spec.key: spec
    for spec in (
        _spec("WV", "WikiVote", "Wikipedia voting data", 7_000, 103_000, 11),
        _spec("SD", "Slashdot", "Slashdot Zoo social network", 82_000, 948_000, 13),
        _spec("AZ", "Amazon", "Amazon co-purchasing network", 262_000, 1_200_000, 17),
        _spec(
            "WG",
            "WebGoogle",
            "Web graph from Google",
            880_000,
            5_100_000,
            19,
            bench_divisor=4,
        ),
        _spec(
            "LJ",
            "LiveJournal",
            "LiveJournal social network",
            4_800_000,
            69_000_000,
            23,
            bench_divisor=48,
            tiny_divisor=65_536,
        ),
        _spec(
            "OR",
            "Orkut",
            "Orkut social network",
            3_000_000,
            106_000_000,
            29,
            bench_divisor=64,
            tiny_divisor=131_072,
        ),
        DatasetSpec(
            key="NF",
            full_name="Netflix",
            description="Netflix movie user ratings",
            vertices=480_000,
            edges=99_000_000,
            seed=31,
            # Ratings scale by 200x (99M -> ~495k), users by 20x and
            # items by 10x, preserving the real ~1.16 % matrix density.
            profile_divisors={"tiny": 8_192, "bench": 200, "full": 1},
            bipartite=True,
            items=17_800,
            item_divisors={"tiny": 256, "bench": 10, "full": 1},
        ),
    )
}

#: Datasets used for the PageRank/BFS/SSSP figures, in the paper's
#: plotting order (SD, LJ, WV, WG, AZ, OR for Figures 11/12/15/16).
FIGURE_ORDER = ("SD", "LJ", "WV", "WG", "AZ", "OR")


@lru_cache(maxsize=32)
def load_dataset(key: str, profile: str = "bench") -> Graph | BipartiteGraph:
    """Generate the synthetic stand-in for dataset ``key``.

    Returns a :class:`Graph`, or a :class:`BipartiteGraph` for the
    Netflix stand-in. Deterministic for a given (key, profile), and
    cached: callers receive a shared instance and must not mutate it.
    """
    try:
        spec = DATASETS[key.upper()]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {key!r}; known: {sorted(DATASETS)}"
        ) from None
    vertices, edges = spec.sizes(profile)
    name = f"{spec.key}-{profile}"
    if spec.bipartite:
        edge_div = spec.profile_divisors[profile]
        item_div = (spec.item_divisors or {}).get(profile, edge_div)
        # user_div x item_div == edge_div keeps the rating-matrix
        # density at the real dataset's value.
        user_div = max(edge_div // item_div, 1)
        users = max(spec.vertices // user_div, 64)
        items = max(spec.items // item_div, 16)
        ratings = max(min(spec.edges // edge_div, users * items // 2), 128)
        return bipartite_ratings(
            num_users=users,
            num_items=items,
            num_ratings=ratings,
            seed=spec.seed,
            name=name,
        )
    # Cap the edge request below what a simple digraph of this size can
    # actually hold (generators reject impossible densities).
    edges = min(edges, vertices * (vertices - 1) // 2)

    def _build() -> Graph:
        # a=0.8 concentrates edges the way SNAP crawl-ordered graphs
        # do: the resulting 16x16 tile profile (~90 % of non-empty
        # tiles at <= 10 % density, dense/sparse write ratio in the
        # 25-55x band) matches the paper's Section II-C measurements.
        graph = rmat(
            vertices, edges, a=0.80, b=0.08, c=0.08, seed=spec.seed,
            name=name,
        )
        # Degree-sorted ids reproduce SNAP-like tile locality (see
        # generators.degree_sorted_relabel).
        return degree_sorted_relabel(graph)

    # Generation is deterministic in (key, profile); route it through
    # the persistent content cache so repeated sessions skip the R-MAT
    # build entirely. The lru_cache above keeps the in-process tier.
    from ..core.cache import get_cache

    return get_cache().cached_graph(f"dataset|{spec.key}|{profile}", _build)


def load_dataset_mmap(key: str, profile: str = "bench") -> Graph:
    """Load a dataset as a shared, memmap-backed :class:`Graph`.

    First call per (key, profile) converts the stand-in into the
    content-addressed CSR store (``$REPRO_STORE_DIR`` or
    ``~/.cache/repro/store``); every later call — in this or any other
    process — reopens zero-copy read-only views over the same file, so
    N engines on one host share one copy of the edge arrays through
    the page cache. Bipartite datasets (Netflix) are refused: their
    consumers need the :class:`BipartiteGraph` shape, which the square
    store deliberately does not preserve — use :func:`load_dataset`.
    """
    spec = DATASETS.get(key.upper())
    if spec is None:
        raise DatasetError(
            f"unknown dataset {key!r}; known: {sorted(DATASETS)}"
        )
    if spec.bipartite:
        raise DatasetError(
            f"dataset {spec.key} is bipartite; the mmap store serves "
            f"square graphs only — use load_dataset()"
        )
    from ..storage.mmap_store import get_store

    return get_store().dataset(spec.key, profile).graph()
