"""Graph substrate: sparse formats, generators, datasets, partitioning.

This subpackage is self-contained (no dependency on the accelerator
models) so it can serve both the GaaS-X engine and every baseline.
"""

from .coo import COOMatrix
from .csr import CSRMatrix, CSCMatrix
from .graph import BipartiteGraph, Graph
from .partition import IntervalPartition, Shard, ShardGrid, partition_graph
from .generators import (
    barabasi_albert,
    bipartite_ratings,
    erdos_renyi,
    grid_2d,
    rmat,
)
from .datasets import DATASETS, DatasetSpec, load_dataset

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "Graph",
    "BipartiteGraph",
    "IntervalPartition",
    "Shard",
    "ShardGrid",
    "partition_graph",
    "rmat",
    "barabasi_albert",
    "erdos_renyi",
    "grid_2d",
    "bipartite_ratings",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
]
