"""Synthetic graph generators.

The paper evaluates on SNAP social/web graphs and the Netflix rating
matrix. Without network access we substitute seeded synthetic graphs
whose structural properties drive the same accelerator behaviour:

* :func:`rmat` — Kronecker/R-MAT graphs reproduce the heavy-tailed
  degree distributions and the "90 % of non-zero 16x16 sub-blocks have
  only 10 % density" sparsity profile the paper measures on SNAP graphs
  (Section II-C).
* :func:`barabasi_albert` — preferential-attachment alternative.
* :func:`erdos_renyi` — uniform control case for ablations.
* :func:`grid_2d` — road-network-like planar graph for SSSP examples.
* :func:`bipartite_ratings` — Zipf-popularity user/item rating graph
  standing in for Netflix.

All generators are deterministic given a seed, fully vectorized, and
return de-duplicated, self-loop-free edge sets.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import GraphFormatError
from .coo import COOMatrix
from .graph import BipartiteGraph, Graph


def _unique_edges(src: np.ndarray, dst: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Drop self loops and duplicate (src, dst) pairs, preserving nothing
    about order (callers re-sort as needed)."""
    keep = src != dst
    src, dst = src[keep], dst[keep]
    key = src.astype(np.int64) << 32 | dst.astype(np.int64)
    _, idx = np.unique(key, return_index=True)
    return src[idx], dst[idx]


def _random_weights(
    rng: np.random.Generator, count: int, weight_range: Tuple[float, float]
) -> np.ndarray:
    lo, hi = weight_range
    if lo > hi:
        raise GraphFormatError("weight_range must be (low, high) with low <= high")
    if lo == hi:
        return np.full(count, float(lo))
    return rng.integers(int(lo), int(hi) + 1, size=count).astype(np.float64)


def rmat(
    num_vertices: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    weight_range: Tuple[float, float] = (1.0, 16.0),
    shuffle_ids: bool = False,
    name: str = "rmat",
) -> Graph:
    """Generate an R-MAT (recursive matrix) graph.

    Parameters follow the Graph500 convention: at each of ``log2(n)``
    recursion levels an edge endpoint pair picks quadrant ``a``, ``b``,
    ``c`` or ``d = 1 - a - b - c``. ``num_vertices`` is rounded up to a
    power of two internally and truncated back after generation.

    ``shuffle_ids=False`` (the default) keeps the recursive quadrant
    structure in the id space. That structure is exactly the id-locality
    real SNAP graphs exhibit (crawl order and communities cluster edge
    endpoints), and it is load-bearing for the paper's Figure 5: the
    density of non-empty adjacency-matrix tiles depends on it. Setting
    ``shuffle_ids=True`` randomly relabels vertices, producing a
    locality-free control graph for ablations.

    Duplicate edges are regenerated until the requested edge count is
    met (or the loop converges below it on very dense requests, in which
    case the achieved count is kept).
    """
    if num_vertices <= 1:
        raise GraphFormatError("rmat needs at least 2 vertices")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise GraphFormatError("rmat probabilities must be non-negative")
    scale = int(np.ceil(np.log2(num_vertices)))
    n_pow2 = 1 << scale
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n_pow2) if shuffle_ids else np.arange(n_pow2)

    src_parts = []
    dst_parts = []
    have = 0
    attempts = 0
    thresholds = np.array([a, a + b, a + b + c])
    while have < num_edges and attempts < 64:
        want = int((num_edges - have) * 1.3) + 16
        src = np.zeros(want, dtype=np.int64)
        dst = np.zeros(want, dtype=np.int64)
        for level in range(scale):
            r = rng.random(want)
            quadrant = np.searchsorted(thresholds, r)
            bit = 1 << (scale - 1 - level)
            src += np.where(quadrant >= 2, bit, 0)
            dst += np.where((quadrant == 1) | (quadrant == 3), bit, 0)
        src, dst = perm[src], perm[dst]
        keep = (src < num_vertices) & (dst < num_vertices)
        src_parts.append(src[keep])
        dst_parts.append(dst[keep])
        all_src = np.concatenate(src_parts)
        all_dst = np.concatenate(dst_parts)
        all_src, all_dst = _unique_edges(all_src, all_dst)
        src_parts, dst_parts = [all_src], [all_dst]
        have = all_src.size
        attempts += 1
    src = src_parts[0][:num_edges]
    dst = dst_parts[0][:num_edges]
    weights = _random_weights(rng, src.size, weight_range)
    coo = COOMatrix(src, dst, weights, (num_vertices, num_vertices))
    return Graph(coo.sorted_by("row"), name=name)


def degree_sorted_relabel(graph: Graph) -> Graph:
    """Relabel vertices in descending total-degree order.

    SNAP graph ids correlate strongly with crawl order and community
    membership, which concentrates edges into dense adjacency-matrix
    neighbourhoods. A pure R-MAT id space is more uniform; sorting ids
    by degree restores hub clustering and reproduces the paper's
    measured tile-density profile (~90 % of non-empty 16x16 tiles at
    <= 10 % density, Section II-C).
    """
    degree = graph.out_degrees() + graph.in_degrees()
    order = np.argsort(-degree, kind="stable")
    relabel = np.empty_like(order)
    relabel[order] = np.arange(graph.num_vertices)
    coo = COOMatrix(
        relabel[graph.edges.rows],
        relabel[graph.edges.cols],
        graph.edges.data,
        graph.edges.shape,
    )
    return Graph(coo.sorted_by("row"), name=graph.name)


def barabasi_albert(
    num_vertices: int,
    edges_per_vertex: int = 4,
    seed: int = 0,
    weight_range: Tuple[float, float] = (1.0, 16.0),
    name: str = "ba",
) -> Graph:
    """Preferential-attachment scale-free graph (directed).

    Each new vertex attaches ``edges_per_vertex`` out-edges to targets
    sampled proportionally to current degree, approximated with the
    standard repeated-endpoint trick (sampling uniformly from the edge
    endpoint list).
    """
    m = edges_per_vertex
    if num_vertices <= m:
        raise GraphFormatError("num_vertices must exceed edges_per_vertex")
    rng = np.random.default_rng(seed)
    targets = list(range(m))
    repeated: list[int] = list(range(m))
    src_list = []
    dst_list = []
    for v in range(m, num_vertices):
        picks = rng.choice(len(repeated), size=m, replace=False)
        chosen = {repeated[p] for p in picks}
        for t in chosen:
            src_list.append(v)
            dst_list.append(t)
            repeated.append(t)
            repeated.append(v)
        targets.append(v)
    src = np.asarray(src_list, dtype=np.int64)
    dst = np.asarray(dst_list, dtype=np.int64)
    src, dst = _unique_edges(src, dst)
    weights = _random_weights(rng, src.size, weight_range)
    coo = COOMatrix(src, dst, weights, (num_vertices, num_vertices))
    return Graph(coo.sorted_by("row"), name=name)


def erdos_renyi(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    weight_range: Tuple[float, float] = (1.0, 16.0),
    name: str = "er",
) -> Graph:
    """Uniform random directed graph with ``num_edges`` distinct edges."""
    if num_vertices <= 1:
        raise GraphFormatError("erdos_renyi needs at least 2 vertices")
    max_edges = num_vertices * (num_vertices - 1)
    if num_edges > max_edges:
        raise GraphFormatError(
            f"cannot place {num_edges} distinct edges in a "
            f"{num_vertices}-vertex simple digraph"
        )
    rng = np.random.default_rng(seed)
    src_acc = np.empty(0, dtype=np.int64)
    dst_acc = np.empty(0, dtype=np.int64)
    while src_acc.size < num_edges:
        want = int((num_edges - src_acc.size) * 1.2) + 16
        src = rng.integers(0, num_vertices, size=want)
        dst = rng.integers(0, num_vertices, size=want)
        src_acc = np.concatenate([src_acc, src])
        dst_acc = np.concatenate([dst_acc, dst])
        src_acc, dst_acc = _unique_edges(src_acc, dst_acc)
    src, dst = src_acc[:num_edges], dst_acc[:num_edges]
    weights = _random_weights(rng, src.size, weight_range)
    coo = COOMatrix(src, dst, weights, (num_vertices, num_vertices))
    return Graph(coo.sorted_by("row"), name=name)


def grid_2d(
    width: int,
    height: int,
    seed: int = 0,
    weight_range: Tuple[float, float] = (1.0, 9.0),
    bidirectional: bool = True,
    name: str = "grid",
) -> Graph:
    """Planar grid graph (road-network stand-in for SSSP demos).

    Vertex ``(x, y)`` has id ``y * width + x``; edges connect horizontal
    and vertical neighbours with random integer weights.
    """
    if width < 2 or height < 2:
        raise GraphFormatError("grid_2d needs width and height >= 2")
    xs, ys = np.meshgrid(np.arange(width), np.arange(height))
    ids = (ys * width + xs).ravel()
    right = ids.reshape(height, width)[:, :-1].ravel()
    down = ids.reshape(height, width)[:-1, :].ravel()
    src = np.concatenate([right, down])
    dst = np.concatenate([right + 1, down + width])
    if bidirectional:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    rng = np.random.default_rng(seed)
    weights = _random_weights(rng, src.size, weight_range)
    n = width * height
    coo = COOMatrix(src, dst, weights, (n, n))
    return Graph(coo.sorted_by("row"), name=name)


def bipartite_ratings(
    num_users: int,
    num_items: int,
    num_ratings: int,
    seed: int = 0,
    rating_levels: int = 5,
    popularity_skew: float = 1.1,
    name: str = "ratings",
) -> BipartiteGraph:
    """Zipf-popularity bipartite rating graph (Netflix stand-in).

    Item popularity follows a Zipf law with exponent ``popularity_skew``
    (Netflix's catalogue is strongly head-heavy); users are sampled
    uniformly. Ratings are integers in ``1..rating_levels``.
    """
    if num_users <= 0 or num_items <= 0:
        raise GraphFormatError("user and item counts must be positive")
    if num_ratings > num_users * num_items:
        raise GraphFormatError("more ratings requested than user-item pairs")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    probs = ranks ** (-popularity_skew)
    probs /= probs.sum()
    users_acc = np.empty(0, dtype=np.int64)
    items_acc = np.empty(0, dtype=np.int64)
    while users_acc.size < num_ratings:
        want = int((num_ratings - users_acc.size) * 1.2) + 16
        users = rng.integers(0, num_users, size=want)
        items = rng.choice(num_items, size=want, p=probs)
        users_acc = np.concatenate([users_acc, users])
        items_acc = np.concatenate([items_acc, items])
        key = users_acc << 32 | items_acc
        _, idx = np.unique(key, return_index=True)
        users_acc, items_acc = users_acc[idx], items_acc[idx]
    users, items = users_acc[:num_ratings], items_acc[:num_ratings]
    ratings = rng.integers(1, rating_levels + 1, size=users.size).astype(np.float64)
    coo = COOMatrix(users, items, ratings, (num_users, num_items))
    return BipartiteGraph(coo.sorted_by("row"), name=name)
