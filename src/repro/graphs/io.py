"""Graph I/O: SNAP-style edge lists and a binary COO container.

The SNAP datasets the paper uses ship as whitespace-separated edge-list
text files with ``#`` comment headers; :func:`read_edge_list` accepts
exactly that shape (with an optional third weight column). The binary
container is a plain ``.npz`` holding the COO arrays for fast reloads.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from ..errors import GraphFormatError
from .coo import COOMatrix
from .graph import Graph


def read_edge_list(
    path: str | os.PathLike,
    weighted: Optional[bool] = None,
    num_vertices: Optional[int] = None,
    comment: str = "#",
    name: Optional[str] = None,
) -> Graph:
    """Read a SNAP-style edge-list text file.

    Each non-comment line is ``src dst`` or ``src dst weight``. When
    ``weighted`` is None the format is inferred from the first data
    line. Vertex ids must be non-negative integers; they are used as-is
    (no compaction), matching how SNAP files number vertices.
    """
    srcs: list[int] = []
    dsts: list[int] = []
    weights: list[float] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if weighted is None:
                weighted = len(parts) >= 3
            expected = 3 if weighted else 2
            if len(parts) < expected:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected {expected} columns, "
                    f"got {len(parts)}"
                )
            try:
                srcs.append(int(parts[0]))
                dsts.append(int(parts[1]))
                if weighted:
                    weights.append(float(parts[2]))
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: {exc}") from exc
    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    data = np.asarray(weights, dtype=np.float64) if weighted else None
    n = num_vertices
    if n is None:
        n = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1 if src.size else 0
    coo = COOMatrix(src, dst, data, (n, n))
    label = name if name is not None else os.path.basename(os.fspath(path))
    return Graph(coo, name=label)


def write_edge_list(
    graph: Graph,
    path: str | os.PathLike,
    weighted: bool = True,
    header: Optional[str] = None,
) -> None:
    """Write a graph as a SNAP-style edge-list text file."""
    edges = graph.edges
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# vertices: {graph.num_vertices}\n")
        handle.write(f"# edges: {graph.num_edges}\n")
        if weighted:
            for s, d, w in zip(edges.rows, edges.cols, edges.data):
                handle.write(f"{s}\t{d}\t{w:g}\n")
        else:
            for s, d in zip(edges.rows, edges.cols):
                handle.write(f"{s}\t{d}\n")


def read_matrix_market(
    path: str | os.PathLike, name: Optional[str] = None
) -> Graph:
    """Read a MatrixMarket ``coordinate`` file as a directed graph.

    Supports ``real``/``integer``/``pattern`` fields and the
    ``general``/``symmetric`` symmetry modes (symmetric entries are
    mirrored). Indices are 1-based per the format and converted.
    """
    with open(path, "r", encoding="utf-8") as handle:
        header = handle.readline().strip().split()
        if (
            len(header) < 5
            or header[0] != "%%MatrixMarket"
            or header[1].lower() != "matrix"
            or header[2].lower() != "coordinate"
        ):
            raise GraphFormatError(
                f"{path}: not a MatrixMarket coordinate file"
            )
        field = header[3].lower()
        symmetry = header[4].lower()
        if field not in ("real", "integer", "pattern"):
            raise GraphFormatError(f"{path}: unsupported field {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise GraphFormatError(
                f"{path}: unsupported symmetry {symmetry!r}"
            )
        line = handle.readline()
        while line.startswith("%"):
            line = handle.readline()
        dims = line.split()
        if len(dims) != 3:
            raise GraphFormatError(f"{path}: malformed size line")
        num_rows, num_cols, nnz = (int(x) for x in dims)
        if num_rows != num_cols:
            raise GraphFormatError(
                f"{path}: adjacency matrix must be square, "
                f"got {num_rows}x{num_cols}"
            )
        srcs = np.empty(nnz, dtype=np.int64)
        dsts = np.empty(nnz, dtype=np.int64)
        weights = np.ones(nnz, dtype=np.float64)
        for i in range(nnz):
            parts = handle.readline().split()
            expected = 2 if field == "pattern" else 3
            if len(parts) < expected:
                raise GraphFormatError(f"{path}: truncated entry {i + 1}")
            srcs[i] = int(parts[0]) - 1
            dsts[i] = int(parts[1]) - 1
            if field != "pattern":
                weights[i] = float(parts[2])
    if symmetry == "symmetric":
        off_diag = srcs != dsts
        mirrored_src = np.concatenate([srcs, dsts[off_diag]])
        mirrored_dst = np.concatenate([dsts, srcs[off_diag]])
        weights = np.concatenate([weights, weights[off_diag]])
        srcs, dsts = mirrored_src, mirrored_dst
    coo = COOMatrix(srcs, dsts, weights, (num_rows, num_rows))
    label = name if name is not None else os.path.basename(os.fspath(path))
    return Graph(coo, name=label)


def write_matrix_market(graph: Graph, path: str | os.PathLike) -> None:
    """Write a graph as a general real MatrixMarket coordinate file."""
    edges = graph.edges
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("%%MatrixMarket matrix coordinate real general\n")
        handle.write(f"% generated by repro (graph {graph.name})\n")
        n = graph.num_vertices
        handle.write(f"{n} {n} {graph.num_edges}\n")
        for s, d, w in zip(edges.rows, edges.cols, edges.data):
            handle.write(f"{s + 1} {d + 1} {w:g}\n")


def save_binary(graph: Graph, path: str | os.PathLike) -> None:
    """Persist a graph as a compressed ``.npz`` COO container."""
    np.savez_compressed(
        path,
        src=graph.edges.rows,
        dst=graph.edges.cols,
        weight=graph.edges.data,
        num_vertices=np.int64(graph.num_vertices),
        name=np.str_(graph.name),
    )


def load_binary(path: str | os.PathLike) -> Graph:
    """Load a graph saved by :func:`save_binary`."""
    with np.load(path, allow_pickle=False) as archive:
        required = {"src", "dst", "weight", "num_vertices"}
        missing = required - set(archive.files)
        if missing:
            raise GraphFormatError(
                f"{path}: missing arrays {sorted(missing)}"
            )
        n = int(archive["num_vertices"])
        coo = COOMatrix(archive["src"], archive["dst"], archive["weight"], (n, n))
        name = str(archive["name"]) if "name" in archive.files else "graph"
    return Graph(coo, name=name)


def save_store(graph: Graph, path: str | os.PathLike) -> str:
    """Write a graph as a canonical CSR store file; returns its digest.

    This is the mmap-native counterpart of :func:`save_binary`: the
    result reopens as zero-copy read-only views via :func:`load_store`
    and is byte-identical for equal graphs on every host (canonical
    little-endian CSR layout, see :mod:`repro.storage.mmap_store`).
    """
    from ..storage.mmap_store import write_graph_file

    csr = graph.csr()
    return write_graph_file(
        os.fspath(path),
        graph.num_vertices,
        csr.indptr,
        csr.indices,
        csr.data,
        name=graph.name,
    )


def load_store(path: str | os.PathLike) -> Graph:
    """Open a CSR store file as a memmap-backed :class:`Graph`.

    Destination ids and weights stay memory-mapped (read-only; shared
    across processes through the page cache); the graph's content
    fingerprint is pre-seeded from the store digest.
    """
    from ..storage.mmap_store import StoredGraph

    return StoredGraph(os.fspath(path)).graph()
