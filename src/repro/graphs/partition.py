"""Interval partitioning of a graph into sub-shards.

Section II-B of the paper: the vertex set is split into disjoint
intervals of a fixed size; the edges whose source lies in interval *i*
and destination in interval *j* form sub-shard *(i, j)*, stored
contiguously (Figure 2). GaaS-X adopts this storage model from
GridGraph/GraphChi/NXGraph, assumes edges within a sub-shard are sorted
by destination vertex, and streams shards in row-major (increasing
source interval) or column-major (increasing destination interval)
order depending on the algorithm.

The implementation keeps every edge of the graph in three sorted arrays
and exposes shards as zero-copy views, so partitioning a multi-million
edge graph stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from ..errors import PartitionError
from .graph import Graph


@dataclass(frozen=True)
class IntervalPartition:
    """A division of ``0 .. num_vertices-1`` into fixed-size intervals."""

    num_vertices: int
    interval_size: int

    def __post_init__(self) -> None:
        if self.num_vertices <= 0:
            raise PartitionError("num_vertices must be positive")
        if self.interval_size <= 0:
            raise PartitionError("interval_size must be positive")

    @property
    def num_intervals(self) -> int:
        """Number of intervals (last one may be short)."""
        return -(-self.num_vertices // self.interval_size)

    def interval_of(self, vertex: int | np.ndarray) -> int | np.ndarray:
        """Interval index containing ``vertex`` (vectorized)."""
        return vertex // self.interval_size

    def bounds(self, interval: int) -> Tuple[int, int]:
        """Half-open vertex range ``[lo, hi)`` of ``interval``."""
        if not 0 <= interval < self.num_intervals:
            raise PartitionError(
                f"interval {interval} out of range [0, {self.num_intervals})"
            )
        lo = interval * self.interval_size
        hi = min(lo + self.interval_size, self.num_vertices)
        return lo, hi


@dataclass(frozen=True)
class Shard:
    """Edges of one (source interval, destination interval) cell.

    ``src``/``dst``/``weight`` are views into the grid's sorted arrays,
    ordered by destination vertex (then source) as the paper assumes.
    """

    src_interval: int
    dst_interval: int
    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray

    @property
    def num_edges(self) -> int:
        """Edges in this shard."""
        return int(self.src.size)

    def __repr__(self) -> str:
        return (
            f"Shard(({self.src_interval}, {self.dst_interval}), "
            f"edges={self.num_edges})"
        )


class ShardGrid:
    """All non-empty sub-shards of a graph under an interval partition."""

    def __init__(self, graph: Graph, partition: IntervalPartition) -> None:
        if partition.num_vertices != graph.num_vertices:
            raise PartitionError(
                "partition covers a different vertex count than the graph"
            )
        self.graph = graph
        self.partition = partition
        k = partition.num_intervals
        edges = graph.edges
        si = edges.rows // partition.interval_size
        dj = edges.cols // partition.interval_size
        keys = si * k + dj
        # Row-major shard order; inside a shard sort by (dst, src).
        perm = np.lexsort((edges.rows, edges.cols, keys))
        self.src = edges.rows[perm]
        self.dst = edges.cols[perm]
        self.weight = edges.data[perm]
        sorted_keys = keys[perm]
        unique_keys, starts = np.unique(sorted_keys, return_index=True)
        self._keys = unique_keys
        self._starts = np.append(starts, sorted_keys.size)

    @classmethod
    def from_sorted_arrays(
        cls,
        graph: Graph,
        interval_size: int,
        src: np.ndarray,
        dst: np.ndarray,
        weight: np.ndarray,
        keys: np.ndarray,
        starts: np.ndarray,
    ) -> "ShardGrid":
        """Rehydrate a grid from previously sorted arrays.

        Used by the layout cache to skip the lexsort when an identical
        (graph content, interval size) grid was already materialized —
        the arrays must come from a grid built over an equal graph.
        """
        grid = cls.__new__(cls)
        grid.graph = graph
        grid.partition = IntervalPartition(graph.num_vertices, interval_size)
        grid.src = np.asarray(src, dtype=np.int64)
        grid.dst = np.asarray(dst, dtype=np.int64)
        grid.weight = np.asarray(weight, dtype=np.float64)
        grid._keys = np.asarray(keys, dtype=np.int64)
        grid._starts = np.asarray(starts, dtype=np.int64)
        if grid.src.size != graph.num_edges:
            raise PartitionError(
                "cached shard arrays do not cover the graph's edge set"
            )
        return grid

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of non-empty shards."""
        return int(self._keys.size)

    @property
    def num_edges(self) -> int:
        """Total edges (equals the graph's edge count)."""
        return int(self.src.size)

    def _shard_at(self, pos: int) -> Shard:
        key = int(self._keys[pos])
        k = self.partition.num_intervals
        lo, hi = int(self._starts[pos]), int(self._starts[pos + 1])
        return Shard(
            src_interval=key // k,
            dst_interval=key % k,
            src=self.src[lo:hi],
            dst=self.dst[lo:hi],
            weight=self.weight[lo:hi],
        )

    def shard(self, src_interval: int, dst_interval: int) -> Optional[Shard]:
        """Return shard ``(src_interval, dst_interval)`` or None if empty."""
        k = self.partition.num_intervals
        if not (0 <= src_interval < k and 0 <= dst_interval < k):
            raise PartitionError("shard coordinates out of range")
        key = src_interval * k + dst_interval
        pos = int(np.searchsorted(self._keys, key))
        if pos >= self._keys.size or self._keys[pos] != key:
            return None
        return self._shard_at(pos)

    def iter_shards(self, order: str = "row") -> Iterator[Shard]:
        """Iterate non-empty shards.

        ``order="row"`` walks increasing source interval (then
        destination), the layout suited to source-driven algorithms;
        ``order="col"`` walks increasing destination interval, suited to
        destination-driven ones (PageRank).
        """
        k = self.partition.num_intervals
        if order == "row":
            positions = range(self.num_shards)
        elif order == "col":
            si = self._keys // k
            dj = self._keys % k
            positions = np.lexsort((si, dj))
        else:
            raise PartitionError(f"unknown shard order: {order!r}")
        for pos in positions:
            yield self._shard_at(int(pos))

    def shard_edge_counts(self) -> np.ndarray:
        """Edges per non-empty shard, in row-major order."""
        return np.diff(self._starts)

    def __repr__(self) -> str:
        return (
            f"ShardGrid(intervals={self.partition.num_intervals}, "
            f"nonempty_shards={self.num_shards}, edges={self.num_edges})"
        )


def partition_graph(graph: Graph, interval_size: int) -> ShardGrid:
    """Partition ``graph`` into sub-shards with the given interval size."""
    part = IntervalPartition(graph.num_vertices, interval_size)
    return ShardGrid(graph, part)


def mutate_grid(
    old_grid: ShardGrid,
    new_graph: Graph,
    inserts=None,
    deletes=None,
) -> ShardGrid:
    """Derive ``new_graph``'s shard grid from an already-sorted old one.

    ``new_graph`` must be ``old_grid.graph.with_edges(inserts, deletes)``
    (same batches). Instead of re-lexsorting all E edges, the deleted
    and upserted pairs are masked out of the old grid's sorted arrays
    and the insert batch — typically tiny — is merge-inserted at its
    sorted positions, so the cost is O(E + k log k) for a k-edge batch.
    The sort rank of an edge is the composite integer
    ``(shard_key * n + dst) * n + src``, exactly the lexsort order
    :class:`ShardGrid` establishes; when that rank cannot fit an int64
    (enormous vertex counts) we fall back to a full rebuild.
    """
    from .graph import normalize_mutation

    interval_size = old_grid.partition.interval_size
    n = new_graph.num_vertices
    if old_grid.graph.num_vertices != n:
        raise PartitionError(
            "mutate_grid requires an unchanged vertex count"
        )
    k = old_grid.partition.num_intervals
    if k * k * n * n >= 2**63:  # Python ints: no silent overflow.
        return partition_graph(new_graph, interval_size)

    ins = normalize_mutation(inserts, n)
    dels = normalize_mutation(deletes, n)
    ins_pair = ins[:, 0].astype(np.int64) * n + ins[:, 1].astype(np.int64)
    if ins_pair.size:
        # Last-wins pair dedupe, matching COO "last" semantics: a
        # stable sort keeps original order within equal keys, so the
        # final element of each run is the batch's last occurrence.
        order = np.argsort(ins_pair, kind="stable")
        run_last = np.ones(order.size, dtype=bool)
        sorted_pair = ins_pair[order]
        run_last[:-1] = sorted_pair[1:] != sorted_pair[:-1]
        ins = ins[order[run_last]]
        ins_pair = sorted_pair[run_last]
    remove = np.concatenate(
        [dels[:, 0].astype(np.int64) * n + dels[:, 1].astype(np.int64),
         ins_pair]
    )
    old_pair = old_grid.src * np.int64(n) + old_grid.dst
    keep = (
        ~np.isin(old_pair, remove)
        if remove.size
        else np.ones(old_pair.size, dtype=bool)
    )
    kept_src = old_grid.src[keep]
    kept_dst = old_grid.dst[keep]
    kept_w = old_grid.weight[keep]
    kept_key = (kept_src // interval_size) * k + kept_dst // interval_size
    kept_rank = (kept_key * n + kept_dst) * n + kept_src

    if ins.shape[0]:
        ins_src = ins[:, 0].astype(np.int64)
        ins_dst = ins[:, 1].astype(np.int64)
        ins_key = (ins_src // interval_size) * k + ins_dst // interval_size
        ins_rank = (ins_key * n + ins_dst) * n + ins_src
        by_rank = np.argsort(ins_rank, kind="stable")
        ins_src, ins_dst = ins_src[by_rank], ins_dst[by_rank]
        ins_w = ins[:, 2][by_rank]
        pos = np.searchsorted(kept_rank, ins_rank[by_rank])
        src = np.insert(kept_src, pos, ins_src)
        dst = np.insert(kept_dst, pos, ins_dst)
        weight = np.insert(kept_w, pos, ins_w)
    else:
        src, dst, weight = kept_src, kept_dst, kept_w

    shard_key = (src // interval_size) * k + dst // interval_size
    if shard_key.size:
        # The merged arrays are rank-sorted, so shard keys are already
        # non-decreasing: run starts come from one diff, no re-sort.
        starts = np.concatenate(
            [[0], np.flatnonzero(np.diff(shard_key)) + 1]
        ).astype(np.int64)
        keys = shard_key[starts]
    else:
        starts = np.empty(0, dtype=np.int64)
        keys = np.empty(0, dtype=np.int64)
    return ShardGrid.from_sorted_arrays(
        new_graph,
        interval_size,
        src=src,
        dst=dst,
        weight=weight,
        keys=keys,
        starts=np.append(starts, shard_key.size),
    )
