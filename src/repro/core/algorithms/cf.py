"""Collaborative filtering on GaaS-X (Section IV, Figure 10).

Matrix factorization over the user-item rating graph, Equation 5:

    e_ui  = G_ui - Pu . Pi
    Pi*   = Pi + gamma * sum_u (e_ui Pu - lambda Pi)
    Pu*   = Pu + gamma * sum_i (e_ui Pi - lambda Pu)

Hardware mapping: edges (with ratings) live in the CAM crossbars;
user and item feature vectors live in MAC crossbars (a 32-feature
vector spans two 16-column arrays). Each epoch runs the paper's two
phases:

* **Item update** — for each item, a CAM search over the destination
  field finds its raters; transposed MACs compute the error dot
  products ``Pu . Pi``; a second selective MAC accumulates
  ``e_ui * Pu`` into the item's new feature vector.
* **User update** — symmetric, searching the source field and using
  the *updated* item features (the phase runs after the item phase, as
  in Figure 10c).

Updates are synchronous within a phase (all errors of a phase are
computed against that phase's starting factors), which keeps the
hardware model and the golden reference bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

import numpy as np

from ...errors import AlgorithmError
from ...events import EventLog
from ..stats import CFResult

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import GaaSXEngine


def initial_factors(
    num_users: int, num_items: int, num_features: int, seed: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic starting factors shared with the golden reference."""
    rng = np.random.default_rng(seed)
    scale = 1.0 / np.sqrt(num_features)
    user = rng.uniform(0.0, scale, size=(num_users, num_features))
    item = rng.uniform(0.0, scale, size=(num_items, num_features))
    return user, item


def reference_epoch(
    users: np.ndarray,
    items: np.ndarray,
    ratings: np.ndarray,
    user_features: np.ndarray,
    item_features: np.ndarray,
    learning_rate: float,
    regularization: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """One synchronous item-then-user epoch of Equation 5."""
    p, q = user_features, item_features

    errors = ratings - np.einsum("ij,ij->i", p[users], q[items])
    grad_q = np.zeros_like(q)
    np.add.at(grad_q, items, errors[:, None] * p[users])
    item_deg = np.bincount(items, minlength=q.shape[0]).astype(np.float64)
    q = q + learning_rate * (grad_q - regularization * item_deg[:, None] * q)

    errors = ratings - np.einsum("ij,ij->i", p[users], q[items])
    grad_p = np.zeros_like(p)
    np.add.at(grad_p, users, errors[:, None] * q[items])
    user_deg = np.bincount(users, minlength=p.shape[0]).astype(np.float64)
    p = p + learning_rate * (grad_p - regularization * user_deg[:, None] * p)
    return p, q


def run(
    engine: "GaaSXEngine",
    num_features: int = 32,
    epochs: int = 1,
    learning_rate: float = 0.002,
    regularization: float = 0.02,
    seed: int = 0,
) -> CFResult:
    """Execute collaborative filtering and return the factor matrices."""
    bipartite = engine.bipartite
    if bipartite is None:
        raise AlgorithmError("collaborative filtering needs a bipartite graph")
    if num_features <= 0:
        raise AlgorithmError("num_features must be positive")

    ratings = bipartite.ratings
    users = ratings.rows
    items = ratings.cols
    values = ratings.data

    # The unified layout renumbers items after users; search groups on
    # the destination field are per-item, on the source field per-user.
    layout = engine.layout("col")
    item_groups = layout.groups_by("dst")
    user_groups = layout.groups_by("src")

    events = EventLog()
    # Edges (with the rating attribute) into CAM+MAC storage once.
    load_time = engine._account_load(layout, events, mac_values_per_edge=1)
    # Feature matrices into MAC crossbars: one row per vertex per
    # 16-column segment.
    segments = -(-num_features // engine.config.mac_cols)
    feature_rows = (bipartite.num_users + bipartite.num_items) * segments
    events.row_writes += feature_rows
    events.cell_writes += (
        (bipartite.num_users + bipartite.num_items)
        * num_features
        * engine.config.bit_slices
    )
    load_time += (
        feature_rows
        / engine.config.num_crossbars
        * engine.config.tech.write_row_latency_s
    )

    user_features, item_features = initial_factors(
        bipartite.num_users, bipartite.num_items, num_features, seed
    )
    for _ in range(epochs):
        user_features, item_features = reference_epoch(
            users,
            items,
            values,
            user_features,
            item_features,
            learning_rate,
            regularization,
        )

    # Accounting for one epoch, scaled by the epoch count. Each phase
    # performs two MAC sweeps over its groups: the error dot products
    # and the feature accumulation.
    pass_events = EventLog()
    pass_time = 0.0
    for groups in (item_groups, user_groups):
        for _sweep in ("error", "accumulate"):
            pass_time += engine._account_search_pass(
                layout,
                groups,
                pass_events,
                cols_engaged=num_features,
                mac_segments=segments,
            )
        # Error arithmetic: subtract + scale per rating; feature update:
        # three ops per feature per vertex (scale, regularize, add).
        pass_events.sfu_ops += 2 * values.size
        pass_events.sfu_ops += 3 * num_features * groups.num_groups
        pass_events.buffer_reads += 2 * values.size * segments
        pass_events.buffer_writes += groups.num_groups * segments
    events.merge(pass_events.scaled(epochs))
    compute_time = pass_time * epochs

    stats = engine._finalize(
        events,
        load_time,
        compute_time,
        passes=epochs,
        batches=layout.num_batches,
    )
    return CFResult(
        user_features=user_features,
        item_features=item_features,
        epochs=epochs,
        stats=stats,
    )
