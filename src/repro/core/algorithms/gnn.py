"""Graph neural network inference on GaaS-X (the paper's future work).

Section V-B: "this execution model is similar to the emerging graph
analytics algorithms such as graph neural networks ... a series of
operations such as accumulation, convolution over vertex attributes and
edge attributes. Though these emerging algorithms can be mapped to
GaaS-X architecture, in this work, we refrain from this analysis."

This kernel performs that mapping for GCN-style forward inference:

    H_{l+1} = act( A_hat @ H_l @ W_l )

with mean aggregation over in-neighbours plus a self loop,
``A_hat[v] = (sum_{(u,v) in E} h_u + h_v) / (indeg(v) + 1)``.

Hardware mapping, layer by layer:

* **Aggregation** — exactly the CF item-phase dataflow (Figure 10): one
  CAM search per (crossbar, destination) group, then a selective MAC
  accumulating the hit rows' source-feature vectors across
  ``ceil(F_in / 16)`` crossbar segments.
* **Transform** — the dense ``H W`` product runs on weight-stationary
  MAC crossbars (the classic ISAAC-style use): per vertex,
  ``ceil(F_in / limit) x ceil(F_out / 16)`` MAC operations.
* **Activation** — one SFU op per output feature.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ...errors import AlgorithmError
from ...events import EventLog
from ..stats import GNNResult

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import GaaSXEngine


def reference_forward(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
    features: np.ndarray,
    weights: Sequence[np.ndarray],
    activation: str = "relu",
) -> np.ndarray:
    """Plain-numpy GCN forward pass (shared with tests)."""
    h = np.asarray(features, dtype=np.float64)
    indeg = np.bincount(dst, minlength=num_vertices).astype(np.float64)
    norm = 1.0 / (indeg + 1.0)
    for layer, w in enumerate(weights):
        agg = h.copy()  # self loop
        np.add.at(agg, dst, h[src])
        agg *= norm[:, None]
        h = agg @ w
        if activation == "relu" and layer < len(weights) - 1:
            h = np.maximum(h, 0.0)
    return h


def run(
    engine: "GaaSXEngine",
    features: np.ndarray,
    weights: Sequence[np.ndarray],
    activation: str = "relu",
) -> GNNResult:
    """Multi-layer GCN forward pass; returns final embeddings."""
    graph = engine.graph
    n = graph.num_vertices
    features = np.asarray(features, dtype=np.float64)
    if features.shape[0] != n:
        raise AlgorithmError(
            f"features must have one row per vertex ({n}), "
            f"got {features.shape}"
        )
    if not weights:
        raise AlgorithmError("at least one weight matrix is required")
    dims = [features.shape[1]]
    for w in weights:
        w = np.asarray(w)
        if w.shape[0] != dims[-1]:
            raise AlgorithmError(
                f"weight shape {w.shape} does not chain from {dims[-1]}"
            )
        dims.append(w.shape[1])
    if activation not in ("relu", "none"):
        raise AlgorithmError(f"unknown activation {activation!r}")

    layout = engine.layout("col")
    groups = layout.groups_by("dst")
    config = engine.config
    limit = config.mac_accumulate_limit

    events = EventLog()
    load_time = engine._account_load(layout, events, mac_values_per_edge=0)
    # Feature tables and the weight matrices into MAC crossbars.
    feature_cells = n * dims[0] + sum(
        int(np.asarray(w).size) for w in weights
    )
    feature_rows = n * (-(-dims[0] // config.mac_cols))
    events.row_writes += feature_rows
    events.cell_writes += feature_cells * config.bit_slices
    load_time += (
        feature_rows / config.num_crossbars * config.tech.write_row_latency_s
    )

    compute_time = 0.0
    for f_in, f_out in zip(dims[:-1], dims[1:]):
        segments_in = -(-f_in // config.mac_cols)
        segments_out = -(-f_out // config.mac_cols)
        # Aggregation sweep (CF-style gather at each destination).
        compute_time += engine._account_search_pass(
            layout, groups, events,
            cols_engaged=f_in, mac_segments=segments_in,
        )
        # Dense transform on weight-stationary crossbars.
        ops_per_vertex = (-(-f_in // limit)) * segments_out
        rows_per_op = min(f_in, limit)
        events.record_mac(
            np.full(n * ops_per_vertex, rows_per_op, dtype=np.int64),
            cols=min(f_out, config.mac_cols),
        )
        events.adc_conversions += n * ops_per_vertex * min(
            f_out, config.mac_cols
        )
        events.dac_conversions += n * ops_per_vertex * rows_per_op
        # Transform crossbars are weight-stationary and shared: vertices
        # stream through all arrays in parallel.
        transform_ops_serial = -(-n * ops_per_vertex // config.num_crossbars)
        compute_time += transform_ops_serial * (
            config.tech.mac_latency_s + config.tech.input_stage_latency_s
        )
        # Normalization + activation epilogue.
        events.sfu_ops += n * (1 + f_out)
        events.buffer_reads += n * segments_in
        events.buffer_writes += n * segments_out

    embeddings = reference_forward(
        layout.src, layout.dst, n, features, weights, activation
    )
    stats = engine._finalize(
        events, load_time, compute_time,
        passes=len(weights), batches=layout.num_batches,
    )
    return GNNResult(
        embeddings=embeddings, num_layers=len(weights), stats=stats
    )
