"""BFS and SSSP on GaaS-X (Section IV, Figure 9b).

Both are frontier-driven relaxations of Equations 1 and 2: per
superstep, each *active* source vertex is CAM-searched in the crossbars
holding its edges; the MAC computes ``dist(u) + w(u, v)`` on the
enabled rows (``alpha x Eweight + dist(u) x 1`` against the constant-1
column), and the SFU takes the running minimum into the destination's
distance. A vertex whose distance improved becomes active for the next
superstep; the loop ends when the frontier drains (Bellman-Ford
wavefront order, synchronous within a superstep).

BFS is SSSP with the weight column preset to the constant 1, which
also removes the per-edge MAC attribute write at load time
(Section IV: "without the overhead of loading edge weights").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ...errors import AlgorithmError
from ...events import EventLog
from ..engine import gather_ranges
from ..stats import TraversalResult

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import GaaSXEngine


def run(engine: "GaaSXEngine", source: int, weighted: bool) -> TraversalResult:
    """Execute BFS (``weighted=False``) or SSSP and return distances."""
    graph = engine.graph
    n = graph.num_vertices
    if not 0 <= source < n:
        raise AlgorithmError(f"source vertex {source} out of range [0, {n})")
    if weighted and graph.num_edges and graph.weights.min() < 0:
        raise AlgorithmError("SSSP requires non-negative edge weights")

    layout = engine.layout("row")
    groups = layout.groups_by("src")

    events = EventLog()
    mac_values = 1 if weighted else 0
    if engine.streaming:
        load_time = 0.0  # charged per superstep below
    else:
        load_time = engine._account_load(
            layout, events, mac_values_per_edge=mac_values
        )

    dist = np.full(n, np.inf)
    dist[source] = 0.0
    active = np.zeros(n, dtype=bool)
    active[source] = True

    group_starts = groups.group_offsets[:-1]
    compute_time = 0.0
    supersteps = 0
    while active.any():
        group_mask = active[groups.vertex]
        if engine.streaming:
            # Re-stream every crossbar holding an active source's edges.
            xbar_mask = engine._active_xbar_mask(layout, groups, group_mask)
            load_time += engine._account_load(
                layout, events,
                xbar_mask=xbar_mask, mac_values_per_edge=mac_values,
            )
        compute_time += engine._account_search_pass(
            layout, groups, events, group_mask=group_mask, cols_engaged=2
        )
        # Functional relaxation over exactly the searched edges.
        edge_slots = gather_ranges(
            group_starts[group_mask], groups.count[group_mask]
        )
        edges = groups.edge_perm[edge_slots]
        candidates = dist[layout.src[edges]] + (
            layout.weight[edges] if weighted else 1.0
        )
        new_dist = dist.copy()
        np.minimum.at(new_dist, layout.dst[edges], candidates)
        improved = new_dist < dist
        # SFU/buffer accounting: one dist(u) read per search, one
        # min-compare per candidate, one select+writeback per improved
        # destination.
        events.buffer_reads += int(group_mask.sum())
        events.sfu_ops += int(edges.size) + int(improved.sum())
        events.buffer_writes += int(improved.sum())
        dist = new_dist
        active = improved
        supersteps += 1

    stats = engine._finalize(
        events,
        load_time,
        compute_time,
        passes=supersteps,
        batches=layout.num_batches,
    )
    return TraversalResult(
        distances=dist, source=source, supersteps=supersteps, stats=stats
    )
