"""BFS and SSSP on GaaS-X (Section IV, Figure 9b).

Both are frontier-driven relaxations of Equations 1 and 2: per
superstep, each *active* source vertex is CAM-searched in the crossbars
holding its edges; the MAC computes ``dist(u) + w(u, v)`` on the
enabled rows (``alpha x Eweight + dist(u) x 1`` against the constant-1
column), and the SFU takes the running minimum into the destination's
distance. A vertex whose distance improved becomes active for the next
superstep; the loop ends when the frontier drains (Bellman-Ford
wavefront order, synchronous within a superstep).

BFS is SSSP with the weight column preset to the constant 1, which
also removes the per-edge MAC attribute write at load time
(Section IV: "without the overhead of loading edge weights").

The software loop is O(frontier) per superstep, mirroring the work the
modelled hardware actually performs: the frontier's edges come from
the vertex->edges CSR index (not a mask over all groups), the
relaxation scatters minima over only those edges, the new frontier is
deduplicated without scanning the vertex set, and — in the resident
case — all event/latency accounting is deferred into one vectorized
pass at the end (:class:`~repro.core.engine.DeferredSearchAccounting`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ...errors import AlgorithmError
from ...events import EventLog
from ..engine import DeferredSearchAccounting, gather_ranges, unique_vertices
from ..stats import TraversalResult

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import GaaSXEngine


def run(engine: "GaaSXEngine", source: int, weighted: bool) -> TraversalResult:
    """Execute BFS (``weighted=False``) or SSSP and return distances."""
    graph = engine.graph
    n = graph.num_vertices
    if not 0 <= source < n:
        raise AlgorithmError(f"source vertex {source} out of range [0, {n})")
    if weighted and graph.num_edges and graph.weights.min() < 0:
        raise AlgorithmError("SSSP requires non-negative edge weights")

    layout = engine.layout("row")
    groups = layout.groups_by("src")
    edge_offsets, edge_of = groups.edge_index(n)
    # Adjacency pre-permuted into the CSR edge order: one gather per
    # superstep instead of an edge-id indirection then a field gather.
    src_adj = layout.src[edge_of]
    dst_adj = layout.dst[edge_of]
    weight_adj = layout.weight[edge_of] if weighted else None

    events = EventLog()
    mac_values = 1 if weighted else 0
    if engine.streaming:
        load_time = 0.0  # charged per superstep below
        deferred = None
    else:
        load_time = engine._account_load(
            layout, events, mac_values_per_edge=mac_values
        )
        deferred = DeferredSearchAccounting(
            engine.config, layout, groups, n, cols_engaged=2
        )

    dist = np.full(n, np.inf)
    dist[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    scratch = np.zeros(n, dtype=bool)

    compute_time = 0.0
    supersteps = 0
    buffer_reads = 0
    buffer_writes = 0
    sfu_ops = 0
    while frontier.size:
        supersteps += 1
        if deferred is None:
            # Re-stream every crossbar holding an active source's edges.
            gids = groups.groups_of(frontier, n)
            xbar_mask = engine._active_xbar_mask(
                layout, groups, group_ids=gids
            )
            load_time += engine._account_load(
                layout, events,
                xbar_mask=xbar_mask, mac_values_per_edge=mac_values,
            )
            compute_time += engine._account_search_pass(
                layout, groups, events, group_ids=gids, cols_engaged=2
            )
            buffer_reads += int(gids.size)  # one dist(u) read per search
        else:
            deferred.add(frontier)
        # Functional relaxation over exactly the frontier's edges.
        starts = edge_offsets[frontier]
        idx = gather_ranges(starts, edge_offsets[frontier + 1] - starts)
        if idx.size == 0:
            frontier = np.empty(0, dtype=np.int64)
            continue
        candidates = dist[src_adj[idx]]
        if weighted:
            candidates += weight_adj[idx]
        else:
            candidates += 1.0
        targets = dst_adj[idx]
        before = dist[targets]
        np.minimum.at(dist, targets, candidates)
        frontier = unique_vertices(targets[dist[targets] < before], scratch)
        # SFU/buffer accounting: one min-compare per candidate, one
        # select+writeback per improved destination.
        sfu_ops += int(idx.size) + int(frontier.size)
        buffer_writes += int(frontier.size)

    if deferred is not None:
        compute_time += deferred.finalize(events)
        buffer_reads += deferred.total_groups
    events.buffer_reads += buffer_reads
    events.buffer_writes += buffer_writes
    events.sfu_ops += sfu_ops

    stats = engine._finalize(
        events,
        load_time,
        compute_time,
        passes=supersteps,
        batches=layout.num_batches,
    )
    return TraversalResult(
        distances=dist, source=source, supersteps=supersteps, stats=stats
    )
