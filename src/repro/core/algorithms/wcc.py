"""Weakly connected components on GaaS-X (extension kernel).

The paper positions GaaS-X as a *versatile* SpMV engine; WCC is the
classic min-label-propagation member of that family and maps onto the
same CAM + selective-MAC machinery as SSSP: per superstep, every active
vertex broadcasts its component label to its neighbours, which keep the
minimum.

Weak connectivity ignores edge direction, and this is where the ternary
CAM earns its keep: the *same* stored (src, dst) rows serve both
directions — searching the source field finds a vertex's out-edges,
searching the destination field finds its in-edges — with no transposed
copy of the graph (Section IV: "the ternary CAM operation enables the
flexibility to identify the edges corresponding to a particular source
or destination vertex").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ...events import EventLog
from ..engine import gather_ranges
from ..stats import ComponentsResult

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import GaaSXEngine


def run(engine: "GaaSXEngine") -> ComponentsResult:
    """Label-propagation WCC; returns per-vertex component labels."""
    graph = engine.graph
    n = graph.num_vertices
    layout = engine.layout("row")
    src_groups = layout.groups_by("src")
    dst_groups = layout.groups_by("dst")

    events = EventLog()
    # Labels ride in the MAC attribute column, like SSSP distances.
    load_time = engine._account_load(layout, events, mac_values_per_edge=1)

    labels = np.arange(n, dtype=np.float64)
    active = np.zeros(n, dtype=bool)
    has_edge = np.zeros(n, dtype=bool)
    has_edge[layout.src] = True
    has_edge[layout.dst] = True
    active[has_edge] = True

    compute_time = 0.0
    supersteps = 0
    while active.any():
        new_labels = labels.copy()
        # Forward direction: out-edges of active vertices.
        fwd_mask = active[src_groups.vertex]
        compute_time += engine._account_search_pass(
            layout, src_groups, events, group_mask=fwd_mask, cols_engaged=1
        )
        fwd_edges = src_groups.edge_perm[
            gather_ranges(
                src_groups.group_offsets[:-1][fwd_mask],
                src_groups.count[fwd_mask],
            )
        ]
        np.minimum.at(
            new_labels, layout.dst[fwd_edges], labels[layout.src[fwd_edges]]
        )
        # Reverse direction: in-edges via a destination-field search.
        rev_mask = active[dst_groups.vertex]
        compute_time += engine._account_search_pass(
            layout, dst_groups, events, group_mask=rev_mask, cols_engaged=1
        )
        rev_edges = dst_groups.edge_perm[
            gather_ranges(
                dst_groups.group_offsets[:-1][rev_mask],
                dst_groups.count[rev_mask],
            )
        ]
        np.minimum.at(
            new_labels, layout.src[rev_edges], labels[layout.dst[rev_edges]]
        )

        improved = new_labels < labels
        events.buffer_reads += int(fwd_mask.sum()) + int(rev_mask.sum())
        events.sfu_ops += int(fwd_edges.size) + int(rev_edges.size)
        events.sfu_ops += int(improved.sum())
        events.buffer_writes += int(improved.sum())
        labels = new_labels
        active = improved
        supersteps += 1

    stats = engine._finalize(
        events, load_time, compute_time,
        passes=supersteps, batches=layout.num_batches,
    )
    return ComponentsResult(
        labels=labels.astype(np.int64), supersteps=supersteps, stats=stats
    )
