"""Weakly connected components on GaaS-X (extension kernel).

The paper positions GaaS-X as a *versatile* SpMV engine; WCC is the
classic min-label-propagation member of that family and maps onto the
same CAM + selective-MAC machinery as SSSP: per superstep, every active
vertex broadcasts its component label to its neighbours, which keep the
minimum.

Weak connectivity ignores edge direction, and this is where the ternary
CAM earns its keep: the *same* stored (src, dst) rows serve both
directions — searching the source field finds a vertex's out-edges,
searching the destination field finds its in-edges — with no transposed
copy of the graph (Section IV: "the ternary CAM operation enables the
flexibility to identify the edges corresponding to a particular source
or destination vertex").

Like traversal, the software loop is O(frontier) per superstep: each
direction's edges come from its vertex->edges CSR index, label minima
scatter over only those edges, and all event/latency accounting is
deferred into one vectorized pass per direction at the end.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ...errors import AlgorithmError
from ...events import EventLog
from ..engine import DeferredSearchAccounting, gather_ranges, unique_vertices
from ..stats import ComponentsResult

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import GaaSXEngine


def run(
    engine: "GaaSXEngine",
    warm_labels: Optional[np.ndarray] = None,
    seed_vertices: Optional[np.ndarray] = None,
) -> ComponentsResult:
    """Label-propagation WCC; returns per-vertex component labels.

    ``warm_labels`` + ``seed_vertices`` start incrementally from a
    previous run's labels (see
    :func:`repro.core.algorithms.incremental.wcc_warm_state`): only the
    seeded frontier re-propagates, so a run on an unchanged or lightly
    mutated graph costs supersteps proportional to what actually
    changed. With ``warm_labels=None`` every edge-touching vertex
    seeds, which is the full recompute.
    """
    graph = engine.graph
    n = graph.num_vertices
    layout = engine.layout("row")
    src_groups = layout.groups_by("src")
    dst_groups = layout.groups_by("dst")
    fwd_offsets, fwd_edge_of = src_groups.edge_index(n)
    rev_offsets, rev_edge_of = dst_groups.edge_index(n)

    events = EventLog()
    # Labels ride in the MAC attribute column, like SSSP distances.
    load_time = engine._account_load(layout, events, mac_values_per_edge=1)
    deferred_fwd = DeferredSearchAccounting(
        engine.config, layout, src_groups, n, cols_engaged=1
    )
    deferred_rev = DeferredSearchAccounting(
        engine.config, layout, dst_groups, n, cols_engaged=1
    )

    src = layout.src
    dst = layout.dst
    if warm_labels is None:
        labels = np.arange(n, dtype=np.float64)
        has_edge = np.zeros(n, dtype=bool)
        has_edge[src] = True
        has_edge[dst] = True
        frontier = np.flatnonzero(has_edge)
    else:
        warm_labels = np.asarray(warm_labels)
        if warm_labels.shape != (n,):
            raise AlgorithmError(
                f"warm_labels must have one entry per vertex ({n})"
            )
        labels = warm_labels.astype(np.float64)
        if seed_vertices is None:
            frontier = np.empty(0, dtype=np.int64)
        else:
            frontier = np.unique(
                np.asarray(seed_vertices, dtype=np.int64)
            )
            if frontier.size and (
                frontier[0] < 0 or frontier[-1] >= n
            ):
                raise AlgorithmError("seed vertex out of range")
    scratch = np.zeros(n, dtype=bool)

    supersteps = 0
    buffer_writes = 0
    sfu_ops = 0
    while frontier.size:
        supersteps += 1
        deferred_fwd.add(frontier)
        deferred_rev.add(frontier)
        # Forward direction: out-edges of active vertices.
        starts = fwd_offsets[frontier]
        fwd_edges = fwd_edge_of[
            gather_ranges(starts, fwd_offsets[frontier + 1] - starts)
        ]
        # Reverse direction: in-edges via a destination-field search.
        starts = rev_offsets[frontier]
        rev_edges = rev_edge_of[
            gather_ranges(starts, rev_offsets[frontier + 1] - starts)
        ]
        sfu_ops += int(fwd_edges.size) + int(rev_edges.size)
        # Both directions' candidates read the pre-superstep labels, so
        # gather them before the (in-place) scatter.
        targets = np.concatenate([dst[fwd_edges], src[rev_edges]])
        if targets.size == 0:
            frontier = np.empty(0, dtype=np.int64)
            continue
        candidates = np.concatenate(
            [labels[src[fwd_edges]], labels[dst[rev_edges]]]
        )
        before = labels[targets]
        np.minimum.at(labels, targets, candidates)
        frontier = unique_vertices(
            targets[labels[targets] < before], scratch
        )
        sfu_ops += int(frontier.size)
        buffer_writes += int(frontier.size)

    compute_time = deferred_fwd.finalize(events) + deferred_rev.finalize(
        events
    )
    events.buffer_reads += deferred_fwd.total_groups + deferred_rev.total_groups
    events.buffer_writes += buffer_writes
    events.sfu_ops += sfu_ops

    stats = engine._finalize(
        events, load_time, compute_time,
        passes=supersteps, batches=layout.num_batches,
    )
    return ComponentsResult(
        labels=labels.astype(np.int64), supersteps=supersteps, stats=stats
    )
