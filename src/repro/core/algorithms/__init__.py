"""GaaS-X algorithm kernels (Section IV of the paper)."""

from . import cf, gnn, pagerank, traversal, wcc

__all__ = ["pagerank", "traversal", "cf", "wcc", "gnn"]
