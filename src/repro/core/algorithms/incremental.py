"""Delta/incremental recompute: active-set-shrinking PageRank and
warm-start state for WCC.

The full PageRank kernel re-searches every destination group every
iteration even though, after the first few sweeps, most ranks have
stopped moving. The delta formulation exploits the linearity of
Equation 3: with ``d_k = r_{k+1} - r_k``,

    ``d_{k+1}(v) = alpha * sum_{u->v} d_k(u) / OutDeg(u)``

so one full sweep seeds the residuals and every later sweep applies
and propagates only the *active* ones — vertices whose pending rank
change exceeds ``epsilon``. Sub-threshold residuals are parked, not
dropped (the push-style residual iteration), so no mass is ever lost:
they apply as soon as upstream contributions push them back over the
threshold, which keeps the result epsilon-equivalent (not
bit-identical) to full recompute; tests bound the error. Damping
shrinks the active set geometrically, and the modelled hardware cost
shrinks with it: each delta pass CAM-searches only the destination
groups reachable from active sources (the compact ``group_ids`` path
of :meth:`~repro.core.engine.GaaSXEngine._account_search_pass`),
reads only the active out-edges, and SFU-updates only the active
vertices.

The per-pass frontier expansion (active sources -> out-edges ->
destination groups) is memoized in :mod:`repro.core.reuse`, so a warm
serve session re-running the same query skips the index gathers
entirely.

For WCC, :func:`wcc_warm_state` turns the previous run's labels plus
an edge mutation batch into a ``(labels, seed)`` warm start for
:func:`repro.core.algorithms.wcc.run`: inserted edges merely seed
their endpoints (min-label propagation is monotone under edge
insertion), while deleted edges reset every vertex of the affected
components to its identity label and re-propagate — components whose
edges did not change are never touched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from ...errors import AlgorithmError
from ...events import EventLog
from ..engine import gather_ranges
from ..reuse import (
    frontier_fingerprint,
    get_reuse_cache,
    layout_token,
    reuse_enabled,
)
from ..stats import PageRankResult
from .pagerank import reference_iteration

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import GaaSXEngine

#: Default activity threshold: deltas at or below it stop propagating.
DEFAULT_EPSILON = 1e-6


def pagerank(
    engine: "GaaSXEngine",
    alpha: float = 0.85,
    iterations: int = 10,
    tolerance: Optional[float] = None,
    epsilon: float = DEFAULT_EPSILON,
    warm_ranks: Optional[np.ndarray] = None,
) -> PageRankResult:
    """Delta PageRank: full seed sweep, then active-set delta passes.

    Semantics match :func:`repro.core.algorithms.pagerank.run` with the
    same ``alpha``/``iterations``/``tolerance`` budget, within the
    ``epsilon`` truncation bound. ``warm_ranks`` starts from a previous
    run's ranks (a warm serve session after a graph mutation): the
    seeding sweep then produces near-zero deltas and the run converges
    in a handful of cheap passes instead of re-walking every edge
    ``iterations`` times.
    """
    graph = engine.graph
    n = graph.num_vertices
    if epsilon < 0:
        raise AlgorithmError("epsilon must be non-negative")
    if warm_ranks is not None:
        warm_ranks = np.asarray(warm_ranks, dtype=np.float64)
        if warm_ranks.shape != (n,):
            raise AlgorithmError(
                f"warm_ranks must have one entry per vertex ({n})"
            )
    layout = engine.layout("col")
    src_groups = layout.groups_by("src")
    dst_groups = layout.groups_by("dst")
    fwd_offsets, fwd_edge_of = src_groups.edge_index(n)

    reuse = get_reuse_cache() if reuse_enabled() else None
    token = (
        layout_token(engine.graph, engine.interval_size, "col", engine.config)
        if reuse is not None
        else None
    )

    events = EventLog()
    load_events = EventLog()
    load_time = engine._account_load(
        layout, load_events, mac_values_per_edge=1
    )
    events.merge(load_events)

    out_deg = graph.out_degrees().astype(np.float64)
    inv_outdeg = np.zeros(n, dtype=np.float64)
    nonzero = out_deg > 0
    inv_outdeg[nonzero] = 1.0 / out_deg[nonzero]

    src = layout.src
    dst = layout.dst
    # Per-edge destination-group id (layout edge order), for mapping an
    # active edge set onto the groups the delta pass must search.
    dst_group_of_edge = np.empty(layout.num_edges, dtype=np.int64)
    dst_group_of_edge[dst_groups.edge_perm] = np.repeat(
        np.arange(dst_groups.num_groups), dst_groups.count
    )

    ranks = warm_ranks.copy() if warm_ranks is not None else np.ones(n)
    compute_time = 0.0

    # Seeding sweep: one full pass, identical in cost to a full-kernel
    # iteration, establishes the exact residual of the starting ranks:
    # residual = b + alpha*P^T r - r, which is precisely the rank
    # change a synchronous sweep would apply. Shares the full kernel's
    # memoized pass accounting (same token, same unit).
    new_ranks = reference_iteration(ranks, src, dst, inv_outdeg, alpha)
    residual = new_ranks - ranks
    executed = 1
    cached = (
        reuse.lookup(token, "pagerank-pass", "full")
        if reuse is not None
        else None
    )
    if cached is None:
        full_events = EventLog()
        full_time = engine._account_search_pass(
            layout, dst_groups, full_events, cols_engaged=1
        )
        full_events.buffer_reads += layout.num_edges
        full_events.sfu_ops += dst_groups.num_groups + 2 * n
        full_events.buffer_writes += n
        if reuse is not None:
            reuse.store(
                token, "pagerank-pass", "full", (full_events, full_time)
            )
    else:
        full_events, full_time = cached
    events.merge(full_events)
    compute_time += full_time

    while executed < iterations:
        max_residual = float(np.max(np.abs(residual))) if n else 0.0
        if tolerance is not None and max_residual < tolerance:
            break
        active = np.flatnonzero(np.abs(residual) > epsilon)
        if active.size == 0:
            break
        # Apply and propagate only the active residuals; sub-epsilon
        # residuals stay parked where they are (no mass is dropped —
        # they apply the moment upstream contributions push them over
        # the threshold, which is what bounds the truncation error).
        #
        # The expansion of the active set (out-edges, destination
        # groups) and the pass it costs (searches per touched group,
        # residual reads per active edge, accumulate per group, apply
        # + writeback per active vertex) are pure functions of the
        # active set, so the whole bundle is memoized per frontier
        # fingerprint: a repeated run replays expansions *and* pass
        # accounting straight from the reuse cache.
        starts = fwd_offsets[active]
        edges = fwd_edge_of[
            gather_ranges(starts, fwd_offsets[active + 1] - starts)
        ]
        bundle = None
        if reuse is not None:
            fp = frontier_fingerprint(active)
            bundle = reuse.lookup(token, "delta", fp)
        if bundle is None:
            # Sorted dedupe via a group-bounded mask: O(edges + groups),
            # far cheaper than a hash/sort unique on the edge list. The
            # edge gather itself stays out of the memo — it is cheap and
            # caching it would evict everything else at scale.
            group_mask = np.zeros(dst_groups.num_groups, dtype=bool)
            group_mask[dst_group_of_edge[edges]] = True
            group_ids = np.flatnonzero(group_mask)
            pass_events = EventLog()
            pass_time = engine._account_search_pass(
                layout, dst_groups, pass_events,
                cols_engaged=1, group_ids=group_ids,
            )
            pass_events.buffer_reads += int(edges.size)
            pass_events.sfu_ops += int(group_ids.size) + 2 * int(
                active.size
            )
            pass_events.buffer_writes += int(active.size)
            if reuse is not None:
                reuse.store(
                    token, "delta", fp,
                    (group_ids, pass_events, pass_time),
                )
        else:
            group_ids, pass_events, pass_time = bundle

        ranks[active] += residual[active]
        contrib = np.bincount(
            dst[edges],
            weights=residual[src[edges]] * inv_outdeg[src[edges]],
            minlength=n,
        )
        residual[active] = 0.0
        residual = residual + alpha * contrib
        executed += 1
        events.merge(pass_events)
        compute_time += pass_time
        if engine.streaming:
            # No residency: re-stream only the crossbars holding the
            # touched groups (the up-front charge covers the seeding
            # sweep's full stream, as in the full kernel).
            xbar_mask = np.zeros(layout.num_xbars, dtype=bool)
            xbar_mask[dst_groups.xbar[group_ids]] = True
            step_load = EventLog()
            load_time += engine._account_load(
                layout, step_load, xbar_mask=xbar_mask,
                mac_values_per_edge=1,
            )
            events.merge(step_load)

    # Final apply: the last propagation left its residuals pending;
    # fold the active ones into the ranks (an SFU update, no search
    # pass) so ``executed`` incremental passes land on the same point
    # as ``executed`` full sweeps, up to parked sub-epsilon residuals.
    apply = np.flatnonzero(np.abs(residual) > epsilon)
    if apply.size:
        ranks[apply] += residual[apply]
        events.sfu_ops += 2 * int(apply.size)
        events.buffer_writes += int(apply.size)

    stats = engine._finalize(
        events,
        load_time,
        compute_time,
        passes=executed,
        batches=layout.num_batches,
    )
    return PageRankResult(ranks=ranks, iterations=executed, stats=stats)


def wcc_warm_state(
    old_labels: np.ndarray,
    num_vertices: int,
    inserts: Optional[np.ndarray] = None,
    deletes: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Warm-start ``(labels, seed_vertices)`` for WCC after a mutation.

    Edge insertion is monotone for min-label propagation: old labels
    stay valid upper bounds and only the inserted endpoints need to
    seed the frontier. Deletion can split a component, so every vertex
    of a component that lost an edge is reset to its identity label
    and re-seeded; the old graph's components are adjacency-closed, so
    no other label can be stale.
    """
    old_labels = np.asarray(old_labels, dtype=np.int64)
    if old_labels.shape != (num_vertices,):
        raise AlgorithmError(
            f"labels must have one entry per vertex ({num_vertices})"
        )
    labels = old_labels.copy()
    seeds = []
    if deletes is not None and len(deletes):
        arr = np.asarray(deletes, dtype=np.int64)
        endpoints = np.unique(arr[:, :2])
        affected = np.unique(old_labels[endpoints])
        members = np.flatnonzero(np.isin(old_labels, affected))
        labels[members] = members
        seeds.append(members)
    if inserts is not None and len(inserts):
        arr = np.asarray(inserts)[:, :2].astype(np.int64)
        seeds.append(np.unique(arr))
    seed = (
        np.unique(np.concatenate(seeds))
        if seeds
        else np.empty(0, dtype=np.int64)
    )
    return labels, seed
