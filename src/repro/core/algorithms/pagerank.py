"""PageRank on GaaS-X (Section IV, Figure 9c).

Mapping: (src, dst) pairs in CAM crossbars, reciprocal out-degrees in
the MAC crossbars, ranks in the attribute buffer. Shards stream in
column-major (destination interval) order. Per iteration, each
destination vertex present in a crossbar is CAM-searched; the hit
vector enables the matching rows and the MAC accumulates
``rank(u) / OutDeg(u)`` over the enabled edges (Equation 4); the SFU
applies the damping affine of Equation 3.

The paper's Equation 3 is the *unnormalized* PageRank recurrence
``rank(v) = (1 - alpha) + alpha * sum(rank(u) / OutDeg(u))`` — vertices
with zero out-degree simply contribute nothing (no dangling-mass
redistribution), and we reproduce exactly that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ...errors import AlgorithmError
from ...events import EventLog
from ..stats import PageRankResult

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import GaaSXEngine


def reference_iteration(
    ranks: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    inv_outdeg: np.ndarray,
    alpha: float,
    base: np.ndarray | float = 1.0,
) -> np.ndarray:
    """One synchronous PageRank step of Equation 3 (shared with tests).

    ``base`` scales the teleport term: 1.0 gives the paper's uniform
    recurrence; a per-vertex vector gives personalized PageRank (the
    teleport mass concentrates on the preference vertices).
    """
    contrib = np.bincount(
        dst, weights=ranks[src] * inv_outdeg[src], minlength=ranks.size
    )
    return (1.0 - alpha) * base + alpha * contrib


def run(
    engine: "GaaSXEngine",
    alpha: float = 0.85,
    iterations: int = 10,
    tolerance: Optional[float] = None,
    personalization: Optional[np.ndarray] = None,
) -> PageRankResult:
    """Execute PageRank and return ranks plus accounted statistics.

    ``personalization`` optionally gives a non-negative per-vertex
    teleport preference (normalized to mean 1 so magnitudes stay
    comparable to the uniform case) — personalized PageRank on the
    identical hardware dataflow, since only the SFU's affine offset
    changes.
    """
    graph = engine.graph
    n = graph.num_vertices
    if personalization is None:
        base: np.ndarray | float = 1.0
    else:
        base = np.asarray(personalization, dtype=np.float64)
        if base.shape != (n,):
            raise AlgorithmError(
                f"personalization must have one entry per vertex ({n})"
            )
        if base.size and base.min() < 0:
            raise AlgorithmError("personalization must be non-negative")
        total = base.sum()
        if total <= 0:
            raise AlgorithmError("personalization must have positive mass")
        base = base * (n / total)
    layout = engine.layout("col")
    groups = layout.groups_by("dst")

    events = EventLog()
    load_events = EventLog()
    load_time = engine._account_load(
        layout, load_events, mac_values_per_edge=1
    )

    out_deg = graph.out_degrees().astype(np.float64)
    inv_outdeg = np.zeros(n, dtype=np.float64)
    nonzero = out_deg > 0
    inv_outdeg[nonzero] = 1.0 / out_deg[nonzero]

    src = graph.edges.rows
    dst = graph.edges.cols
    ranks = np.ones(n, dtype=np.float64)
    executed = 0
    for _ in range(iterations):
        new_ranks = reference_iteration(
            ranks, src, dst, inv_outdeg, alpha, base=base
        )
        executed += 1
        delta = float(np.max(np.abs(new_ranks - ranks))) if n else 0.0
        ranks = new_ranks
        if tolerance is not None and delta < tolerance:
            break

    # Every iteration performs the identical search/MAC pass; account
    # one pass and scale by the number of executed iterations. The
    # assembled pass is a pure function of the layout, so warm runs
    # (the serve session's second query onward) replay it from the
    # reuse cache instead of re-walking every group.
    from ..reuse import get_reuse_cache, layout_token, reuse_enabled

    reuse = get_reuse_cache() if reuse_enabled() else None
    cached = None
    if reuse is not None:
        token = layout_token(
            engine.graph, engine.interval_size, "col", engine.config
        )
        cached = reuse.lookup(token, "pagerank-pass", "full")
    if cached is None:
        pass_events = EventLog()
        pass_time = engine._account_search_pass(
            layout, groups, pass_events, cols_engaged=1
        )
        # Per hit: one rank read from the attribute buffer (MAC input).
        pass_events.buffer_reads += layout.num_edges
        # Per group: accumulate the crossbar partial into the sum.
        pass_events.sfu_ops += groups.num_groups
        # Per vertex: damping affine (mul + add) and rank writeback.
        pass_events.sfu_ops += 2 * n
        pass_events.buffer_writes += n
        if reuse is not None:
            reuse.store(
                token, "pagerank-pass", "full", (pass_events, pass_time)
            )
    else:
        pass_events, pass_time = cached
    events.merge(pass_events.scaled(executed))
    compute_time = pass_time * executed
    if engine.streaming:
        # No residency: the shards are re-streamed every iteration.
        events.merge(load_events.scaled(executed))
        load_time = load_time * executed
    else:
        events.merge(load_events)

    stats = engine._finalize(
        events,
        load_time,
        compute_time,
        passes=executed,
        batches=layout.num_batches,
    )
    return PageRankResult(ranks=ranks, iterations=executed, stats=stats)
